"""Hierarchical decomposition of the phased-array receiver
(Table II row 4 / Fig. 7).

Run:  python examples/phased_array.py

Builds the ~500-device phased-array system (N channels of LNA → BPF →
mixer with injection-locked per-channel oscillators, VCO buffers, and
inverter IF amplifiers), trains the RF recognition GCN on generated
LNA/mixer/oscillator data, and walks the three recognition stages the
paper reports: raw GCN, Postprocessing I (CCC vote + primitive
separation + BPF detection), Postprocessing II (antenna/oscillating
port rules).
"""

from collections import Counter

from repro import GanaPipeline
from repro.datasets import phased_array


def main() -> None:
    system = phased_array(n_channels=4)  # 4 channels keeps this quick
    print(f"system: {system.name} with {system.n_devices} devices")
    print(f"true block mix: {dict(Counter(system.device_labels.values()))}")

    print("\ntraining RF recognition model (lna / mixer / osc) ...")
    pipeline = GanaPipeline.pretrained("rf", quick=True)

    result = pipeline.run(
        system.circuit, port_labels=system.port_labels, name=system.name
    )
    truth = system.truth(result.graph)
    accs = result.accuracies(truth)

    print("\nrecognition staircase (paper: 79.8% -> 87.3% -> 100%):")
    print(f"  GCN alone        {accs['gcn']:.1%}")
    print(f"  + Postproc I     {accs['post1']:.1%}   (CCC vote, INV/BUF, BPF)")
    print(f"  + Postproc II    {accs['post2']:.1%}   (antenna / oscillating ports)")

    print("\nsub-blocks found:")
    for block in result.hierarchy.subblocks():
        devices = len(block.all_devices())
        print(f"  {block.name:<12} class={block.block_class:<6} {devices} devices")

    standalone = [
        node for node in result.hierarchy.children
        if node.name.startswith("standalone/")
    ]
    kinds = Counter(node.block_class for node in standalone)
    print(f"\nstand-alone primitives separated: {dict(kinds)}")

    print("\nextra classes discovered by postprocessing:",
          result.post2.annotation.extra_classes)

    # One level above the paper: group the recognized sub-blocks into
    # per-channel receiver systems over the block signal-flow graph.
    from repro.core.systems import annotate_systems

    systems = annotate_systems(result.hierarchy, result.graph)
    print(f"\nsystem-level recognition: {len(systems)} receiver chains")
    for system in systems:
        print(f"  {system.name}: {len(system.blocks)} blocks")


if __name__ == "__main__":
    main()
