"""Quickstart: annotate a SPICE netlist and print its hierarchy.

Run:  python examples/quickstart.py

Trains a small recognition GCN on generated OTA data (seconds, fully
deterministic), then runs the complete GANA flow — flatten →
preprocess → graph → GCN → postprocessing → hierarchy + constraints —
on a five-transistor OTA with its bias network, written as ordinary
SPICE text.
"""

from repro import GanaPipeline

DECK = """
* five-transistor ota with resistor-programmed bias
.global vdd! gnd!

.subckt bias_core vbn
rref vdd! vbn 50k
mcr vbn vbn gnd! gnd! nmos w=1u l=200n
.ends

.subckt ota5t vinp vinn vout vbn
mtail tail vbn gnd! gnd! nmos w=2u l=200n
md1 n1 vinp tail gnd! nmos w=4u l=100n
md2 vout vinn tail gnd! nmos w=4u l=100n
ml1 n1 n1 vdd! vdd! pmos w=8u l=100n
ml2 vout n1 vdd! vdd! pmos w=8u l=100n
.ends

xbias vbn bias_core
xota vinp vinn vout vbn ota5t
cload vout gnd! 1p
.end
"""


def main() -> None:
    print("training the recognition GCN on generated OTA data ...")
    pipeline = GanaPipeline.pretrained("ota", quick=True)

    result = pipeline.run(DECK, name="quickstart")

    print("\nper-device annotation:")
    for device, cls in sorted(result.annotation.element_classes.items()):
        print(f"  {device:<12} -> {cls}")

    print("\nrecognized hierarchy:")
    print(result.hierarchy.render())

    print("\nlayout constraints discovered:")
    for constraint in result.constraints:
        members = ", ".join(constraint.members)
        print(f"  {constraint.kind.value:<16} [{members}]  (from {constraint.source})")

    print("\nstage timings:")
    for stage, seconds in result.timings.items():
        print(f"  {stage:<12} {seconds * 1e3:8.2f} ms")


if __name__ == "__main__":
    main()
