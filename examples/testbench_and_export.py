"""Testbench inference and downstream export.

Run:  python examples/testbench_and_export.py

The paper notes that antenna/oscillating port labels "can be inferred
from the test bench in the input SPICE netlist" (Sec. V-A footnote 2).
This example feeds the pipeline a deck that still contains its
testbench — a sine LO source and a 50 Ω RF port — and shows:

1. port labels inferred from the sources (no designer annotation),
2. Postprocessing II using them to fix LNA/mixer/oscillator confusion,
3. the recognition result exported as ALIGN-style constraints JSON,
   hierarchy JSON, and Graphviz DOT,
4. the constraint lint (`validate_constraints`) passing.
"""

from pathlib import Path

from repro import GanaPipeline
from repro.core.export import constraints_json, graph_dot, hierarchy_dot
from repro.core.testbench import infer_port_labels
from repro.core.validate import validate_constraints
from repro.spice import flatten, parse_netlist

DECK = """
* rf receiver with its testbench: sine LO + 50-ohm antenna port
.global vdd! gnd!

* --- testbench ---
vrf rfsrc 0 sin(0 10m 2.4g)
rport rfsrc rfin 50
vlo lo 0 sin(0 600m 2.3g)
vlob lob 0 sin(0 600m 2.3g)

* --- common-gate lna ---
mlna lnaout vb_lna rfin gnd! nmos w=20u l=60n
llna rfin gnd! 1n
rlna vdd! lnaout 600

* --- single-balanced mixer ---
mrf mxt lnaout gnd! gnd! nmos w=10u l=60n
msw1 ifout lo mxt gnd! nmos w=5u l=60n
msw2 ifn lob mxt gnd! nmos w=5u l=60n
rl1 vdd! ifout 1k
rl2 vdd! ifn 1k
.end
"""


def main() -> None:
    flat = flatten(parse_netlist(DECK))
    inferred = infer_port_labels(flat)
    print("port labels inferred from the testbench:")
    for net, label in sorted(inferred.items()):
        print(f"  {net:<8} -> {label}")

    print("\ntraining RF recognition model ...")
    pipeline = GanaPipeline.pretrained("rf", quick=True)
    result = pipeline.run(DECK, name="rx_with_tb")  # inference is automatic

    print("\nfinal annotation:")
    for device, cls in sorted(result.annotation.element_classes.items()):
        print(f"  {device:<8} {cls}")

    violations = validate_constraints(result.constraints, flat)
    print(f"\nconstraint lint: {len(violations)} violations")

    out = Path("exports")
    out.mkdir(exist_ok=True)
    (out / "constraints.json").write_text(constraints_json(result.constraints))
    (out / "hierarchy.dot").write_text(hierarchy_dot(result.hierarchy))
    (out / "graph.dot").write_text(graph_dot(result.graph, result.annotation))
    print(f"wrote ALIGN-style constraints + DOT renderings to {out}/")
    print("\nconstraints.json preview:")
    print(constraints_json(result.constraints)[:400], "...")


if __name__ == "__main__":
    main()
