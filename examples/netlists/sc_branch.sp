* parasitic-insensitive switched-capacitor branch
msw1 vin phi1 top gnd! nmos w=0.5u l=100n
c1 top bot 0.8p
msw2 bot phi1 gnd! gnd! nmos w=0.5u l=100n
msw3 top phi2 gnd! gnd! nmos w=0.5u l=100n
msw4 bot phi2 vout gnd! nmos w=0.5u l=100n
cint vout gnd! 1p
.end
