* two-level hierarchy: a buffer of two inverters driving a load
.global vdd! gnd!
.subckt inverter in out
mn out in gnd! gnd! nmos w=1u l=100n
mp out in vdd! vdd! pmos w=2u l=100n
.ends
.subckt buffer in out
x1 in mid inverter
x2 mid out inverter
.ends
xbuf a b buffer
rload b gnd! 10k
.end
