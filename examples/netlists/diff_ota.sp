* differential ota (paper fig. 3)
m0 n1 n1 gnd! gnd! nmos w=1u l=100n
m1 id n1 gnd! gnd! nmos w=1u l=100n
m2 voutn vinp id gnd! nmos w=2u l=100n
m3 voutp vinn id gnd! nmos w=2u l=100n
m4 voutn vbp vdd! vdd! pmos w=4u l=100n
m5 voutp vbp vdd! vdd! pmos w=4u l=100n
.end
