* nmos current mirror (paper fig. 2)
m0 d1 d1 s gnd! nmos w=1u l=100n
m1 d2 d1 s gnd! nmos w=1u l=100n
.end
