* current-mirror bank with per-instance multipliers
.global vdd! gnd!
.subckt mirror ref out
m0 ref ref gnd! gnd! nmos w=1u l=100n
m1 out ref gnd! gnd! nmos w=1u l=100n
rdeg out vdd! 2k
.ends
xm0 bias o0 mirror
xm1 bias o1 mirror
xm2 bias o2 mirror m=2
cload o2 gnd! 1p
.end
