* three identical ota cells plus a glue mirror at the top level
.global vdd! gnd!
.subckt otacell vinp vinn voutp voutn
m0 n1 n1 gnd! gnd! nmos w=1u l=100n
m1 id n1 gnd! gnd! nmos w=1u l=100n
m2 voutn vinp id gnd! nmos w=2u l=100n
m3 voutp vinn id gnd! nmos w=2u l=100n
m4 voutn vbp vdd! vdd! pmos w=4u l=100n
m5 voutp vbp vdd! vdd! pmos w=4u l=100n
.ends
x0 a0 b0 c0 d0 otacell
x1 a1 b1 c1 d1 otacell
x2 a2 b2 c2 d2 otacell
mglue ng ng gnd! gnd! nmos w=1u l=100n
.end
