"""The paper's switched-capacitor filter use case, end to end
(Table II row 2 + Fig. 6).

Run:  python examples/switched_cap_filter.py

1. Generates the composite SC-filter testcase (telescopic OTA + bias +
   switch/cap network — ~31 devices / ~22 nets, mirroring the paper's
   32/25).
2. Trains the OTA/bias recognition GCN.
3. Runs the GANA flow and reports the GCN → Post-I accuracy staircase.
4. Feeds the extracted hierarchy to the constraint-aware placer and
   renders the resulting floorplan as ASCII art — the reproduction of
   the Fig. 6 layout demonstration.
"""

from repro import GanaPipeline
from repro.datasets import switched_cap_filter
from repro.layout import place_hierarchy


def render_ascii(layout, width: int = 72) -> str:
    """Coarse character rendering of the placement."""
    outline = layout.outline
    scale_x = (width - 1) / max(outline.width, 1.0)
    height = max(8, int(outline.height * scale_x * 0.5))
    scale_y = (height - 1) / max(outline.height, 1.0)
    canvas = [[" "] * width for _ in range(height)]
    for name, rect in sorted(layout.device_rects.items()):
        tag = name.split("/")[-1][0]
        x0 = int((rect.x - outline.x) * scale_x)
        x1 = max(x0 + 1, int((rect.x2 - outline.x) * scale_x))
        y0 = int((rect.y - outline.y) * scale_y)
        y1 = max(y0 + 1, int((rect.y2 - outline.y) * scale_y))
        for y in range(y0, min(y1, height)):
            for x in range(x0, min(x1, width)):
                canvas[y][x] = tag
    return "\n".join("".join(row) for row in reversed(canvas))


def main() -> None:
    system = switched_cap_filter()
    print(
        f"testcase: {system.name} — {system.n_devices} devices "
        f"(paper: 32 devices, 25 nets)"
    )

    print("training recognition model (~20 s on 300 generated OTAs) ...")
    from repro.gcn import GCNConfig, TrainConfig

    pipeline = GanaPipeline.pretrained(
        "ota",
        quick=True,
        train_size=300,
        model_config=GCNConfig(
            n_classes=2, filter_size=16, channels=(24, 48), fc_size=128, seed=0
        ),
        train_config=TrainConfig(epochs=25, batch_size=8, patience=6, seed=0),
    )

    result = pipeline.run(
        system.circuit, port_labels=system.port_labels, name=system.name
    )
    truth = system.truth(result.graph)
    accs = result.accuracies(truth)
    print(
        f"\naccuracy: GCN {accs['gcn']:.1%}  ->  Post-I {accs['post1']:.1%}"
        f"   (paper: 98.2% -> 100%)"
    )

    print("\nhierarchy:")
    print(result.hierarchy.render())

    layout = place_hierarchy(result.hierarchy, system.circuit)
    layout.verify()
    print(f"\n{layout.summary()}  — constraints verified (no overlap, exact symmetry)")

    from repro.layout import AnnealConfig, anneal_placement, total_wirelength

    initial = total_wirelength(layout, system.circuit)
    annealed = anneal_placement(
        result.hierarchy, system.circuit, AnnealConfig(steps=250)
    )
    annealed.layout.verify()
    print(
        f"wirelength: {initial:.1f} -> {annealed.final_cost:.1f} units "
        f"after annealing ({annealed.improvement:.1%} shorter, constraints intact)"
    )
    layout = annealed.layout

    print("\nfloorplan (m=transistor, c=cap, r=resistor; per-device tags):")
    print(render_ascii(layout))


if __name__ == "__main__":
    main()
