"""Extending GANA: user primitives, custom training data, hyperopt.

Run:  python examples/custom_primitives_and_training.py

The paper stresses that "the primitives are specified as SPICE
netlists, enabling a user to easily add new primitives to the library"
and that designers extend the training set in SPICE.  This example
does both:

1. registers a new primitive (a source-degenerated current mirror)
   with its own matching constraint, and finds it in a circuit;
2. builds a small custom labeled dataset from SPICE text and trains a
   recognition model on it;
3. runs the paper's random-search hyperparameter optimization over
   learning rate / regularization / decay / filter size (Sec. V-A).
"""

from repro.core.constraints import Constraint, ConstraintKind
from repro.datasets import build_samples, generate_ota_bias_dataset
from repro.gcn import GCNConfig, GCNModel, TrainConfig, evaluate, train
from repro.gcn.hyperopt import SearchSpace, random_search
from repro.gcn.samples import train_validation_split
from repro.graph import CircuitGraph
from repro.primitives import annotate_primitives, default_library
from repro.spice import flatten, parse_netlist

DEGENERATED_MIRROR = """
.subckt cm_deg ref out s
m1 ref ref x1 gnd! nmos
m2 out ref x2 gnd! nmos
r1 x1 s 1k
r2 x2 s 1k
.ends
"""

TARGET = """
* a mirror with source-degeneration resistors
m1 vb vb n1 gnd! nmos
m2 iout vb n2 gnd! nmos
r1 n1 gnd! 2k
r2 n2 gnd! 2k
iref vdd! vb 10u
.end
"""


def demo_custom_primitive() -> None:
    library = default_library()
    library.add_spice(
        "CM-DEG",
        DEGENERATED_MIRROR,
        constraints=(
            Constraint(ConstraintKind.MATCHING, ("m1", "m2"), source="CM-DEG"),
            Constraint(ConstraintKind.MATCHING, ("r1", "r2"), source="CM-DEG"),
        ),
        port_roles=(("s", "power"),),
    )
    graph = CircuitGraph.from_circuit(flatten(parse_netlist(TARGET)))
    result = annotate_primitives(graph, library)
    print("matches in the degenerated-mirror circuit:")
    for match in result.matches:
        print(f"  {match.describe()}")
        for constraint in match.constraints:
            print(f"    constraint: {constraint.kind.value} {constraint.members}")


def demo_training_and_hyperopt() -> None:
    print("\nbuilding a small OTA dataset and training from scratch ...")
    dataset = generate_ota_bias_dataset(48, seed="example")
    samples = build_samples(dataset, ("ota", "bias"), levels=2)
    train_set, val_set = train_validation_split(samples, 0.2, seed=0)

    config = GCNConfig(
        n_classes=2, filter_size=8, channels=(16, 32), fc_size=64, seed=0
    )
    model = GCNModel(config)
    history = train(
        model, train_set, val_set, TrainConfig(epochs=10, patience=0)
    )
    print(
        f"  trained {model.n_parameters()} parameters; "
        f"val accuracy {evaluate(model, val_set):.1%} "
        f"(best epoch {history.best_epoch})"
    )

    print("\nrandom-search hyperparameter optimization (4 trials) ...")
    search = random_search(
        config,
        TrainConfig(epochs=6, patience=0),
        train_set,
        val_set,
        n_trials=4,
        space=SearchSpace(filter_size=(4, 8, 16)),
        seed=7,
    )
    for i, trial in enumerate(search.trials):
        print(
            f"  trial {i}: lr={trial.train_config.lr:.2e} "
            f"wd={trial.train_config.weight_decay:.1e} "
            f"K={trial.model_config.filter_size:<3} "
            f"dropout={trial.model_config.dropout:.1f} "
            f"-> val {trial.val_accuracy:.1%}"
        )
    best = search.best
    print(
        f"  best: K={best.model_config.filter_size}, "
        f"lr={best.train_config.lr:.2e} ({best.val_accuracy:.1%})"
    )


if __name__ == "__main__":
    demo_custom_primitive()
    demo_training_and_hyperopt()
