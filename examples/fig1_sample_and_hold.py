"""Fig. 1 walk-through: the sample-and-hold hierarchy tree.

Run:  python examples/fig1_sample_and_hold.py

The paper's Fig. 1 decomposes a switched-capacitor sample-and-hold into
a hierarchy: the SH-SC system on top, the OTA and switched-capacitor
network below it, primitives (DP, CM, CMF-SC, switches, caps) below
those — with the bias current reference *contained inside* the OTA's
subtree.  This example reproduces that picture end to end:

1. generate the Fig. 1-style testcase (fully differential OTA with
   SC-CMFB inside a switch/cap sampling network),
2. recognize it with a trained GCN + postprocessing,
3. nest the bias network under the OTA it serves (the paper's
   "some sub-blocks could be contained in others"),
4. print the resulting multi-level hierarchy tree — our rendering of
   Fig. 1(b) — along with the constraint set.
"""

from repro import GanaPipeline
from repro.core.systems import nest_support_blocks
from repro.datasets import sample_and_hold
from repro.gcn import GCNConfig, TrainConfig


def main() -> None:
    system = sample_and_hold()
    print(
        f"testcase: {system.name} — {system.n_devices} devices "
        "(the Fig. 1 sample-and-hold)"
    )

    print("training recognition model (~20 s) ...")
    pipeline = GanaPipeline.pretrained(
        "ota",
        quick=True,
        train_size=300,
        model_config=GCNConfig(
            n_classes=2, filter_size=16, channels=(24, 48), fc_size=128, seed=0
        ),
        train_config=TrainConfig(epochs=25, batch_size=8, patience=6, seed=0),
    )

    result = pipeline.run(
        system.circuit, port_labels=system.port_labels, name="SH-SC"
    )
    truth = system.truth(result.graph)
    accs = result.accuracies(truth)
    print(f"\naccuracy: GCN {accs['gcn']:.1%} -> Post-I {accs['post1']:.1%}")

    moves = nest_support_blocks(result.hierarchy, result.graph)
    for child, parent in moves:
        print(f"nested {child} inside {parent} (Fig. 1's containment)")

    print("\nhierarchy tree (compare with Fig. 1(b)):")
    print(result.hierarchy.render())

    print(f"\ntree depth: {result.hierarchy.depth} levels "
          "(system -> sub-block -> [nested sub-block] -> primitive)")
    print(f"constraints: {len(result.constraints)} "
          "(symmetry / matching / common-centroid)")


if __name__ == "__main__":
    main()
