"""Normalized graph Laplacians and their spectra (Sec. III-A, Eq. 1).

The GCN's spectral filters are polynomials in the rescaled normalized
Laplacian ``L̂ = 2 L / λmax − I``.  Isolated vertices (degree 0) get a
zero row in the normalized adjacency so their Laplacian diagonal is 1,
the standard convention that keeps L positive semidefinite with
eigenvalues in [0, 2].
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.runtime.cache import Memo

#: Per-matrix λmax memo (identity-keyed, weakref-guarded): repeated
#: ``rescaled_laplacian``/``largest_eigenvalue(exact=True)`` calls on
#: the same Laplacian object — every training epoch rebuilds the same
#: filter stack — pay for Lanczos once.
_LMAX_MEMO = Memo()


def normalized_laplacian(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """``L = I − D^{-1/2} A D^{-1/2}`` (Eq. 1).

    Accepts any scipy sparse adjacency; returns CSR.  Degree-zero
    vertices contribute an identity row.
    """
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    n = adjacency.shape[0]
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degrees)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    d_inv_sqrt = sp.diags(inv_sqrt)
    identity = sp.identity(n, format="csr", dtype=np.float64)
    return sp.csr_matrix(identity - d_inv_sqrt @ adjacency @ d_inv_sqrt)


def largest_eigenvalue(laplacian: sp.spmatrix, exact: bool = False) -> float:
    """λmax of a normalized Laplacian.

    For normalized Laplacians λmax ≤ 2 always holds, and the Chebyshev
    rescaling only needs an upper bound, so the default returns 2.0
    (Defferrard's choice; also what the paper's TensorFlow code used).
    Set ``exact=True`` to compute it with Lanczos via ARPACK — the
    "computed inexpensively using the Lanczos algorithm" path of
    Sec. III-A.  The exact value is memoized per Laplacian *object*
    (identity-keyed, entries dying with the matrix), so repeated calls
    on the same adjacency never re-run the iteration.  Callers that
    mutate a matrix in place must pass a fresh object.
    """
    if not exact:
        return 2.0
    return _LMAX_MEMO.get_or_build(laplacian, _lanczos_lmax)


def _lanczos_lmax(laplacian: sp.spmatrix) -> float:
    n = laplacian.shape[0]
    if n <= 2:
        dense = laplacian.toarray()
        return float(np.linalg.eigvalsh(dense).max())
    value = spla.eigsh(
        laplacian.asfptype(), k=1, which="LM", return_eigenvectors=False
    )
    return float(value[0])


def rescaled_laplacian(
    laplacian: sp.spmatrix, lmax: float | None = None
) -> sp.csr_matrix:
    """``L̂ = 2 L / λmax − I`` so the spectrum lands in [−1, 1] (Eq. 3)."""
    laplacian = sp.csr_matrix(laplacian, dtype=np.float64)
    if lmax is None:
        lmax = largest_eigenvalue(laplacian)
    if lmax <= 0:
        raise ValueError(f"λmax must be positive, got {lmax}")
    n = laplacian.shape[0]
    identity = sp.identity(n, format="csr", dtype=np.float64)
    return sp.csr_matrix(laplacian * (2.0 / lmax) - identity)


def laplacian_spectrum(adjacency: sp.spmatrix) -> np.ndarray:
    """All eigenvalues ("frequencies of the graph") of the normalized
    Laplacian, ascending.  Dense computation — for tests and small
    graphs only."""
    lap = normalized_laplacian(adjacency).toarray()
    return np.linalg.eigvalsh(lap)


def fourier_basis(adjacency: sp.spmatrix) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition ``L = U Λ Uᵀ`` of the normalized Laplacian.

    Returns ``(eigenvalues, U)``; the graph Fourier transform of a
    signal x is ``Uᵀ x``.  Dense — for validation, not for training.
    """
    lap = normalized_laplacian(adjacency).toarray()
    eigenvalues, u = np.linalg.eigh(lap)
    return eigenvalues, u
