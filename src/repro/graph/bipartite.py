"""Bipartite circuit-graph representation (Sec. II-C).

A flat circuit becomes an undirected bipartite graph ``G(V, E)`` with
``V = Ve ∪ Vn``: element vertices (transistors and passives) and net
vertices.  Each transistor edge carries the paper's 3-bit label
``lg ls ld`` — bit set when the transistor touches that net through its
gate / source / drain.  A transistor that touches one net through two
terminals gets the OR of the bits on a single edge (e.g. a
diode-connected device has a ``101`` edge).  Passive edges are
unlabeled (label 0).

Body terminals are excluded from the edge set, matching the paper's
figures ("body connections are not shown"); bulk nets are almost always
power rails and would only blur the spectral filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphConstructionError
from repro.spice.netlist import Circuit, Device, is_power_net

#: Bit positions of the 3-bit edge label ``lg ls ld`` (gate is the MSB).
GATE_BIT = 0b100
SOURCE_BIT = 0b010
DRAIN_BIT = 0b001

_TERMINAL_BITS = {"g": GATE_BIT, "s": SOURCE_BIT, "d": DRAIN_BIT}


@dataclass(frozen=True)
class Edge:
    """An undirected element–net edge with its 3-bit label."""

    element: int  # element vertex index (0-based within elements)
    net: int  # net vertex index (0-based within nets)
    label: int  # 0..7; 0 for passives

    def __post_init__(self) -> None:
        if not 0 <= self.label <= 7:
            raise GraphConstructionError(f"edge label out of range: {self.label}")


@dataclass
class CircuitGraph:
    """The bipartite element/net graph of a flat circuit.

    Vertex numbering: elements occupy indices ``0 .. n_elements-1`` and
    nets occupy ``n_elements .. n_vertices-1``.  This global numbering
    is what the Laplacian, features, and GCN all use.
    """

    circuit: Circuit
    elements: list[Device]
    nets: list[str]
    edges: list[Edge]
    net_index: dict[str, int] = field(default_factory=dict)
    element_index: dict[str, int] = field(default_factory=dict)

    # -- construction -------------------------------------------------

    @classmethod
    def from_circuit(
        cls, circuit: Circuit, include_sources: bool = False
    ) -> "CircuitGraph":
        """Build the bipartite graph of a flat circuit.

        ``include_sources`` controls whether V/I source cards become
        element vertices; by default they are treated as testbench and
        skipped (their nets still appear if other devices touch them).
        """
        if not circuit.is_flat():
            raise GraphConstructionError(
                f"circuit {circuit.name!r} still has subcircuit instances; "
                "flatten() it first"
            )
        elements = [
            d
            for d in circuit.devices
            if include_sources or not d.kind.is_source
        ]
        nets: list[str] = []
        net_index: dict[str, int] = {}
        for dev in elements:
            for term, net in dev.pins:
                if dev.kind.is_transistor and term == "b":
                    continue
                if net not in net_index:
                    net_index[net] = len(nets)
                    nets.append(net)
        # Ports with no device connection still deserve vertices so that
        # annotation covers every declared net.
        for port in circuit.ports:
            if port not in net_index:
                net_index[port] = len(nets)
                nets.append(port)

        edges: list[Edge] = []
        for idx, dev in enumerate(elements):
            labels: dict[int, int] = {}
            for term, net in dev.pins:
                if dev.kind.is_transistor:
                    if term == "b":
                        continue
                    bit = _TERMINAL_BITS[term]
                else:
                    bit = 0
                nid = net_index[net]
                labels[nid] = labels.get(nid, 0) | bit
            for nid, label in labels.items():
                edges.append(Edge(element=idx, net=nid, label=label))

        element_index = {d.name: i for i, d in enumerate(elements)}
        if len(element_index) != len(elements):
            raise GraphConstructionError("duplicate device names in circuit")
        return cls(
            circuit=circuit,
            elements=elements,
            nets=nets,
            edges=edges,
            net_index=net_index,
            element_index=element_index,
        )

    # -- sizes and vertex bookkeeping ---------------------------------

    @property
    def n_elements(self) -> int:
        return len(self.elements)

    @property
    def n_nets(self) -> int:
        return len(self.nets)

    @property
    def n_vertices(self) -> int:
        return self.n_elements + self.n_nets

    def net_vertex(self, net: str) -> int:
        """Global vertex index of a net name."""
        return self.n_elements + self.net_index[net]

    def element_vertex(self, name: str) -> int:
        """Global vertex index of a device name."""
        return self.element_index[name]

    def vertex_name(self, vertex: int) -> str:
        """Device or net name of a global vertex index."""
        if vertex < self.n_elements:
            return self.elements[vertex].name
        return self.nets[vertex - self.n_elements]

    def is_element_vertex(self, vertex: int) -> bool:
        return vertex < self.n_elements

    def element_of(self, vertex: int) -> Device:
        """The device behind an element vertex."""
        if not self.is_element_vertex(vertex):
            raise IndexError(f"vertex {vertex} is a net vertex")
        return self.elements[vertex]

    # -- matrices ------------------------------------------------------

    def adjacency(self) -> sp.csr_matrix:
        """Unweighted symmetric adjacency over all vertices."""
        n = self.n_vertices
        rows, cols = [], []
        for edge in self.edges:
            u = edge.element
            v = self.n_elements + edge.net
            rows.extend((u, v))
            cols.extend((v, u))
        data = np.ones(len(rows), dtype=np.float64)
        return sp.csr_matrix((data, (rows, cols)), shape=(n, n))

    def edge_label(self, element: int, net: int) -> int | None:
        """3-bit label between an element vertex and a net (local index).

        Returns None when there is no such edge.  O(E) lookup is fine at
        the scales this package works at; hot paths use adjacency lists.
        """
        for edge in self.edges:
            if edge.element == element and edge.net == net:
                return edge.label
        return None

    def neighbors(self) -> list[list[tuple[int, int]]]:
        """Adjacency list over global indices: vertex -> [(other, label)]."""
        adj: list[list[tuple[int, int]]] = [[] for _ in range(self.n_vertices)]
        for edge in self.edges:
            u = edge.element
            v = self.n_elements + edge.net
            adj[u].append((v, edge.label))
            adj[v].append((u, edge.label))
        return adj

    def degrees(self) -> np.ndarray:
        """Vertex degrees (global numbering)."""
        deg = np.zeros(self.n_vertices, dtype=np.int64)
        for edge in self.edges:
            deg[edge.element] += 1
            deg[self.n_elements + edge.net] += 1
        return deg

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(element, net, label)`` int64 arrays over all edges.

        Cached on first use (the edge list never changes after
        construction); these feed the vectorized postprocessing scans,
        which turn per-edge Python predicates into numpy masks.
        """
        cached = getattr(self, "_edge_arrays", None)
        if cached is not None and len(cached[0]) == len(self.edges):
            return cached
        n = len(self.edges)
        element = np.fromiter(
            (e.element for e in self.edges), dtype=np.int64, count=n
        )
        net = np.fromiter((e.net for e in self.edges), dtype=np.int64, count=n)
        label = np.fromiter(
            (e.label for e in self.edges), dtype=np.int64, count=n
        )
        self._edge_arrays = (element, net, label)
        return self._edge_arrays

    def element_edge_lists(self) -> list[list[Edge]]:
        """Per-element incident edge lists, cached on first use."""
        cached = getattr(self, "_element_edges", None)
        if cached is not None and len(cached) == self.n_elements:
            return cached
        lists: list[list[Edge]] = [[] for _ in range(self.n_elements)]
        for edge in self.edges:
            lists[edge.element].append(edge)
        self._element_edges = lists
        return lists

    # -- derived views -------------------------------------------------

    def power_net_vertices(self) -> set[int]:
        """Global vertex indices of supply/ground nets."""
        return {
            self.n_elements + i
            for i, net in enumerate(self.nets)
            if is_power_net(net)
        }

    def transistor_vertices(self) -> list[int]:
        """Global indices of NMOS/PMOS element vertices."""
        return [
            i for i, dev in enumerate(self.elements) if dev.kind.is_transistor
        ]

    def subgraph_of_elements(self, element_indices: set[int]) -> "CircuitGraph":
        """Graph induced by a subset of elements (nets pruned to touched)."""
        devices = [self.elements[i] for i in sorted(element_indices)]
        sub = Circuit(name=f"{self.circuit.name}_sub", devices=devices)
        return CircuitGraph.from_circuit(sub)

    def summary(self) -> str:
        """One-line description, e.g. for logging."""
        return (
            f"CircuitGraph({self.circuit.name}: {self.n_elements} elements, "
            f"{self.n_nets} nets, {len(self.edges)} edges)"
        )
