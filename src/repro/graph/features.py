"""The 18 vertex features of Sec. V-A.

Per the paper, every graph vertex carries 18 features:

* **12 element features** — element-kind one-hot over {NMOS, PMOS,
  resistor, capacitor, inductor, voltage reference, current reference,
  hierarchical block} (8 slots), the hierarchy level of the vertex
  (1 slot, normalized), and a {low, medium, high} value bucket one-hot
  (3 slots).  The value bucket is what lets the GCN tell, e.g., a DC-DC
  converter's big flying caps from a filter's small ones.
* **5 net features** — net-type one-hot over {input, output, bias,
  supply, ground}.
* **1 edge feature** — a scalar summarizing the 3-bit terminal labels
  incident on a transistor vertex (diode-connected and cross-coupled
  devices get distinctive values).

Element vertices carry zeros in the net slots and vice versa.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import CircuitGraph
from repro.spice.flatten import instance_path
from repro.spice.netlist import Device, DeviceKind, is_ground_net, is_supply_net

N_FEATURES = 18

# Element-kind slots (8).
_KIND_SLOT: dict[DeviceKind, int] = {
    DeviceKind.NMOS: 0,
    DeviceKind.PMOS: 1,
    DeviceKind.RESISTOR: 2,
    DeviceKind.CAPACITOR: 3,
    DeviceKind.INDUCTOR: 4,
    DeviceKind.VSOURCE: 5,  # voltage reference
    DeviceKind.ISOURCE: 6,  # current reference
}
_HIER_SLOT = 7  # hierarchical-block kind (unused for leaf devices)
_LEVEL_SLOT = 8
_VALUE_SLOTS = (9, 10, 11)  # low / medium / high

# Net-type slots (5), offset from the element block.
_NET_BASE = 12


class NetRole(enum.Enum):
    """Net types the paper distinguishes."""

    INPUT = 0
    OUTPUT = 1
    BIAS = 2
    SUPPLY = 3
    GROUND = 4
    INTERNAL = None  # internal nets carry no net-type one-hot

    @property
    def slot(self) -> int | None:
        return None if self.value is None else _NET_BASE + self.value


_EDGE_SLOT = 17


@dataclass(frozen=True)
class ValueBuckets:
    """(low, high) thresholds per device kind; between them is medium."""

    mos_w: tuple[float, float] = (1e-6, 10e-6)
    resistor: tuple[float, float] = (1e3, 100e3)
    capacitor: tuple[float, float] = (100e-15, 10e-12)
    inductor: tuple[float, float] = (1e-9, 10e-9)

    def bucket(self, dev: Device) -> int:
        """0 = low, 1 = medium, 2 = high."""
        if dev.kind.is_transistor:
            value = dev.param("w", 1e-6) or 1e-6
            low, high = self.mos_w
        elif dev.kind is DeviceKind.RESISTOR:
            value, (low, high) = dev.value or 0.0, self.resistor
        elif dev.kind is DeviceKind.CAPACITOR:
            value, (low, high) = dev.value or 0.0, self.capacitor
        elif dev.kind is DeviceKind.INDUCTOR:
            value, (low, high) = dev.value or 0.0, self.inductor
        else:
            return 1
        if value < low:
            return 0
        if value >= high:
            return 2
        return 1


_INPUT_NAMES = ("vin", "inp", "inn", "in", "rfin", "ant", "lo", "clk", "vi")
_OUTPUT_NAMES = ("vout", "out", "outp", "outn", "ifout", "vo")
_BIAS_NAMES = ("vb", "bias", "ib", "vbn", "vbp", "vref", "iref", "vcm")


def infer_net_role(
    net: str, ports: tuple[str, ...], overrides: dict[str, NetRole] | None = None
) -> NetRole:
    """Classify a net as input/output/bias/supply/ground/internal.

    ``overrides`` lets testbench/designer annotations win (this is the
    hook Postprocessing II uses for antenna/oscillating port labels).
    Otherwise supply/ground are recognized by name anywhere, while
    input/output/bias classification applies to ports only, by common
    naming conventions.
    """
    if overrides and net in overrides:
        return overrides[net]
    if is_supply_net(net):
        return NetRole.SUPPLY
    if is_ground_net(net):
        return NetRole.GROUND
    if net not in ports:
        # Heuristic: internal bias-distribution nets named like bias nets
        # still count as bias; everything else is internal.
        leaf = instance_path(net)[-1]
        if any(leaf.startswith(p) for p in _BIAS_NAMES):
            return NetRole.BIAS
        return NetRole.INTERNAL
    leaf = instance_path(net)[-1]
    if any(leaf.startswith(p) for p in _BIAS_NAMES):
        return NetRole.BIAS
    if any(leaf.startswith(p) for p in _INPUT_NAMES):
        return NetRole.INPUT
    if any(leaf.startswith(p) for p in _OUTPUT_NAMES):
        return NetRole.OUTPUT
    return NetRole.INTERNAL


def _edge_pattern_feature(graph: CircuitGraph, element: int) -> float:
    """Scalar encoding of the incident 3-bit edge labels (Sec. II-C).

    Distinguishes plain devices (three distinct single-bit edges,
    value ≈ 0.33) from diode-connected (a combined gate+drain edge) and
    other merged-terminal shapes.  The encoding sums the label values of
    incident edges and normalizes by the maximum possible (7).
    """
    labels = [e.label for e in graph.edges if e.element == element]
    if not labels:
        return 0.0
    merged = max(labels)  # a combined-terminal edge dominates
    return merged / 7.0


def feature_matrix(
    graph: CircuitGraph,
    net_roles: dict[str, NetRole] | None = None,
    buckets: ValueBuckets | None = None,
) -> np.ndarray:
    """Build the (n_vertices, 18) feature matrix for a circuit graph.

    ``net_roles`` optionally overrides the inferred role of specific
    nets.  Hierarchy level is derived from the flattened instance path
    depth, normalized by the deepest path in the circuit.
    """
    buckets = buckets or ValueBuckets()
    n = graph.n_vertices
    features = np.zeros((n, N_FEATURES), dtype=np.float64)

    max_depth = 1
    for dev in graph.elements:
        max_depth = max(max_depth, len(instance_path(dev.name)))

    # Pre-index incident labels once (avoids O(V*E) rescans).
    incident: list[list[int]] = [[] for _ in range(graph.n_elements)]
    for edge in graph.edges:
        incident[edge.element].append(edge.label)

    for i, dev in enumerate(graph.elements):
        slot = _KIND_SLOT.get(dev.kind)
        if slot is not None:
            features[i, slot] = 1.0
        depth = len(instance_path(dev.name))
        if depth > 1:
            features[i, _HIER_SLOT] = 1.0
        features[i, _LEVEL_SLOT] = depth / max_depth
        features[i, _VALUE_SLOTS[buckets.bucket(dev)]] = 1.0
        if dev.kind.is_transistor and incident[i]:
            features[i, _EDGE_SLOT] = max(incident[i]) / 7.0

    ports = graph.circuit.ports
    for j, net in enumerate(graph.nets):
        vertex = graph.n_elements + j
        role = infer_net_role(net, ports, net_roles)
        if role.slot is not None:
            features[vertex, role.slot] = 1.0

    return features


def feature_names() -> list[str]:
    """Human-readable names of the 18 feature slots, in order."""
    return [
        "elem:nmos",
        "elem:pmos",
        "elem:resistor",
        "elem:capacitor",
        "elem:inductor",
        "elem:vref",
        "elem:iref",
        "elem:hier_block",
        "elem:hier_level",
        "elem:value_low",
        "elem:value_med",
        "elem:value_high",
        "net:input",
        "net:output",
        "net:bias",
        "net:supply",
        "net:ground",
        "elem:edge_pattern",
    ]
