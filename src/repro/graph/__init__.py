"""Graph substrate: bipartite circuit graphs, features, Laplacians, CCC."""

from repro.graph.bipartite import (
    DRAIN_BIT,
    GATE_BIT,
    SOURCE_BIT,
    CircuitGraph,
    Edge,
)
from repro.graph.ccc import CCCPartition, channel_connected_components
from repro.graph.features import (
    N_FEATURES,
    NetRole,
    ValueBuckets,
    feature_matrix,
    feature_names,
    infer_net_role,
)
from repro.graph.laplacian import (
    fourier_basis,
    laplacian_spectrum,
    largest_eigenvalue,
    normalized_laplacian,
    rescaled_laplacian,
)

__all__ = [
    "CCCPartition",
    "CircuitGraph",
    "DRAIN_BIT",
    "Edge",
    "GATE_BIT",
    "N_FEATURES",
    "NetRole",
    "SOURCE_BIT",
    "ValueBuckets",
    "channel_connected_components",
    "feature_matrix",
    "feature_names",
    "fourier_basis",
    "infer_net_role",
    "laplacian_spectrum",
    "largest_eigenvalue",
    "normalized_laplacian",
    "rescaled_laplacian",
]
