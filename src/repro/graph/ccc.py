"""Channel-connected components (Postprocessing I, Sec. V-A).

The paper (footnote 1): *"A channel-connected component is a cluster of
transistors connected at the sources and drains (not counting
connections to supply and ground nodes). It can be identified using
simple linear-time graph traversal schemes."*

:func:`channel_connected_components` implements exactly that with a
union–find over transistor elements; passives and nets are then
assigned to the CCC they touch, which is what the postprocessing vote
operates on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.graph.bipartite import DRAIN_BIT, SOURCE_BIT, CircuitGraph
from repro.spice.netlist import is_power_net


class _UnionFind:
    """Array-based union–find with path halving; effectively linear."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


@dataclass
class CCCPartition:
    """The channel-connected decomposition of a circuit graph.

    ``components`` lists element-index sets (transistors plus absorbed
    passives); ``of_element`` maps element index → component id;
    ``of_net`` maps local net index → set of component ids touching it
    (a net can border several CCCs).
    """

    components: list[set[int]]
    of_element: dict[int, int]
    of_net: dict[int, set[int]]

    @property
    def n_components(self) -> int:
        return len(self.components)

    def component_of(self, element: int) -> int | None:
        return self.of_element.get(element)


def channel_connected_components(graph: CircuitGraph) -> CCCPartition:
    """Partition elements into channel-connected components.

    Two transistors are channel-connected when a source or drain of one
    shares a non-power net with a source or drain of the other.
    Passives join the component their nets touch (ties broken toward
    the lowest component id); a passive touching no transistor CCC
    becomes its own singleton component — that is how stand-alone
    passive structures (e.g. input-buffer RC) separate out.
    """
    uf = _UnionFind(graph.n_elements)
    power = {
        net_local
        for net_local, net in enumerate(graph.nets)
        if is_power_net(net)
    }

    # nets (local index) -> transistors whose source/drain touch them
    ds_on_net: dict[int, list[int]] = defaultdict(list)
    for edge in graph.edges:
        dev = graph.elements[edge.element]
        if not dev.kind.is_transistor or edge.net in power:
            continue
        if edge.label & (SOURCE_BIT | DRAIN_BIT):
            ds_on_net[edge.net].append(edge.element)

    for members in ds_on_net.values():
        first = members[0]
        for other in members[1:]:
            uf.union(first, other)

    # Collect transistor components.
    root_to_id: dict[int, int] = {}
    components: list[set[int]] = []
    of_element: dict[int, int] = {}
    for idx, dev in enumerate(graph.elements):
        if not dev.kind.is_transistor:
            continue
        root = uf.find(idx)
        if root not in root_to_id:
            root_to_id[root] = len(components)
            components.append(set())
        cid = root_to_id[root]
        components[cid].add(idx)
        of_element[idx] = cid

    # Net -> component adjacency (all terminals count here, including
    # gates: a gate net inside one CCC driven by another is exactly the
    # boundary case the paper allows to belong to multiple sub-blocks).
    of_net: dict[int, set[int]] = defaultdict(set)
    for edge in graph.edges:
        cid = of_element.get(edge.element)
        if cid is not None:
            of_net[edge.net].add(cid)

    # Passives: join a touching component, else become singletons.
    # Power nets never bind a passive to a component — a load cap to
    # ground must not join whichever component also touches ground.
    edges_of: dict[int, list] = defaultdict(list)
    for edge in graph.edges:
        edges_of[edge.element].append(edge)
    for idx, dev in enumerate(graph.elements):
        if dev.kind.is_transistor:
            continue
        touching: set[int] = set()
        for edge in edges_of.get(idx, ()):
            if edge.net not in power:
                touching |= of_net.get(edge.net, set())
        if touching:
            cid = min(touching)
        else:
            cid = len(components)
            components.append(set())
        components[cid].add(idx)
        of_element[idx] = cid

    # Refresh net adjacency now that passives are placed.
    of_net = defaultdict(set)
    for edge in graph.edges:
        cid = of_element.get(edge.element)
        if cid is not None:
            of_net[edge.net].add(cid)

    return CCCPartition(
        components=components, of_element=of_element, of_net=dict(of_net)
    )
