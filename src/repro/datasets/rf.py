"""Parametric RF block and receiver generators (the "RF data" dataset).

Generates LNAs, mixers, and oscillators in several topology families
each, plus band-pass filters, buffers and inverter amplifiers for the
phased-array system, and assembles them into receivers "that combine
various LNAs, mixers, and oscillators" as the paper's RF test set does.

Block boundaries are gate-coupled (blocks exchange signals through
transistor gates, never through shared source/drain nets), so each
block is its own channel-connected component — the structure
Postprocessing I and II exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.components import GND, VDD, CircuitBuilder, LabeledCircuit
from repro.exceptions import DatasetError
from repro.utils.rng import seeded_rng

RF_CLASSES = ("lna", "mixer", "osc")
#: Extended vocabulary for system-level testcases (phased array).
RF_EXTENDED_CLASSES = ("lna", "mixer", "osc", "bpf", "buf", "inv")

#: "tuned" variants put LC tanks inside LNAs and mixers — the
#: structural ambiguity that keeps tank-spotting from being a shortcut
#: for the oscillator class.
LNA_TOPOLOGIES = (
    "inductive_degeneration",
    "common_gate",
    "shunt_feedback",
    "tuned_cs",
    "differential",
)
MIXER_TOPOLOGIES = ("single_balanced", "double_balanced", "tuned_single_balanced")
OSC_TOPOLOGIES = ("lc_nmos", "lc_cmos", "ring", "colpitts")


# ---------------------------------------------------------------------------
# Individual blocks.  Each *_into function adds one block to a builder,
# wiring it between the given nets, and labels every device.
# ---------------------------------------------------------------------------


def add_lna(
    b: CircuitBuilder,
    *,
    rf_in: str,
    rf_out: str,
    topology: str = "inductive_degeneration",
    stages: int = 1,
    prefix: str = "",
    rng=None,
    label: str = "lna",
) -> None:
    """Low-noise amplifier between ``rf_in`` and ``rf_out``."""
    rng = rng if rng is not None else seeded_rng(("lna", prefix))
    if topology not in LNA_TOPOLOGIES:
        raise DatasetError(f"unknown LNA topology {topology!r}")
    current_in = rf_in
    for stage in range(stages):
        out = rf_out if stage == stages - 1 else f"{prefix}lna_s{stage}"
        if topology == "inductive_degeneration":
            gate = f"{prefix}lg{stage}"
            src = f"{prefix}ls{stage}"
            b.inductor(p=current_in, n=gate, value=2e-9, label=label)
            b.inductor(p=src, n=GND, value=0.5e-9, label=label)
            cas = f"{prefix}lc{stage}"
            b.nmos(b.fresh(f"{prefix}mlna"), d=cas, g=gate, s=src, label=label)
            b.nmos(
                b.fresh(f"{prefix}mlna"), d=out, g="vb_lna", s=cas, label=label
            )
            b.inductor(p=VDD, n=out, value=3e-9, label=label)
        elif topology == "common_gate":
            b.nmos(
                b.fresh(f"{prefix}mlna"), d=out, g="vb_lna", s=current_in,
                label=label,
            )
            b.inductor(p=current_in, n=GND, value=1e-9, label=label)
            b.resistor(p=VDD, n=out, value=600.0, label=label)
        elif topology == "shunt_feedback":
            b.nmos(
                b.fresh(f"{prefix}mlna"), d=out, g=current_in, s=GND, label=label
            )
            b.resistor(p=current_in, n=out, value=20e3, label=label)
            b.resistor(p=VDD, n=out, value=1e3, label=label)
        elif topology == "tuned_cs":  # CS stage with an LC-tank load
            b.nmos(
                b.fresh(f"{prefix}mlna"), d=out, g=current_in, s=GND, label=label
            )
            b.inductor(p=VDD, n=out, value=3e-9, label=label)
            b.capacitor(p=VDD, n=out, value=0.5e-12, label=label)
        else:  # differential: DP with degeneration + tank loads
            outn = f"{prefix}lnan{stage}"
            tail = f"{prefix}lnat{stage}"
            b.nmos(
                b.fresh(f"{prefix}mlna"), d=out, g=current_in, s=tail, label=label
            )
            b.nmos(
                b.fresh(f"{prefix}mlna"), d=outn, g="vcm_lna", s=tail, label=label
            )
            b.inductor(p=tail, n=GND, value=0.5e-9, label=label)
            b.inductor(p=VDD, n=out, value=3e-9, label=label)
            b.inductor(p=VDD, n=outn, value=3e-9, label=label)
        current_in = out


def add_mixer(
    b: CircuitBuilder,
    *,
    rf_in: str,
    lo: str,
    lo_bar: str | None,
    if_out: str,
    topology: str = "single_balanced",
    prefix: str = "",
    rng=None,
    label: str = "mixer",
) -> None:
    """Active mixer: RF transconductor + LO switching quad + IF loads."""
    rng = rng if rng is not None else seeded_rng(("mixer", prefix))
    if topology not in MIXER_TOPOLOGIES:
        raise DatasetError(f"unknown mixer topology {topology!r}")
    lo_bar = lo_bar or lo
    if_bar = f"{prefix}ifn"
    if topology in ("single_balanced", "tuned_single_balanced"):
        tail = f"{prefix}mx_t"
        b.nmos(b.fresh(f"{prefix}mmx"), d=tail, g=rf_in, s=GND, label=label)
        b.nmos(b.fresh(f"{prefix}mmx"), d=if_out, g=lo, s=tail, label=label)
        b.nmos(b.fresh(f"{prefix}mmx"), d=if_bar, g=lo_bar, s=tail, label=label)
        if topology == "tuned_single_balanced":
            # Tank IF loads: an LC tank inside a *mixer*.
            b.inductor(p=VDD, n=if_out, value=4e-9, label=label)
            b.capacitor(p=VDD, n=if_out, value=1e-12, label=label)
            b.inductor(p=VDD, n=if_bar, value=4e-9, label=label)
            b.capacitor(p=VDD, n=if_bar, value=1e-12, label=label)
        else:
            b.resistor(p=VDD, n=if_out, value=1e3, label=label)
            b.resistor(p=VDD, n=if_bar, value=1e3, label=label)
    else:  # double balanced (Gilbert cell)
        t1, t2 = f"{prefix}mx_t1", f"{prefix}mx_t2"
        rf_bar = f"{prefix}rfb"
        # Transconductor pair (single-ended drive: rf_bar is AC ground
        # through a bias resistor).
        b.nmos(b.fresh(f"{prefix}mmx"), d=t1, g=rf_in, s=f"{prefix}mx_s", label=label)
        b.nmos(b.fresh(f"{prefix}mmx"), d=t2, g=rf_bar, s=f"{prefix}mx_s", label=label)
        b.resistor(p=rf_bar, n=GND, value=10e3, label=label)
        b.nmos(b.fresh(f"{prefix}mmx"), d=f"{prefix}mx_s", g="vb_mx", s=GND, label=label)
        # Switching quad.
        b.nmos(b.fresh(f"{prefix}mmx"), d=if_out, g=lo, s=t1, label=label)
        b.nmos(b.fresh(f"{prefix}mmx"), d=if_bar, g=lo_bar, s=t1, label=label)
        b.nmos(b.fresh(f"{prefix}mmx"), d=if_bar, g=lo, s=t2, label=label)
        b.nmos(b.fresh(f"{prefix}mmx"), d=if_out, g=lo_bar, s=t2, label=label)
        b.resistor(p=VDD, n=if_out, value=1e3, label=label)
        b.resistor(p=VDD, n=if_bar, value=1e3, label=label)


def add_oscillator(
    b: CircuitBuilder,
    *,
    outp: str,
    outn: str,
    topology: str = "lc_nmos",
    stages: int = 3,
    prefix: str = "",
    rng=None,
    label: str = "osc",
) -> None:
    """Oscillator producing a differential (or ring) output."""
    rng = rng if rng is not None else seeded_rng(("osc", prefix))
    if topology not in OSC_TOPOLOGIES:
        raise DatasetError(f"unknown oscillator topology {topology!r}")
    if topology == "lc_nmos":
        tail = f"{prefix}osc_t"
        b.cross_coupled_pair(d1=outp, d2=outn, s=tail, polarity="n", label=label)
        b.lc_tank(a=outp, b=outn, label=label)
        b.nmos(b.fresh(f"{prefix}mosc"), d=tail, g="vb_osc", s=GND, label=label)
    elif topology == "lc_cmos":
        tail = f"{prefix}osc_t"
        b.cross_coupled_pair(d1=outp, d2=outn, s=tail, polarity="n", label=label)
        b.cross_coupled_pair(d1=outp, d2=outn, s=VDD, polarity="p", label=label)
        b.lc_tank(a=outp, b=outn, label=label)
        b.nmos(b.fresh(f"{prefix}mosc"), d=tail, g="vb_osc", s=GND, label=label)
    elif topology == "colpitts":
        # Single-device Colpitts: inductor to the rail, capacitive
        # divider feeding the source — an oscillator with *no*
        # cross-coupled pair (exercises recognition beyond the CC cue).
        # The divider midpoint doubles as the inverted output so the
        # whole oscillator stays one channel-connected component.
        b.inductor(p=VDD, n=outp, value=3e-9, label=label)
        b.capacitor(p=outp, n=outn, value=2e-12, label=label)
        b.capacitor(p=outn, n=GND, value=2e-12, label=label)
        b.nmos(b.fresh(f"{prefix}mosc"), d=outp, g="vb_osc", s=outn, label=label)
        b.nmos(b.fresh(f"{prefix}mosc"), d=outn, g="vb_osc2", s=GND, label=label)
    else:  # ring
        if stages % 2 == 0:
            stages += 1  # rings need odd inversion count
        # A resistively-loaded NMOS ring keeps every stage in one CCC
        # is NOT what we want; classic CMOS inverter rings are
        # gate-coupled, so couple stages through shared load resistors
        # instead: each stage is an NMOS CS amp whose drain feeds the
        # next gate, all drains tied to VDD through resistors.  The
        # stage devices share no source/drain nets, so the ring forms
        # several CCCs; to keep the oscillator one recognizable block,
        # add a shared tail bus.
        bus = f"{prefix}osc_bus"
        nets = [outp] + [f"{prefix}osc_r{i}" for i in range(stages - 2)] + [outn]
        for i in range(stages):
            inp = nets[i - 1]
            out = nets[i]
            b.nmos(b.fresh(f"{prefix}mosc"), d=out, g=inp, s=bus, label=label)
            b.resistor(p=VDD, n=out, value=2e3, label=label)
        b.nmos(b.fresh(f"{prefix}mosc"), d=bus, g="vb_osc", s=GND, label=label)


def add_bpf(
    b: CircuitBuilder,
    *,
    inp: str,
    inn: str | None,
    outp: str,
    outn: str,
    prefix: str = "",
    label: str = "bpf",
) -> None:
    """Q-enhanced band-pass filter: an "oscillator with two input
    transistors" (exactly how the paper's Post-I describes it)."""
    tail = f"{prefix}bpf_t"
    b.cross_coupled_pair(d1=outp, d2=outn, s=tail, polarity="n", label=label)
    b.lc_tank(a=outp, b=outn, label=label)
    b.nmos(b.fresh(f"{prefix}mbpf"), d=tail, g="vb_bpf", s=GND, label=label)
    # Input transistors inject the signal into the tank.
    inn = inn or inp
    b.nmos(b.fresh(f"{prefix}mbpf"), d=outp, g=inp, s=GND, label=label)
    b.nmos(b.fresh(f"{prefix}mbpf"), d=outn, g=inn, s=GND, label=label)


def add_vco_buffer(
    b: CircuitBuilder, *, inp: str, out: str, prefix: str = "", label: str = "buf"
) -> None:
    """Push–pull source-follower buffer (matches the BUF primitive)."""
    b.nmos(b.fresh(f"{prefix}mbuf"), d=VDD, g=inp, s=out, label=label)
    b.pmos(b.fresh(f"{prefix}mbuf"), d=GND, g=inp, s=out, label=label)


def add_inv_amp(
    b: CircuitBuilder, *, inp: str, out: str, prefix: str = "", label: str = "inv"
) -> None:
    """Inverter-based amplifier (matches the INV primitive)."""
    b.inverter(inp=inp, out=out, label=label)


# ---------------------------------------------------------------------------
# Whole training/test circuits.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReceiverSpec:
    """A receiver combining one LNA, one mixer, and one oscillator."""

    lna_topology: str = "inductive_degeneration"
    lna_stages: int = 1
    mixer_topology: str = "single_balanced"
    osc_topology: str = "lc_nmos"
    ring_stages: int = 3
    size_seed: int = 0


def generate_receiver(spec: ReceiverSpec, name: str = "") -> LabeledCircuit:
    """LNA → mixer ← LO oscillator, with testbench port labels."""
    rng = seeded_rng(("receiver", spec))
    name = name or (
        f"rx_{spec.lna_topology}_{spec.mixer_topology}_{spec.osc_topology}_"
        f"{spec.size_seed}"
    )
    b = CircuitBuilder(name, ports=("rfin", "ifout", VDD, GND))
    add_lna(
        b, rf_in="rfin", rf_out="lna_out", topology=spec.lna_topology,
        stages=spec.lna_stages, rng=rng,
    )
    add_oscillator(
        b, outp="lo_p", outn="lo_n", topology=spec.osc_topology,
        stages=spec.ring_stages, rng=rng,
    )
    add_mixer(
        b, rf_in="lna_out", lo="lo_p", lo_bar="lo_n", if_out="ifout",
        topology=spec.mixer_topology, rng=rng,
    )
    b.mark_port("rfin", "antenna")
    b.mark_port("lo_p", "oscillating")
    b.mark_port("lo_n", "oscillating")
    return b.finish(class_names=RF_CLASSES)


def generate_single_block(
    kind: str, topology: str, seed: int, name: str = ""
) -> LabeledCircuit:
    """A lone LNA / mixer / oscillator (half the RF training mix)."""
    rng = seeded_rng(("single", kind, topology, seed))
    name = name or f"{kind}_{topology}_{seed}"
    b = CircuitBuilder(name, ports=("rfin", "ifout", VDD, GND))
    if kind == "lna":
        add_lna(b, rf_in="rfin", rf_out="ifout", topology=topology, rng=rng)
        b.mark_port("rfin", "antenna")
    elif kind == "mixer":
        add_mixer(
            b, rf_in="rfin", lo="lo", lo_bar="lob", if_out="ifout",
            topology=topology, rng=rng,
        )
        b.mark_port("lo", "oscillating")
        b.mark_port("lob", "oscillating")
    elif kind == "osc":
        add_oscillator(
            b, outp="ifout", outn="outn", topology=topology, rng=rng
        )
    else:
        raise DatasetError(f"unknown block kind {kind!r}")
    return b.finish(class_names=RF_CLASSES)


def receiver_variants(n: int, seed: object = "rf-train") -> list[ReceiverSpec]:
    """Sample ``n`` receiver specs over the topology grid."""
    rng = seeded_rng(seed)
    specs: list[ReceiverSpec] = []
    for index in range(n):
        specs.append(
            ReceiverSpec(
                lna_topology=str(rng.choice(LNA_TOPOLOGIES)),
                lna_stages=int(rng.integers(1, 3)),
                mixer_topology=str(rng.choice(MIXER_TOPOLOGIES)),
                osc_topology=str(rng.choice(OSC_TOPOLOGIES)),
                ring_stages=int(rng.choice([3, 5])),
                size_seed=index,
            )
        )
    return specs
