"""Hand-crafted system testcases (Table II rows 2 and 4, Fig. 1).

* :func:`switched_cap_filter` — the composite OTA testcase: a
  telescopic OTA (a topology family never dominant in training),
  its bias network, and a switched-capacitor network around it
  (~32 devices / ~25 nets as in the paper).
* :func:`sample_and_hold` — the Fig. 1 schematic: a fully-differential
  two-stage OTA inside a switched-capacitor sample-and-hold.
* :func:`phased_array` — the largest testcase: N channels of
  LNA → BPF → mixer with per-channel injection-locked oscillators,
  VCO buffers, and inverter-based IF amplifiers, sized to land near
  the paper's 522 devices + 380 nets.
"""

from __future__ import annotations

from repro.datasets.components import GND, VDD, CircuitBuilder, LabeledCircuit
from repro.spice.netlist import Instance, Netlist
from repro.datasets.ota import OTA_CLASSES, OtaSpec, generate_ota
from repro.datasets.rf import (
    RF_EXTENDED_CLASSES,
    add_bpf,
    add_inv_amp,
    add_lna,
    add_mixer,
    add_oscillator,
    add_vco_buffer,
)
from repro.utils.rng import seeded_rng


def _add_sc_network(
    b: CircuitBuilder,
    *,
    inp: str,
    to_ota: str,
    phases: tuple[str, str] = ("phi1", "phi2"),
    n_units: int = 2,
    label: str = "ota",
    prefix: str = "",
) -> None:
    """A switched-capacitor sampling network feeding an OTA input.

    Each unit: input switch → sampling cap → output switch, plus a
    reset switch to ground, the classic parasitic-insensitive branch.
    """
    phi1, phi2 = phases
    for unit in range(n_units):
        top = f"{prefix}sc{unit}_top"
        bot = f"{prefix}sc{unit}_bot"
        b.nmos(b.fresh("msw"), d=inp, g=phi1, s=top, w=0.5e-6, label=label)
        b.capacitor(p=top, n=bot, value=0.8e-12, label=label)
        b.nmos(b.fresh("msw"), d=bot, g=phi1, s=GND, w=0.5e-6, label=label)
        b.nmos(b.fresh("msw"), d=top, g=phi2, s=GND, w=0.5e-6, label=label)
        b.nmos(b.fresh("msw"), d=bot, g=phi2, s=to_ota, w=0.5e-6, label=label)


def switched_cap_filter(seed: int = 7) -> LabeledCircuit:
    """The composite switched-capacitor filter testcase (Table II row 2)."""
    spec = OtaSpec(
        topology="telescopic",
        polarity="n",
        bias_mirror_outputs=0,
        with_load_caps=False,
        size_seed=seed,
    )
    ota = generate_ota(spec, name="sc_filter")
    b = CircuitBuilder("sc_filter", ports=("vin", "vout", "phi1", "phi2", VDD, GND))
    # Re-host the OTA devices in the filter builder.
    for dev in ota.circuit.devices:
        b.circuit.add(dev)
    b.device_labels.update(ota.device_labels)
    _add_sc_network(b, inp="vin", to_ota="vinp", n_units=3, label="ota")
    # Integration capacitor around the OTA and output load.
    b.capacitor(p="vinp", n="vout", value=2e-12, label="ota")
    b.capacitor(p="vout", n=GND, value=1e-12, label="ota")
    # The OTA's second input is a reference tap.
    b.resistor(p="vinn", n=GND, value=50e3, label="ota")
    return b.finish(class_names=OTA_CLASSES)


def sample_and_hold(seed: int = 3) -> LabeledCircuit:
    """The Fig. 1 sample-and-hold: FD OTA + switch/cap arrays."""
    spec = OtaSpec(
        topology="fully_differential",
        polarity="n",
        bias_mirror_outputs=1,
        with_load_caps=False,
        size_seed=seed,
    )
    ota = generate_ota(spec, name="sample_hold")
    b = CircuitBuilder(
        "sample_hold", ports=("vin", "vout", "phi1", "phi2", VDD, GND)
    )
    for dev in ota.circuit.devices:
        b.circuit.add(dev)
    b.device_labels.update(ota.device_labels)
    _add_sc_network(b, inp="vin", to_ota="vinp", n_units=2, label="ota", prefix="fwd_")
    _add_sc_network(b, inp="vout", to_ota="vinn", n_units=1, label="ota", prefix="fb_")
    b.capacitor(p="vinp", n="vout", value=1.5e-12, label="ota")
    b.capacitor(p="vout", n=GND, value=1e-12, label="ota")
    return b.finish(class_names=OTA_CLASSES)


def phased_array(n_channels: int = 10, seed: int = 11) -> LabeledCircuit:
    """The phased-array receiver testcase (Table II row 4, Fig. 7).

    Per channel: 2-stage LNA → band-pass filter → double-balanced
    mixer, with a per-channel injection-locked LC oscillator, two VCO
    buffers driving the mixer's LO ports, and a two-stage inverter
    amplifier at IF.  A shared reference oscillator injection-locks
    every channel — the paper's "sub-harmonic ILO based channelization".
    """
    rng = seeded_rng(("phased-array", seed))
    ports = (
        [f"ant{c}" for c in range(n_channels)]
        + [f"ifout{c}" for c in range(n_channels)]
        + [VDD, GND]
    )
    b = CircuitBuilder("phased_array", ports=tuple(ports))

    # Shared reference oscillator.
    add_oscillator(
        b, outp="ref_p", outn="ref_n", topology="lc_cmos", prefix="ref_", rng=rng
    )
    b.mark_port("ref_p", "oscillating")
    b.mark_port("ref_n", "oscillating")

    for c in range(n_channels):
        p = f"ch{c}_"
        ant = f"ant{c}"
        b.mark_port(ant, "antenna")

        add_lna(
            b, rf_in=ant, rf_out=f"{p}lna_out",
            topology="inductive_degeneration", stages=3, prefix=p, rng=rng,
        )
        add_bpf(
            b, inp=f"{p}lna_out", inn=None, outp=f"{p}bpf_p", outn=f"{p}bpf_n",
            prefix=p,
        )
        # Injection-locked channel oscillator: an LC-CMOS core plus an
        # injection device whose gate takes the shared reference.
        add_oscillator(
            b, outp=f"{p}lo_p", outn=f"{p}lo_n", topology="lc_cmos",
            prefix=p, rng=rng,
        )
        b.nmos(
            b.fresh(f"{p}minj"), d=f"{p}lo_p", g="ref_p", s=f"{p}lo_n",
            label="osc",
        )
        b.mark_port(f"{p}lo_p", "oscillating")
        b.mark_port(f"{p}lo_n", "oscillating")
        # VCO buffers between the oscillator and the mixer's LO ports.
        # The buffered LO nets carry the oscillating testbench label too
        # (they are the mixer's LO inputs).
        add_vco_buffer(b, inp=f"{p}lo_p", out=f"{p}lob_p", prefix=f"{p}a")
        add_vco_buffer(b, inp=f"{p}lo_n", out=f"{p}lob_n", prefix=f"{p}b")
        b.mark_port(f"{p}lob_p", "oscillating")
        b.mark_port(f"{p}lob_n", "oscillating")
        add_mixer(
            b, rf_in=f"{p}bpf_p", lo=f"{p}lob_p", lo_bar=f"{p}lob_n",
            if_out=f"{p}if0", topology="double_balanced", prefix=p, rng=rng,
        )
        # Inverter-based IF amplifier chain to the channel output.
        add_inv_amp(b, inp=f"{p}if0", out=f"{p}if1", prefix=f"{p}a")
        add_inv_amp(b, inp=f"{p}if1", out=f"{p}if2", prefix=f"{p}b")
        add_inv_amp(b, inp=f"{p}if2", out=f"ifout{c}", prefix=f"{p}c")

    return b.finish(class_names=RF_EXTENDED_CLASSES)


def phased_array_hier(
    n_channels: int = 8, seed: int = 11
) -> tuple[Netlist, dict[str, str]]:
    """Hierarchical phased-array receiver: one ``channel`` subckt × N.

    The repeated-instance counterpart of :func:`phased_array`: every
    receiver chain is a *single* subcircuit definition instantiated
    once per channel, so the hierarchy-scoped annotation path
    (``--hier``) can match its primitives once and replicate them.
    Unlike :func:`phased_array`, every channel is sized identically —
    the body is built once.

    Returns the unflattened :class:`~repro.spice.netlist.Netlist` plus
    testbench port labels keyed by *flattened* net names.
    """
    rng = seeded_rng(("phased-array-hier", seed))

    ch = CircuitBuilder("channel", ports=("ant", "ifout", "ref"))
    add_lna(
        ch, rf_in="ant", rf_out="lna_out",
        topology="inductive_degeneration", stages=3, rng=rng,
    )
    add_bpf(ch, inp="lna_out", inn=None, outp="bpf_p", outn="bpf_n")
    add_oscillator(ch, outp="lo_p", outn="lo_n", topology="lc_cmos", rng=rng)
    ch.nmos(ch.fresh("minj"), d="lo_p", g="ref", s="lo_n", label="osc")
    add_vco_buffer(ch, inp="lo_p", out="lob_p", prefix="a")
    add_vco_buffer(ch, inp="lo_n", out="lob_n", prefix="b")
    add_vco_buffer(ch, inp="lo_p", out="lobq_p", prefix="c")
    add_vco_buffer(ch, inp="lo_n", out="lobq_n", prefix="d")
    # Quadrature downconversion: I and Q double-balanced mixers whose
    # IF outputs are summed in current mode through a cascoded combiner
    # (the classic image-reject adder) — one large channel-connected
    # component spanning both mixer quads.
    add_mixer(
        ch, rf_in="bpf_p", lo="lob_p", lo_bar="lob_n", if_out="if0",
        topology="double_balanced", prefix="i", rng=rng,
    )
    add_mixer(
        ch, rf_in="bpf_n", lo="lobq_p", lo_bar="lobq_n", if_out="q0",
        topology="double_balanced", prefix="q", rng=rng,
    )
    ch.nmos(ch.fresh("mcmb"), d="ifsum", g="cascb", s="if0", label="mixer")
    ch.nmos(ch.fresh("mcmb"), d="ifsum", g="cascb", s="q0", label="mixer")
    ch.resistor(ch.fresh("rcmb"), p="ifsum", n=VDD, value=4e3, label="mixer")
    add_inv_amp(ch, inp="ifsum", out="if1", prefix="a")
    add_inv_amp(ch, inp="if1", out="if2", prefix="b")
    add_inv_amp(ch, inp="if2", out="ifout", prefix="c")

    ports = (
        [f"ant{c}" for c in range(n_channels)]
        + [f"ifout{c}" for c in range(n_channels)]
        + [VDD, GND]
    )
    top = CircuitBuilder("phased_array_hier", ports=tuple(ports))
    add_oscillator(
        top, outp="ref_p", outn="ref_n", topology="lc_cmos", prefix="ref_", rng=rng
    )
    for c in range(n_channels):
        top.circuit.add(
            Instance(
                name=f"xch{c}",
                subckt="channel",
                nets=(f"ant{c}", f"ifout{c}", "ref_p"),
            )
        )

    netlist = Netlist(
        title="hierarchical phased array", top=top.circuit, globals_=(VDD, GND)
    )
    netlist.define(ch.circuit)

    port_labels = {"ref_p": "oscillating", "ref_n": "oscillating"}
    for c in range(n_channels):
        port_labels[f"ant{c}"] = "antenna"
        for net in ("lo_p", "lo_n", "lob_p", "lob_n"):
            port_labels[f"xch{c}/{net}"] = "oscillating"
    return netlist, port_labels
