"""Parametric analog-circuit dataset generators (Table I substitutes)."""

from repro.datasets.components import (
    CircuitBuilder,
    LabeledCircuit,
    derive_net_labels,
)
from repro.datasets.ota import OTA_CLASSES, OtaSpec, generate_ota, ota_variants
from repro.datasets.rf import (
    RF_CLASSES,
    RF_EXTENDED_CLASSES,
    ReceiverSpec,
    generate_receiver,
    generate_single_block,
    receiver_variants,
)
from repro.datasets.synth import (
    DatasetSummary,
    build_samples,
    generate_ota_bias_dataset,
    generate_ota_test_set,
    generate_rf_dataset,
    generate_rf_test_set,
    pretrain_annotator,
    summarize,
    task_classes,
)
from repro.datasets.perturb import (
    add_decaps,
    add_dummies,
    perturb_all,
    split_parallel,
    stack_series,
)
from repro.datasets.systems import phased_array, sample_and_hold, switched_cap_filter

__all__ = [
    "CircuitBuilder",
    "DatasetSummary",
    "LabeledCircuit",
    "OTA_CLASSES",
    "OtaSpec",
    "RF_CLASSES",
    "RF_EXTENDED_CLASSES",
    "ReceiverSpec",
    "build_samples",
    "derive_net_labels",
    "generate_ota",
    "generate_ota_bias_dataset",
    "generate_ota_test_set",
    "generate_receiver",
    "generate_rf_dataset",
    "generate_rf_test_set",
    "generate_single_block",
    "ota_variants",
    "add_decaps",
    "add_dummies",
    "perturb_all",
    "phased_array",
    "split_parallel",
    "stack_series",
    "pretrain_annotator",
    "receiver_variants",
    "sample_and_hold",
    "summarize",
    "switched_cap_filter",
    "task_classes",
]
