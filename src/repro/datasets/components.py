"""Circuit-construction toolkit shared by the dataset generators.

:class:`CircuitBuilder` assembles flat circuits device-by-device while
recording the ground-truth class of every device — the labels the GCN
trains against and Table II scores against.  The idiom::

    b = CircuitBuilder("ota_a")
    b.nmos("m1", d="n1", g="vinp", s="tail", label="ota")
    ...
    labeled = b.finish(class_names=("ota", "bias"))

Net labels are derived afterwards: a net takes the class of its
adjacent labeled devices when they all agree; nets touching devices of
different classes sit on block boundaries and are excluded from the
truth (the paper explicitly allows such vertices to belong to multiple
sub-blocks).  Power nets are always excluded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DatasetError
from repro.graph.bipartite import CircuitGraph
from repro.spice.netlist import (
    Circuit,
    Device,
    DeviceKind,
    make_mos,
    make_passive,
)
from repro.spice.netlist import is_power_net

VDD = "vdd!"
GND = "gnd!"


@dataclass
class LabeledCircuit:
    """A generated circuit with ground truth and testbench hints."""

    name: str
    circuit: Circuit
    device_labels: dict[str, str]
    class_names: tuple[str, ...]
    port_labels: dict[str, str] = field(default_factory=dict)

    def truth(self, graph: CircuitGraph | None = None) -> dict[str, str]:
        """Device *and* net ground truth over the circuit's graph."""
        graph = graph or CircuitGraph.from_circuit(self.circuit)
        labels = dict(self.device_labels)
        labels.update(derive_net_labels(graph, self.device_labels))
        return labels

    @property
    def n_devices(self) -> int:
        return len(self.circuit.devices)


def derive_net_labels(
    graph: CircuitGraph, device_labels: dict[str, str]
) -> dict[str, str]:
    """Net → class where all adjacent labeled devices agree.

    Power nets and boundary nets (mixed adjacent classes) are omitted.
    """
    adjacent: dict[int, set[str]] = {}
    for edge in graph.edges:
        dev = graph.elements[edge.element]
        label = device_labels.get(dev.name)
        if label is None:
            continue
        adjacent.setdefault(edge.net, set()).add(label)
    out: dict[str, str] = {}
    for net_local, classes in adjacent.items():
        net = graph.nets[net_local]
        if is_power_net(net):
            continue
        if len(classes) == 1:
            out[net] = next(iter(classes))
    return out


class CircuitBuilder:
    """Incremental flat-circuit construction with label bookkeeping."""

    def __init__(self, name: str, ports: tuple[str, ...] = ()):
        self.circuit = Circuit(name=name, ports=ports)
        self.device_labels: dict[str, str] = {}
        self.port_labels: dict[str, str] = {}
        self._counter = 0

    # -- naming ------------------------------------------------------------

    def fresh(self, prefix: str) -> str:
        """A fresh unique name with the given prefix.

        Skips names already present, so circuits assembled from
        re-hosted sub-circuits (see the system generators) stay
        collision-free.
        """
        existing = {d.name for d in self.circuit.devices}
        while True:
            self._counter += 1
            name = f"{prefix}{self._counter}"
            if name not in existing:
                return name

    def _register(self, device: Device, label: str | None) -> str:
        if any(d.name == device.name for d in self.circuit.devices):
            raise DatasetError(f"duplicate device name {device.name!r}")
        self.circuit.add(device)
        if label is not None:
            self.device_labels[device.name] = label
        return device.name

    # -- devices -------------------------------------------------------------

    def nmos(
        self,
        name: str | None = None,
        *,
        d: str,
        g: str,
        s: str,
        w: float = 2e-6,
        l: float = 100e-9,
        label: str | None = None,
    ) -> str:
        name = name or self.fresh("mn")
        return self._register(
            make_mos(name, DeviceKind.NMOS, d, g, s, w=w, l=l), label
        )

    def pmos(
        self,
        name: str | None = None,
        *,
        d: str,
        g: str,
        s: str,
        w: float = 4e-6,
        l: float = 100e-9,
        label: str | None = None,
    ) -> str:
        name = name or self.fresh("mp")
        return self._register(
            make_mos(name, DeviceKind.PMOS, d, g, s, w=w, l=l), label
        )

    def resistor(
        self,
        name: str | None = None,
        *,
        p: str,
        n: str,
        value: float = 10e3,
        label: str | None = None,
    ) -> str:
        name = name or self.fresh("r")
        return self._register(
            make_passive(name, DeviceKind.RESISTOR, p, n, value), label
        )

    def capacitor(
        self,
        name: str | None = None,
        *,
        p: str,
        n: str,
        value: float = 1e-12,
        label: str | None = None,
    ) -> str:
        name = name or self.fresh("c")
        return self._register(
            make_passive(name, DeviceKind.CAPACITOR, p, n, value), label
        )

    def inductor(
        self,
        name: str | None = None,
        *,
        p: str,
        n: str,
        value: float = 2e-9,
        label: str | None = None,
    ) -> str:
        name = name or self.fresh("l")
        return self._register(
            make_passive(name, DeviceKind.INDUCTOR, p, n, value), label
        )

    # -- common analog structures ------------------------------------------

    def diff_pair(
        self,
        *,
        inp: str,
        inn: str,
        out1: str,
        out2: str,
        tail: str,
        polarity: str = "n",
        w: float = 2e-6,
        label: str | None = None,
    ) -> tuple[str, str]:
        """Differential pair; returns the two device names."""
        add = self.nmos if polarity == "n" else self.pmos
        a = add(self.fresh("mdp"), d=out1, g=inp, s=tail, w=w, label=label)
        b = add(self.fresh("mdp"), d=out2, g=inn, s=tail, w=w, label=label)
        return a, b

    def current_mirror(
        self,
        *,
        ref: str,
        outs: tuple[str, ...],
        rail: str,
        polarity: str = "n",
        w: float = 2e-6,
        label: str | None = None,
    ) -> list[str]:
        """Diode device at ``ref`` plus one output device per net."""
        add = self.nmos if polarity == "n" else self.pmos
        names = [add(self.fresh("mcm"), d=ref, g=ref, s=rail, w=w, label=label)]
        for out in outs:
            names.append(
                add(self.fresh("mcm"), d=out, g=ref, s=rail, w=w, label=label)
            )
        return names

    def cascode_mirror(
        self,
        *,
        ref: str,
        out: str,
        rail: str,
        polarity: str = "n",
        label: str | None = None,
    ) -> list[str]:
        """Four-transistor cascode current mirror (matches CM-N(casc))."""
        add = self.nmos if polarity == "n" else self.pmos
        nc = self.fresh("nc_")
        no = self.fresh("no_")
        return [
            add(self.fresh("mcc"), d=ref, g=ref, s=nc, label=label),
            add(self.fresh("mcc"), d=nc, g=nc, s=rail, label=label),
            add(self.fresh("mcc"), d=out, g=ref, s=no, label=label),
            add(self.fresh("mcc"), d=no, g=nc, s=rail, label=label),
        ]

    def cross_coupled_pair(
        self,
        *,
        d1: str,
        d2: str,
        s: str,
        polarity: str = "n",
        label: str | None = None,
    ) -> tuple[str, str]:
        add = self.nmos if polarity == "n" else self.pmos
        a = add(self.fresh("mcc"), d=d1, g=d2, s=s, label=label)
        b = add(self.fresh("mcc"), d=d2, g=d1, s=s, label=label)
        return a, b

    def inverter(
        self,
        *,
        inp: str,
        out: str,
        label: str | None = None,
    ) -> tuple[str, str]:
        """CMOS inverter between the rails."""
        a = self.nmos(self.fresh("minv"), d=out, g=inp, s=GND, label=label)
        b = self.pmos(self.fresh("minv"), d=out, g=inp, s=VDD, label=label)
        return a, b

    def buffer(self, *, inp: str, out: str, label: str | None = None) -> str:
        """Two cascaded inverters (matches the BUF primitive)."""
        mid = self.fresh("bufmid")
        self.inverter(inp=inp, out=mid, label=label)
        self.inverter(inp=mid, out=out, label=label)
        return mid

    def lc_tank(
        self, *, a: str, b: str, c_value: float = 1e-12, label: str | None = None
    ) -> tuple[str, str]:
        il = self.inductor(p=a, n=b, label=label)
        ic = self.capacitor(p=a, n=b, value=c_value, label=label)
        return il, ic

    def rc_compensation(
        self, *, a: str, b: str, label: str | None = None
    ) -> tuple[str, str]:
        """Series R–C (matches CC-RC); midpoint is internal."""
        mid = self.fresh("zc_")
        ir = self.resistor(p=a, n=mid, label=label)
        ic = self.capacitor(p=mid, n=b, label=label)
        return ir, ic

    def current_reference(
        self, *, ref: str, polarity: str = "n", label: str | None = None
    ) -> tuple[str, str]:
        """Resistor-programmed diode device (matches CR-N for NMOS)."""
        if polarity == "n":
            ir = self.resistor(p=VDD, n=ref, label=label)
            im = self.nmos(self.fresh("mcr"), d=ref, g=ref, s=GND, label=label)
        else:
            ir = self.resistor(p=ref, n=GND, label=label)
            im = self.pmos(self.fresh("mcr"), d=ref, g=ref, s=VDD, label=label)
        return ir, im

    # -- completion ----------------------------------------------------------

    def set_ports(self, *ports: str) -> None:
        self.circuit.ports = tuple(ports)

    def mark_port(self, net: str, label: str) -> None:
        """Attach a testbench label ("antenna", "oscillating") to a net."""
        self.port_labels[net] = label

    @property
    def n_devices(self) -> int:
        return len(self.circuit.devices)

    def finish(self, class_names: tuple[str, ...]) -> LabeledCircuit:
        """Freeze into a :class:`LabeledCircuit`, validating labels."""
        for name, label in self.device_labels.items():
            if label not in class_names:
                raise DatasetError(
                    f"{self.circuit.name}: device {name} labeled {label!r} "
                    f"outside class set {class_names}"
                )
        return LabeledCircuit(
            name=self.circuit.name,
            circuit=self.circuit,
            device_labels=dict(self.device_labels),
            class_names=class_names,
            port_labels=dict(self.port_labels),
        )
