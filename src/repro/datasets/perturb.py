"""Layout-style netlist perturbations (the noise preprocessing removes).

Sec. II-B: preprocessing "identifies netlist features that help
performance but do not affect functionality …, e.g., parallel
transistors for sizing, series transistors for large transistor
lengths, dummies, decaps."  These functions *inject* exactly those
features into a clean circuit, so tests and the robustness benchmark
can verify that recognition through
:func:`repro.spice.preprocess.preprocess` is invariant to them.

All perturbations preserve electrical function and ground-truth labels
(injected devices inherit the label of the device they decorate, or
none for decaps/dummies, which preprocessing removes outright).
"""

from __future__ import annotations

from dataclasses import replace

from repro.datasets.components import GND, VDD, LabeledCircuit
from repro.spice.netlist import Circuit, Device, DeviceKind, make_mos, make_passive
from repro.utils.rng import seeded_rng


def split_parallel(
    item: LabeledCircuit, fraction: float = 0.4, seed: object = 0
) -> LabeledCircuit:
    """Split a fraction of transistors into two parallel halves.

    ``m`` halves on each copy (total drive unchanged); preprocessing
    merges them back into one device.
    """
    rng = seeded_rng(("parallel", seed, item.name))
    devices: list[Device] = []
    labels = dict(item.device_labels)
    for dev in item.circuit.devices:
        if dev.kind.is_transistor and rng.random() < fraction:
            m = dev.param("m", 1.0) or 1.0
            params = tuple(
                (k, m / 2.0 if k == "m" else v) for k, v in dev.params
            )
            if "m" not in {k for k, _ in params}:
                params = params + (("m", m / 2.0),)
            half_a = replace(dev, params=params)
            half_b = replace(dev, name=f"{dev.name}__p2", params=params)
            devices.extend([half_a, half_b])
            if dev.name in labels:
                labels[half_b.name] = labels[dev.name]
        else:
            devices.append(dev)
    return _rebuild(item, devices, labels)


def stack_series(
    item: LabeledCircuit, fraction: float = 0.3, seed: object = 0
) -> LabeledCircuit:
    """Replace a fraction of transistors by two half-length in series.

    The intermediate net is private to the stack, so preprocessing's
    series merge collapses it back.
    """
    rng = seeded_rng(("series", seed, item.name))
    devices: list[Device] = []
    labels = dict(item.device_labels)
    for dev in item.circuit.devices:
        if dev.kind.is_transistor and rng.random() < fraction:
            length = dev.param("l", 100e-9) or 100e-9
            params = tuple(
                (k, length / 2.0 if k == "l" else v) for k, v in dev.params
            )
            mid = f"{dev.name}__mid"
            pins = dev.pin_map
            top = replace(
                dev,
                pins=(
                    ("d", pins["d"]), ("g", pins["g"]),
                    ("s", mid), ("b", pins["b"]),
                ),
                params=params,
            )
            bottom = replace(
                dev,
                name=f"{dev.name}__s2",
                pins=(
                    ("d", mid), ("g", pins["g"]),
                    ("s", pins["s"]), ("b", pins["b"]),
                ),
                params=params,
            )
            devices.extend([top, bottom])
            if dev.name in labels:
                labels[bottom.name] = labels[dev.name]
        else:
            devices.append(dev)
    return _rebuild(item, devices, labels)


def add_dummies(
    item: LabeledCircuit, count: int = 3, seed: object = 0
) -> LabeledCircuit:
    """Sprinkle off-state dummy transistors (matching fill).

    Dummies carry no label — preprocessing deletes them before any
    labeled vertex exists.
    """
    rng = seeded_rng(("dummies", seed, item.name))
    devices = list(item.circuit.devices)
    nets = [n for n in item.circuit.nets]
    for i in range(count):
        anchor = str(rng.choice(nets)) if nets else GND
        devices.append(
            make_mos(
                f"mdummy{i}", DeviceKind.NMOS,
                drain=anchor, gate=GND, source=GND,
                w=0.5e-6,
            )
        )
    return _rebuild(item, devices, dict(item.device_labels))


def add_decaps(
    item: LabeledCircuit, count: int = 2, seed: object = 0
) -> LabeledCircuit:
    """Add supply decoupling capacitors (removed by preprocessing)."""
    rng = seeded_rng(("decaps", seed, item.name))
    devices = list(item.circuit.devices)
    for i in range(count):
        value = float(rng.choice([5e-12, 10e-12, 20e-12]))
        devices.append(
            make_passive(f"cdecap{i}", DeviceKind.CAPACITOR, VDD, GND, value)
        )
    return _rebuild(item, devices, dict(item.device_labels))


def perturb_all(item: LabeledCircuit, seed: object = 0) -> LabeledCircuit:
    """Apply every perturbation class in sequence."""
    out = split_parallel(item, seed=seed)
    out = stack_series(out, seed=seed)
    out = add_dummies(out, seed=seed)
    out = add_decaps(out, seed=seed)
    return out


def _rebuild(
    item: LabeledCircuit, devices: list[Device], labels: dict[str, str]
) -> LabeledCircuit:
    circuit = Circuit(
        name=item.circuit.name, ports=item.circuit.ports, devices=devices
    )
    return LabeledCircuit(
        name=item.name,
        circuit=circuit,
        device_labels=labels,
        class_names=item.class_names,
        port_labels=dict(item.port_labels),
    )
