"""Parametric OTA + bias-network generators (the "OTA bias" dataset).

The paper's OTA training/test sets contain "multiple OTA configurations
with appropriate signal and bias subcircuit labels".  This module
generates the same family synthetically: seven topology families
(five-transistor, telescopic cascode, folded cascode, symmetric,
two-stage Miller, fully-differential with SC-CMFB, and PMOS-input
duals), each paired with a parameterized bias network, under seeded
sizing/variant randomization.

Every generated circuit keeps signal and bias circuitry in separate
channel-connected components (they touch only through gate nets), the
property Postprocessing I depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.components import GND, VDD, CircuitBuilder, LabeledCircuit
from repro.exceptions import DatasetError
from repro.utils.rng import seeded_rng

OTA_CLASSES = ("ota", "bias")

TOPOLOGIES = (
    "five_transistor",
    "telescopic",
    "folded_cascode",
    "symmetric",
    "two_stage",
    "fully_differential",
    "class_ab",
)


BIAS_STYLES = ("simple", "beta_multiplier", "buffered")
LOAD_STYLES = ("mirror", "resistor")


@dataclass(frozen=True)
class OtaSpec:
    """One point in the OTA variant space.

    ``bias_style`` and ``load`` inject the *structural ambiguity* real
    designs have: a beta-multiplier reference contains mirror pairs
    that look exactly like OTA loads, and a resistor-loaded input pair
    looks locally like a resistor-programmed current reference — the
    GCN must use wider context to tell them apart.
    """

    topology: str = "five_transistor"
    polarity: str = "n"  # input-pair polarity: "n" | "p"
    bias_style: str = "simple"
    load: str = "mirror"  # five_transistor/two_stage first-stage load
    bias_mirror_outputs: int = 1  # extra distribution branches (0–3)
    bias_cascode: bool = False  # cascode the bias distribution mirror
    with_load_caps: bool = True
    with_input_buffer: bool = False  # source-follower drivers at inputs
    with_sc_input: bool = False  # switched-capacitor sampling network
    size_seed: int = 0

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise DatasetError(f"unknown OTA topology {self.topology!r}")
        if self.polarity not in ("n", "p"):
            raise DatasetError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.bias_style not in BIAS_STYLES:
            raise DatasetError(f"unknown bias style {self.bias_style!r}")
        if self.load not in LOAD_STYLES:
            raise DatasetError(f"unknown load style {self.load!r}")


def _rails(polarity: str) -> tuple[str, str]:
    """(tail rail, load rail) for the given input polarity."""
    return (GND, VDD) if polarity == "n" else (VDD, GND)


def _bias_network(
    b: CircuitBuilder, spec: OtaSpec, rng
) -> tuple[str, str]:
    """Current reference + distribution mirrors; returns (nbn, nbp).

    All devices labeled "bias".  The network touches the signal path
    only through the gate nets it produces.  Net names are deliberately
    neutral (``nb1``/``nbp``/``ntap*``): the paper's bias-signal net
    feature comes from designer/testbench annotation, so the GCN must
    learn bias-ness from *structure*, not from telltale names.
    """
    nbn = "nb1"
    nbp = "nbp"
    if spec.bias_style == "beta_multiplier":
        # Self-biased beta multiplier: NMOS mirror pair against a PMOS
        # mirror pair with a degeneration resistor — structurally a
        # dead ringer for an input pair with mirror loads.
        b.nmos(b.fresh("mbias"), d=nbn, g=nbn, s=GND, label="bias")
        b.nmos(b.fresh("mbias"), d=nbp, g=nbn, s="nbx", label="bias")
        b.resistor(b.fresh("rbias"), p="nbx", n=GND, value=20e3, label="bias")
        b.pmos(b.fresh("mbias"), d=nbp, g=nbp, s=VDD, label="bias")
        b.pmos(b.fresh("mbias"), d=nbn, g=nbp, s=VDD, label="bias")
    else:
        # Resistor-programmed reference sets the NMOS bias rail.
        b.current_reference(ref=nbn, polarity="n", label="bias")
        # An NMOS mirror leg pulls current through a PMOS diode for the
        # PMOS bias rail.
        b.nmos(b.fresh("mbias"), d=nbp, g=nbn, s=GND, label="bias")
        b.pmos(b.fresh("mbias"), d=nbp, g=nbp, s=VDD, label="bias")
    # Optional extra distribution branches (each feeding a PMOS diode,
    # a realistic multi-tap bias tree).  Branches always mirror off the
    # diode rail, buffered or not.
    for branch in range(spec.bias_mirror_outputs):
        tap = f"ntap{branch}"
        if spec.bias_cascode:
            b.cascode_mirror(ref=nbn, out=tap, rail=GND, polarity="n", label="bias")
        else:
            b.nmos(b.fresh("mbias"), d=tap, g=nbn, s=GND, label="bias")
        b.pmos(b.fresh("mbias"), d=tap, g=tap, s=VDD, label="bias")
    if spec.bias_style == "buffered":
        # A source-follower tap buffers the bias rail — the same local
        # structure as an OTA's input buffer.
        b.nmos(b.fresh("mbias"), d=VDD, g=nbn, s="nbuf", label="bias")
        b.resistor(b.fresh("rbias"), p="nbuf", n=GND, value=50e3, label="bias")
    return nbn, nbp


def _tail(b: CircuitBuilder, spec: OtaSpec, tail_net: str, vb: str, rng) -> None:
    """Tail current device(s); labeled "ota" (part of the signal CCC)."""
    rail, _ = _rails(spec.polarity)
    add = b.nmos if spec.polarity == "n" else b.pmos
    w = float(rng.choice([1e-6, 2e-6, 4e-6]))
    add(b.fresh("mtail"), d=tail_net, g=vb, s=rail, w=w, label="ota")


def _input_buffers(
    b: CircuitBuilder, spec: OtaSpec, inp: str, inn: str
) -> tuple[str, str]:
    """Optional source-follower input drivers (label "ota")."""
    if not spec.with_input_buffer:
        return inp, inn
    binp, binn = "vinp_b", "vinn_b"
    b.nmos(b.fresh("mbuf"), d=VDD, g=inp, s=binp, label="ota")
    b.nmos(b.fresh("mbuf"), d=VDD, g=inn, s=binn, label="ota")
    return binp, binn


def generate_ota(spec: OtaSpec, name: str = "") -> LabeledCircuit:
    """Generate one labeled OTA + bias circuit from a spec."""
    rng = seeded_rng(("ota", spec))
    name = name or f"ota_{spec.topology}_{spec.polarity}_{spec.size_seed}"
    b = CircuitBuilder(name, ports=("vinp", "vinn", "vout", VDD, GND))

    vbn, vbp = _bias_network(b, spec, rng)
    tail_bias = vbn if spec.polarity == "n" else vbp
    load_bias = vbp if spec.polarity == "n" else vbn

    inp, inn = _input_buffers(b, spec, "vinp", "vinn")
    w_in = float(rng.choice([2e-6, 4e-6, 8e-6]))
    w_load = float(rng.choice([2e-6, 4e-6, 8e-6]))
    tail_rail, load_rail = _rails(spec.polarity)
    load_pol = "p" if spec.polarity == "n" else "n"

    def _first_stage_load(out1: str, out2: str) -> None:
        """Mirror or resistor load for the simple topologies."""
        if spec.load == "resistor":
            value = float(rng.choice([5e3, 10e3, 20e3]))
            b.resistor(b.fresh("rload"), p=load_rail, n=out1, value=value, label="ota")
            b.resistor(b.fresh("rload"), p=load_rail, n=out2, value=value, label="ota")
        else:
            b.current_mirror(
                ref=out1, outs=(out2,), rail=load_rail, polarity=load_pol,
                w=w_load, label="ota",
            )

    topology = spec.topology
    if topology == "five_transistor":
        b.diff_pair(
            inp=inp, inn=inn, out1="n1", out2="vout", tail="tail",
            polarity=spec.polarity, w=w_in, label="ota",
        )
        _first_stage_load("n1", "vout")
        _tail(b, spec, "tail", tail_bias, rng)

    elif topology == "telescopic":
        add_in = b.nmos if spec.polarity == "n" else b.pmos
        add_load = b.pmos if spec.polarity == "n" else b.nmos
        b.diff_pair(
            inp=inp, inn=inn, out1="x1", out2="x2", tail="tail",
            polarity=spec.polarity, w=w_in, label="ota",
        )
        # Input-side cascodes.
        add_in(b.fresh("mcas"), d="y1", g=load_bias, s="x1", label="ota")
        add_in(b.fresh("mcas"), d="vout", g=load_bias, s="x2", label="ota")
        # Cascoded mirror load.
        add_load(b.fresh("mld"), d="z1", g="y1", s=load_rail, w=w_load, label="ota")
        add_load(b.fresh("mld"), d="z2", g="y1", s=load_rail, w=w_load, label="ota")
        add_load(b.fresh("mld"), d="y1", g=tail_bias, s="z1", label="ota")
        add_load(b.fresh("mld"), d="vout", g=tail_bias, s="z2", label="ota")
        _tail(b, spec, "tail", tail_bias, rng)

    elif topology == "folded_cascode":
        fold_pol = load_pol
        b.diff_pair(
            inp=inp, inn=inn, out1="f1", out2="f2", tail="tail",
            polarity=spec.polarity, w=w_in, label="ota",
        )
        add_fold = b.nmos if fold_pol == "n" else b.pmos
        fold_rail = GND if fold_pol == "n" else VDD
        # Folding current sources at the fold nodes.
        add_fold(b.fresh("mfs"), d="f1", g=load_bias, s=fold_rail, label="ota")
        add_fold(b.fresh("mfs"), d="f2", g=load_bias, s=fold_rail, label="ota")
        # Cascode devices from fold nodes to the outputs.
        add_fold(b.fresh("mcas"), d="o1", g=load_bias, s="f1", label="ota")
        add_fold(b.fresh("mcas"), d="vout", g=load_bias, s="f2", label="ota")
        # Mirror at the opposite rail closes the loads.
        opp_pol = "p" if fold_pol == "n" else "n"
        opp_rail = VDD if fold_pol == "n" else GND
        b.current_mirror(
            ref="o1", outs=("vout",), rail=opp_rail, polarity=opp_pol,
            w=w_load, label="ota",
        )
        _tail(b, spec, "tail", tail_bias, rng)

    elif topology == "symmetric":
        add_load = b.pmos if spec.polarity == "n" else b.nmos
        b.diff_pair(
            inp=inp, inn=inn, out1="d1", out2="d2", tail="tail",
            polarity=spec.polarity, w=w_in, label="ota",
        )
        # Diode loads mirrored to the output branches.
        b.current_mirror(
            ref="d1", outs=("voutn",), rail=load_rail, polarity=load_pol,
            w=w_load, label="ota",
        )
        b.current_mirror(
            ref="d2", outs=("vout",), rail=load_rail, polarity=load_pol,
            w=w_load, label="ota",
        )
        # Output mirror at the tail rail folds voutn onto vout.
        b.current_mirror(
            ref="voutn", outs=("vout",), rail=tail_rail,
            polarity=spec.polarity, label="ota",
        )
        _tail(b, spec, "tail", tail_bias, rng)

    elif topology == "two_stage":
        b.diff_pair(
            inp=inp, inn=inn, out1="n1", out2="vo1", tail="tail",
            polarity=spec.polarity, w=w_in, label="ota",
        )
        _first_stage_load("n1", "vo1")
        _tail(b, spec, "tail", tail_bias, rng)
        # Second stage: common-source amplifier + current-source load.
        add_cs = b.pmos if spec.polarity == "n" else b.nmos
        add_ld = b.nmos if spec.polarity == "n" else b.pmos
        add_cs(b.fresh("mcs"), d="vout", g="vo1", s=load_rail, w=2 * w_in, label="ota")
        add_ld(b.fresh("mcsl"), d="vout", g=tail_bias, s=tail_rail, label="ota")
        # Miller compensation with zero-nulling resistor (CC-RC).
        b.rc_compensation(a="vo1", b="vout", label="ota")

    elif topology == "fully_differential":
        add_load = b.pmos if spec.polarity == "n" else b.nmos
        b.diff_pair(
            inp=inp, inn=inn, out1="voutn", out2="vout", tail="tail",
            polarity=spec.polarity, w=w_in, label="ota",
        )
        # Current-source loads biased from the CMFB node.
        add_load(b.fresh("mld"), d="voutn", g="cmfb", s=load_rail, w=w_load, label="ota")
        add_load(b.fresh("mld"), d="vout", g="cmfb", s=load_rail, w=w_load, label="ota")
        # Switched-capacitor CMFB sensor (matches CMF-SC).
        b.capacitor(p="voutn", n="cmfb", value=0.5e-12, label="ota")
        b.capacitor(p="vout", n="cmfb", value=0.5e-12, label="ota")
        _tail(b, spec, "tail", tail_bias, rng)

    elif topology == "class_ab":
        # Complementary input pairs push-pull into shared outputs —
        # the power-efficient class-AB OTAs of the paper's ref [21].
        b.diff_pair(
            inp=inp, inn=inn, out1="voutn", out2="vout", tail="tailn",
            polarity="n", w=w_in, label="ota",
        )
        b.diff_pair(
            inp=inp, inn=inn, out1="voutn", out2="vout", tail="tailp",
            polarity="p", w=2 * w_in, label="ota",
        )
        add_n = b.nmos
        add_p = b.pmos
        add_n(b.fresh("mtail"), d="tailn", g=vbn, s=GND, label="ota")
        add_p(b.fresh("mtail"), d="tailp", g=vbp, s=VDD, label="ota")

    else:  # pragma: no cover — guarded by OtaSpec validation
        raise DatasetError(f"unhandled topology {topology!r}")

    if spec.with_load_caps:
        value = float(rng.choice([0.2e-12, 1e-12, 5e-12]))
        b.capacitor(p="vout", n=GND, value=value, label="ota")

    if spec.with_sc_input:
        # Switched-capacitor sampling branch at the input — textbook
        # switched-cap OTA configurations put switch/cap structures in
        # the signal path, which is what lets the GCN recognize the SC
        # network of the composite filter testcase as "ota".
        n_units = int(rng.integers(1, 3))
        phi1, phi2 = "phi1", "phi2"
        for unit in range(n_units):
            top = f"sc{unit}_t"
            bot = f"sc{unit}_b"
            b.nmos(b.fresh("msw"), d="vin_raw", g=phi1, s=top, w=0.5e-6, label="ota")
            b.capacitor(p=top, n=bot, value=0.8e-12, label="ota")
            b.nmos(b.fresh("msw"), d=bot, g=phi1, s=GND, w=0.5e-6, label="ota")
            b.nmos(b.fresh("msw"), d=top, g=phi2, s=GND, w=0.5e-6, label="ota")
            b.nmos(b.fresh("msw"), d=bot, g=phi2, s="vinp", w=0.5e-6, label="ota")

    return b.finish(class_names=OTA_CLASSES)


def ota_variants(n: int, seed: object = "ota-train") -> list[OtaSpec]:
    """Sample ``n`` distinct-ish specs covering the variant space."""
    rng = seeded_rng(seed)
    specs: list[OtaSpec] = []
    for index in range(n):
        specs.append(
            OtaSpec(
                topology=str(rng.choice(TOPOLOGIES)),
                polarity=str(rng.choice(["n", "p"])),
                bias_style=str(
                    rng.choice(BIAS_STYLES, p=[0.5, 0.3, 0.2])
                ),
                load=str(rng.choice(LOAD_STYLES, p=[0.75, 0.25])),
                bias_mirror_outputs=int(rng.integers(0, 4)),
                bias_cascode=bool(rng.random() < 0.25),
                with_load_caps=bool(rng.random() < 0.8),
                with_input_buffer=bool(rng.random() < 0.2),
                with_sc_input=bool(rng.random() < 0.3),
                size_seed=index,
            )
        )
    return specs
