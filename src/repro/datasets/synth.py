"""Dataset assembly: the paper's Table I/II datasets, synthesized.

* OTA-bias training set: 624 circuits / 2 labels (Table I row 1)
* RF training set: 608 circuits / 3 labels (Table I row 2)
* OTA test set: 168 circuits (Table II row 1), disjoint seeds
* RF test set: 105 receivers (Table II row 3), disjoint seeds
* system testcases via :mod:`repro.datasets.systems`

:func:`build_samples` turns labeled circuits into GCN-ready
:class:`~repro.gcn.samples.GraphSample` lists;
:func:`pretrain_annotator` trains a recognition model end to end.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass

from repro.core.annotator import GcnAnnotator
from repro.datasets.components import LabeledCircuit, derive_net_labels
from repro.datasets.ota import OTA_CLASSES, generate_ota, ota_variants
from repro.datasets.rf import (
    LNA_TOPOLOGIES,
    MIXER_TOPOLOGIES,
    OSC_TOPOLOGIES,
    RF_CLASSES,
    generate_receiver,
    generate_single_block,
    receiver_variants,
)
from repro.exceptions import DatasetError
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.samples import GraphSample, train_validation_split
from repro.gcn.train import FaultTolerance, TrainConfig, train
from repro.graph.bipartite import CircuitGraph
from repro.runtime.cache import ModelCache, cache_enabled, fingerprint
from repro.runtime.parallel import parallel_map
from repro.spice.preprocess import preprocess
from repro.utils.rng import seeded_rng

#: Table I sizes.
OTA_TRAIN_SIZE = 624
RF_TRAIN_SIZE = 608
OTA_TEST_SIZE = 168
RF_TEST_SIZE = 105


def _generate_ota_item(payload) -> LabeledCircuit:
    """Top-level worker for :func:`parallel_map` (must be picklable)."""
    spec, name = payload
    return generate_ota(spec, name=name)


def generate_ota_bias_dataset(
    n: int = OTA_TRAIN_SIZE,
    seed: object = "ota-train",
    workers: int | None = None,
) -> list[LabeledCircuit]:
    """The OTA-bias dataset: OTA variants with signal/bias labels.

    Each circuit is seeded independently, so generation parallelizes
    over :func:`repro.runtime.parallel.parallel_map` without changing
    the output (``workers=1`` forces the serial path).
    """
    jobs = [
        (spec, f"ota{seed}_{i}")
        for i, spec in enumerate(ota_variants(n, seed=seed))
    ]
    return parallel_map(_generate_ota_item, jobs, workers=workers)


def _generate_rf_item(payload) -> LabeledCircuit:
    """Top-level worker for :func:`parallel_map` (must be picklable)."""
    if payload[0] == "single":
        _tag, kind, topology, seed_idx, name = payload
        return generate_single_block(kind, topology, seed=seed_idx, name=name)
    _tag, spec, name = payload
    return generate_receiver(spec, name=name)


def generate_rf_dataset(
    n: int = RF_TRAIN_SIZE,
    seed: object = "rf-train",
    workers: int | None = None,
) -> list[LabeledCircuit]:
    """The RF dataset: a mix of lone blocks and full receivers.

    Half the circuits are individual LNAs/mixers/oscillators (cleanly
    labeled single-class graphs), half are receivers combining them —
    matching the paper's "different RF circuits, with labels attached
    to elements that compose LNAs, mixers and oscillators (OSC)".
    The job list (kinds, specs, names) is drawn serially from the seeded
    rng, then the actual circuit synthesis fans out over the pool.
    """
    rng = seeded_rng((seed, "mix"))
    n_single = n // 2
    kinds = (
        [("lna", t) for t in LNA_TOPOLOGIES]
        + [("mixer", t) for t in MIXER_TOPOLOGIES]
        + [("osc", t) for t in OSC_TOPOLOGIES]
    )
    jobs: list[tuple] = []
    for i in range(n_single):
        kind, topology = kinds[int(rng.integers(0, len(kinds)))]
        jobs.append(("single", kind, topology, i, f"blk{seed}_{i}"))
    for i, spec in enumerate(receiver_variants(n - n_single, seed=seed)):
        jobs.append(("receiver", spec, f"rx{seed}_{i}"))
    return parallel_map(_generate_rf_item, jobs, workers=workers)


def generate_ota_test_set(
    n: int = OTA_TEST_SIZE, seed: object = "ota-test"
) -> list[LabeledCircuit]:
    """Held-out OTA circuits (different seed stream than training)."""
    return generate_ota_bias_dataset(n, seed=seed)


def generate_rf_test_set(
    n: int = RF_TEST_SIZE, seed: object = "rf-test"
) -> list[LabeledCircuit]:
    """Held-out receivers only (the paper's third test set combines
    LNAs, mixers, and oscillators in receivers)."""
    return [
        generate_receiver(spec, name=f"rxt{seed}_{i}")
        for i, spec in enumerate(receiver_variants(n, seed=seed))
    ]


@dataclass(frozen=True)
class DatasetSummary:
    """The columns of Table I / Table II for one dataset."""

    name: str
    n_circuits: int
    n_nodes: int
    n_labels: int
    n_features: int = 18


def summarize(name: str, dataset: list[LabeledCircuit]) -> DatasetSummary:
    """Count circuits/nodes/labels the way Table I reports them."""
    if not dataset:
        raise DatasetError("empty dataset")
    n_nodes = 0
    classes: set[str] = set()
    for item in dataset:
        graph = CircuitGraph.from_circuit(item.circuit)
        n_nodes += graph.n_vertices
        classes.update(item.device_labels.values())
    return DatasetSummary(
        name=name,
        n_circuits=len(dataset),
        n_nodes=n_nodes,
        n_labels=len(classes),
    )


def _build_one_sample(payload) -> GraphSample:
    """Top-level worker for :func:`parallel_map` (must be picklable)."""
    item, class_ids, levels, run_preprocess = payload
    circuit = item.circuit
    if run_preprocess:
        circuit, _report = preprocess(circuit)
    graph = CircuitGraph.from_circuit(circuit)
    labels = dict(item.device_labels)
    labels.update(derive_net_labels(graph, item.device_labels))
    int_labels = {
        name: class_ids[cls] for name, cls in labels.items() if cls in class_ids
    }
    return GraphSample.from_graph(graph, int_labels, levels=levels, seed=item.name)


def build_samples(
    dataset: list[LabeledCircuit],
    class_names: tuple[str, ...],
    levels: int = 2,
    run_preprocess: bool = False,
    workers: int | None = None,
) -> list[GraphSample]:
    """Labeled circuits → GCN samples.

    Vertex labels cover devices plus unambiguous nets (see
    :func:`~repro.datasets.components.derive_net_labels`); everything
    else is masked.  Classes outside ``class_names`` (e.g. "bpf" in a
    system testcase) are masked too — the GCN never trains on them.
    Sample construction (feature extraction + coarsening pyramids) is
    per-circuit independent, so it fans out over the process pool.
    """
    class_ids = {name: i for i, name in enumerate(class_names)}
    jobs = [(item, class_ids, levels, run_preprocess) for item in dataset]
    return parallel_map(_build_one_sample, jobs, workers=workers)


def task_classes(task: str) -> tuple[str, ...]:
    if task == "ota":
        return OTA_CLASSES
    if task == "rf":
        return RF_CLASSES
    raise DatasetError(f"unknown task {task!r} (expected 'ota' or 'rf')")


def training_fingerprint(
    task: str,
    train_size: int,
    seed: int,
    model_config: GCNConfig,
    train_config: TrainConfig,
) -> str:
    """Cache key for a fully resolved training spec.

    The trained weights are a pure function of these inputs (the
    datasets are generated from seeds), so the fingerprint is a safe
    content address for the resulting model.
    """
    return fingerprint(
        {
            "task": task,
            "classes": list(task_classes(task)),
            "train_size": train_size,
            "seed": seed,
            "model_config": model_config,
            "train_config": train_config,
        }
    )


def pretrain_annotator(
    task: str = "ota",
    quick: bool = True,
    seed: int = 0,
    model_config: GCNConfig | None = None,
    train_config: TrainConfig | None = None,
    train_size: int | None = None,
    cache: bool | None = None,
    workers: int | None = None,
    fault: FaultTolerance | None = None,
) -> GcnAnnotator:
    """Generate data, train the Fig. 4 GCN, and wrap it as an annotator.

    ``quick`` trades dataset size and epochs for runtime (interactive /
    test use); ``quick=False`` runs at paper scale.  Everything is
    seeded, so the "pretrained" model is reproducible bit-for-bit —
    which also makes it cacheable: with ``cache`` on (the default
    unless ``GANA_NO_CACHE`` is set), the trained model is stored under
    the runtime model cache keyed by
    :func:`training_fingerprint`, and later calls with the same spec
    load it in milliseconds instead of retraining.  ``workers``
    controls dataset-generation parallelism (``GANA_WORKERS`` /
    cpu count by default).

    ``fault`` configures training fault tolerance (see
    :class:`~repro.gcn.train.FaultTolerance`).  When omitted and the
    cache is on, training auto-checkpoints under the model cache's
    checkpoint directory keyed by the training fingerprint — a killed
    pretraining resumes from its last completed epoch, and the
    checkpoints are removed once the finished model is stored.
    Fault-tolerance knobs never enter the fingerprint, so the same
    spec resolves to the same cached model no matter how it recovers.
    """
    classes = task_classes(task)
    if train_size is None:
        full = OTA_TRAIN_SIZE if task == "ota" else RF_TRAIN_SIZE
        train_size = 72 if quick else full
    model_config = model_config or GCNConfig(
        n_classes=len(classes),
        filter_size=8 if quick else 32,
        channels=(16, 32) if quick else (32, 64),
        fc_size=64 if quick else 512,
        seed=seed,
    )
    train_config = train_config or TrainConfig(
        epochs=15 if quick else 60,
        batch_size=8,
        patience=5 if quick else 10,
        seed=seed,
    )
    use_cache = cache_enabled() if cache is None else cache
    key = training_fingerprint(task, train_size, seed, model_config, train_config)
    model_cache = ModelCache()
    if use_cache:
        cached = model_cache.load(key)
        if cached is not None:
            return cached
    # Partial-train resume: auto-checkpoint cache-backed trainings under
    # the fingerprint-keyed directory so a killed run picks up where it
    # stopped.  The directory is temporary — removed below once the
    # finished model lands in the cache proper.
    auto_checkpoints = fault is None and use_cache
    if auto_checkpoints:
        fault = FaultTolerance(
            checkpoint_dir=model_cache.checkpoint_dir_for(key),
            checkpoint_every=5,
        )

    dataset = (
        generate_ota_bias_dataset(
            train_size, seed=(seed, "ota-train"), workers=workers
        )
        if task == "ota"
        else generate_rf_dataset(
            train_size, seed=(seed, "rf-train"), workers=workers
        )
    )
    samples = build_samples(
        dataset,
        classes,
        levels=model_config.levels_needed or 2,
        workers=workers,
    )
    train_samples, val_samples = train_validation_split(
        samples, validation_fraction=0.2, seed=seed
    )
    model = GCNModel(model_config)
    train(model, train_samples, val_samples, train_config, fault=fault)
    annotator = GcnAnnotator(model=model, class_names=classes)
    if use_cache:
        model_cache.store(key, annotator)
    if auto_checkpoints and fault.checkpoint_dir is not None:
        # The finished model supersedes its in-flight checkpoints.
        shutil.rmtree(fault.checkpoint_dir, ignore_errors=True)
    return annotator
