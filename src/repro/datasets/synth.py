"""Dataset assembly: the paper's Table I/II datasets, synthesized.

* OTA-bias training set: 624 circuits / 2 labels (Table I row 1)
* RF training set: 608 circuits / 3 labels (Table I row 2)
* OTA test set: 168 circuits (Table II row 1), disjoint seeds
* RF test set: 105 receivers (Table II row 3), disjoint seeds
* system testcases via :mod:`repro.datasets.systems`

:func:`build_samples` turns labeled circuits into GCN-ready
:class:`~repro.gcn.samples.GraphSample` lists;
:func:`pretrain_annotator` trains a recognition model end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.annotator import GcnAnnotator
from repro.datasets.components import LabeledCircuit, derive_net_labels
from repro.datasets.ota import OTA_CLASSES, generate_ota, ota_variants
from repro.datasets.rf import (
    LNA_TOPOLOGIES,
    MIXER_TOPOLOGIES,
    OSC_TOPOLOGIES,
    RF_CLASSES,
    generate_receiver,
    generate_single_block,
    receiver_variants,
)
from repro.exceptions import DatasetError
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.samples import GraphSample, train_validation_split
from repro.gcn.train import TrainConfig, train
from repro.graph.bipartite import CircuitGraph
from repro.spice.preprocess import preprocess
from repro.utils.rng import seeded_rng

#: Table I sizes.
OTA_TRAIN_SIZE = 624
RF_TRAIN_SIZE = 608
OTA_TEST_SIZE = 168
RF_TEST_SIZE = 105


def generate_ota_bias_dataset(
    n: int = OTA_TRAIN_SIZE, seed: object = "ota-train"
) -> list[LabeledCircuit]:
    """The OTA-bias dataset: OTA variants with signal/bias labels."""
    return [
        generate_ota(spec, name=f"ota{seed}_{i}")
        for i, spec in enumerate(ota_variants(n, seed=seed))
    ]


def generate_rf_dataset(
    n: int = RF_TRAIN_SIZE, seed: object = "rf-train"
) -> list[LabeledCircuit]:
    """The RF dataset: a mix of lone blocks and full receivers.

    Half the circuits are individual LNAs/mixers/oscillators (cleanly
    labeled single-class graphs), half are receivers combining them —
    matching the paper's "different RF circuits, with labels attached
    to elements that compose LNAs, mixers and oscillators (OSC)".
    """
    rng = seeded_rng((seed, "mix"))
    out: list[LabeledCircuit] = []
    n_single = n // 2
    kinds = (
        [("lna", t) for t in LNA_TOPOLOGIES]
        + [("mixer", t) for t in MIXER_TOPOLOGIES]
        + [("osc", t) for t in OSC_TOPOLOGIES]
    )
    for i in range(n_single):
        kind, topology = kinds[int(rng.integers(0, len(kinds)))]
        out.append(
            generate_single_block(kind, topology, seed=i, name=f"blk{seed}_{i}")
        )
    for i, spec in enumerate(receiver_variants(n - n_single, seed=seed)):
        out.append(generate_receiver(spec, name=f"rx{seed}_{i}"))
    return out


def generate_ota_test_set(
    n: int = OTA_TEST_SIZE, seed: object = "ota-test"
) -> list[LabeledCircuit]:
    """Held-out OTA circuits (different seed stream than training)."""
    return generate_ota_bias_dataset(n, seed=seed)


def generate_rf_test_set(
    n: int = RF_TEST_SIZE, seed: object = "rf-test"
) -> list[LabeledCircuit]:
    """Held-out receivers only (the paper's third test set combines
    LNAs, mixers, and oscillators in receivers)."""
    return [
        generate_receiver(spec, name=f"rxt{seed}_{i}")
        for i, spec in enumerate(receiver_variants(n, seed=seed))
    ]


@dataclass(frozen=True)
class DatasetSummary:
    """The columns of Table I / Table II for one dataset."""

    name: str
    n_circuits: int
    n_nodes: int
    n_labels: int
    n_features: int = 18


def summarize(name: str, dataset: list[LabeledCircuit]) -> DatasetSummary:
    """Count circuits/nodes/labels the way Table I reports them."""
    if not dataset:
        raise DatasetError("empty dataset")
    n_nodes = 0
    classes: set[str] = set()
    for item in dataset:
        graph = CircuitGraph.from_circuit(item.circuit)
        n_nodes += graph.n_vertices
        classes.update(item.device_labels.values())
    return DatasetSummary(
        name=name,
        n_circuits=len(dataset),
        n_nodes=n_nodes,
        n_labels=len(classes),
    )


def build_samples(
    dataset: list[LabeledCircuit],
    class_names: tuple[str, ...],
    levels: int = 2,
    run_preprocess: bool = False,
) -> list[GraphSample]:
    """Labeled circuits → GCN samples.

    Vertex labels cover devices plus unambiguous nets (see
    :func:`~repro.datasets.components.derive_net_labels`); everything
    else is masked.  Classes outside ``class_names`` (e.g. "bpf" in a
    system testcase) are masked too — the GCN never trains on them.
    """
    class_ids = {name: i for i, name in enumerate(class_names)}
    samples: list[GraphSample] = []
    for item in dataset:
        circuit = item.circuit
        if run_preprocess:
            circuit, _report = preprocess(circuit)
        graph = CircuitGraph.from_circuit(circuit)
        labels = dict(item.device_labels)
        labels.update(derive_net_labels(graph, item.device_labels))
        int_labels = {
            name: class_ids[cls]
            for name, cls in labels.items()
            if cls in class_ids
        }
        samples.append(
            GraphSample.from_graph(
                graph, int_labels, levels=levels, seed=item.name
            )
        )
    return samples


def task_classes(task: str) -> tuple[str, ...]:
    if task == "ota":
        return OTA_CLASSES
    if task == "rf":
        return RF_CLASSES
    raise DatasetError(f"unknown task {task!r} (expected 'ota' or 'rf')")


def pretrain_annotator(
    task: str = "ota",
    quick: bool = True,
    seed: int = 0,
    model_config: GCNConfig | None = None,
    train_config: TrainConfig | None = None,
    train_size: int | None = None,
) -> GcnAnnotator:
    """Generate data, train the Fig. 4 GCN, and wrap it as an annotator.

    ``quick`` trades dataset size and epochs for runtime (interactive /
    test use); ``quick=False`` runs at paper scale.  Everything is
    seeded, so the "pretrained" model is reproducible bit-for-bit.
    """
    classes = task_classes(task)
    if train_size is None:
        full = OTA_TRAIN_SIZE if task == "ota" else RF_TRAIN_SIZE
        train_size = 72 if quick else full
    dataset = (
        generate_ota_bias_dataset(train_size, seed=(seed, "ota-train"))
        if task == "ota"
        else generate_rf_dataset(train_size, seed=(seed, "rf-train"))
    )
    model_config = model_config or GCNConfig(
        n_classes=len(classes),
        filter_size=8 if quick else 32,
        channels=(16, 32) if quick else (32, 64),
        fc_size=64 if quick else 512,
        seed=seed,
    )
    train_config = train_config or TrainConfig(
        epochs=15 if quick else 60,
        batch_size=8,
        patience=5 if quick else 10,
        seed=seed,
    )
    samples = build_samples(dataset, classes, levels=model_config.levels_needed or 2)
    train_samples, val_samples = train_validation_split(
        samples, validation_fraction=0.2, seed=seed
    )
    model = GCNModel(model_config)
    train(model, train_samples, val_samples, train_config)
    return GcnAnnotator(model=model, class_names=classes)
