"""Graclus-style greedy graph coarsening (Sec. III-B).

The paper's pooling uses "the greedy Graclus heuristic, built on top of
the Metis algorithm for multilevel clustering".  The operative part is
Graclus's greedy matching step: repeatedly pick an unmarked vertex and
merge it with the unmarked neighbour maximizing the normalized-cut
weight ``w_ij (1/d_i + 1/d_j)``; unmatched vertices become singleton
clusters.  Applied recursively this roughly halves the graph at every
level, giving the multilevel clustering the pool layers consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graph.laplacian import normalized_laplacian, rescaled_laplacian


def graclus_matching(adjacency: sp.spmatrix, rng) -> np.ndarray:
    """One level of greedy normalized-cut matching.

    Returns ``assign``: fine vertex → coarse cluster id (clusters have
    one or two members).  ``rng`` shuffles the visit order, as Graclus
    prescribes, so coarsenings differ between seeds but are fully
    reproducible for a fixed one.
    """
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    n = adjacency.shape[0]
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_deg = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-12), 0.0)

    order = rng.permutation(n)
    matched = np.full(n, -1, dtype=np.int64)
    next_cluster = 0
    indptr, indices, data = adjacency.indptr, adjacency.indices, adjacency.data

    for vertex in order:
        if matched[vertex] >= 0:
            continue
        best_neighbor = -1
        best_score = -np.inf
        for idx in range(indptr[vertex], indptr[vertex + 1]):
            neighbor = indices[idx]
            if neighbor == vertex or matched[neighbor] >= 0:
                continue
            score = data[idx] * (inv_deg[vertex] + inv_deg[neighbor])
            if score > best_score:
                best_score = score
                best_neighbor = neighbor
        matched[vertex] = next_cluster
        if best_neighbor >= 0:
            matched[best_neighbor] = next_cluster
        next_cluster += 1
    return matched


def coarsen_adjacency(adjacency: sp.spmatrix, assign: np.ndarray) -> sp.csr_matrix:
    """Collapse an adjacency through a cluster assignment.

    ``W_c = Sᵀ W S`` with the diagonal (intra-cluster weight) removed,
    since self-loops carry no information for the next matching or for
    the Laplacian.
    """
    n = adjacency.shape[0]
    n_coarse = int(assign.max()) + 1 if assign.size else 0
    selector = sp.csr_matrix(
        (np.ones(n), (np.arange(n), assign)), shape=(n, n_coarse)
    )
    coarse = (selector.T @ adjacency @ selector).tocsr()
    coarse.setdiag(0)
    coarse.eliminate_zeros()
    return coarse


@dataclass
class CoarseningPyramid:
    """All levels of a multilevel clustering of one graph.

    ``adjacencies[0]`` is the input graph; ``assignments[ℓ]`` maps
    level-ℓ vertices to level-(ℓ+1) clusters; ``laplacians[ℓ]`` is the
    rescaled normalized Laplacian at each level, ready for ChebConv.
    """

    adjacencies: list[sp.csr_matrix]
    assignments: list[np.ndarray]
    laplacians: list[sp.csr_matrix]

    @property
    def n_levels(self) -> int:
        return len(self.adjacencies)

    def sizes(self) -> list[int]:
        return [a.shape[0] for a in self.adjacencies]


def build_pyramid(
    adjacency: sp.spmatrix, levels: int, rng
) -> CoarseningPyramid:
    """Coarsen ``levels`` times and precompute every level's Laplacian."""
    adjacencies = [sp.csr_matrix(adjacency, dtype=np.float64)]
    assignments: list[np.ndarray] = []
    for _ in range(levels):
        current = adjacencies[-1]
        if current.shape[0] <= 1:
            break
        assign = graclus_matching(current, rng)
        assignments.append(assign)
        adjacencies.append(coarsen_adjacency(current, assign))
    laplacians = [
        rescaled_laplacian(normalized_laplacian(a)) for a in adjacencies
    ]
    return CoarseningPyramid(
        adjacencies=adjacencies, assignments=assignments, laplacians=laplacians
    )
