"""Chebyshev polynomial machinery for spectral graph filters (Eq. 3–5).

The order-K filter ``g_θ(L) x = Σ_k θ_k T_k(L̂) x`` is evaluated with the
three-term recurrence ``T_k(x) = 2 x T_{k-1}(x) − T_{k-2}(x)``, costing
K sparse multiplications — the O(Kn) evaluation the paper relies on.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def chebyshev_polynomial(k: int, x: np.ndarray | float) -> np.ndarray | float:
    """Scalar/elementwise Chebyshev polynomial ``T_k(x)`` (Eq. 4).

    Used by tests to validate the operator recurrence against the
    closed form ``T_k(cos θ) = cos(k θ)``.
    """
    if k < 0:
        raise ValueError("Chebyshev order must be non-negative")
    if k == 0:
        return np.ones_like(x) if isinstance(x, np.ndarray) else 1.0
    if k == 1:
        return x
    t_prev, t_cur = (np.ones_like(x) if isinstance(x, np.ndarray) else 1.0), x
    for _ in range(2, k + 1):
        t_prev, t_cur = t_cur, 2 * x * t_cur - t_prev
    return t_cur


def chebyshev_basis(
    laplacian: sp.spmatrix, x: np.ndarray, order: int
) -> np.ndarray:
    """Stack ``[T_0(L̂)x, …, T_{K-1}(L̂)x]`` along a new leading axis.

    ``laplacian`` must already be rescaled to spectrum ⊆ [−1, 1]
    (:func:`repro.graph.rescaled_laplacian`).  ``x`` is (n, F); the
    result is (K, n, F).
    """
    if order < 1:
        raise ValueError("Chebyshev order K must be >= 1")
    n, f = x.shape
    basis = np.empty((order, n, f), dtype=np.float64)
    basis[0] = x
    if order > 1:
        basis[1] = laplacian @ x
    for k in range(2, order):
        basis[k] = 2.0 * (laplacian @ basis[k - 1]) - basis[k - 2]
    return basis


def chebyshev_basis_backward(
    laplacian: sp.spmatrix, grad_basis: np.ndarray
) -> np.ndarray:
    """Reverse-mode gradient of :func:`chebyshev_basis` w.r.t. ``x``.

    Given upstream gradients ``G_k = ∂loss/∂T_k(L̂)x`` of shape
    (K, n, F), propagates the recurrence backwards (L̂ is symmetric so
    each adjoint multiplies by L̂ itself), again in K sparse products:

        for k = K−1 … 2:  G_{k−1} += 2 L̂ G_k ;  G_{k−2} −= G_k
        ∂loss/∂x = G_0 + L̂ G_1
    """
    grad = np.array(grad_basis, dtype=np.float64, copy=True)
    order = grad.shape[0]
    for k in range(order - 1, 1, -1):
        grad[k - 1] += 2.0 * (laplacian @ grad[k])
        grad[k - 2] -= grad[k]
    out = grad[0]
    if order > 1:
        out = out + (laplacian @ grad[1])
    return out


def filter_signal(
    laplacian: sp.spmatrix, x: np.ndarray, theta: np.ndarray
) -> np.ndarray:
    """Apply a single scalar Chebyshev filter ``Σ_k θ_k T_k(L̂) x``.

    This is Eq. 5 verbatim — one filter, one input channel — useful for
    spectral-analysis demos and for validating ChebConv against the
    dense Fourier-domain evaluation ``U g_θ(Λ) Uᵀ x`` (Eq. 2).
    """
    theta = np.asarray(theta, dtype=np.float64)
    basis = chebyshev_basis(laplacian, x.reshape(-1, 1), order=len(theta))
    return np.tensordot(theta, basis[:, :, 0], axes=1)
