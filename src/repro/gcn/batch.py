"""Block-diagonal minibatch packing for the recognition GCN.

Graphs have varying vertex counts, so per-sample training loops pay B
separate Chebyshev recurrences and B small GEMMs per minibatch.  The
standard batched-GNN trick packs the B samples into *one* virtual graph
whose Laplacian is block diagonal::

    L_packed = diag(L_0, L_1, …, L_{B-1})        (CSR, per level)
    X_packed = vstack(X_0, …, X_{B-1})           (Σn_i, F)

Because the blocks are disconnected, ``L_packed @ X_packed`` computes
every sample's sparse product in one call, the three-term Chebyshev
recurrence runs once for the whole batch, and every dense layer sees a
single tall GEMM instead of B short ones.  Cluster assignments are
concatenated with per-sample *coarse* offsets so pooling/unpooling stay
within their own block.

Numerical equivalence to the per-sample path: every graph-structured
operation is *bitwise* identical — CSR matmul is row-by-row (a block's
rows only touch that block's columns, in the same nnz order), pooling
and unpooling are cluster-local, and BatchNorm/Dropout consult
``offsets`` to reproduce the per-sample statistics and RNG stream
segment by segment (see ``layers.py``).  The dense GEMMs agree to fp64
rounding: BLAS kernels are row-invariant for most shapes but *not*
guaranteed to be (OpenBLAS picks different kernels for narrow outputs
such as the ``n_classes``-wide head), so packed logits can differ from
per-sample logits by ~1 ulp.  Class predictions (argmax) are identical
in practice; golden tests pin argmax equality exactly and logits to
tight fp64 tolerance.  Parameter-gradient accumulation likewise
differs only by float summation order.

``offsets[ℓ]`` is the (B+1,) vertex-boundary array at coarsening level
ℓ: sample ``i`` owns packed rows ``offsets[ℓ][i]:offsets[ℓ][i+1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ModelConfigError
from repro.gcn.chebyshev import chebyshev_basis
from repro.gcn.layers import SampleContext
from repro.gcn.samples import GraphSample


def block_diag_csr(blocks: list[sp.csr_matrix]) -> sp.csr_matrix:
    """CSR block-diagonal of square CSR blocks, preserving nnz order.

    Rows keep their within-block column order (scipy canonicalizes to
    sorted indices, which each block already has), so a row of the
    packed product accumulates in exactly the per-sample order — the
    bitwise-parity guarantee the golden tests rely on.
    """
    if len(blocks) == 1:
        return blocks[0]
    # Direct CSR concatenation: stacked row pointers, column indices
    # shifted by each block's diagonal offset.  Equivalent to
    # ``sp.block_diag(blocks, format="csr")`` but skips the COO
    # round-trip, which dominated pack time (~6x slower) at minibatch
    # scale.
    sizes = [b.shape[0] for b in blocks]
    n = sum(sizes)
    idx_dtype = np.result_type(*(b.indices.dtype for b in blocks))
    col_offsets = np.cumsum([0] + sizes[:-1], dtype=idx_dtype)
    nnz_offsets = np.cumsum(
        [0] + [b.nnz for b in blocks[:-1]], dtype=idx_dtype
    )
    data = np.concatenate([b.data for b in blocks])
    indices = np.concatenate(
        [b.indices.astype(idx_dtype, copy=False) + off
         for b, off in zip(blocks, col_offsets)]
    )
    indptr = np.concatenate(
        [np.zeros(1, dtype=idx_dtype)]
        + [b.indptr[1:].astype(idx_dtype, copy=False) + off
           for b, off in zip(blocks, nnz_offsets)]
    )
    # The arrays are valid canonical CSR by construction, so skip the
    # constructor's format checks and index-dtype scans (a measurable
    # share of pack time); fall back to the checking constructor if the
    # private fast path ever disappears.
    try:
        out = sp.csr_matrix.__new__(sp.csr_matrix)
        out.data = data
        out.indices = indices
        out.indptr = indptr
        out._shape = (n, n)
        return out
    except AttributeError:  # pragma: no cover - scipy internals moved
        return sp.csr_matrix((data, indices, indptr), shape=(n, n))


@dataclass
class PackedPyramid:
    """Coarsening pyramid of a packed batch: block-diagonal Laplacians
    plus offset-shifted cluster assignments at every shared level."""

    laplacians: list[sp.csr_matrix]
    assignments: list[np.ndarray]


@dataclass
class PackedBatch:
    """B graph samples packed into one block-diagonal virtual sample."""

    samples: list[GraphSample]
    features: np.ndarray  # (Σn_i, F) vstacked
    labels: np.ndarray  # (Σn_i,) concatenated
    mask: np.ndarray  # (Σn_i,) concatenated
    pyramid: PackedPyramid
    offsets: list[np.ndarray]  # per level: (B+1,) vertex boundaries
    #: Packed-lifetime memo (the packed first-layer Chebyshev basis);
    #: mirrors :attr:`GraphSample.runtime_cache`.
    runtime_cache: dict = field(default_factory=dict)

    @property
    def n_graphs(self) -> int:
        return len(self.samples)

    @property
    def n_vertices(self) -> int:
        return self.features.shape[0]

    @property
    def name(self) -> str:
        return "+".join(sample.name for sample in self.samples)

    def context(self) -> SampleContext:
        """Fresh per-forward context carrying the segment offsets."""
        return SampleContext(
            laplacians=self.pyramid.laplacians,
            assignments=self.pyramid.assignments,
            cache=self.runtime_cache,
            offsets=self.offsets,
        )

    def split(self, array: np.ndarray) -> list[np.ndarray]:
        """Slice a packed level-0 row array back into per-sample views."""
        bounds = self.offsets[0]
        return [
            array[bounds[i] : bounds[i + 1]] for i in range(self.n_graphs)
        ]

    def seed_input_basis(self, order: int) -> None:
        """Populate the packed first-layer Chebyshev-basis cache.

        The basis depends only on each sample's fixed Laplacian and
        features, never on the weights, so it is shared across every
        epoch *and* every batch composition.  Strategy:

        * all samples cold → one packed recurrence over the
          block-diagonal Laplacian, then store per-sample views back on
          each :attr:`GraphSample.runtime_cache` for later repackings;
        * any sample warm → fill the cold ones individually and vstack
          (one concatenate instead of K sparse products).

        Both routes produce bitwise-identical packed flats.
        """
        lap0 = self.pyramid.laplacians[0]
        packed = self.runtime_cache.get("cheb-input-flat")
        if (
            packed is not None
            and packed[0] is self.features
            and packed[1] is lap0
            and packed[2] == order
        ):
            return

        def _cached_flat(sample: GraphSample) -> np.ndarray | None:
            entry = sample.runtime_cache.get("cheb-input-flat")
            if (
                entry is not None
                and entry[0] is sample.features
                and entry[1] is sample.pyramid.laplacians[0]
                and entry[2] == order
            ):
                return entry[3]
            return None

        n_features = self.features.shape[1]
        per_sample = [_cached_flat(sample) for sample in self.samples]
        if all(flat is None for flat in per_sample):
            basis = chebyshev_basis(lap0, self.features, order)
            flat = basis.transpose(1, 0, 2).reshape(
                self.n_vertices, order * n_features
            )
            bounds = self.offsets[0]
            for i, sample in enumerate(self.samples):
                sample.runtime_cache["cheb-input-flat"] = (
                    sample.features,
                    sample.pyramid.laplacians[0],
                    order,
                    flat[bounds[i] : bounds[i + 1]],
                )
        else:
            for i, sample in enumerate(self.samples):
                if per_sample[i] is None:
                    basis = chebyshev_basis(
                        sample.pyramid.laplacians[0], sample.features, order
                    )
                    per_sample[i] = basis.transpose(1, 0, 2).reshape(
                        sample.n_vertices, order * n_features
                    )
                    sample.runtime_cache["cheb-input-flat"] = (
                        sample.features,
                        sample.pyramid.laplacians[0],
                        order,
                        per_sample[i],
                    )
            flat = np.vstack(per_sample)
        self.runtime_cache["cheb-input-flat"] = (
            self.features, lap0, order, flat,
        )


def pack_samples(samples: list[GraphSample]) -> PackedBatch:
    """Pack B samples into one block-diagonal :class:`PackedBatch`.

    Packs the deepest pyramid prefix *every* sample carries; a model
    needing more levels fails with the same :class:`ModelConfigError`
    the per-sample path raises.
    """
    if not samples:
        raise ModelConfigError("cannot pack an empty sample batch")
    levels = min(len(s.pyramid.assignments) for s in samples)

    offsets: list[np.ndarray] = []
    laplacians: list[sp.csr_matrix] = []
    for level in range(levels + 1):
        blocks = [s.pyramid.laplacians[level] for s in samples]
        sizes = np.array([b.shape[0] for b in blocks], dtype=np.int64)
        offsets.append(np.concatenate([[0], np.cumsum(sizes)]))
        laplacians.append(block_diag_csr(blocks))

    assignments: list[np.ndarray] = []
    for level in range(levels):
        coarse_bounds = offsets[level + 1]
        assignments.append(
            np.concatenate(
                [
                    s.pyramid.assignments[level] + coarse_bounds[i]
                    for i, s in enumerate(samples)
                ]
            )
        )

    return PackedBatch(
        samples=list(samples),
        features=np.vstack([s.features for s in samples]),
        labels=np.concatenate([s.labels for s in samples]),
        mask=np.concatenate([s.mask for s in samples]),
        pyramid=PackedPyramid(laplacians=laplacians, assignments=assignments),
        offsets=offsets,
    )
