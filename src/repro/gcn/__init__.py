"""Spectral Chebyshev GCN built from scratch on numpy/scipy.

This subpackage is the paper's "TensorFlow GCN" substrate rebuilt for
an offline environment: Chebyshev filters (Eq. 3–5), Graclus
coarsening + pooling, manual backprop layers, Adam/SGD, a trainer with
early stopping, and random-search hyperparameter optimization.
"""

from repro.gcn.batch import PackedBatch, PackedPyramid, pack_samples
from repro.gcn.chebyshev import (
    chebyshev_basis,
    chebyshev_basis_backward,
    chebyshev_polynomial,
    filter_signal,
)
from repro.gcn.coarsening import (
    CoarseningPyramid,
    build_pyramid,
    coarsen_adjacency,
    graclus_matching,
)
from repro.gcn.embed import (
    dataset_embeddings,
    fisher_separation,
    pca_project,
    separation_report,
    vertex_embeddings,
)
from repro.gcn.hyperopt import SearchResult, SearchSpace, Trial, random_search
from repro.gcn.layers import (
    BatchNorm,
    ChebConv,
    Dense,
    Dropout,
    GraphPool,
    GraphUnpool,
    ReLU,
    SampleContext,
    Tanh,
)
from repro.gcn.loss import (
    batched_cross_entropy,
    cross_entropy,
    l2_penalty,
    softmax,
)
from repro.gcn.metrics import (
    ClassReport,
    classification_report,
    accuracy,
    class_report,
    confusion_matrix,
    mean_and_variance,
)
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.optim import SGD, Adam
from repro.gcn.samples import (
    GraphSample,
    class_weights,
    kfold_indices,
    train_validation_split,
)
from repro.gcn.train import (
    History,
    TrainConfig,
    cross_validate,
    evaluate,
    evaluate_confusion,
    train,
)

__all__ = [
    "Adam",
    "BatchNorm",
    "ChebConv",
    "ClassReport",
    "CoarseningPyramid",
    "Dense",
    "Dropout",
    "GCNConfig",
    "GCNModel",
    "GraphPool",
    "GraphSample",
    "GraphUnpool",
    "History",
    "PackedBatch",
    "PackedPyramid",
    "ReLU",
    "SGD",
    "SampleContext",
    "SearchResult",
    "SearchSpace",
    "Tanh",
    "TrainConfig",
    "Trial",
    "accuracy",
    "batched_cross_entropy",
    "build_pyramid",
    "chebyshev_basis",
    "chebyshev_basis_backward",
    "chebyshev_polynomial",
    "class_report",
    "classification_report",
    "class_weights",
    "coarsen_adjacency",
    "confusion_matrix",
    "cross_entropy",
    "cross_validate",
    "dataset_embeddings",
    "fisher_separation",
    "pca_project",
    "separation_report",
    "vertex_embeddings",
    "evaluate",
    "evaluate_confusion",
    "filter_signal",
    "graclus_matching",
    "kfold_indices",
    "l2_penalty",
    "mean_and_variance",
    "pack_samples",
    "random_search",
    "softmax",
    "train",
    "train_validation_split",
]
