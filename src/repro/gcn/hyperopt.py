"""Random-search hyperparameter optimization (Sec. V-A).

"a random search method is used to optimize hyperparameters such as the
learning rate, regularization, decay rate, and filter size."  Each trial
samples a point from :class:`SearchSpace`, trains on the training
split, and is scored by validation accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.samples import GraphSample
from repro.gcn.train import TrainConfig, evaluate, train
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class SearchSpace:
    """Ranges the random search draws from.

    ``lr`` and ``weight_decay`` are sampled log-uniformly; the discrete
    dimensions uniformly.
    """

    lr: tuple[float, float] = (3e-4, 3e-2)
    weight_decay: tuple[float, float] = (1e-6, 1e-3)
    lr_decay: tuple[float, float] = (0.9, 1.0)
    dropout: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.5)
    filter_size: tuple[int, ...] = (4, 8, 16, 32, 48)


@dataclass
class Trial:
    """One random-search draw and its outcome."""

    model_config: GCNConfig
    train_config: TrainConfig
    val_accuracy: float = 0.0


@dataclass
class SearchResult:
    """All trials plus the winner."""

    trials: list[Trial] = field(default_factory=list)

    @property
    def best(self) -> Trial:
        return max(self.trials, key=lambda t: t.val_accuracy)


def random_search(
    base_model: GCNConfig,
    base_train: TrainConfig,
    train_samples: list[GraphSample],
    val_samples: list[GraphSample],
    n_trials: int = 10,
    space: SearchSpace | None = None,
    seed: object = 0,
) -> SearchResult:
    """Run ``n_trials`` random draws; returns every trial, best first
    available via :attr:`SearchResult.best`.

    Note: trials that request more coarsening levels than the samples
    carry are skipped defensively (samples are built for a fixed level
    count); keep ``filter_size`` the only model dimension searched when
    samples were prebuilt with ``levels == base_model.n_layers``.
    """
    space = space or SearchSpace()
    rng = seeded_rng(("hyperopt", seed))
    result = SearchResult()
    for trial_idx in range(n_trials):
        lr = _log_uniform(rng, *space.lr)
        weight_decay = _log_uniform(rng, *space.weight_decay)
        lr_decay = float(rng.uniform(*space.lr_decay))
        dropout = float(rng.choice(space.dropout))
        filter_size = int(rng.choice(space.filter_size))

        model_config = base_model.with_(
            dropout=dropout, filter_size=filter_size, seed=base_model.seed + trial_idx
        )
        train_config = TrainConfig(
            epochs=base_train.epochs,
            batch_size=base_train.batch_size,
            lr=lr,
            weight_decay=weight_decay,
            lr_decay=lr_decay,
            optimizer=base_train.optimizer,
            patience=base_train.patience,
            balance_classes=base_train.balance_classes,
            seed=base_train.seed + trial_idx,
        )
        model = GCNModel(model_config)
        train(model, train_samples, val_samples, train_config)
        accuracy = evaluate(model, val_samples)
        result.trials.append(
            Trial(model_config=model_config, train_config=train_config, val_accuracy=accuracy)
        )
    return result


def _log_uniform(rng, low: float, high: float) -> float:
    return float(np.exp(rng.uniform(np.log(low), np.log(high))))
