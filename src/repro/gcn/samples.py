"""Training-sample container: one labeled circuit graph per sample.

A :class:`GraphSample` bundles everything the GCN needs for one
circuit: the 18-feature matrix, per-vertex integer labels with a
validity mask, and the precomputed coarsening pyramid (Laplacians +
cluster assignments at every level).  Building the pyramid once per
sample keeps training O(K·E) per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gcn.coarsening import CoarseningPyramid, build_pyramid
from repro.gcn.layers import SampleContext
from repro.graph.bipartite import CircuitGraph
from repro.graph.features import NetRole, feature_matrix
from repro.utils.rng import seeded_rng


@dataclass
class GraphSample:
    """One labeled circuit graph, ready for the GCN."""

    name: str
    features: np.ndarray  # (n, 18)
    labels: np.ndarray  # (n,) int class ids, -1 where unlabeled
    mask: np.ndarray  # (n,) bool — True where the label counts
    pyramid: CoarseningPyramid
    graph: CircuitGraph | None = None
    #: Sample-lifetime memo shared by every forward pass (epochs and
    #: evaluation alike): holds the first-layer Chebyshev basis, which
    #: depends only on the fixed Laplacian + features, never on weights.
    runtime_cache: dict = field(default_factory=dict)

    def __getstate__(self) -> dict:
        """Pickle without the runtime memo — workers rebuild it lazily."""
        state = self.__dict__.copy()
        state["runtime_cache"] = {}
        return state

    @property
    def n_vertices(self) -> int:
        return self.features.shape[0]

    def context(self) -> SampleContext:
        """Fresh per-forward context (pool level resets to 0)."""
        return SampleContext(
            laplacians=self.pyramid.laplacians,
            assignments=self.pyramid.assignments,
            cache=self.runtime_cache,
        )

    @classmethod
    def from_graph(
        cls,
        graph: CircuitGraph,
        labels: dict[str, int],
        levels: int = 2,
        net_roles: dict[str, NetRole] | None = None,
        seed: object = 0,
        keep_graph: bool = True,
    ) -> "GraphSample":
        """Build a sample from a circuit graph and a name→class map.

        ``labels`` maps device names and/or net names to class ids;
        vertices missing from the map are masked out of the loss (this
        is how boundary nets that belong to multiple sub-blocks are
        handled).
        """
        rng = seeded_rng(("coarsen", seed, graph.circuit.name))
        features = feature_matrix(graph, net_roles=net_roles)
        n = graph.n_vertices
        label_array = np.full(n, -1, dtype=np.int64)
        mask = np.zeros(n, dtype=bool)
        for vertex in range(n):
            name = graph.vertex_name(vertex)
            if name in labels:
                label_array[vertex] = labels[name]
                mask[vertex] = True
        pyramid = build_pyramid(graph.adjacency(), levels=levels, rng=rng)
        return cls(
            name=graph.circuit.name,
            features=features,
            labels=label_array,
            mask=mask,
            pyramid=pyramid,
            graph=graph if keep_graph else None,
        )


def class_weights(samples: list[GraphSample], n_classes: int) -> np.ndarray:
    """Inverse-frequency class weights, normalized to mean 1.

    The OTA-bias datasets are imbalanced (signal-path vertices outnumber
    bias vertices); weighting keeps the minority class from being
    ignored.
    """
    counts = np.zeros(n_classes, dtype=np.float64)
    for sample in samples:
        valid = sample.labels[sample.mask]
        for cls_id in range(n_classes):
            counts[cls_id] += (valid == cls_id).sum()
    counts = np.maximum(counts, 1.0)
    weights = counts.sum() / (n_classes * counts)
    return weights / weights.mean()


def train_validation_split(
    samples: list[GraphSample], validation_fraction: float = 0.2, seed: object = 0
) -> tuple[list[GraphSample], list[GraphSample]]:
    """Shuffled 80/20 split (the paper's training/validation ratio)."""
    rng = seeded_rng(("split", seed))
    order = rng.permutation(len(samples))
    n_val = max(1, int(round(len(samples) * validation_fraction)))
    val_idx = set(order[:n_val].tolist())
    train = [s for i, s in enumerate(samples) if i not in val_idx]
    val = [s for i, s in enumerate(samples) if i in val_idx]
    return train, val


def kfold_indices(n: int, folds: int, seed: object = 0) -> list[np.ndarray]:
    """Index arrays for k-fold cross validation (paper uses five-fold)."""
    rng = seeded_rng(("kfold", seed, folds))
    order = rng.permutation(n)
    return [order[i::folds] for i in range(folds)]
