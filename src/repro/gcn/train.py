"""Training loop for the recognition GCN.

Graphs have varying vertex counts, so a "minibatch" is a set of whole
graphs: gradients are accumulated sample-by-sample, scaled by the batch
size, and applied in one optimizer step.  Early stopping keeps the
best-validation-accuracy parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelConfigError
from repro.gcn.batch import pack_samples
from repro.gcn.loss import batched_cross_entropy, cross_entropy
from repro.gcn.metrics import confusion_matrix
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.optim import Adam, Optimizer, SGD
from repro.gcn.samples import GraphSample, class_weights
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class TrainConfig:
    """Optimization hyperparameters (the random-search dimensions of
    Sec. V-A are ``lr``, ``weight_decay``, ``lr_decay``, and the model's
    ``filter_size``)."""

    epochs: int = 40
    batch_size: int = 8
    lr: float = 3e-3
    weight_decay: float = 5e-5
    lr_decay: float = 0.98  # per-epoch multiplicative decay
    optimizer: str = "adam"  # "adam" | "sgd"
    momentum: float = 0.9
    patience: int = 10  # early-stopping patience in epochs; 0 disables
    balance_classes: bool = True
    seed: int = 0
    verbose: bool = False
    #: Pack each minibatch into one block-diagonal forward/backward
    #: (see ``gcn/batch.py``).  Numerically equivalent to the
    #: per-sample loop; ``False`` forces the reference path.
    batched: bool = True


@dataclass
class History:
    """Per-epoch training curves plus wall-clock bookkeeping."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    seconds: float = 0.0
    best_epoch: int = -1

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else 0.0


def _make_optimizer(model: GCNModel, config: TrainConfig) -> Optimizer:
    slots = model.parameter_slots()
    if config.optimizer == "adam":
        return Adam(slots, lr=config.lr, weight_decay=config.weight_decay)
    if config.optimizer == "sgd":
        return SGD(
            slots,
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
    raise ModelConfigError(f"unknown optimizer {config.optimizer!r}")


#: Packed-inference chunk size for evaluation: large enough to amortize
#: the per-call overhead, small enough to keep the packed Laplacians in
#: cache.
_EVAL_CHUNK = 32


def evaluate(model: GCNModel, samples: list[GraphSample]) -> float:
    """Vertex accuracy over a sample list (masked vertices excluded).

    Runs packed inference in chunks; per-graph predictions match
    per-sample :meth:`GCNModel.predict` calls.
    """
    packs = [
        pack_samples(samples[start : start + _EVAL_CHUNK])
        for start in range(0, len(samples), _EVAL_CHUNK)
    ]
    return _evaluate_packed(model, packs)


def _evaluate_packed(model: GCNModel, packs: list) -> float:
    """Accuracy over pre-packed evaluation chunks.

    The training loop packs its validation chunks once and reuses them
    every epoch — the packed Laplacians and the first-layer Chebyshev
    basis cache stay warm across epochs.
    """
    correct = 0
    total = 0
    for packed in packs:
        logits = model.forward_packed(packed, training=False)
        predictions = logits.argmax(axis=1)
        correct += int(((predictions == packed.labels) & packed.mask).sum())
        total += int(packed.mask.sum())
    return correct / total if total else 1.0


def evaluate_confusion(
    model: GCNModel, samples: list[GraphSample], n_classes: int
) -> np.ndarray:
    """Pooled confusion matrix over a sample list."""
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for sample in samples:
        predictions = model.predict(sample)
        matrix += confusion_matrix(
            predictions, sample.labels, n_classes, sample.mask
        )
    return matrix


def train(
    model: GCNModel,
    train_samples: list[GraphSample],
    val_samples: list[GraphSample] | None = None,
    config: TrainConfig | None = None,
) -> History:
    """Train ``model`` in place; returns the training history.

    With ``val_samples`` and ``patience > 0``, the model is restored to
    its best-validation-epoch parameters before returning.
    """
    config = config or TrainConfig()
    if not train_samples:
        raise ModelConfigError("no training samples")
    optimizer = _make_optimizer(model, config)
    rng = seeded_rng(("train-shuffle", config.seed))
    weights = (
        class_weights(train_samples, model.config.n_classes)
        if config.balance_classes
        else None
    )

    history = History()
    best_state: dict[str, np.ndarray] | None = None
    epochs_since_best = 0
    # Validation chunks are packed once and reused every epoch.
    val_packs = (
        [
            pack_samples(val_samples[i : i + _EVAL_CHUNK])
            for i in range(0, len(val_samples), _EVAL_CHUNK)
        ]
        if val_samples is not None
        else []
    )
    start = time.perf_counter()

    for epoch in range(config.epochs):
        order = rng.permutation(len(train_samples))
        epoch_loss = 0.0
        epoch_correct = 0
        epoch_total = 0
        for batch_start in range(0, len(order), config.batch_size):
            batch = order[batch_start : batch_start + config.batch_size]
            model.zero_grad()
            if config.batched and len(batch) > 1:
                # Block-diagonal packing: one forward/backward serves
                # the whole minibatch.  Repacked per batch, so the
                # shuffled composition is respected every epoch.
                packed = pack_samples([train_samples[i] for i in batch])
                logits = model.forward_packed(packed, training=True)
                losses, counts, grad = batched_cross_entropy(
                    logits, packed.labels, packed.mask,
                    packed.offsets[0], weights,
                )
                model.backward(grad / len(batch))
                epoch_loss += float(losses @ counts)
                predictions = logits.argmax(axis=1)
                epoch_correct += int(
                    ((predictions == packed.labels) & packed.mask).sum()
                )
                epoch_total += int(counts.sum())
            else:
                for sample_idx in batch:
                    sample = train_samples[sample_idx]
                    logits = model.forward(sample, training=True)
                    loss, grad = cross_entropy(
                        logits, sample.labels, sample.mask, weights
                    )
                    model.backward(grad / len(batch))
                    epoch_loss += loss * int(sample.mask.sum())
                    predictions = logits.argmax(axis=1)
                    epoch_correct += int(
                        (predictions[sample.mask] == sample.labels[sample.mask]).sum()
                    )
                    epoch_total += int(sample.mask.sum())
            optimizer.step()
        optimizer.decay_lr(config.lr_decay)

        # Loss and accuracy share one denominator: the epoch's masked
        # vertex count.  A degenerate epoch (every vertex masked out)
        # reports a perfect accuracy and zero loss consistently.
        if epoch_total:
            train_acc = epoch_correct / epoch_total
            history.train_loss.append(epoch_loss / epoch_total)
        else:
            train_acc = 1.0
            history.train_loss.append(0.0)
        history.train_accuracy.append(train_acc)

        if val_samples is not None:
            val_acc = _evaluate_packed(model, val_packs)
            history.val_accuracy.append(val_acc)
            if history.best_epoch < 0 or val_acc > history.val_accuracy[history.best_epoch]:
                history.best_epoch = epoch
                best_state = model.state_dict()
                epochs_since_best = 0
            else:
                epochs_since_best += 1
            if config.verbose:
                print(
                    f"epoch {epoch:3d}  loss {history.train_loss[-1]:.4f}  "
                    f"train {train_acc:.4f}  val {val_acc:.4f}"
                )
            if config.patience and epochs_since_best >= config.patience:
                break
        elif config.verbose:
            print(
                f"epoch {epoch:3d}  loss {history.train_loss[-1]:.4f}  "
                f"train {train_acc:.4f}"
            )

    if best_state is not None:
        model.load_state_dict(best_state)
    history.seconds = time.perf_counter() - start
    return history


def _run_fold(payload) -> float:
    """Top-level cross-validation worker (must be picklable)."""
    model_config, train_config, fold_train, fold_val, fold = payload
    model = GCNModel(model_config.with_(seed=model_config.seed + fold))
    train(model, fold_train, fold_val, train_config)
    return evaluate(model, fold_val)


def cross_validate(
    model_config: GCNConfig,
    samples: list[GraphSample],
    folds: int = 5,
    train_config: TrainConfig | None = None,
    workers: int | None = None,
) -> list[float]:
    """K-fold cross validation; returns per-fold validation accuracies.

    The paper uses five-fold cross validation "to reduce the
    sensitivity to data partitioning" when picking the filter size.
    Folds train independent models from independent seeds, so they run
    concurrently on a process pool; the returned accuracies are always
    in fold order regardless of completion order.
    """
    from repro.gcn.samples import kfold_indices
    from repro.runtime.parallel import parallel_map

    train_config = train_config or TrainConfig()
    fold_indices = kfold_indices(len(samples), folds, seed=train_config.seed)
    jobs = []
    for fold, held_out in enumerate(fold_indices):
        held = set(held_out.tolist())
        fold_train = [s for i, s in enumerate(samples) if i not in held]
        fold_val = [s for i, s in enumerate(samples) if i in held]
        jobs.append((model_config, train_config, fold_train, fold_val, fold))
    return parallel_map(_run_fold, jobs, workers=workers, chunksize=1)
