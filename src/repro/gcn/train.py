"""Training loop for the recognition GCN.

Graphs have varying vertex counts, so a "minibatch" is a set of whole
graphs: gradients are accumulated sample-by-sample, scaled by the batch
size, and applied in one optimizer step.  Early stopping keeps the
best-validation-accuracy parameters.

Fault tolerance (see DESIGN.md §12): the epoch loop snapshots its full
state — weights, optimizer moments, shuffle and dropout RNG streams,
curves, best-epoch bookkeeping — at the end of every completed epoch.
The snapshot serves two recovery paths:

* **checkpoint/resume** — with ``FaultTolerance.checkpoint_dir`` set,
  snapshots are persisted through
  :class:`~repro.gcn.checkpoint.CheckpointStore` and a killed run
  resumes from the newest loadable envelope, reproducing the
  uninterrupted run bitwise;
* **divergence rollback** — a non-finite minibatch loss or an exploding
  gradient norm aborts the epoch *before* the poisoned optimizer step,
  restores the last good snapshot, backs the learning rate off, and
  retries, within a bounded retry budget
  (:class:`~repro.exceptions.TrainingDiverged` when exhausted).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import ModelConfigError, TrainingDiverged
from repro.gcn.batch import pack_samples
from repro.gcn.checkpoint import CheckpointStore, TrainCheckpoint
from repro.gcn.loss import batched_cross_entropy, cross_entropy
from repro.gcn.metrics import confusion_matrix
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.optim import Adam, Optimizer, SGD
from repro.gcn.samples import GraphSample, class_weights
from repro.runtime.resilience import ERROR, WARNING, Diagnostic
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class TrainConfig:
    """Optimization hyperparameters (the random-search dimensions of
    Sec. V-A are ``lr``, ``weight_decay``, ``lr_decay``, and the model's
    ``filter_size``)."""

    epochs: int = 40
    batch_size: int = 8
    lr: float = 3e-3
    weight_decay: float = 5e-5
    lr_decay: float = 0.98  # per-epoch multiplicative decay
    optimizer: str = "adam"  # "adam" | "sgd"
    momentum: float = 0.9
    patience: int = 10  # early-stopping patience in epochs; 0 disables
    balance_classes: bool = True
    seed: int = 0
    verbose: bool = False
    #: Pack each minibatch into one block-diagonal forward/backward
    #: (see ``gcn/batch.py``).  Numerically equivalent to the
    #: per-sample loop; ``False`` forces the reference path.
    batched: bool = True


@dataclass(frozen=True)
class FaultTolerance:
    """Fault-tolerance knobs for :func:`train`.

    Deliberately *not* part of :class:`TrainConfig`: the training
    fingerprint (see ``repro.runtime.cache.fingerprint``) hashes the
    TrainConfig, and where a run checkpoints or how it recovers must
    never change which cached model it resolves to.
    """

    #: Directory for epoch checkpoint envelopes; None disables disk
    #: checkpointing (the in-memory divergence rollback still works).
    checkpoint_dir: str | Path | None = None
    #: Persist an envelope every N completed epochs (the final and any
    #: early-stopping epoch always checkpoint).
    checkpoint_every: int = 1
    #: Resume from the newest loadable envelope in ``checkpoint_dir``.
    resume: bool = True
    #: How many envelopes to keep on disk (older ones are pruned).
    keep: int = 3
    #: Total divergence rollbacks allowed before the run raises
    #: :class:`~repro.exceptions.TrainingDiverged`.
    max_divergence_retries: int = 2
    #: Learning-rate multiplier applied on each rollback (compounds
    #: across consecutive failures of the same epoch).
    lr_backoff: float = 0.5
    #: Gradient-norm ceiling for the divergence guard; None disables
    #: the norm check (the non-finite loss check always runs).
    grad_limit: float | None = 1e6


@dataclass
class History:
    """Per-epoch training curves plus wall-clock bookkeeping."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    seconds: float = 0.0
    best_epoch: int = -1
    #: Completed-epoch count the run resumed from (None: fresh start).
    resumed_from: int | None = None
    #: Divergence rollbacks spent during the run.
    rollbacks: int = 0
    #: True when the run needed any rollback — the model is usable but
    #: was trained through a recovery path.
    degraded: bool = False
    #: Wall-clock spent writing checkpoint envelopes (bounded by the
    #: checkpoint-overhead benchmark to <5% of ``seconds``).
    checkpoint_seconds: float = 0.0
    #: Structured recovery records: corrupt-checkpoint misses,
    #: divergence rollbacks, retry-budget exhaustion.
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else 0.0


def _make_optimizer(model: GCNModel, config: TrainConfig) -> Optimizer:
    slots = model.parameter_slots()
    if config.optimizer == "adam":
        return Adam(slots, lr=config.lr, weight_decay=config.weight_decay)
    if config.optimizer == "sgd":
        return SGD(
            slots,
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
    raise ModelConfigError(f"unknown optimizer {config.optimizer!r}")


#: Packed-inference chunk size for evaluation: large enough to amortize
#: the per-call overhead, small enough to keep the packed Laplacians in
#: cache.
_EVAL_CHUNK = 32


def evaluate(model: GCNModel, samples: list[GraphSample]) -> float:
    """Vertex accuracy over a sample list (masked vertices excluded).

    Runs packed inference in chunks; per-graph predictions match
    per-sample :meth:`GCNModel.predict` calls.
    """
    packs = [
        pack_samples(samples[start : start + _EVAL_CHUNK])
        for start in range(0, len(samples), _EVAL_CHUNK)
    ]
    return _evaluate_packed(model, packs)


def _evaluate_packed(model: GCNModel, packs: list) -> float:
    """Accuracy over pre-packed evaluation chunks.

    The training loop packs its validation chunks once and reuses them
    every epoch — the packed Laplacians and the first-layer Chebyshev
    basis cache stay warm across epochs.
    """
    correct = 0
    total = 0
    for packed in packs:
        logits = model.forward_packed(packed, training=False)
        predictions = logits.argmax(axis=1)
        correct += int(((predictions == packed.labels) & packed.mask).sum())
        total += int(packed.mask.sum())
    return correct / total if total else 1.0


def evaluate_confusion(
    model: GCNModel, samples: list[GraphSample], n_classes: int
) -> np.ndarray:
    """Pooled confusion matrix over a sample list."""
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for sample in samples:
        predictions = model.predict(sample)
        matrix += confusion_matrix(
            predictions, sample.labels, n_classes, sample.mask
        )
    return matrix


class _DivergenceError(Exception):
    """Internal: raised by the epoch loop before a poisoned optimizer
    step can land; the handler in :func:`train` rolls back."""


def _grad_norm(slots) -> float:
    """Global L2 norm over every gradient tensor (NaN-propagating)."""
    total = 0.0
    for _params, grads in slots:
        for grad in grads.values():
            flat = grad.ravel()
            total += float(np.dot(flat, flat))
    return math.sqrt(total)


def _run_epoch(
    model: GCNModel,
    optimizer: Optimizer,
    train_samples: list[GraphSample],
    config: TrainConfig,
    rng: np.random.Generator,
    weights,
    grad_limit: float | None,
) -> tuple[float, int, int]:
    """One epoch over a fresh shuffle; returns (loss, correct, total).

    Raises :class:`_DivergenceError` on a non-finite minibatch loss or
    an out-of-bounds gradient norm — always *before* ``optimizer.step``
    so the last good parameters survive for rollback.  The checks only
    read, so a clean epoch is numerically identical to the unguarded
    loop.
    """
    order = rng.permutation(len(train_samples))
    epoch_loss = 0.0
    epoch_correct = 0
    epoch_total = 0
    for batch_start in range(0, len(order), config.batch_size):
        batch = order[batch_start : batch_start + config.batch_size]
        model.zero_grad()
        batch_loss = 0.0
        if config.batched and len(batch) > 1:
            # Block-diagonal packing: one forward/backward serves
            # the whole minibatch.  Repacked per batch, so the
            # shuffled composition is respected every epoch.
            packed = pack_samples([train_samples[i] for i in batch])
            logits = model.forward_packed(packed, training=True)
            losses, counts, grad = batched_cross_entropy(
                logits, packed.labels, packed.mask,
                packed.offsets[0], weights,
            )
            model.backward(grad / len(batch))
            batch_loss = float(losses @ counts)
            predictions = logits.argmax(axis=1)
            epoch_correct += int(
                ((predictions == packed.labels) & packed.mask).sum()
            )
            epoch_total += int(counts.sum())
        else:
            for sample_idx in batch:
                sample = train_samples[sample_idx]
                logits = model.forward(sample, training=True)
                loss, grad = cross_entropy(
                    logits, sample.labels, sample.mask, weights
                )
                model.backward(grad / len(batch))
                batch_loss += loss * int(sample.mask.sum())
                predictions = logits.argmax(axis=1)
                epoch_correct += int(
                    (predictions[sample.mask] == sample.labels[sample.mask]).sum()
                )
                epoch_total += int(sample.mask.sum())
        step = batch_start // config.batch_size
        if not np.isfinite(batch_loss):
            raise _DivergenceError(
                f"non-finite loss ({batch_loss!r}) in minibatch {step}"
            )
        if grad_limit is not None:
            norm = _grad_norm(optimizer.slots)
            if not np.isfinite(norm) or norm > grad_limit:
                raise _DivergenceError(
                    f"gradient norm {norm:.4g} breaches the {grad_limit:g} "
                    f"limit in minibatch {step}"
                )
        optimizer.step()
        epoch_loss += batch_loss
    return epoch_loss, epoch_correct, epoch_total


def _capture(
    model: GCNModel,
    optimizer: Optimizer,
    rng: np.random.Generator,
    history: History,
    best_state: dict[str, np.ndarray] | None,
    epochs_since_best: int,
    retries_left: int,
    completed: int,
) -> TrainCheckpoint:
    """Snapshot the full loop state after ``completed`` epochs."""
    return TrainCheckpoint(
        epoch=completed,
        model_state=model.state_dict(),
        optimizer_state=optimizer.state_dict(),
        shuffle_rng=dict(rng.bit_generator.state),
        layer_rngs=tuple(model.rng_states()),
        train_loss=tuple(history.train_loss),
        train_accuracy=tuple(history.train_accuracy),
        val_accuracy=tuple(history.val_accuracy),
        best_epoch=history.best_epoch,
        epochs_since_best=epochs_since_best,
        best_state=best_state,
        rollbacks=history.rollbacks,
        degraded=history.degraded,
        checkpoint_seconds=history.checkpoint_seconds,
        retries_left=retries_left,
    )


def _restore_loop_state(
    model: GCNModel,
    optimizer: Optimizer,
    rng: np.random.Generator,
    checkpoint: TrainCheckpoint,
) -> None:
    """Restore the mutable loop state (weights, moments, RNG streams).

    Rewinding the RNGs matters for both recovery paths: a resumed run
    replays the uninterrupted run's shuffles and dropout masks bitwise,
    and a rolled-back epoch retries the *same* permutation with only
    the learning rate changed.
    """
    model.load_state_dict(checkpoint.model_state)
    model.set_rng_states(list(checkpoint.layer_rngs))
    optimizer.load_state_dict(checkpoint.optimizer_state)
    rng.bit_generator.state = checkpoint.shuffle_rng


def _model_config_dict(config: GCNConfig) -> dict:
    import dataclasses

    raw = dataclasses.asdict(config)
    raw["channels"] = list(raw["channels"])
    return raw


def train(
    model: GCNModel,
    train_samples: list[GraphSample],
    val_samples: list[GraphSample] | None = None,
    config: TrainConfig | None = None,
    fault: FaultTolerance | None = None,
) -> History:
    """Train ``model`` in place; returns the training history.

    With ``val_samples`` and ``patience > 0``, the model is restored to
    its best-validation-epoch parameters before returning.

    ``fault`` configures checkpointing and divergence recovery (see
    :class:`FaultTolerance`); the default guards against divergence
    in memory without touching disk.
    """
    config = config or TrainConfig()
    fault = fault or FaultTolerance()
    if not train_samples:
        raise ModelConfigError("no training samples")
    if fault.checkpoint_every < 1:
        raise ModelConfigError(
            f"checkpoint_every must be >= 1, got {fault.checkpoint_every}"
        )
    optimizer = _make_optimizer(model, config)
    rng = seeded_rng(("train-shuffle", config.seed))
    weights = (
        class_weights(train_samples, model.config.n_classes)
        if config.balance_classes
        else None
    )

    history = History()
    best_state: dict[str, np.ndarray] | None = None
    epochs_since_best = 0
    retries_left = max(0, fault.max_divergence_retries)
    # Validation chunks are packed once and reused every epoch.
    val_packs = (
        [
            pack_samples(val_samples[i : i + _EVAL_CHUNK])
            for i in range(0, len(val_samples), _EVAL_CHUNK)
        ]
        if val_samples is not None
        else []
    )

    store = (
        CheckpointStore(fault.checkpoint_dir, keep=fault.keep)
        if fault.checkpoint_dir is not None
        else None
    )
    model_config = _model_config_dict(model.config)
    epoch = 0
    if store is not None and fault.resume:
        resumed = store.load_latest(model_config, history.diagnostics)
        if resumed is not None:
            _restore_loop_state(model, optimizer, rng, resumed)
            history.train_loss = list(resumed.train_loss)
            history.train_accuracy = list(resumed.train_accuracy)
            history.val_accuracy = list(resumed.val_accuracy)
            history.best_epoch = resumed.best_epoch
            history.rollbacks = resumed.rollbacks
            history.degraded = resumed.degraded
            history.checkpoint_seconds = resumed.checkpoint_seconds
            history.resumed_from = resumed.epoch
            best_state = resumed.best_state
            epochs_since_best = resumed.epochs_since_best
            if resumed.retries_left is not None:
                retries_left = int(resumed.retries_left)
            epoch = resumed.epoch
            if config.verbose:
                print(f"resuming after {epoch} completed epoch(s)")

    start = time.perf_counter()
    # The rollback anchor: loop state at the last completed epoch (or
    # the pristine initialization).  Kept in memory so the divergence
    # guard works even without a checkpoint directory.
    last_good = _capture(
        model, optimizer, rng, history,
        best_state, epochs_since_best, retries_left, epoch,
    )

    while epoch < config.epochs:
        # A resumed run whose checkpoint already sits past the patience
        # window must not train further than the uninterrupted run did.
        if (
            val_samples is not None
            and config.patience
            and epochs_since_best >= config.patience
        ):
            break
        try:
            epoch_loss, epoch_correct, epoch_total = _run_epoch(
                model, optimizer, train_samples, config, rng,
                weights, fault.grad_limit,
            )
        except _DivergenceError as diverged:
            history.rollbacks += 1
            history.degraded = True
            if retries_left <= 0:
                diagnostic = Diagnostic(
                    severity=ERROR,
                    message=f"epoch {epoch} diverged: {diverged}",
                    card="train",
                    hint=(
                        "retry budget exhausted; lower the learning rate "
                        "or raise max_divergence_retries"
                    ),
                )
                history.diagnostics.append(diagnostic)
                raise TrainingDiverged(
                    f"training diverged at epoch {epoch} after "
                    f"{fault.max_divergence_retries} rollback retr"
                    f"{'y' if fault.max_divergence_retries == 1 else 'ies'}: "
                    f"{diverged}",
                    epoch=epoch,
                    rollbacks=history.rollbacks,
                ) from None
            retries_left -= 1
            _restore_loop_state(model, optimizer, rng, last_good)
            optimizer.lr *= fault.lr_backoff
            history.diagnostics.append(
                Diagnostic(
                    severity=WARNING,
                    message=f"epoch {epoch} diverged: {diverged}",
                    card="train",
                    hint=(
                        f"rolled back to epoch {last_good.epoch}; learning "
                        f"rate reduced to {optimizer.lr:g} "
                        f"({retries_left} retr"
                        f"{'y' if retries_left == 1 else 'ies'} left)"
                    ),
                )
            )
            continue
        optimizer.decay_lr(config.lr_decay)

        # Loss and accuracy share one denominator: the epoch's masked
        # vertex count.  A degenerate epoch (every vertex masked out)
        # reports a perfect accuracy and zero loss consistently.
        if epoch_total:
            train_acc = epoch_correct / epoch_total
            history.train_loss.append(epoch_loss / epoch_total)
        else:
            train_acc = 1.0
            history.train_loss.append(0.0)
        history.train_accuracy.append(train_acc)

        stopping = False
        if val_samples is not None:
            val_acc = _evaluate_packed(model, val_packs)
            history.val_accuracy.append(val_acc)
            if history.best_epoch < 0 or val_acc > history.val_accuracy[history.best_epoch]:
                history.best_epoch = epoch
                best_state = model.state_dict()
                epochs_since_best = 0
            else:
                epochs_since_best += 1
            if config.verbose:
                print(
                    f"epoch {epoch:3d}  loss {history.train_loss[-1]:.4f}  "
                    f"train {train_acc:.4f}  val {val_acc:.4f}"
                )
            stopping = bool(
                config.patience and epochs_since_best >= config.patience
            )
        elif config.verbose:
            print(
                f"epoch {epoch:3d}  loss {history.train_loss[-1]:.4f}  "
                f"train {train_acc:.4f}"
            )

        epoch += 1
        last_good = _capture(
            model, optimizer, rng, history,
            best_state, epochs_since_best, retries_left, epoch,
        )
        if store is not None and (
            epoch % fault.checkpoint_every == 0
            or stopping
            or epoch == config.epochs
        ):
            ckpt_start = time.perf_counter()
            store.save(last_good, model_config)
            history.checkpoint_seconds += time.perf_counter() - ckpt_start
        if stopping:
            break

    if best_state is not None:
        model.load_state_dict(best_state)
    history.seconds += time.perf_counter() - start
    return history


def _run_fold(payload) -> float:
    """Top-level cross-validation worker (must be picklable)."""
    model_config, train_config, fold_train, fold_val, fold = payload
    model = GCNModel(model_config.with_(seed=model_config.seed + fold))
    train(model, fold_train, fold_val, train_config)
    return evaluate(model, fold_val)


def cross_validate(
    model_config: GCNConfig,
    samples: list[GraphSample],
    folds: int = 5,
    train_config: TrainConfig | None = None,
    workers: int | None = None,
) -> list[float]:
    """K-fold cross validation; returns per-fold validation accuracies.

    The paper uses five-fold cross validation "to reduce the
    sensitivity to data partitioning" when picking the filter size.
    Folds train independent models from independent seeds, so they run
    concurrently on a process pool; the returned accuracies are always
    in fold order regardless of completion order.
    """
    from repro.gcn.samples import kfold_indices
    from repro.runtime.parallel import parallel_map

    train_config = train_config or TrainConfig()
    fold_indices = kfold_indices(len(samples), folds, seed=train_config.seed)
    jobs = []
    for fold, held_out in enumerate(fold_indices):
        held = set(held_out.tolist())
        fold_train = [s for i, s in enumerate(samples) if i not in held]
        fold_val = [s for i, s in enumerate(samples) if i in held]
        jobs.append((model_config, train_config, fold_train, fold_val, fold))
    return parallel_map(_run_fold, jobs, workers=workers, chunksize=1)
