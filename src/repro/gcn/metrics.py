"""Classification metrics used by the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def accuracy(
    predictions: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None
) -> float:
    """Fraction of (masked) vertices predicted correctly."""
    if mask is None:
        mask = np.ones(len(labels), dtype=bool)
    total = int(mask.sum())
    if total == 0:
        return 1.0
    return float((predictions[mask] == labels[mask]).sum() / total)


def confusion_matrix(
    predictions: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """(true, predicted) count matrix of shape (C, C)."""
    if mask is None:
        mask = np.ones(len(labels), dtype=bool)
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for truth, pred in zip(labels[mask], predictions[mask]):
        matrix[truth, pred] += 1
    return matrix


@dataclass(frozen=True)
class ClassReport:
    """Per-class precision/recall/F1 plus support."""

    precision: np.ndarray
    recall: np.ndarray
    f1: np.ndarray
    support: np.ndarray

    @property
    def macro_f1(self) -> float:
        present = self.support > 0
        return float(self.f1[present].mean()) if present.any() else 0.0


def class_report(matrix: np.ndarray) -> ClassReport:
    """Derive per-class metrics from a confusion matrix."""
    tp = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(actual > 0, tp / actual, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return ClassReport(
        precision=precision, recall=recall, f1=f1, support=actual.astype(np.int64)
    )


def classification_report(
    matrix: np.ndarray, class_names: tuple[str, ...] | list[str]
) -> str:
    """sklearn-style text report from a confusion matrix.

    One row per class (precision / recall / F1 / support) plus overall
    accuracy and macro-F1 — what the evaluation harness prints next to
    each Table II row.
    """
    report = class_report(matrix)
    total = int(matrix.sum())
    correct = int(np.trace(matrix))
    lines = [
        "{:<12} {:>9} {:>9} {:>9} {:>9}".format(
            "class", "precision", "recall", "f1", "support"
        )
    ]
    for idx, name in enumerate(class_names):
        lines.append(
            "{:<12} {:>8.1%} {:>8.1%} {:>8.1%} {:>9}".format(
                name,
                report.precision[idx],
                report.recall[idx],
                report.f1[idx],
                int(report.support[idx]),
            )
        )
    accuracy_value = correct / total if total else 1.0
    lines.append("")
    lines.append(
        f"accuracy {accuracy_value:.1%} ({correct}/{total})   "
        f"macro-F1 {report.macro_f1:.1%}"
    )
    return "\n".join(lines)


def mean_and_variance(values: list[float]) -> tuple[float, float]:
    """Mean and (population) variance — the paper reports both for the
    cross-validated training accuracy."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return 0.0, 0.0
    return float(array.mean()), float(array.var())
