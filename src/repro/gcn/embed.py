"""Vertex embeddings and class-separation analysis.

Sec. III opens with: "A GCN can achieve good separation between the
feature representations of vertices in a graph by using the graph
structure."  This module makes that claim measurable: extract the
penultimate-layer representation of every vertex, project it (PCA) for
inspection, and score class separation with a Fisher-style ratio of
between-class to within-class scatter.  The embedding benchmark asserts
that training increases separation over the raw 18-feature input.
"""

from __future__ import annotations

import numpy as np

from repro.gcn.layers import Dense
from repro.gcn.model import GCNModel
from repro.gcn.samples import GraphSample


def vertex_embeddings(model: GCNModel, sample: GraphSample) -> np.ndarray:
    """Penultimate activations (input of the final Dense classifier).

    Shape (n_vertices, fc_size) — the representation the softmax
    separates.
    """
    final_dense = None
    for layer in reversed(model.layers):
        if isinstance(layer, Dense):
            final_dense = layer
            break
    if final_dense is None:
        raise ValueError("model has no Dense classifier layer")
    ctx = sample.context()
    x = sample.features
    for layer in model.layers:
        if layer is final_dense:
            return x
        x = layer.forward(x, ctx, training=False)
    raise AssertionError("unreachable: final Dense not encountered")


def dataset_embeddings(
    model: GCNModel, samples: list[GraphSample]
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked (embeddings, labels) over the *labeled* vertices of all
    samples.  Labels are the ground-truth class ids."""
    chunks, labels = [], []
    for sample in samples:
        emb = vertex_embeddings(model, sample)
        chunks.append(emb[sample.mask])
        labels.append(sample.labels[sample.mask])
    return np.concatenate(chunks, axis=0), np.concatenate(labels, axis=0)


def fisher_separation(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Between-class over within-class scatter (higher = better
    separated).  Scale-invariant, so raw features and learned
    embeddings compare fairly."""
    classes = np.unique(labels)
    if len(classes) < 2:
        return 0.0
    overall_mean = embeddings.mean(axis=0)
    between = 0.0
    within = 0.0
    for cls in classes:
        members = embeddings[labels == cls]
        mean = members.mean(axis=0)
        between += len(members) * float(((mean - overall_mean) ** 2).sum())
        within += float(((members - mean) ** 2).sum())
    if within == 0.0:
        return np.inf
    return between / within


def pca_project(embeddings: np.ndarray, dims: int = 2) -> np.ndarray:
    """Plain-numpy PCA projection for inspection/plotting."""
    centered = embeddings - embeddings.mean(axis=0)
    _u, _s, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:dims].T


def separation_report(
    model: GCNModel,
    samples: list[GraphSample],
    class_names: tuple[str, ...],
) -> str:
    """Text report: per-class counts + Fisher separation, raw vs learned."""
    learned, labels = dataset_embeddings(model, samples)
    raw = np.concatenate([s.features[s.mask] for s in samples], axis=0)
    lines = ["class counts:"]
    for cls_id, name in enumerate(class_names):
        lines.append(f"  {name:<8} {(labels == cls_id).sum()}")
    lines.append(
        f"Fisher separation — raw 18 features: {fisher_separation(raw, labels):.3f}"
    )
    lines.append(
        f"Fisher separation — GCN embeddings:  {fisher_separation(learned, labels):.3f}"
    )
    return "\n".join(lines)
