"""Versioned, atomically written training checkpoints.

Training runs are the longest-lived jobs in the flow, so ``train()``
persists one envelope per completed epoch: the model state dict, the
optimizer state (flat-vector Adam moments or SGD velocities), every RNG
stream the epoch loop consumes (the shuffle generator and each dropout
layer's generator), the History curves, and the best-epoch bookkeeping.
Restoring an envelope therefore resumes a killed run *bitwise*: the
remaining epochs see the same permutations, dropout masks, and weights
the uninterrupted run would have, so curves and best-epoch selection
are identical (golden-tested in ``tests/gcn/test_checkpoint.py``).

Envelope layout — one ``epoch-NNNNN.ckpt.npz`` per checkpoint:

* ``__meta__`` — JSON header: format version, the producing model
  config, scalar history/bookkeeping fields, RNG states, and the
  optimizer's scalar state.
* ``model.<name>`` / ``best.<name>`` — current and best-epoch weight
  arrays (state-dict keys).
* ``opt.<name>`` — the optimizer's array state.

Same disk contract as :mod:`repro.runtime.cache`: writes go through
``tempfile.mkstemp`` + ``os.replace`` so a crash mid-write can never
leave a half-written envelope where the next run will trip over it, and
*any* read problem — truncation, garbage bytes, a stale format version
— is a structured miss (a :class:`~repro.runtime.resilience.Diagnostic`
naming the path) that falls back to the next-older checkpoint or fresh
training, never a raw traceback.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.runtime.resilience import WARNING, Diagnostic

#: Bumped whenever the envelope layout changes; older envelopes are
#: structured misses, never best-effort parses.
CHECKPOINT_FORMAT_VERSION = 1

_LOG = logging.getLogger(__name__)


@dataclass
class TrainCheckpoint:
    """Everything needed to resume ``train()`` after ``epoch`` epochs.

    ``epoch`` counts *completed* epochs: an envelope with ``epoch=5``
    restores the state the loop held just before starting epoch index 5.
    """

    epoch: int
    model_state: dict[str, np.ndarray]
    optimizer_state: dict[str, Any]
    shuffle_rng: dict  # np.random.Generator.bit_generator.state
    layer_rngs: tuple[dict, ...]  # per-Dropout streams, layer order
    train_loss: tuple[float, ...]
    train_accuracy: tuple[float, ...]
    val_accuracy: tuple[float, ...]
    best_epoch: int = -1
    epochs_since_best: int = 0
    best_state: dict[str, np.ndarray] | None = None
    rollbacks: int = 0
    degraded: bool = False
    checkpoint_seconds: float = 0.0
    retries_left: int | None = None


class CheckpointStore:
    """Epoch-checkpoint directory with atomic writes and pruning.

    One store owns one directory; callers key directories by what the
    run trains (e.g. the training fingerprint — see
    ``ModelCache.checkpoint_dir_for``) so unrelated runs never read
    each other's envelopes.  ``keep`` bounds the directory to the
    newest N envelopes.
    """

    def __init__(self, directory: str | Path, keep: int = 3):
        self.directory = Path(directory)
        self.keep = max(1, int(keep))

    def path_for(self, epoch: int) -> Path:
        return self.directory / f"epoch-{epoch:05d}.ckpt.npz"

    def paths(self) -> list[Path]:
        """Existing envelope paths, oldest first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("epoch-*.ckpt.npz"))

    # -- store -----------------------------------------------------------

    def save(
        self, checkpoint: TrainCheckpoint, model_config: dict[str, Any]
    ) -> Path | None:
        """Atomically persist an envelope; returns its path.

        Write failures (read-only filesystem, disk full) are logged and
        swallowed — checkpointing accelerates recovery, it is never a
        correctness dependency of the run itself.
        """
        path = self.path_for(checkpoint.epoch)
        meta = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "model_config": model_config,
            "epoch": checkpoint.epoch,
            "train_loss": list(checkpoint.train_loss),
            "train_accuracy": list(checkpoint.train_accuracy),
            "val_accuracy": list(checkpoint.val_accuracy),
            "best_epoch": checkpoint.best_epoch,
            "epochs_since_best": checkpoint.epochs_since_best,
            "has_best": checkpoint.best_state is not None,
            "rollbacks": checkpoint.rollbacks,
            "degraded": checkpoint.degraded,
            "checkpoint_seconds": checkpoint.checkpoint_seconds,
            "retries_left": checkpoint.retries_left,
            "shuffle_rng": checkpoint.shuffle_rng,
            "layer_rngs": list(checkpoint.layer_rngs),
            "optimizer": {
                k: v
                for k, v in checkpoint.optimizer_state.items()
                if not isinstance(v, np.ndarray)
            },
        }
        arrays: dict[str, np.ndarray] = {}
        for key, value in checkpoint.model_state.items():
            arrays[f"model.{key}"] = value
        if checkpoint.best_state is not None:
            for key, value in checkpoint.best_state.items():
                arrays[f"best.{key}"] = value
        for key, value in checkpoint.optimizer_state.items():
            if isinstance(value, np.ndarray):
                arrays[f"opt.{key}"] = value
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".ckpt.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.savez(
                        handle, __meta__=np.array(json.dumps(meta)), **arrays
                    )
                os.replace(tmp_name, path)
            except BaseException:
                os.unlink(tmp_name)
                raise
        except OSError as exc:
            _LOG.warning("could not write checkpoint %s: %s", path, exc)
            return None
        self._prune()
        return path

    def _prune(self) -> None:
        for stale in self.paths()[: -self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass

    # -- load ------------------------------------------------------------

    def load(
        self,
        path: Path,
        model_config: dict[str, Any],
        diagnostics: list[Diagnostic] | None = None,
    ) -> TrainCheckpoint | None:
        """Parse one envelope; None (plus a Diagnostic) on any problem.

        Unreadable envelopes — truncated, garbage, wrong format version
        — are removed so the run never trips over them again.  An
        envelope written by a *different model config* is left in place
        (the caller is probably pointing at the wrong directory) but is
        still a miss.
        """
        try:
            with np.load(path) as data:
                meta = json.loads(str(data["__meta__"]))
                version = meta.get("format_version")
                if version != CHECKPOINT_FORMAT_VERSION:
                    raise ValueError(
                        f"format version {version!r}, expected "
                        f"{CHECKPOINT_FORMAT_VERSION}"
                    )
                stored_config = meta["model_config"]
                model_state = {}
                best_state = {}
                optimizer_state: dict[str, Any] = dict(meta["optimizer"])
                for name in data.files:
                    if name.startswith("model."):
                        model_state[name[len("model.") :]] = data[name]
                    elif name.startswith("best."):
                        best_state[name[len("best.") :]] = data[name]
                    elif name.startswith("opt."):
                        optimizer_state[name[len("opt.") :]] = data[name]
                if meta["has_best"] != bool(best_state):
                    raise ValueError("best-epoch arrays missing from envelope")
        except Exception as exc:
            self._reject(
                path,
                f"unreadable checkpoint ({type(exc).__name__}: {exc})",
                diagnostics,
                remove=True,
            )
            return None
        if stored_config != model_config:
            self._reject(
                path,
                "checkpoint was written by a different model config",
                diagnostics,
                remove=False,
            )
            return None
        return TrainCheckpoint(
            epoch=int(meta["epoch"]),
            model_state=model_state,
            optimizer_state=optimizer_state,
            shuffle_rng=meta["shuffle_rng"],
            layer_rngs=tuple(meta["layer_rngs"]),
            train_loss=tuple(meta["train_loss"]),
            train_accuracy=tuple(meta["train_accuracy"]),
            val_accuracy=tuple(meta["val_accuracy"]),
            best_epoch=int(meta["best_epoch"]),
            epochs_since_best=int(meta["epochs_since_best"]),
            best_state=best_state or None,
            rollbacks=int(meta["rollbacks"]),
            degraded=bool(meta["degraded"]),
            checkpoint_seconds=float(meta["checkpoint_seconds"]),
            retries_left=meta["retries_left"],
        )

    def load_latest(
        self,
        model_config: dict[str, Any],
        diagnostics: list[Diagnostic] | None = None,
    ) -> TrainCheckpoint | None:
        """Newest loadable envelope, walking backwards past bad ones."""
        for path in reversed(self.paths()):
            checkpoint = self.load(path, model_config, diagnostics)
            if checkpoint is not None:
                return checkpoint
        return None

    def _reject(
        self,
        path: Path,
        reason: str,
        diagnostics: list[Diagnostic] | None,
        remove: bool,
    ) -> None:
        hint = (
            f"ignoring {path}; training falls back to an older "
            f"checkpoint or starts fresh"
        )
        diagnostic = Diagnostic(
            severity=WARNING, message=reason, card="checkpoint", hint=hint
        )
        if diagnostics is not None:
            diagnostics.append(diagnostic)
        _LOG.warning(diagnostic.format())
        if remove:
            try:
                path.unlink()
            except OSError:
                pass

    # -- maintenance -----------------------------------------------------

    def clear(self) -> int:
        """Delete every envelope; returns the number removed."""
        removed = 0
        for path in self.paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
