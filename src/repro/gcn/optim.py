"""Optimizers operating in place on layer parameter dictionaries."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelConfigError


class Optimizer:
    """Base optimizer over a list of (params, grads) dict pairs."""

    def __init__(self, slots: list[tuple[dict, dict]], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ModelConfigError(f"learning rate must be positive, got {lr}")
        self.slots = slots
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Resumable optimizer state (copies; JSON scalars + arrays).

        The layout is flat — scalar entries plus ``np.ndarray`` entries —
        so checkpoint envelopes can split it into an npz payload and a
        JSON header without knowing which optimizer produced it.
        """
        raise NotImplementedError

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (shape-checked)."""
        raise NotImplementedError

    def decay_lr(self, factor: float) -> None:
        """Multiply the learning rate by ``factor`` (decay-rate knob)."""
        self.lr *= factor

    def _decayed_grad(self, key: str, param: np.ndarray, grad: np.ndarray) -> np.ndarray:
        # Biases and batch-norm offsets conventionally skip weight decay.
        if self.weight_decay and key not in ("bias", "beta"):
            return grad + self.weight_decay * param
        return grad


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, slots, lr, momentum: float = 0.9, weight_decay: float = 0.0):
        super().__init__(slots, lr, weight_decay)
        self.momentum = momentum
        self.velocity = [
            {k: np.zeros_like(v) for k, v in params.items()} for params, _ in slots
        ]

    def step(self) -> None:
        for (params, grads), vel in zip(self.slots, self.velocity):
            for key in params:
                g = self._decayed_grad(key, params[key], grads[key])
                vel[key] = self.momentum * vel[key] - self.lr * g
                params[key] += vel[key]

    def state_dict(self) -> dict:
        state: dict = {"kind": "sgd", "lr": float(self.lr)}
        for idx, vel in enumerate(self.velocity):
            for key, value in vel.items():
                state[f"velocity{idx}.{key}"] = value.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        if state.get("kind") != "sgd":
            raise ModelConfigError(
                f"optimizer state is {state.get('kind')!r}, expected 'sgd'"
            )
        for idx, vel in enumerate(self.velocity):
            for key in vel:
                name = f"velocity{idx}.{key}"
                if name not in state:
                    raise ModelConfigError(f"missing optimizer state {name}")
                if state[name].shape != vel[key].shape:
                    raise ModelConfigError(
                        f"shape mismatch for optimizer state {name}: "
                        f"{state[name].shape} vs {vel[key].shape}"
                    )
                vel[key] = state[name].copy()
        self.lr = float(state["lr"])


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction.

    Moment state lives in one flat vector per moment, so a step is a
    handful of long elementwise array ops instead of ~10 small ops per
    parameter tensor — bitwise identical to the per-tensor update
    (elementwise math has no accumulation-order freedom) but without
    the Python/allocation overhead that dominated at this model size.
    """

    def __init__(
        self,
        slots,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(slots, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        # Flat layout: each parameter tensor owns a (start, stop) span.
        self._entries: list[tuple[dict, dict, str, int, int]] = []
        offset = 0
        for params, grads in slots:
            for key, value in params.items():
                self._entries.append(
                    (params, grads, key, offset, offset + value.size)
                )
                offset += value.size
        self.m = np.zeros(offset)
        self.v = np.zeros(offset)
        self._g = np.empty(offset)

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        g = self._g
        for params, grads, key, start, stop in self._entries:
            g[start:stop] = grads[key].ravel()
        if self.weight_decay:
            for params, grads, key, start, stop in self._entries:
                if key not in ("bias", "beta"):
                    g[start:stop] += self.weight_decay * params[key].ravel()
        self.m *= self.beta1
        self.m += (1 - self.beta1) * g
        self.v *= self.beta2
        self.v += (1 - self.beta2) * g * g
        update = self.lr * (self.m / bc1) / (np.sqrt(self.v / bc2) + self.eps)
        for params, grads, key, start, stop in self._entries:
            view = update[start:stop]
            params[key] -= view.reshape(params[key].shape)

    def state_dict(self) -> dict:
        return {
            "kind": "adam",
            "lr": float(self.lr),
            "t": int(self.t),
            "m": self.m.copy(),
            "v": self.v.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        if state.get("kind") != "adam":
            raise ModelConfigError(
                f"optimizer state is {state.get('kind')!r}, expected 'adam'"
            )
        for moment in ("m", "v"):
            if state[moment].shape != getattr(self, moment).shape:
                raise ModelConfigError(
                    f"optimizer moment {moment!r} has shape "
                    f"{state[moment].shape}, expected {getattr(self, moment).shape}"
                )
        self.m[:] = state["m"]
        self.v[:] = state["v"]
        self.t = int(state["t"])
        self.lr = float(state["lr"])
