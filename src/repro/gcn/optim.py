"""Optimizers operating in place on layer parameter dictionaries."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelConfigError


class Optimizer:
    """Base optimizer over a list of (params, grads) dict pairs."""

    def __init__(self, slots: list[tuple[dict, dict]], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ModelConfigError(f"learning rate must be positive, got {lr}")
        self.slots = slots
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self) -> None:
        raise NotImplementedError

    def decay_lr(self, factor: float) -> None:
        """Multiply the learning rate by ``factor`` (decay-rate knob)."""
        self.lr *= factor

    def _decayed_grad(self, key: str, param: np.ndarray, grad: np.ndarray) -> np.ndarray:
        # Biases and batch-norm offsets conventionally skip weight decay.
        if self.weight_decay and key not in ("bias", "beta"):
            return grad + self.weight_decay * param
        return grad


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, slots, lr, momentum: float = 0.9, weight_decay: float = 0.0):
        super().__init__(slots, lr, weight_decay)
        self.momentum = momentum
        self.velocity = [
            {k: np.zeros_like(v) for k, v in params.items()} for params, _ in slots
        ]

    def step(self) -> None:
        for (params, grads), vel in zip(self.slots, self.velocity):
            for key in params:
                g = self._decayed_grad(key, params[key], grads[key])
                vel[key] = self.momentum * vel[key] - self.lr * g
                params[key] += vel[key]


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        slots,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(slots, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self.m = [
            {k: np.zeros_like(v) for k, v in params.items()} for params, _ in slots
        ]
        self.v = [
            {k: np.zeros_like(v) for k, v in params.items()} for params, _ in slots
        ]

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        for (params, grads), m, v in zip(self.slots, self.m, self.v):
            for key in params:
                g = self._decayed_grad(key, params[key], grads[key])
                m[key] = self.beta1 * m[key] + (1 - self.beta1) * g
                v[key] = self.beta2 * v[key] + (1 - self.beta2) * g * g
                params[key] -= (
                    self.lr * (m[key] / bc1) / (np.sqrt(v[key] / bc2) + self.eps)
                )
