"""Neural-network layers with manual forward/backward passes.

No autograd framework is available offline, so every layer implements
its own reverse-mode gradient.  The contract:

* ``forward(x, ctx, training)`` consumes an (n, F) activation and the
  per-sample :class:`SampleContext` (graph Laplacians and pooling maps
  at every coarsening level) and returns the next activation;
* ``backward(grad)`` consumes ∂loss/∂output, accumulates parameter
  gradients into ``self.grads`` and returns ∂loss/∂input.

Layers are stateful across a single forward/backward pair (they cache
what backward needs); the :class:`~repro.gcn.model.GCNModel` drives
them strictly in that order, one sample at a time, accumulating
gradients over a minibatch before the optimizer steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ModelConfigError
from repro.gcn.chebyshev import chebyshev_basis, chebyshev_basis_backward


@dataclass
class SampleContext:
    """Graph-dependent state a layer stack needs for one sample.

    ``laplacians[ℓ]`` is the rescaled Laplacian at coarsening level ℓ
    (level 0 = original graph).  ``assignments[ℓ]`` maps fine vertex →
    coarse vertex between level ℓ and ℓ+1.  ``level`` is mutated by
    pool/unpool layers as the sample flows through the network.

    ``cache`` is an optional sample-lifetime dict (persisted on the
    owning :class:`~repro.gcn.samples.GraphSample`, shared by every
    forward pass over that sample).  Layers use it to memoize purely
    graph-and-input-dependent work — e.g. the first ChebConv layer's
    Chebyshev basis, which depends only on the fixed Laplacian and the
    fixed input features, not on the weights, and is therefore
    identical across every epoch of training.

    ``offsets`` is set by :class:`~repro.gcn.batch.PackedBatch` when
    the "sample" is really B block-diagonally packed graphs:
    ``offsets[ℓ][i]`` is the first packed row of graph ``i`` at
    coarsening level ℓ.  Layers whose math is *not* row-local
    (BatchNorm statistics, Dropout's RNG stream) consult
    :meth:`segment_offsets` to reproduce the per-sample behaviour
    segment by segment; everything else is oblivious to packing.
    """

    laplacians: list[sp.csr_matrix]
    assignments: list[np.ndarray] = field(default_factory=list)
    level: int = 0
    cache: dict | None = None
    offsets: list[np.ndarray] | None = None

    @property
    def laplacian(self) -> sp.csr_matrix:
        return self.laplacians[self.level]

    def segment_offsets(self) -> np.ndarray | None:
        """Per-graph row boundaries at the current level, or ``None``.

        Returns ``None`` for unpacked samples *and* for single-graph
        packings, where the per-sample math needs no segmentation.
        """
        if self.offsets is None:
            return None
        bounds = self.offsets[self.level]
        return bounds if len(bounds) > 2 else None

    def reset(self) -> None:
        self.level = 0


class Layer:
    """Base layer: parameter bookkeeping plus the fwd/bwd contract."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def forward(
        self, x: np.ndarray, ctx: SampleContext, training: bool
    ) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for key, value in self.params.items():
            grad = self.grads.get(key)
            if grad is None:
                self.grads[key] = np.zeros_like(value)
            else:
                # Reuse the buffer: optimizers hold a reference to the
                # grads dict, and a fill avoids per-batch allocations.
                grad.fill(0.0)

    def n_parameters(self) -> int:
        return sum(p.size for p in self.params.values())


class ChebConv(Layer):
    """Graph convolution with order-K Chebyshev filters (Sec. III-A).

    Output ``Y = [T_0(L̂)X | … | T_{K-1}(L̂)X] W + b`` with
    ``W ∈ R^{K·Fin × Fout}``.  Glorot-initialized.
    """

    def __init__(self, in_features: int, out_features: int, order: int, rng):
        super().__init__()
        if order < 1:
            raise ModelConfigError("ChebConv order must be >= 1")
        self.in_features = in_features
        self.out_features = out_features
        self.order = order
        scale = np.sqrt(2.0 / (order * in_features + out_features))
        self.params["weight"] = rng.normal(
            0.0, scale, size=(order * in_features, out_features)
        )
        self.params["bias"] = np.zeros(out_features)
        self.zero_grad()
        self._laplacian: sp.csr_matrix | None = None
        #: Set by :class:`~repro.gcn.model.GCNModel` on the first conv
        #: layer: its input is the sample's (constant) feature matrix,
        #: so ∂loss/∂input is never consumed and the K sparse products
        #: of the basis backward pass can be skipped entirely.
        self.input_layer = False

    def forward(self, x, ctx, training):
        laplacian = ctx.laplacian
        flat = None
        use_cache = ctx.cache is not None and self.input_layer
        if use_cache:
            entry = ctx.cache.get("cheb-input-flat")
            # Identity check: a hit requires the very same input and
            # Laplacian array objects (the cache holds strong
            # references, so their ids cannot be recycled) at the same
            # order.  Weight updates never invalidate the basis — it
            # depends only on the Laplacian and the input — so the
            # entry stays valid for the sample's whole lifetime, and
            # any model with the same filter order shares it.
            if (
                entry is not None
                and entry[0] is x
                and entry[1] is laplacian
                and entry[2] == self.order
            ):
                flat = entry[3]
        if flat is None:
            basis = chebyshev_basis(laplacian, x, self.order)  # (K, n, Fin)
            n = x.shape[0]
            flat = basis.transpose(1, 0, 2).reshape(
                n, self.order * self.in_features
            )
            if use_cache:
                ctx.cache["cheb-input-flat"] = (x, laplacian, self.order, flat)
        self._flat = flat
        self._laplacian = laplacian
        return flat @ self.params["weight"] + self.params["bias"]

    def backward(self, grad):
        self.grads["weight"] += self._flat.T @ grad
        self.grads["bias"] += grad.sum(axis=0)
        n = grad.shape[0]
        if self.input_layer:
            # ∂loss/∂features is never used; skip K sparse matmuls.
            return np.zeros((n, self.in_features))
        grad_flat = grad @ self.params["weight"].T  # (n, K*Fin)
        grad_basis = grad_flat.reshape(n, self.order, self.in_features).transpose(
            1, 0, 2
        )
        return chebyshev_basis_backward(self._laplacian, grad_basis)


class Dense(Layer):
    """Per-vertex fully connected layer ``Y = X W + b``."""

    def __init__(self, in_features: int, out_features: int, rng):
        super().__init__()
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.params["weight"] = rng.normal(0.0, scale, size=(in_features, out_features))
        self.params["bias"] = np.zeros(out_features)
        self.zero_grad()

    def forward(self, x, ctx, training):
        self._x = x
        return x @ self.params["weight"] + self.params["bias"]

    def backward(self, grad):
        self.grads["weight"] += self._x.T @ grad
        self.grads["bias"] += grad.sum(axis=0)
        return grad @ self.params["weight"].T


class ReLU(Layer):
    """Rectified linear activation (the paper's empirical winner)."""

    def forward(self, x, ctx, training):
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad):
        return grad * self._mask


class Tanh(Layer):
    """tanh activation — kept for the ReLU-vs-tanh comparison."""

    def forward(self, x, ctx, training):
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad):
        return grad * (1.0 - self._y**2)


class Dropout(Layer):
    """Inverted dropout; identity at inference."""

    def __init__(self, rate: float, rng):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ModelConfigError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng

    def forward(self, x, ctx, training):
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # One draw covers packed batches too: Generator.random fills
        # C-contiguous doubles sequentially, so a single (Σn_i, F) draw
        # consumes the stream exactly as B consecutive (n_i, F) draws
        # would — the packed masks are bit-identical to the per-sample
        # loop over the same graphs in pack order.
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad):
        if self._mask is None:
            return grad
        return grad * self._mask


class BatchNorm(Layer):
    """Normalization over the vertex axis of one sample.

    With one graph per forward pass, this normalizes each feature over
    the sample's vertices (running statistics are kept for inference) —
    the "batch normalization ... all input quantities in the same
    numerical range" regularizer of Sec. V-A.
    """

    def __init__(self, features: int, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        self.params["gamma"] = np.ones(features)
        self.params["beta"] = np.zeros(features)
        self.zero_grad()
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(features)
        self.running_var = np.ones(features)

    def _fold_running(self, mean: np.ndarray, var: np.ndarray) -> None:
        self.running_mean = (
            self.momentum * self.running_mean + (1 - self.momentum) * mean
        )
        self.running_var = (
            self.momentum * self.running_var + (1 - self.momentum) * var
        )

    def forward(self, x, ctx, training):
        self._training = training
        if not training:
            self._std = np.sqrt(self.running_var + self.eps)
            self._xhat = (x - self.running_mean) / self._std
            return self.params["gamma"] * self._xhat + self.params["beta"]
        # Training statistics are per graph: one segment per packed
        # graph (or the whole array for a lone sample).  Segment sums
        # go through ``np.add.reduceat``, whose plain sequential
        # accumulation is *segment-stable* — a segment sums to the same
        # bits whether it is reduced alone or inside a packed array —
        # which is exactly the packed/per-sample parity guarantee.
        # (``ndarray.mean``'s pairwise summation is faster per call but
        # cannot be vectorized over ragged segments bit-identically.)
        bounds = ctx.segment_offsets()
        if bounds is None:
            starts = np.zeros(1, dtype=np.int64)
            sizes = np.array([x.shape[0]], dtype=np.int64)
        else:
            starts = bounds[:-1]
            sizes = bounds[1:] - starts
        counts = sizes.astype(np.float64)[:, None]
        self._starts, self._sizes, self._counts = starts, sizes, counts
        mean = np.add.reduceat(x, starts, axis=0) / counts
        single = len(starts) == 1
        centered = x - (mean if single else np.repeat(mean, sizes, axis=0))
        var = np.add.reduceat(centered * centered, starts, axis=0) / counts
        # Running stats fold once per graph in pack order, matching the
        # per-sample loop bitwise.
        for i in range(len(starts)):
            self._fold_running(mean[i], var[i])
        std = np.sqrt(var + self.eps)
        self._std = std if single else np.repeat(std, sizes, axis=0)
        self._xhat = centered / self._std
        return self.params["gamma"] * self._xhat + self.params["beta"]

    def backward(self, grad):
        xhat, std = self._xhat, self._std
        self.grads["gamma"] += (grad * xhat).sum(axis=0)
        self.grads["beta"] += grad.sum(axis=0)
        gg = grad * self.params["gamma"]
        if not self._training:
            return gg / std
        starts, sizes, counts = self._starts, self._sizes, self._counts
        mean_gg = np.add.reduceat(gg, starts, axis=0) / counts
        mean_gx = np.add.reduceat(gg * xhat, starts, axis=0) / counts
        if len(starts) == 1:
            out = (gg - mean_gg - xhat * mean_gx) / std
        else:
            out = (
                gg
                - np.repeat(mean_gg, sizes, axis=0)
                - xhat * np.repeat(mean_gx, sizes, axis=0)
            ) / std
        single_vertex = sizes == 1
        if single_vertex.any():
            # A one-vertex graph has no batch statistics to backprop
            # through; its gradient passes straight through the scale.
            rows = np.repeat(single_vertex, sizes)
            out[rows] = gg[rows] / std[rows]
        return out


def _cluster_members(ctx: SampleContext, level: int) -> tuple:
    """Per-cluster (lowest, highest) fine-member indices at ``level``.

    Graclus clusters hold one or two vertices, so max-pooling reduces
    to two gathers plus an elementwise max — far cheaper than the
    unbuffered ``np.ufunc.at`` scatter it replaces.  The member arrays
    depend only on the static assignment, so they are memoized on the
    context cache (per sample forever; per packed batch for its
    lifetime) keyed by the assignment's identity.
    """
    assign = ctx.assignments[level]
    key = ("pool-members", level)
    cache = ctx.cache if ctx.cache is not None else {}
    entry = cache.get(key)
    if entry is not None and entry[0] is assign:
        return entry
    n_coarse = int(assign.max()) + 1 if assign.size else 0
    order = np.argsort(assign, kind="stable")
    clusters = np.arange(n_coarse)
    sorted_assign = assign[order]
    lo = order[np.searchsorted(sorted_assign, clusters, side="left")]
    hi = order[np.searchsorted(sorted_assign, clusters, side="right") - 1]
    entry = (assign, lo, hi)
    cache[key] = entry
    return entry


class GraphPool(Layer):
    """Cluster max-pooling between coarsening levels (Sec. III-B).

    Uses the Graclus cluster assignment stored in the sample context:
    each coarse vertex takes the elementwise max over its (1 or 2)
    members — "pooling operations ... performed very efficiently" on
    the cluster tree.  Advances ``ctx.level``.
    """

    def forward(self, x, ctx, training):
        if ctx.level >= len(ctx.assignments):
            raise ModelConfigError(
                "GraphPool used beyond the available coarsening levels"
            )
        _, lo, hi = _cluster_members(ctx, ctx.level)
        low, high = x[lo], x[hi]
        out = np.maximum(low, high)
        # Track which fine vertex supplied each max for routing grads:
        # among a cluster's members that attain the max, the highest
        # fine index wins.
        self._winner = np.where(high >= low, hi[:, None], lo[:, None])
        self._n_fine = x.shape[0]
        ctx.level += 1
        return out

    def backward(self, grad):
        out = np.zeros((self._n_fine, grad.shape[1]))
        cols = np.broadcast_to(
            np.arange(grad.shape[1]), self._winner.shape
        )
        # One winner per (cluster, feature) and clusters are disjoint,
        # so plain fancy assignment scatters without collisions.
        out[self._winner, cols] = grad
        return out


class GraphUnpool(Layer):
    """Inverse of :class:`GraphPool`: copy coarse features to members.

    Lets the Fig. 4 conv/pool stack still emit *per-vertex* labels: the
    final network unpools back to level 0 before the dense softmax
    head, so each original vertex receives the representation of its
    multilevel cluster.
    """

    def forward(self, x, ctx, training):
        if ctx.level == 0:
            raise ModelConfigError("GraphUnpool at level 0 has nothing to undo")
        ctx.level -= 1
        assign = ctx.assignments[ctx.level]
        self._assign = assign
        _, self._lo, self._hi = _cluster_members(ctx, ctx.level)
        self._n_coarse = x.shape[0]
        return x[assign]

    def backward(self, grad):
        # Each coarse vertex sums its members' gradients in ascending
        # fine order — the order ``np.add.at(out, assign, grad)`` would
        # accumulate them in.
        out = grad[self._lo].copy()
        pair = self._hi != self._lo
        out[pair] += grad[self._hi[pair]]
        return out


class Concat(Layer):
    """Skip-connection concatenation with a stored earlier activation.

    Used by the unpooling head to mix fine-level detail back in.
    Forward stores nothing to learn; backward splits the gradient.
    """

    def __init__(self) -> None:
        super().__init__()
        self.saved: np.ndarray | None = None

    def forward(self, x, ctx, training):
        if self.saved is None:
            raise ModelConfigError("Concat.saved not set before forward")
        self._split = x.shape[1]
        return np.concatenate([x, self.saved], axis=1)

    def backward(self, grad):
        return grad[:, : self._split]
