"""Softmax cross-entropy with label masks.

Vertices on sub-block boundaries can legitimately belong to multiple
blocks (Sec. II-B); such vertices are excluded from the loss through a
boolean mask rather than being forced into one class.
"""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically-stable softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray | None = None,
    class_weights: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Mean masked cross-entropy and its gradient w.r.t. ``logits``.

    ``labels`` are integer class ids per vertex; ``mask`` selects the
    vertices that contribute.  Returns ``(loss, grad)`` where ``grad``
    has the full (n, C) shape with zeros at masked-out rows.
    """
    n, n_classes = logits.shape
    if mask is None:
        mask = np.ones(n, dtype=bool)
    count = int(mask.sum())
    grad = np.zeros_like(logits)
    if count == 0:
        return 0.0, grad

    probs = softmax(logits)
    picked = probs[np.arange(n), labels]
    weights = np.ones(n)
    if class_weights is not None:
        weights = class_weights[labels]
    log_losses = -np.log(np.clip(picked, 1e-12, None)) * weights
    loss = float(log_losses[mask].sum() / count)

    grad[mask] = probs[mask]
    grad[np.arange(n)[mask], labels[mask]] -= 1.0
    grad[mask] *= weights[mask, None] / count
    return loss, grad


def l2_penalty(params: list[np.ndarray], strength: float) -> float:
    """Scalar L2 regularization term ``(λ/2) Σ‖W‖²``."""
    if strength == 0.0:
        return 0.0
    return 0.5 * strength * sum(float((p**2).sum()) for p in params)
