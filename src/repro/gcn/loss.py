"""Softmax cross-entropy with label masks.

Vertices on sub-block boundaries can legitimately belong to multiple
blocks (Sec. II-B); such vertices are excluded from the loss through a
boolean mask rather than being forced into one class.
"""

from __future__ import annotations

import numpy as np


_ZERO_START = np.zeros(1, dtype=np.int64)


def _sequential_sum(values: np.ndarray) -> float:
    """Sum with plain sequential accumulation (``np.add.reduceat``).

    Segment-stable: summing a segment inside a packed array gives the
    same bits as summing it alone, which is how the packed loss can
    reproduce per-sample losses exactly.  (``ndarray.sum`` uses pairwise
    accumulation, which has no ragged-segment equivalent.)
    """
    if values.size == 0:
        return 0.0
    return float(np.add.reduceat(values, _ZERO_START)[0])


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically-stable softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray | None = None,
    class_weights: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Mean masked cross-entropy and its gradient w.r.t. ``logits``.

    ``labels`` are integer class ids per vertex; ``mask`` selects the
    vertices that contribute.  Returns ``(loss, grad)`` where ``grad``
    has the full (n, C) shape with zeros at masked-out rows.
    """
    n, n_classes = logits.shape
    if mask is None:
        mask = np.ones(n, dtype=bool)
    count = int(mask.sum())
    grad = np.zeros_like(logits)
    if count == 0:
        return 0.0, grad

    probs = softmax(logits)
    picked = probs[np.arange(n), labels]
    weights = np.ones(n)
    if class_weights is not None:
        weights = class_weights[labels]
    log_losses = -np.log(np.clip(picked, 1e-12, None)) * weights
    loss = float(_sequential_sum(log_losses[mask]) / count)

    grad[mask] = probs[mask]
    grad[np.arange(n)[mask], labels[mask]] -= 1.0
    grad[mask] *= weights[mask, None] / count
    return loss, grad


def batched_cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray,
    offsets: np.ndarray,
    class_weights: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-graph masked cross-entropy over a packed batch.

    ``logits``/``labels``/``mask`` are the packed (Σn_i, ·) arrays of a
    :class:`~repro.gcn.batch.PackedBatch`; ``offsets`` its level-0
    graph boundaries.  Returns ``(losses, counts, grad)`` where
    ``losses[i]`` and ``counts[i]`` are graph ``i``'s mean masked loss
    and masked-vertex count, and ``grad`` is the packed gradient with
    each graph's rows normalized by *its own* count — exactly what the
    per-sample loop produces, one :func:`cross_entropy` call per graph.

    Gradient rows are bitwise identical to the per-sample path (the
    elementwise operation order is preserved); the per-graph loss sums
    reduce over the same masked row subsets, so they match bitwise too.
    """
    n, _ = logits.shape
    n_graphs = len(offsets) - 1
    grad = np.zeros_like(logits)
    losses = np.zeros(n_graphs)
    running = np.concatenate([[0], np.cumsum(mask, dtype=np.int64)])
    counts = running[offsets[1:]] - running[offsets[:-1]]
    if not counts.any():
        return losses, counts, grad

    probs = softmax(logits)
    picked = probs[np.arange(n), labels]
    weights = np.ones(n)
    if class_weights is not None:
        weights = class_weights[labels]
    log_losses = -np.log(np.clip(picked, 1e-12, None)) * weights
    # Per-graph means over the mask-compressed array: graph i owns the
    # compressed rows running[offsets[i]]:running[offsets[i+1]], and
    # reduceat's sequential accumulation matches ``_sequential_sum`` on
    # each graph's own masked rows bitwise.  (reduceat quirk: an empty
    # segment yields the element at its clipped start index — those
    # entries are zeroed by the ``counts > 0`` select.)
    compressed = log_losses[mask]
    starts = np.minimum(running[offsets[:-1]], len(compressed) - 1)
    sums = np.add.reduceat(compressed, starts)
    losses = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)

    # Row scale: mask·weight/count_of_owning_graph, matching the
    # per-sample ``grad[mask] *= weights[mask] / count`` op order.
    graph_of = np.repeat(np.arange(n_graphs), np.diff(offsets))
    denom = np.maximum(counts, 1)[graph_of]
    grad[mask] = probs[mask]
    grad[np.arange(n)[mask], labels[mask]] -= 1.0
    grad[mask] *= weights[mask, None] / denom[mask, None]
    return losses, counts, grad


def l2_penalty(params: list[np.ndarray], strength: float) -> float:
    """Scalar L2 regularization term ``(λ/2) Σ‖W‖²``."""
    if strength == 0.0:
        return 0.0
    return 0.5 * strength * sum(float((p**2).sum()) for p in params)
