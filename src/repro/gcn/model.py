"""The circuit-recognition GCN of Fig. 4.

Architecture (two-layer default, matching the paper):

    input (n × 18)
      → ChebConv(K) + [BatchNorm] + ReLU  → GraphPool
      → ChebConv(K) + ReLU                → GraphPool
      → GraphUnpool × levels (back to the original vertices)
      → Dense(512) + ReLU + Dropout
      → Dense(n_classes) → softmax

The conv/pool trunk is exactly Fig. 4; because GANA annotates
*vertices* (not whole graphs), the trunk's multilevel features are
unpooled back to level 0 before the 512-wide fully-connected softmax
head, so each vertex is classified from its cluster's receptive field.
Setting ``pooling=False`` gives the plain node-GCN variant used in the
fast test paths.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import ModelConfigError
from repro.gcn.layers import (
    BatchNorm,
    ChebConv,
    Dense,
    Dropout,
    GraphPool,
    GraphUnpool,
    Layer,
    ReLU,
    Tanh,
)
from repro.gcn.loss import softmax
from repro.gcn.samples import GraphSample
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class GCNConfig:
    """Hyperparameters of the recognition GCN.

    Defaults follow Sec. V-A: two convolution layers, filter size
    K = 32, 512-wide fully-connected head, ReLU activations, batch
    normalization and dropout for regularization.
    """

    n_features: int = 18
    n_classes: int = 2
    n_layers: int = 2
    filter_size: int = 32
    channels: tuple[int, ...] = (32, 64)
    fc_size: int = 512
    dropout: float = 0.2
    batch_norm: bool = True
    activation: str = "relu"  # "relu" | "tanh"
    pooling: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_layers < 1:
            raise ModelConfigError("need at least one conv layer")
        if len(self.channels) < self.n_layers:
            raise ModelConfigError(
                f"channels {self.channels} too short for {self.n_layers} layers"
            )
        if self.activation not in ("relu", "tanh"):
            raise ModelConfigError(f"unknown activation {self.activation!r}")

    def with_(self, **changes) -> "GCNConfig":
        """Functional update, e.g. ``config.with_(filter_size=16)``."""
        return replace(self, **changes)

    @property
    def levels_needed(self) -> int:
        """Coarsening levels samples must carry for this model."""
        return self.n_layers if self.pooling else 0


class GCNModel:
    """Layer stack + prediction API for vertex classification."""

    def __init__(self, config: GCNConfig):
        self.config = config
        rng = seeded_rng(("gcn-init", config.seed))
        act = ReLU if config.activation == "relu" else Tanh
        layers: list[Layer] = []
        in_features = config.n_features
        for layer_idx in range(config.n_layers):
            out_features = config.channels[layer_idx]
            layers.append(
                ChebConv(in_features, out_features, config.filter_size, rng)
            )
            if config.batch_norm:
                layers.append(BatchNorm(out_features))
            layers.append(act())
            if config.pooling:
                layers.append(GraphPool())
            in_features = out_features
        if config.pooling:
            for _ in range(config.n_layers):
                layers.append(GraphUnpool())
        layers.append(Dense(in_features, config.fc_size, rng))
        layers.append(act())
        layers.append(Dropout(config.dropout, seeded_rng(("dropout", config.seed))))
        layers.append(Dense(config.fc_size, config.n_classes, rng))
        self.layers = layers
        # The first conv consumes the sample's constant feature matrix:
        # its Chebyshev basis is cacheable across epochs, and its input
        # gradient is dead (nothing upstream consumes it).
        layers[0].input_layer = True

    # -- plumbing -------------------------------------------------------

    def parameter_slots(self) -> list[tuple[dict, dict]]:
        """(params, grads) pairs for the optimizer."""
        return [
            (layer.params, layer.grads) for layer in self.layers if layer.params
        ]

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def n_parameters(self) -> int:
        return sum(layer.n_parameters() for layer in self.layers)

    def weight_arrays(self) -> list[np.ndarray]:
        """All weight matrices (for L2 regularization reporting)."""
        return [
            layer.params["weight"]
            for layer in self.layers
            if "weight" in layer.params
        ]

    # -- forward/backward ------------------------------------------------

    def _check_levels(self, sample) -> None:
        if self.config.pooling and len(sample.pyramid.assignments) < self.config.n_layers:
            raise ModelConfigError(
                f"sample {sample.name!r} has "
                f"{len(sample.pyramid.assignments)} coarsening levels; "
                f"model needs {self.config.n_layers}"
            )

    def forward(self, sample: GraphSample, training: bool) -> np.ndarray:
        """Per-vertex logits of shape (n_vertices, n_classes)."""
        self._check_levels(sample)
        ctx = sample.context()
        x = sample.features
        for layer in self.layers:
            x = layer.forward(x, ctx, training)
        return x

    def forward_packed(self, batch, training: bool) -> np.ndarray:
        """Packed-batch logits of shape (Σn_i, n_classes).

        One Chebyshev recurrence and one GEMM per layer serve all of
        ``batch``'s graphs; the result rows match the per-sample
        :meth:`forward` outputs to fp64 rounding (see ``gcn/batch.py``
        for the exact-vs-ulp breakdown).
        """
        for sample in batch.samples:
            self._check_levels(sample)
        first = self.layers[0]
        if isinstance(first, ChebConv):
            batch.seed_input_basis(first.order)
        ctx = batch.context()
        x = batch.features
        for layer in self.layers:
            x = layer.forward(x, ctx, training)
        return x

    def backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    # -- inference --------------------------------------------------------

    def predict_proba(self, sample: GraphSample) -> np.ndarray:
        """Per-vertex class probabilities (inference mode)."""
        return softmax(self.forward(sample, training=False))

    def predict(self, sample: GraphSample) -> np.ndarray:
        """Per-vertex argmax class ids."""
        return self.forward(sample, training=False).argmax(axis=1)

    def predict_proba_batch(
        self, samples: list[GraphSample]
    ) -> list[np.ndarray]:
        """Per-vertex class probabilities for each sample, computed in
        one packed forward pass (per-sample values to fp64 rounding)."""
        if not samples:
            return []
        if len(samples) == 1:
            return [self.predict_proba(samples[0])]
        from repro.gcn.batch import pack_samples

        batch = pack_samples(samples)
        logits = self.forward_packed(batch, training=False)
        return batch.split(softmax(logits))

    def predict_batch(self, samples: list[GraphSample]) -> list[np.ndarray]:
        """Per-vertex argmax class ids for each sample (one packed pass)."""
        if not samples:
            return []
        if len(samples) == 1:
            return [self.predict(samples[0])]
        from repro.gcn.batch import pack_samples

        batch = pack_samples(samples)
        logits = self.forward_packed(batch, training=False)
        return [seg.argmax(axis=1) for seg in batch.split(logits)]

    # -- (de)serialization --------------------------------------------------

    def rng_states(self) -> list[dict]:
        """Dropout RNG states in layer order (plain JSON-able dicts).

        Checkpoint/resume must restore these alongside the weights:
        dropout draws advance the stream every training forward pass,
        so a resumed run only replays the uninterrupted run's masks
        bitwise when the generators pick up exactly where they stopped.
        """
        return [
            dict(layer.rng.bit_generator.state)
            for layer in self.layers
            if isinstance(layer, Dropout)
        ]

    def set_rng_states(self, states: list[dict]) -> None:
        """Restore the streams captured by :meth:`rng_states`."""
        dropouts = [layer for layer in self.layers if isinstance(layer, Dropout)]
        if len(states) != len(dropouts):
            raise ModelConfigError(
                f"got {len(states)} dropout RNG states for "
                f"{len(dropouts)} dropout layers"
            )
        for layer, state in zip(dropouts, states):
            layer.rng.bit_generator.state = state

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name→array mapping of every parameter and BN statistic."""
        state: dict[str, np.ndarray] = {}
        for idx, layer in enumerate(self.layers):
            for key, value in layer.params.items():
                state[f"layer{idx}.{key}"] = value.copy()
            if isinstance(layer, BatchNorm):
                state[f"layer{idx}.running_mean"] = layer.running_mean.copy()
                state[f"layer{idx}.running_var"] = layer.running_var.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for idx, layer in enumerate(self.layers):
            for key in layer.params:
                name = f"layer{idx}.{key}"
                if name not in state:
                    raise ModelConfigError(f"missing parameter {name} in state dict")
                if state[name].shape != layer.params[key].shape:
                    raise ModelConfigError(
                        f"shape mismatch for {name}: "
                        f"{state[name].shape} vs {layer.params[key].shape}"
                    )
                layer.params[key] = state[name].copy()
            if isinstance(layer, BatchNorm):
                layer.running_mean = state[f"layer{idx}.running_mean"].copy()
                layer.running_var = state[f"layer{idx}.running_var"].copy()

    def save(self, path: str) -> None:
        """Persist parameters and the config in one npz file."""
        import dataclasses
        import json

        config = dataclasses.asdict(self.config)
        config["channels"] = list(config["channels"])
        np.savez(
            path,
            __config__=np.array(json.dumps(config)),
            **self.state_dict(),
        )

    @classmethod
    def load(cls, path: str, config: GCNConfig | None = None) -> "GCNModel":
        """Load a saved model; the config is read from the file unless
        explicitly overridden (legacy files without one need it)."""
        import json

        with np.load(path) as data:
            state = {k: data[k] for k in data.files if k != "__config__"}
            if config is None:
                if "__config__" not in data.files:
                    raise ModelConfigError(
                        f"{path} carries no config; pass one explicitly"
                    )
                raw = json.loads(str(data["__config__"]))
                raw["channels"] = tuple(raw["channels"])
                config = GCNConfig(**raw)
        model = cls(config)
        model.load_state_dict(state)
        return model

    def clone(self) -> "GCNModel":
        """Deep copy (used by early stopping to keep the best epoch)."""
        twin = GCNModel(self.config)
        buffer = io.BytesIO()
        np.savez(buffer, **self.state_dict())
        buffer.seek(0)
        with np.load(buffer) as data:
            twin.load_state_dict({k: data[k] for k in data.files})
        return twin
