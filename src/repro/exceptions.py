"""Exception hierarchy for the GANA reproduction.

All library-raised errors derive from :class:`GanaError` so that callers
can catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class GanaError(Exception):
    """Base class for all errors raised by this package."""


class SpiceSyntaxError(GanaError):
    """Raised when a SPICE netlist cannot be tokenized or parsed.

    Carries the offending line number (1-based) when known, the raw
    ``message`` (without the line prefix), and an optional ``hint``
    suggesting a fix — both feed the lenient-mode
    :class:`~repro.runtime.resilience.Diagnostic` records.
    """

    def __init__(
        self, message: str, line: int | None = None, hint: str | None = None
    ):
        self.line = line
        self.message = message
        self.hint = hint
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ElaborationError(GanaError):
    """Raised when hierarchy flattening fails (missing subckt, port
    arity mismatch, recursive instantiation)."""


class GraphConstructionError(GanaError):
    """Raised when a netlist cannot be converted to a bipartite graph."""


class ModelConfigError(GanaError):
    """Raised for invalid GCN model or training configuration."""


class MatchError(GanaError):
    """Raised for invalid primitive-matching requests."""


class ConstraintError(GanaError):
    """Raised for malformed or contradictory layout constraints."""


class LayoutError(GanaError):
    """Raised when the placer cannot satisfy its inputs."""


class DatasetError(GanaError):
    """Raised by dataset generators for invalid specs."""


class ArtifactError(GanaError):
    """Raised for unreadable, stale, or mistyped pipeline artifacts."""


class TrainingDiverged(GanaError):
    """Raised when GCN training diverges past its rollback budget.

    The divergence guard in :func:`repro.gcn.train.train` detects a
    non-finite minibatch loss or an exploding gradient norm, rolls the
    run back to the last good epoch, and retries with a reduced
    learning rate.  When the retry budget runs out, this carries the
    epoch the run could not get past and how many rollbacks were spent.
    """

    def __init__(
        self,
        message: str,
        epoch: int | None = None,
        rollbacks: int | None = None,
    ):
        super().__init__(message)
        self.epoch = epoch
        self.rollbacks = rollbacks


class BudgetExceeded(GanaError):
    """Raised when a search exhausts its step or wall-clock budget.

    Worst-case-exponential searches (VF2 subgraph isomorphism, the
    annealing placer) and per-item batch timeouts raise this instead of
    hanging.  ``partial`` carries whatever results were accumulated
    before the budget ran out (a list of isomorphisms, a partial
    :class:`~repro.primitives.matcher.AnnotationResult`, a best-so-far
    :class:`~repro.layout.anneal.AnnealResult`, ...) so callers can
    degrade gracefully instead of losing everything.
    """

    def __init__(
        self,
        message: str,
        steps: int | None = None,
        elapsed: float | None = None,
        partial: object | None = None,
    ):
        super().__init__(message)
        self.steps = steps
        self.elapsed = elapsed
        self.partial = partial
