"""Exception hierarchy for the GANA reproduction.

All library-raised errors derive from :class:`GanaError` so that callers
can catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class GanaError(Exception):
    """Base class for all errors raised by this package."""


class SpiceSyntaxError(GanaError):
    """Raised when a SPICE netlist cannot be tokenized or parsed.

    Carries the offending line number (1-based) when known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ElaborationError(GanaError):
    """Raised when hierarchy flattening fails (missing subckt, port
    arity mismatch, recursive instantiation)."""


class GraphConstructionError(GanaError):
    """Raised when a netlist cannot be converted to a bipartite graph."""


class ModelConfigError(GanaError):
    """Raised for invalid GCN model or training configuration."""


class MatchError(GanaError):
    """Raised for invalid primitive-matching requests."""


class ConstraintError(GanaError):
    """Raised for malformed or contradictory layout constraints."""


class LayoutError(GanaError):
    """Raised when the placer cannot satisfy its inputs."""


class DatasetError(GanaError):
    """Raised by dataset generators for invalid specs."""
