"""``python -m repro.fuzz`` — the generative fuzzing CLI.

Runs a bounded differential-fuzzing campaign
(:func:`repro.testing.campaign.run_campaign`): seeded random decks
through every registered oracle, with automatic ddmin shrinking of any
divergence into a committed-corpus-ready repro.

Examples::

    # 50 decks through every oracle (the acceptance smoke)
    python -m repro.fuzz --seed 0 --iterations 50

    # parse/matching oracles only, 30-second budget
    python -m repro.fuzz --oracle parse_modes --oracle indexed_matching \\
        --time-budget 30 --iterations 10000

    # CI shape: fixed seed, wall-clock bound, write shrunken repros
    python -m repro.fuzz --seed 0 --iterations 200 --time-budget 60 \\
        --corpus-dir fuzz-failures

Exit status is 0 when every oracle stayed green, 1 on any divergence —
the shrunken deck (and a JSON sidecar with the oracle name and
generation recipe) lands in ``--corpus-dir`` for triage.
"""

from __future__ import annotations

import argparse
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing across every dual execution path.",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed; iteration i fuzzes deck seed+i (default 0)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=50,
        help="maximum number of decks to generate (default 50)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock bound; the campaign stops at whichever of "
        "--iterations/--time-budget comes first",
    )
    parser.add_argument(
        "--oracle",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this oracle (repeatable; default: all registered)",
    )
    parser.add_argument(
        "--corpus-dir",
        default=None,
        metavar="DIR",
        help="write shrunken divergence repros (.sp + .json sidecar) here",
    )
    parser.add_argument(
        "--stop-on-first",
        action="store_true",
        help="end the campaign at the first divergence (after shrinking)",
    )
    parser.add_argument(
        "--list-oracles",
        action="store_true",
        help="print the oracle registry and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress lines (the final report still prints)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    from repro.testing.campaign import run_campaign
    from repro.testing.oracles import ORACLES

    if args.list_oracles:
        width = max(len(n) for n in ORACLES)
        for name in sorted(ORACLES):
            oracle = ORACLES[name]
            tag = " [pipeline]" if oracle.needs_pipeline else ""
            print(f"{name:<{width}}  {oracle.description}{tag}")
        return 0

    unknown = [n for n in args.oracle or [] if n not in ORACLES]
    if unknown:
        print(
            f"error: unknown oracle(s): {', '.join(unknown)} "
            f"(choose from: {', '.join(sorted(ORACLES))})",
            file=sys.stderr,
        )
        return 2

    log = None if args.quiet else lambda msg: print(msg, flush=True)
    report = run_campaign(
        base_seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        oracle_names=args.oracle,
        corpus_dir=args.corpus_dir,
        stop_on_first=args.stop_on_first,
        log=log,
    )
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
