"""SPICE deck tokenizer.

Handles the line-oriented SPICE surface syntax so the parser can work on
clean logical lines:

* ``+`` continuation lines are joined to their predecessor,
* ``*`` full-line comments and ``$``/``;`` trailing comments are dropped,
* everything is lower-cased (SPICE is case-insensitive) except nothing —
  we lower-case uniformly because net/device identity in this package is
  case-insensitive, matching common simulators,
* ``name=value`` parameter tokens are kept as single tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SpiceSyntaxError


@dataclass(frozen=True)
class LogicalLine:
    """One continuation-joined, comment-stripped SPICE statement."""

    number: int  # 1-based line number of the first physical line
    tokens: tuple[str, ...]

    @property
    def card(self) -> str:
        """The leading token, lower-case (e.g. ``m1``, ``.subckt``)."""
        return self.tokens[0]


def _strip_comment(line: str) -> str:
    """Remove ``$`` and ``;`` trailing comments."""
    for marker in ("$", ";"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line


def _tokenize(line: str) -> list[str]:
    """Split a logical line into tokens, gluing ``a = b`` into ``a=b``.

    SPICE permits spaces around ``=`` in parameter assignments; the
    parser is simpler if each assignment is exactly one token.
    Waveform parentheses (``SIN(0 1 1G)``) act as plain separators so
    the shape keyword and its numbers tokenize individually.
    """
    raw = (
        line.replace("(", " ").replace(")", " ").replace("=", " = ").split()
    )
    tokens: list[str] = []
    i = 0
    while i < len(raw):
        if raw[i] == "=":
            if not tokens or i + 1 >= len(raw):
                raise SpiceSyntaxError(f"dangling '=' in {line!r}")
            tokens[-1] = f"{tokens[-1]}={raw[i + 1]}"
            i += 2
        else:
            tokens.append(raw[i])
            i += 1
    return tokens


def lex(text: str) -> list[LogicalLine]:
    """Tokenize a SPICE deck into logical lines.

    The first line of a SPICE deck is traditionally a title; it is kept
    as a logical line with card ``.title`` unless it already starts with
    a dot directive, a comment, or a device letter followed by valid
    syntax — we adopt the simple, predictable rule that a *title line is
    only assumed when the first line starts with neither a dot, a
    letter-digit device pattern, nor a comment*.  In practice all decks
    in this package begin with ``* comment`` or ``.title``.
    """
    physical = text.splitlines()
    logical: list[LogicalLine] = []
    pending: list[str] | None = None
    pending_number = 0

    for number, line in enumerate(physical, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        stripped = _strip_comment(stripped).strip()
        if not stripped:
            continue
        if stripped.startswith("+"):
            if pending is None:
                raise SpiceSyntaxError("continuation with no previous line", number)
            pending.extend(_tokenize(stripped[1:]))
            continue
        if pending is not None:
            logical.append(LogicalLine(pending_number, tuple(t.lower() for t in pending)))
        pending = _tokenize(stripped)
        pending_number = number
    if pending is not None:
        logical.append(LogicalLine(pending_number, tuple(t.lower() for t in pending)))
    return logical
