"""SPICE deck tokenizer.

Handles the line-oriented SPICE surface syntax so the parser can work on
clean logical lines:

* ``+`` continuation lines are joined to their predecessor,
* ``*`` full-line comments and ``$``/``;`` trailing comments are dropped,
* everything is lower-cased (SPICE is case-insensitive) except nothing —
  we lower-case uniformly because net/device identity in this package is
  case-insensitive, matching common simulators,
* ``name=value`` parameter tokens are kept as single tokens.

Each :class:`LogicalLine` records the 1-based physical line span it was
assembled from (``number`` … ``end_number``), so parse diagnostics can
point at the exact lines of a continuation-joined card.

Passing a ``diagnostics`` list to :func:`lex` switches on error
recovery: malformed physical lines are skipped and recorded as
:class:`~repro.runtime.resilience.Diagnostic` entries instead of
aborting the whole deck on the first bad character.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SpiceSyntaxError


@dataclass(frozen=True)
class LogicalLine:
    """One continuation-joined, comment-stripped SPICE statement."""

    number: int  # 1-based line number of the first physical line
    tokens: tuple[str, ...]
    end_number: int = 0  # 1-based last physical line (0 = same as number)

    @property
    def card(self) -> str:
        """The leading token, lower-case (e.g. ``m1``, ``.subckt``)."""
        return self.tokens[0]

    @property
    def last_number(self) -> int:
        """Last physical line of the statement (continuations included)."""
        return self.end_number or self.number


def _strip_comment(line: str) -> str:
    """Remove ``$`` and ``;`` trailing comments."""
    for marker in ("$", ";"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line


def _tokenize(line: str) -> list[str]:
    """Split a logical line into tokens, gluing ``a = b`` into ``a=b``.

    SPICE permits spaces around ``=`` in parameter assignments; the
    parser is simpler if each assignment is exactly one token.
    Waveform parentheses (``SIN(0 1 1G)``) act as plain separators so
    the shape keyword and its numbers tokenize individually.
    """
    raw = (
        line.replace("(", " ").replace(")", " ").replace("=", " = ").split()
    )
    tokens: list[str] = []
    i = 0
    while i < len(raw):
        if raw[i] == "=":
            if not tokens or i + 1 >= len(raw):
                raise SpiceSyntaxError(
                    f"dangling '=' in {line!r}",
                    hint="parameter assignments need both a name and a "
                    "value (name=value)",
                )
            tokens[-1] = f"{tokens[-1]}={raw[i + 1]}"
            i += 2
        else:
            tokens.append(raw[i])
            i += 1
    return tokens


@dataclass
class _Pending:
    """A logical line being assembled across continuation lines."""

    number: int
    tokens: list[str]
    end_number: int = field(default=0)

    def finish(self) -> LogicalLine:
        return LogicalLine(
            self.number,
            tuple(t.lower() for t in self.tokens),
            end_number=self.end_number or self.number,
        )


def lex(text: str, diagnostics: list | None = None) -> list[LogicalLine]:
    """Tokenize a SPICE deck into logical lines.

    The first line of a SPICE deck is traditionally a title; it is kept
    as a logical line with card ``.title`` unless it already starts with
    a dot directive, a comment, or a device letter followed by valid
    syntax — we adopt the simple, predictable rule that a *title line is
    only assumed when the first line starts with neither a dot, a
    letter-digit device pattern, nor a comment*.  In practice all decks
    in this package begin with ``* comment`` or ``.title``.

    With ``diagnostics`` given (a list), tokenization errors on a
    physical line are recorded there and the line is skipped — lenient
    mode.  Without it, the first error raises
    :class:`~repro.exceptions.SpiceSyntaxError` with its line number.
    """
    physical = text.splitlines()
    logical: list[LogicalLine] = []
    pending: _Pending | None = None

    def tokens_of(fragment: str, number: int) -> list[str] | None:
        try:
            return _tokenize(fragment)
        except SpiceSyntaxError as exc:
            if diagnostics is None:
                raise SpiceSyntaxError(exc.message, number, hint=exc.hint)
            from repro.runtime.resilience import diagnostic_from_error

            diagnostics.append(diagnostic_from_error(exc, line=number))
            return None

    for number, line in enumerate(physical, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        stripped = _strip_comment(stripped).strip()
        if not stripped:
            continue
        if stripped.startswith("+"):
            if pending is None:
                error = SpiceSyntaxError(
                    "continuation with no previous line",
                    number,
                    hint="a '+' line must follow the card it continues",
                )
                if diagnostics is None:
                    raise error
                from repro.runtime.resilience import diagnostic_from_error

                diagnostics.append(diagnostic_from_error(error))
                continue
            extra = tokens_of(stripped[1:], number)
            if extra is not None:
                pending.tokens.extend(extra)
                pending.end_number = number
            continue
        if pending is not None:
            logical.append(pending.finish())
            pending = None
        tokens = tokens_of(stripped, number)
        if tokens:
            pending = _Pending(number=number, tokens=tokens)
    if pending is not None:
        logical.append(pending.finish())
    return logical
