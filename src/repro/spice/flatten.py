"""Netlist hierarchy flattening (Sec. II-B, "Netlist flattening").

GANA bypasses designer-specified hierarchies: different design houses
split, say, bias networks and signal paths into different subcircuits,
which would break current-mirror recognition across the boundary.
:func:`flatten` expands every ``X`` instance recursively into the top
level, producing one flat :class:`~repro.spice.netlist.Circuit`.

Naming: a device ``m1`` inside instance ``xota`` becomes ``xota/m1``;
an internal net ``n1`` becomes ``xota/n1``.  Ports are connected to the
caller's nets; global nets (``.global`` plus supply/ground by
convention) keep their names at every depth.

Hierarchy-preserving mode: :func:`flatten_hierarchical` produces the
same flat circuit *plus* a :class:`DesignTree` — one
:class:`SubcktDef` per subcircuit definition (with a canonical,
parameter-resolved, port-ordered content fingerprint, hashed once per
definition via :func:`definition_fingerprints`) and one
:class:`InstanceRecord` per elaborated instance (path → definition,
accumulated multiplier, resolved port bindings).  The tree is what the
hierarchy-scoped annotation path (:mod:`repro.core.hier_annotate`)
uses to annotate each unique definition once and replicate the result
per call site.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.exceptions import ElaborationError
from repro.runtime.cache import Memo
from repro.spice.netlist import Circuit, Netlist, is_power_net

#: Separator between instance path components in flattened names.
SEP = "/"

#: Safety bound on hierarchy depth; analog decks are shallow, so hitting
#: this means recursive instantiation.
MAX_DEPTH = 64


@dataclass(frozen=True)
class SubcktDef:
    """One subcircuit definition plus its canonical content fingerprint.

    The fingerprint is Merkle-style: it covers the definition's port
    list (in order), every device card (kind, pins, value, model,
    resolved parameters), and every child instance as ``(name,
    child-fingerprint, nets, params)`` — so it changes iff the
    definition's elaborated content can change, and editing one subckt
    invalidates exactly the definitions that (transitively) contain it.
    """

    name: str
    fingerprint: str
    ports: tuple[str, ...]
    n_devices: int
    n_subinstances: int


@dataclass(frozen=True)
class InstanceRecord:
    """One elaborated subcircuit instance in the flat namespace.

    ``path`` is the flattened instance prefix without the trailing
    separator (``"xrx0/xlna"``); ``parent`` is the enclosing instance
    path (``""`` for top-level instances).  ``multiplier`` is the
    *accumulated* multiplier from the top (every enclosing ``m=``
    folded in), and ``bindings`` maps each definition port to the net
    it resolves to in the flat namespace.
    """

    path: str
    parent: str
    definition: str
    fingerprint: str
    multiplier: float
    bindings: tuple[tuple[str, str], ...]


@dataclass
class DesignTree:
    """Hierarchy sidecar emitted by :func:`flatten_hierarchical`.

    ``definitions`` is keyed by lower-cased subckt name.  ``bodies``
    holds one standalone elaborated :class:`Circuit` per unique
    ``(fingerprint, multiplier)`` equivalence group — elaborated with
    an empty prefix and identity port map, so its device and net names
    are exactly the flat names of any member instance with the
    instance-path prefix stripped (ports and globals excepted).
    """

    top: str
    globals_: tuple[str, ...] = ()
    definitions: dict[str, SubcktDef] = field(default_factory=dict)
    instances: tuple[InstanceRecord, ...] = ()
    bodies: dict[tuple[str, float], Circuit] = field(default_factory=dict)

    def groups(self) -> dict[tuple[str, float], tuple[str, ...]]:
        """Instance paths per ``(fingerprint, multiplier)`` group."""
        out: dict[tuple[str, float], list[str]] = {}
        for rec in self.instances:
            out.setdefault((rec.fingerprint, rec.multiplier), []).append(rec.path)
        return {key: tuple(paths) for key, paths in out.items()}

    def record_for(self, path: str) -> InstanceRecord | None:
        """The instance record at ``path``, or None."""
        for rec in self.instances:
            if rec.path == path:
                return rec
        return None

    def n_unique(self) -> int:
        """Number of unique (definition, multiplier) equivalence groups."""
        return len({(r.fingerprint, r.multiplier) for r in self.instances})


#: Cross-call memo: Netlist object → name-keyed fingerprint dict, so a
#: deck re-fingerprinted by several pipeline stages hashes its subckt
#: cards once per process, not once per stage (let alone per instance).
_DEF_FP_MEMO = Memo()


def _compute_definition_fingerprints(netlist: Netlist) -> dict[str, str]:
    memo: dict[str, str] = {}

    def fp_of(name: str, stack: tuple[str, ...]) -> str:
        key = name.lower()
        done = memo.get(key)
        if done is not None:
            return done
        if key in stack:
            # Recursive instantiation: flatten() rejects it anyway, so
            # any stable marker is fine; do not memoize the marker.
            return hashlib.sha256(f"recursive:{key}".encode()).hexdigest()
        circuit = netlist.subckts.get(key)
        if circuit is None:
            digest = hashlib.sha256(f"undefined:{key}".encode()).hexdigest()
            memo[key] = digest
            return digest
        parts = ["ports:" + ",".join(circuit.ports)]
        for dev in circuit.devices:
            parts.append(
                repr((dev.name, dev.kind.value, dev.pins, dev.value, dev.model, dev.params))
            )
        for inst in circuit.instances:
            child_fp = fp_of(inst.subckt, stack + (key,))
            parts.append(repr(("x", inst.name, child_fp, inst.nets, inst.params)))
        digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
        memo[key] = digest
        return digest

    for name in netlist.subckts:
        fp_of(name, ())
    return memo


def definition_fingerprints(netlist: Netlist) -> dict[str, str]:
    """Canonical content fingerprint per subckt definition.

    Each ``.subckt`` body is hashed exactly once per netlist — the
    name-keyed memo inside covers repeated instantiation, and a
    process-wide identity memo covers repeated calls on the same
    :class:`Netlist` object.  Keys are lower-cased definition names.
    """
    return dict(_DEF_FP_MEMO.get_or_build(netlist, _compute_definition_fingerprints))


def _flatten_into(
    netlist: Netlist,
    circuit: Circuit,
    prefix: str,
    net_map: dict[str, str],
    out: Circuit,
    depth: int,
    stack: tuple[str, ...],
    multiplier: float = 1.0,
    diagnostics: list | None = None,
    records: list[InstanceRecord] | None = None,
    def_fps: dict[str, str] | None = None,
) -> None:
    if depth > MAX_DEPTH:
        raise ElaborationError(
            f"hierarchy deeper than {MAX_DEPTH}; instantiation cycle via {stack}"
        )

    def resolve(net: str) -> str:
        if net in net_map:
            return net_map[net]
        if net in netlist.globals_ or is_power_net(net):
            return net
        return f"{prefix}{net}" if prefix else net

    for dev in circuit.devices:
        local_map = {n: resolve(n) for n in dev.nets}
        renamed = dev.renamed(f"{prefix}{dev.name}", local_map)
        if multiplier != 1.0:
            renamed = _apply_multiplier(renamed, multiplier)
        out.add(renamed)

    for inst in circuit.instances:
        try:
            if inst.subckt in stack:
                raise ElaborationError(
                    f"recursive instantiation of {inst.subckt!r} via {stack}"
                )
            child = netlist.subckt(inst.subckt)
            if len(child.ports) != len(inst.nets):
                raise ElaborationError(
                    f"instance {prefix}{inst.name}: {inst.subckt!r} has "
                    f"{len(child.ports)} ports but {len(inst.nets)} nets given"
                )
        except ElaborationError as exc:
            if diagnostics is None:
                raise
            from repro.runtime.resilience import ERROR, Diagnostic

            diagnostics.append(
                Diagnostic(
                    severity=ERROR,
                    message=str(exc),
                    card=f"{prefix}{inst.name}",
                    hint="instance skipped during lenient elaboration",
                )
            )
            continue
        child_map = {
            port: resolve(net) for port, net in zip(child.ports, inst.nets)
        }
        inst_mult = dict(inst.params).get("m", 1.0)
        if records is not None:
            records.append(
                InstanceRecord(
                    path=f"{prefix}{inst.name}",
                    parent=prefix[: -len(SEP)] if prefix else "",
                    definition=inst.subckt.lower(),
                    fingerprint=(def_fps or {}).get(inst.subckt.lower(), ""),
                    multiplier=multiplier * inst_mult,
                    bindings=tuple(
                        (port, child_map[port]) for port in child.ports
                    ),
                )
            )
        _flatten_into(
            netlist,
            child,
            prefix=f"{prefix}{inst.name}{SEP}",
            net_map=child_map,
            out=out,
            depth=depth + 1,
            stack=stack + (inst.subckt,),
            multiplier=multiplier * inst_mult,
            diagnostics=diagnostics,
            records=records,
            def_fps=def_fps,
        )


def _apply_multiplier(dev, multiplier: float):
    """Scale a device by an instance multiplier (``x1 ... cell m=2``).

    MOS devices multiply their ``m`` parameter; capacitors scale their
    value up; resistors and inductors scale down (parallel combination)
    — the standard SPICE semantics of subcircuit multipliers.
    """
    from dataclasses import replace

    from repro.spice.netlist import DeviceKind

    if dev.kind.is_transistor:
        base = dev.param("m", 1.0) or 1.0
        params = tuple(
            (k, base * multiplier if k == "m" else v) for k, v in dev.params
        )
        if "m" not in {k for k, _ in params}:
            params = params + (("m", base * multiplier),)
        return replace(dev, params=params)
    if dev.value is None:
        return dev
    if dev.kind is DeviceKind.CAPACITOR or dev.kind.is_source:
        return replace(dev, value=dev.value * multiplier)
    if dev.kind in (DeviceKind.RESISTOR, DeviceKind.INDUCTOR):
        return replace(dev, value=dev.value / multiplier)
    return dev


def flatten(netlist: Netlist, diagnostics: list | None = None) -> Circuit:
    """Expand all subcircuit instances into one flat circuit.

    The result has the same ports as the input top level and contains
    only leaf :class:`~repro.spice.netlist.Device` cards.

    With ``diagnostics`` given (a list of
    :class:`~repro.runtime.resilience.Diagnostic` records), elaboration
    errors on an instance — undefined subcircuit, port-arity mismatch,
    recursive instantiation — are recorded there and the instance is
    *skipped* instead of aborting the whole deck (lenient mode).  A
    hierarchy deeper than :data:`MAX_DEPTH` still raises in both modes:
    it means runaway recursion, and there is no partial answer worth
    keeping.
    """
    out = Circuit(name=netlist.top.name, ports=netlist.top.ports)
    _flatten_into(
        netlist,
        netlist.top,
        prefix="",
        net_map={p: p for p in netlist.top.ports},
        out=out,
        depth=0,
        stack=(),
        diagnostics=diagnostics,
    )
    return out


def flatten_hierarchical(
    netlist: Netlist, diagnostics: list | None = None
) -> tuple[Circuit, DesignTree]:
    """Flatten while preserving the design hierarchy as a sidecar.

    Returns the *same* flat :class:`Circuit` that :func:`flatten` would
    produce (device-for-device, name-for-name) plus a
    :class:`DesignTree`: fingerprinted subckt definitions, the full
    instance table, and one standalone elaborated body per unique
    ``(fingerprint, multiplier)`` group.  Lenient-mode skipped
    instances are absent from the instance table, matching their
    absence from the flat circuit.
    """
    def_fps = definition_fingerprints(netlist)
    out = Circuit(name=netlist.top.name, ports=netlist.top.ports)
    records: list[InstanceRecord] = []
    _flatten_into(
        netlist,
        netlist.top,
        prefix="",
        net_map={p: p for p in netlist.top.ports},
        out=out,
        depth=0,
        stack=(),
        diagnostics=diagnostics,
        records=records,
        def_fps=def_fps,
    )
    definitions = {
        key: SubcktDef(
            name=circuit.name,
            fingerprint=def_fps.get(key, ""),
            ports=circuit.ports,
            n_devices=len(circuit.devices),
            n_subinstances=len(circuit.instances),
        )
        for key, circuit in netlist.subckts.items()
    }
    tree = DesignTree(
        top=netlist.top.name,
        globals_=netlist.globals_,
        definitions=definitions,
        instances=tuple(records),
    )
    for rec in records:
        group = (rec.fingerprint, rec.multiplier)
        if group in tree.bodies:
            continue
        child = netlist.subckts.get(rec.definition)
        if child is None:
            continue
        body = Circuit(name=child.name, ports=child.ports)
        scratch: list = []
        try:
            _flatten_into(
                netlist,
                child,
                prefix="",
                net_map={p: p for p in child.ports},
                out=body,
                depth=0,
                stack=(child.name,),
                multiplier=rec.multiplier,
                diagnostics=scratch,
            )
        except ElaborationError:
            continue  # body unavailable; instances fall back to direct matching
        tree.bodies[group] = body
    return out, tree


def instance_path(flat_name: str) -> tuple[str, ...]:
    """Split a flattened device/net name back into its hierarchy path.

    >>> instance_path("xfilter/xota/m1")
    ('xfilter', 'xota', 'm1')
    """
    return tuple(flat_name.split(SEP))
