"""Netlist hierarchy flattening (Sec. II-B, "Netlist flattening").

GANA bypasses designer-specified hierarchies: different design houses
split, say, bias networks and signal paths into different subcircuits,
which would break current-mirror recognition across the boundary.
:func:`flatten` expands every ``X`` instance recursively into the top
level, producing one flat :class:`~repro.spice.netlist.Circuit`.

Naming: a device ``m1`` inside instance ``xota`` becomes ``xota/m1``;
an internal net ``n1`` becomes ``xota/n1``.  Ports are connected to the
caller's nets; global nets (``.global`` plus supply/ground by
convention) keep their names at every depth.
"""

from __future__ import annotations

from repro.exceptions import ElaborationError
from repro.spice.netlist import Circuit, Netlist, is_power_net

#: Separator between instance path components in flattened names.
SEP = "/"

#: Safety bound on hierarchy depth; analog decks are shallow, so hitting
#: this means recursive instantiation.
MAX_DEPTH = 64


def _flatten_into(
    netlist: Netlist,
    circuit: Circuit,
    prefix: str,
    net_map: dict[str, str],
    out: Circuit,
    depth: int,
    stack: tuple[str, ...],
    multiplier: float = 1.0,
    diagnostics: list | None = None,
) -> None:
    if depth > MAX_DEPTH:
        raise ElaborationError(
            f"hierarchy deeper than {MAX_DEPTH}; instantiation cycle via {stack}"
        )

    def resolve(net: str) -> str:
        if net in net_map:
            return net_map[net]
        if net in netlist.globals_ or is_power_net(net):
            return net
        return f"{prefix}{net}" if prefix else net

    for dev in circuit.devices:
        local_map = {n: resolve(n) for n in dev.nets}
        renamed = dev.renamed(f"{prefix}{dev.name}", local_map)
        if multiplier != 1.0:
            renamed = _apply_multiplier(renamed, multiplier)
        out.add(renamed)

    for inst in circuit.instances:
        try:
            if inst.subckt in stack:
                raise ElaborationError(
                    f"recursive instantiation of {inst.subckt!r} via {stack}"
                )
            child = netlist.subckt(inst.subckt)
            if len(child.ports) != len(inst.nets):
                raise ElaborationError(
                    f"instance {prefix}{inst.name}: {inst.subckt!r} has "
                    f"{len(child.ports)} ports but {len(inst.nets)} nets given"
                )
        except ElaborationError as exc:
            if diagnostics is None:
                raise
            from repro.runtime.resilience import ERROR, Diagnostic

            diagnostics.append(
                Diagnostic(
                    severity=ERROR,
                    message=str(exc),
                    card=f"{prefix}{inst.name}",
                    hint="instance skipped during lenient elaboration",
                )
            )
            continue
        child_map = {
            port: resolve(net) for port, net in zip(child.ports, inst.nets)
        }
        inst_mult = dict(inst.params).get("m", 1.0)
        _flatten_into(
            netlist,
            child,
            prefix=f"{prefix}{inst.name}{SEP}",
            net_map=child_map,
            out=out,
            depth=depth + 1,
            stack=stack + (inst.subckt,),
            multiplier=multiplier * inst_mult,
            diagnostics=diagnostics,
        )


def _apply_multiplier(dev, multiplier: float):
    """Scale a device by an instance multiplier (``x1 ... cell m=2``).

    MOS devices multiply their ``m`` parameter; capacitors scale their
    value up; resistors and inductors scale down (parallel combination)
    — the standard SPICE semantics of subcircuit multipliers.
    """
    from dataclasses import replace

    from repro.spice.netlist import DeviceKind

    if dev.kind.is_transistor:
        base = dev.param("m", 1.0) or 1.0
        params = tuple(
            (k, base * multiplier if k == "m" else v) for k, v in dev.params
        )
        if "m" not in {k for k, _ in params}:
            params = params + (("m", base * multiplier),)
        return replace(dev, params=params)
    if dev.value is None:
        return dev
    if dev.kind is DeviceKind.CAPACITOR or dev.kind.is_source:
        return replace(dev, value=dev.value * multiplier)
    if dev.kind in (DeviceKind.RESISTOR, DeviceKind.INDUCTOR):
        return replace(dev, value=dev.value / multiplier)
    return dev


def flatten(netlist: Netlist, diagnostics: list | None = None) -> Circuit:
    """Expand all subcircuit instances into one flat circuit.

    The result has the same ports as the input top level and contains
    only leaf :class:`~repro.spice.netlist.Device` cards.

    With ``diagnostics`` given (a list of
    :class:`~repro.runtime.resilience.Diagnostic` records), elaboration
    errors on an instance — undefined subcircuit, port-arity mismatch,
    recursive instantiation — are recorded there and the instance is
    *skipped* instead of aborting the whole deck (lenient mode).  A
    hierarchy deeper than :data:`MAX_DEPTH` still raises in both modes:
    it means runaway recursion, and there is no partial answer worth
    keeping.
    """
    out = Circuit(name=netlist.top.name, ports=netlist.top.ports)
    _flatten_into(
        netlist,
        netlist.top,
        prefix="",
        net_map={p: p for p in netlist.top.ports},
        out=out,
        depth=0,
        stack=(),
        diagnostics=diagnostics,
    )
    return out


def instance_path(flat_name: str) -> tuple[str, ...]:
    """Split a flattened device/net name back into its hierarchy path.

    >>> instance_path("xfilter/xota/m1")
    ('xfilter', 'xota', 'm1')
    """
    return tuple(flat_name.split(SEP))
