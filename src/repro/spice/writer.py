"""Netlist → SPICE text serialization.

The writer emits decks that :func:`repro.spice.parser.parse_netlist`
reads back into an equivalent :class:`~repro.spice.netlist.Netlist`
(round-trip property, exercised by the hypothesis tests).  SPICE device
names must begin with the letter of their card type; the writer
prefixes a type letter when a name does not already carry it.
"""

from __future__ import annotations

from repro.spice.netlist import Circuit, Device, DeviceKind, Instance, Netlist
from repro.spice.units import format_spice_number

_CARD_LETTER: dict[DeviceKind, str] = {
    DeviceKind.NMOS: "m",
    DeviceKind.PMOS: "m",
    DeviceKind.RESISTOR: "r",
    DeviceKind.CAPACITOR: "c",
    DeviceKind.INDUCTOR: "l",
    DeviceKind.VSOURCE: "v",
    DeviceKind.ISOURCE: "i",
    DeviceKind.DIODE: "d",
}


def _card_name(dev: Device) -> str:
    """Ensure the device name starts with its SPICE card letter.

    Flattened names like ``xota/m1`` keep hierarchy but must still lead
    with the card letter, so path separators are folded into ``_``.
    """
    flat = dev.name.replace("/", "_")
    letter = _CARD_LETTER[dev.kind]
    if flat.startswith(letter):
        return flat
    return f"{letter}{flat}"


def _device_line(dev: Device) -> str:
    tokens: list[str] = [_card_name(dev)]
    tokens.extend(net for _, net in dev.pins)
    if dev.kind.is_transistor:
        tokens.append(dev.model or dev.kind.value)
    else:
        if dev.value is not None:
            tokens.append(format_spice_number(dev.value))
        elif dev.model:
            tokens.append(dev.model)
    for key, val in dev.params:
        tokens.append(f"{key}={format_spice_number(val)}")
    return " ".join(tokens)


def _instance_line(inst: Instance) -> str:
    name = inst.name.replace("/", "_")
    if not name.startswith("x"):
        name = f"x{name}"
    tokens = [name, *inst.nets, inst.subckt]
    tokens.extend(f"{k}={format_spice_number(v)}" for k, v in inst.params)
    return " ".join(tokens)


def _circuit_lines(circuit: Circuit) -> list[str]:
    lines = [_device_line(d) for d in circuit.devices]
    lines.extend(_instance_line(i) for i in circuit.instances)
    return lines


def write_netlist(netlist: Netlist) -> str:
    """Serialize a full netlist (title, models, subckts, top, .end)."""
    lines: list[str] = [f"* {netlist.title or netlist.top.name}"]
    if netlist.globals_:
        lines.append(".global " + " ".join(netlist.globals_))
    for name, kind in sorted(netlist.models.items()):
        mtype = {"nmos": "nmos", "pmos": "pmos"}.get(kind.value, kind.value)
        lines.append(f".model {name} {mtype}")
    for sub in netlist.subckts.values():
        lines.append(f".subckt {sub.name} " + " ".join(sub.ports))
        lines.extend(_circuit_lines(sub))
        lines.append(".ends")
    lines.extend(_circuit_lines(netlist.top))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_circuit(circuit: Circuit, title: str = "") -> str:
    """Serialize a single flat circuit as a standalone deck."""
    netlist = Netlist(title=title or circuit.name, top=circuit)
    return write_netlist(netlist)
