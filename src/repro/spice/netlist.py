"""In-memory netlist data model.

A parsed SPICE deck becomes a :class:`Netlist`: a dictionary of
:class:`Subckt` definitions plus a distinguished top-level circuit.
Circuits contain :class:`Device` cards (transistors, passives, sources)
and :class:`Instance` cards (``X`` subcircuit calls).  Everything is a
plain, hashable-friendly dataclass so netlists can be compared, copied
and round-tripped through the writer.

Net-name conventions used throughout the package:

* supply nets match :data:`SUPPLY_NET_RE` (``vdd``, ``vdd!``, ``vcc`` …)
* ground nets match :data:`GROUND_NET_RE` (``gnd``, ``gnd!``, ``vss``, ``0``)
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.exceptions import ElaborationError

SUPPLY_NET_RE = re.compile(r"^(vdd|vcc|avdd|dvdd|vddd|vdda)[!]?\d*$", re.IGNORECASE)
GROUND_NET_RE = re.compile(r"^(0|gnd|vss|agnd|dgnd|avss|gnd!|vss!|agnd!)[!]?\d*$", re.IGNORECASE)


def is_supply_net(net: str) -> bool:
    """True for power-supply nets (``vdd`` and friends)."""
    return bool(SUPPLY_NET_RE.match(net))


def is_ground_net(net: str) -> bool:
    """True for ground nets (``gnd``, ``vss``, node ``0`` …)."""
    return bool(GROUND_NET_RE.match(net))


_POWER_NET_MEMO: dict[str, bool] = {}
_POWER_NET_MEMO_MAX = 4096


def is_power_net(net: str) -> bool:
    """True for either supply or ground nets.

    Pure function of the name *under fixed rail conventions*; memoized
    because the graph and postprocessing layers ask about the same
    handful of rail names thousands of times per circuit.  The memo is
    an explicit module dict rather than ``lru_cache`` so each pipeline
    run can clear it (:func:`reset_power_net_memo`): two decks
    annotated back to back under different conventions (customized
    ``SUPPLY_NET_RE`` / ``GROUND_NET_RE``) must not poison each other
    through a process-wide cache.
    """
    cached = _POWER_NET_MEMO.get(net)
    if cached is None:
        if len(_POWER_NET_MEMO) >= _POWER_NET_MEMO_MAX:
            _POWER_NET_MEMO.clear()
        cached = _POWER_NET_MEMO[net] = is_supply_net(net) or is_ground_net(net)
    return cached


def reset_power_net_memo() -> None:
    """Drop every memoized :func:`is_power_net` answer.

    Called at the start of each pipeline run so rail-role answers never
    leak across decks that use the same net name differently.
    """
    _POWER_NET_MEMO.clear()


class DeviceKind(enum.Enum):
    """Element categories at the lowest hierarchy level (Sec. II-A)."""

    NMOS = "nmos"
    PMOS = "pmos"
    RESISTOR = "resistor"
    CAPACITOR = "capacitor"
    INDUCTOR = "inductor"
    VSOURCE = "vsource"
    ISOURCE = "isource"
    DIODE = "diode"

    @property
    def is_transistor(self) -> bool:
        return self in (DeviceKind.NMOS, DeviceKind.PMOS)

    @property
    def is_passive(self) -> bool:
        return self in (DeviceKind.RESISTOR, DeviceKind.CAPACITOR, DeviceKind.INDUCTOR)

    @property
    def is_source(self) -> bool:
        return self in (DeviceKind.VSOURCE, DeviceKind.ISOURCE)


#: Terminal names per device kind, in pin order.
TERMINALS: dict[DeviceKind, tuple[str, ...]] = {
    DeviceKind.NMOS: ("d", "g", "s", "b"),
    DeviceKind.PMOS: ("d", "g", "s", "b"),
    DeviceKind.RESISTOR: ("p", "n"),
    DeviceKind.CAPACITOR: ("p", "n"),
    DeviceKind.INDUCTOR: ("p", "n"),
    DeviceKind.VSOURCE: ("p", "n"),
    DeviceKind.ISOURCE: ("p", "n"),
    DeviceKind.DIODE: ("p", "n"),
}


@dataclass(frozen=True)
class Device:
    """A leaf element card.

    ``pins`` maps terminal name (``d``/``g``/``s``/``b`` for MOS,
    ``p``/``n`` for two-terminal elements) to net name.  ``value`` is the
    primary value (ohms, farads, henries, volts/amps) when present;
    MOS geometry lives in ``params`` (``w``, ``l``, ``m`` …).
    """

    name: str
    kind: DeviceKind
    pins: tuple[tuple[str, str], ...]
    value: float | None = None
    model: str | None = None
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        expected = TERMINALS[self.kind]
        got = tuple(t for t, _ in self.pins)
        if got != expected:
            raise ValueError(
                f"device {self.name}: expected terminals {expected}, got {got}"
            )

    @property
    def pin_map(self) -> dict[str, str]:
        """Terminal-name → net-name mapping."""
        return dict(self.pins)

    @property
    def nets(self) -> tuple[str, ...]:
        """Connected nets in terminal order (may contain duplicates)."""
        return tuple(n for _, n in self.pins)

    def param(self, key: str, default: float | None = None) -> float | None:
        """Look up a device parameter by (case-insensitive) name."""
        key = key.lower()
        for k, v in self.params:
            if k == key:
                return v
        return default

    def renamed(self, name: str, net_map: dict[str, str]) -> "Device":
        """Copy with a new name and nets remapped through ``net_map``."""
        new_pins = tuple((t, net_map.get(n, n)) for t, n in self.pins)
        return replace(self, name=name, pins=new_pins)


@dataclass(frozen=True)
class Instance:
    """An ``X`` card: a call to a subcircuit definition."""

    name: str
    subckt: str
    nets: tuple[str, ...]
    params: tuple[tuple[str, float], ...] = ()

    def renamed(self, name: str, net_map: dict[str, str]) -> "Instance":
        return replace(
            self, name=name, nets=tuple(net_map.get(n, n) for n in self.nets)
        )


@dataclass
class Circuit:
    """A flat list of devices and subcircuit instances plus port list.

    Used both for subcircuit bodies and the top-level circuit.
    """

    name: str
    ports: tuple[str, ...] = ()
    devices: list[Device] = field(default_factory=list)
    instances: list[Instance] = field(default_factory=list)

    def add(self, card: Device | Instance) -> None:
        """Append a device or instance card."""
        if isinstance(card, Device):
            self.devices.append(card)
        else:
            self.instances.append(card)

    @property
    def nets(self) -> tuple[str, ...]:
        """All net names referenced in this circuit, in first-seen order."""
        seen: dict[str, None] = {}
        for port in self.ports:
            seen.setdefault(port, None)
        for dev in self.devices:
            for net in dev.nets:
                seen.setdefault(net, None)
        for inst in self.instances:
            for net in inst.nets:
                seen.setdefault(net, None)
        return tuple(seen)

    @property
    def device_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.devices)

    def device(self, name: str) -> Device:
        """Look up a device by name; raises KeyError if absent."""
        for dev in self.devices:
            if dev.name == name:
                return dev
        raise KeyError(name)

    def count(self, kind: DeviceKind) -> int:
        """Number of devices of the given kind."""
        return sum(1 for d in self.devices if d.kind is kind)

    def transistors(self) -> Iterator[Device]:
        """Iterate over NMOS/PMOS devices."""
        return (d for d in self.devices if d.kind.is_transistor)

    def is_flat(self) -> bool:
        """True when the circuit contains no subcircuit instances."""
        return not self.instances


@dataclass
class Netlist:
    """A full SPICE deck: title, subckt library, and top-level circuit."""

    title: str = ""
    top: Circuit = field(default_factory=lambda: Circuit(name="top"))
    subckts: dict[str, Circuit] = field(default_factory=dict)
    models: dict[str, DeviceKind] = field(default_factory=dict)
    globals_: tuple[str, ...] = ()
    #: Lenient-mode parse problems (``repro.runtime.resilience.Diagnostic``
    #: records); always empty after a successful strict parse.
    diagnostics: list = field(default_factory=list)

    def subckt(self, name: str) -> Circuit:
        """Case-insensitive subcircuit lookup."""
        key = name.lower()
        if key not in self.subckts:
            raise ElaborationError(f"undefined subcircuit: {name}")
        return self.subckts[key]

    def define(self, circuit: Circuit) -> None:
        """Register a subcircuit definition (case-insensitive name)."""
        self.subckts[circuit.name.lower()] = circuit

    def total_devices(self) -> int:
        """Leaf-device count of the *unexpanded* deck (top level only)."""
        return len(self.top.devices)


def make_mos(
    name: str,
    kind: DeviceKind,
    drain: str,
    gate: str,
    source: str,
    body: str | None = None,
    model: str | None = None,
    w: float = 1e-6,
    l: float = 100e-9,
    m: float = 1.0,
) -> Device:
    """Convenience constructor for a MOSFET device card.

    ``body`` defaults to ``gnd!`` for NMOS and ``vdd!`` for PMOS, the
    usual bulk ties in the circuits this package generates.
    """
    if not kind.is_transistor:
        raise ValueError(f"make_mos called with non-transistor kind {kind}")
    if body is None:
        body = "gnd!" if kind is DeviceKind.NMOS else "vdd!"
    if model is None:
        model = "nmos" if kind is DeviceKind.NMOS else "pmos"
    return Device(
        name=name,
        kind=kind,
        pins=(("d", drain), ("g", gate), ("s", source), ("b", body)),
        model=model,
        params=(("w", w), ("l", l), ("m", m)),
    )


def make_passive(
    name: str, kind: DeviceKind, pos: str, neg: str, value: float
) -> Device:
    """Convenience constructor for R/C/L device cards."""
    if not kind.is_passive:
        raise ValueError(f"make_passive called with non-passive kind {kind}")
    return Device(name=name, kind=kind, pins=(("p", pos), ("n", neg)), value=value)
