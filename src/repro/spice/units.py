"""SPICE numeric literals.

SPICE numbers are floats with an optional engineering suffix and an
optional trailing unit string that simulators ignore (``10uF`` means
``10e-6``).  Suffixes are case-insensitive; ``m`` is milli and ``meg``
is mega, the classic trap this module gets right.
"""

from __future__ import annotations

import re

from repro.exceptions import SpiceSyntaxError

#: Engineering suffixes recognized by SPICE, longest first so that
#: ``meg``/``mil`` are not mis-read as ``m``.
_SUFFIXES: tuple[tuple[str, float], ...] = (
    ("meg", 1e6),
    ("mil", 25.4e-6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
    ("a", 1e-18),
)

_NUMBER_RE = re.compile(
    r"""^\s*
        (?P<mantissa>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        (?P<rest>[a-zA-Z]*)
        \s*$""",
    re.VERBOSE,
)


def parse_spice_number(text: str) -> float:
    """Parse a SPICE numeric literal into a float.

    >>> parse_spice_number("2.2u")
    2.2e-06
    >>> parse_spice_number("10meg")
    10000000.0
    >>> parse_spice_number("1.5kOhm")
    1500.0

    Raises :class:`SpiceSyntaxError` if ``text`` is not numeric.
    """
    match = _NUMBER_RE.match(text)
    if match is None:
        raise SpiceSyntaxError(f"not a SPICE number: {text!r}")
    value = float(match.group("mantissa"))
    rest = match.group("rest").lower()
    for suffix, scale in _SUFFIXES:
        if rest.startswith(suffix):
            return value * scale
    # No recognized suffix: any trailing letters are a unit tag (e.g. "F").
    return value


def is_spice_number(text: str) -> bool:
    """Return True if ``text`` parses as a SPICE numeric literal."""
    try:
        parse_spice_number(text)
    except SpiceSyntaxError:
        return False
    return True


def format_spice_number(value: float) -> str:
    """Format a float with the most compact engineering suffix.

    Chosen so that ``parse_spice_number(format_spice_number(x))`` is
    within floating-point rounding of ``x``.

    >>> format_spice_number(2.2e-06)
    '2.2u'
    """
    if value == 0:
        return "0"
    magnitude = abs(value)
    for suffix, scale in (
        ("t", 1e12), ("meg", 1e6), ("k", 1e3), ("", 1.0),
        ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12),
        ("f", 1e-15), ("a", 1e-18),
    ):
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.6g}"
            return f"{text}{suffix}"
    return f"{value:.6g}"
