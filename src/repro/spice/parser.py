"""SPICE netlist parser.

Supports the subset of SPICE needed for transistor-level analog decks:

* device cards: ``M`` (MOSFET), ``R``, ``C``, ``L``, ``V``, ``I``, ``D``
* subcircuits: ``.subckt`` / ``.ends`` with nesting
* instances: ``X``
* ``.model`` cards (only the polarity is retained)
* ``.global``, ``.title``, ``.end``, ``.param`` (constant params only)
* ignored-but-accepted analysis/control cards (``.tran``, ``.op``,
  ``.dc``, ``.ac``, ``.option(s)``, ``.ic``, ``.temp``, ``.lib``,
  ``.include`` *without* file resolution)

MOS polarity resolution: an ``M`` card's model name is looked up in the
``.model`` table; if absent, names containing ``p`` before ``mos``/at
start (``pmos``, ``pch``, ``pfet``) are PMOS, names with ``n`` are NMOS.

Error handling comes in two modes.  ``mode="strict"`` (the default)
raises :class:`~repro.exceptions.SpiceSyntaxError` on the first
malformed card.  ``mode="lenient"`` keeps parsing: every problem
becomes a structured :class:`~repro.runtime.resilience.Diagnostic`
(severity, offending card, 1-based line span, message, fix hint) on the
returned :attr:`Netlist.diagnostics` list, and the offending card is
skipped — real-world decks from a million users are messy, and a batch
service must report *all* the problems of a deck in one round trip, not
one per upload.
"""

from __future__ import annotations

import re

from repro.exceptions import SpiceSyntaxError
from repro.spice.lexer import LogicalLine, lex
from repro.spice.netlist import Circuit, Device, DeviceKind, Instance, Netlist
from repro.spice.units import is_spice_number, parse_spice_number

_PMOS_NAME_RE = re.compile(r"^(p|.*p(mos|ch|fet))", re.IGNORECASE)
_NMOS_NAME_RE = re.compile(r"^(n|.*n(mos|ch|fet))", re.IGNORECASE)

#: Dot cards accepted and skipped (analysis/control statements).
_IGNORED_CARDS = frozenset(
    {".tran", ".op", ".dc", ".ac", ".noise", ".option", ".options", ".ic",
     ".temp", ".lib", ".include", ".inc", ".print", ".plot", ".probe",
     ".save", ".meas", ".measure", ".nodeset", ".backanno"}
)


def _resolve_value(raw: str, table: dict[str, float] | None) -> float | None:
    """Numeric literal, ``{name}``/``'name'`` reference, or bare name."""
    if is_spice_number(raw):
        return parse_spice_number(raw)
    if table is None:
        return None
    name = raw.strip("{}'").lower()
    return table.get(name)


def _split_params(
    tokens: tuple[str, ...], table: dict[str, float] | None = None
) -> tuple[list[str], list[tuple[str, float]]]:
    """Separate positional tokens from trailing ``k=v`` parameter tokens.

    Values may be numeric literals or references to ``.param``
    definitions (``w={wbig}``, ``w='wbig'``, or ``w=wbig``); references
    resolve through ``table``.  Unresolvable expressions are dropped —
    recognition only uses numeric geometry.
    """
    positional: list[str] = []
    params: list[tuple[str, float]] = []
    for token in tokens:
        if "=" in token:
            key, _, raw = token.partition("=")
            if not key or not raw:
                raise SpiceSyntaxError(
                    f"malformed parameter {token!r}",
                    hint="parameters are written name=value",
                )
            value = _resolve_value(raw, table)
            if value is not None:
                params.append((key.lower(), value))
        else:
            positional.append(token)
    return positional, params


class _ParserState:
    """Mutable state threaded through the card handlers."""

    def __init__(self) -> None:
        self.netlist = Netlist()
        self.stack: list[Circuit] = [self.netlist.top]
        self.param_table: dict[str, float] = {}

    @property
    def scope(self) -> Circuit:
        return self.stack[-1]


def _mos_kind(model: str, models: dict[str, DeviceKind]) -> DeviceKind:
    """Resolve MOS polarity from the model table or from the model name."""
    if model in models:
        return models[model]
    if _PMOS_NAME_RE.match(model):
        return DeviceKind.PMOS
    if _NMOS_NAME_RE.match(model):
        return DeviceKind.NMOS
    raise SpiceSyntaxError(
        f"cannot infer MOS polarity from model {model!r}",
        hint="add a '.model <name> nmos|pmos' card or use a model name "
        "containing nmos/pmos (nch/pch, nfet/pfet)",
    )


def _parse_mos(line: LogicalLine, state: _ParserState) -> Device:
    positional, params = _split_params(line.tokens, state.param_table)
    if len(positional) < 6:
        raise SpiceSyntaxError(
            f"MOS card needs name + 4 nets + model, got {positional}",
            line.number,
            hint="expected: Mname drain gate source body model [k=v ...]",
        )
    name, drain, gate, source, body, model = positional[:6]
    kind = _mos_kind(model, state.netlist.models)
    return Device(
        name=name,
        kind=kind,
        pins=(("d", drain), ("g", gate), ("s", source), ("b", body)),
        model=model,
        params=tuple(params),
    )


def _parse_two_terminal(
    line: LogicalLine, kind: DeviceKind, state: _ParserState
) -> Device:
    positional, params = _split_params(line.tokens, state.param_table)
    if len(positional) < 3:
        raise SpiceSyntaxError(
            f"{kind.value} card needs name + 2 nets, got {positional}",
            line.number,
            hint=f"expected: {kind.value}name net+ net- [value|model]",
        )
    name, pos, neg = positional[:3]
    value: float | None = None
    model: str | None = None
    # The 4th positional token may be a value or a model name; for sources
    # it may also be a DC spec such as "dc 1.8".
    extras = positional[3:]
    i = 0
    while i < len(extras):
        token = extras[i]
        if token == "dc" and i + 1 < len(extras) and is_spice_number(extras[i + 1]):
            value = parse_spice_number(extras[i + 1])
            i += 2
        elif is_spice_number(token):
            if value is None:
                value = parse_spice_number(token)
            i += 1
        else:
            if model is None:
                model = token
            i += 1
    for key, val in params:
        if key in ("r", "c", "l") and value is None:
            value = val
    if value is None and kind.is_passive:
        # Parameterized value we could not evaluate; use a neutral 1.0 so
        # downstream feature bucketing still works.
        value = 1.0
    return Device(
        name=name,
        kind=kind,
        pins=(("p", pos), ("n", neg)),
        value=value,
        model=model,
        params=tuple(params),
    )


def _parse_instance(line: LogicalLine, state: _ParserState) -> Instance:
    positional, params = _split_params(line.tokens, state.param_table)
    if len(positional) < 2:
        raise SpiceSyntaxError(
            f"X card needs name + subckt, got {positional}",
            line.number,
            hint="expected: Xname net1 ... netN subckt_name",
        )
    name = positional[0]
    subckt = positional[-1]
    nets = tuple(positional[1:-1])
    return Instance(name=name, subckt=subckt, nets=nets, params=tuple(params))


def _parse_model(line: LogicalLine, state: _ParserState) -> None:
    tokens = line.tokens
    if len(tokens) < 3:
        raise SpiceSyntaxError(
            ".model card needs name and type",
            line.number,
            hint="expected: .model <name> nmos|pmos|r|res|c|d [params]",
        )
    name, mtype = tokens[1], tokens[2]
    kind_map = {
        "nmos": DeviceKind.NMOS,
        "pmos": DeviceKind.PMOS,
        "r": DeviceKind.RESISTOR,
        "res": DeviceKind.RESISTOR,
        "c": DeviceKind.CAPACITOR,
        "d": DeviceKind.DIODE,
    }
    if mtype in kind_map:
        state.netlist.models[name] = kind_map[mtype]


def _parse_subckt_header(line: LogicalLine, state: _ParserState) -> None:
    positional, _params = _split_params(line.tokens)
    if len(positional) < 2:
        raise SpiceSyntaxError(
            ".subckt needs a name",
            line.number,
            hint="expected: .subckt <name> [port ...]",
        )
    name = positional[1]
    ports = tuple(positional[2:])
    circuit = Circuit(name=name, ports=ports)
    state.netlist.define(circuit)
    state.stack.append(circuit)


_DEVICE_DISPATCH: dict[str, DeviceKind] = {
    "r": DeviceKind.RESISTOR,
    "c": DeviceKind.CAPACITOR,
    "l": DeviceKind.INDUCTOR,
    "v": DeviceKind.VSOURCE,
    "i": DeviceKind.ISOURCE,
    "d": DeviceKind.DIODE,
}


#: Safety bound on nested .include depth.
_MAX_INCLUDE_DEPTH = 16


def _expand_includes(
    text: str, include_dir, depth: int = 0, diagnostics: list | None = None
) -> str:
    """Splice ``.include``/``.inc``/``.lib`` file contents inline.

    Paths resolve relative to ``include_dir``; quotes around the path
    are stripped.  Missing files and include cycles raise
    :class:`SpiceSyntaxError` whose message names the resolved path
    that was tried and the ``include_dir`` it was resolved against —
    or, with ``diagnostics`` given, are recorded there and skipped.
    """
    from pathlib import Path

    if depth > _MAX_INCLUDE_DEPTH:
        raise SpiceSyntaxError(
            f".include nesting deeper than {_MAX_INCLUDE_DEPTH} (cycle?)",
            hint="check the include files for a .include cycle",
        )

    def report(error: SpiceSyntaxError) -> None:
        if diagnostics is None:
            raise error
        from repro.runtime.resilience import diagnostic_from_error

        diagnostics.append(diagnostic_from_error(error))

    out: list[str] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        card = stripped.split()[0].lower() if stripped.split() else ""
        if card in (".include", ".inc", ".lib"):
            tokens = stripped.split()
            if len(tokens) < 2:
                report(
                    SpiceSyntaxError(
                        f"{card} without a path",
                        number,
                        hint=f"expected: {card} <path>",
                    )
                )
                continue
            rel = tokens[1].strip("\"'")
            path = Path(include_dir) / rel
            if not path.exists():
                report(
                    SpiceSyntaxError(
                        f"included file not found: {path} "
                        f"(from {tokens[1]!r}, include_dir={include_dir!s})",
                        number,
                        hint="check the path on the card and the "
                        "include_dir= argument",
                    )
                )
                continue
            included = path.read_text()
            out.append(
                _expand_includes(
                    included, path.parent, depth + 1, diagnostics=diagnostics
                )
            )
        else:
            out.append(raw)
    return "\n".join(out)


#: Recognized parse modes.
PARSE_MODES = ("strict", "lenient")


def parse_netlist(
    text: str, include_dir: str | None = None, mode: str = "strict"
) -> Netlist:
    """Parse a SPICE deck into a :class:`Netlist`.

    All names are lower-cased (SPICE is case-insensitive).
    ``include_dir`` enables ``.include`` resolution relative to that
    directory (without it, include cards are skipped like other
    analysis cards — the safe default for untrusted text).

    ``mode="strict"`` raises :class:`SpiceSyntaxError` with a line
    number on the first malformed card.  ``mode="lenient"`` collects
    every problem as a :class:`~repro.runtime.resilience.Diagnostic`
    on the returned netlist's :attr:`~Netlist.diagnostics` and keeps
    going: malformed cards are skipped, an unterminated ``.subckt`` is
    auto-closed, and the parse always returns whatever structure the
    deck still supports.
    """
    if mode not in PARSE_MODES:
        raise ValueError(f"mode must be one of {PARSE_MODES}, got {mode!r}")
    lenient = mode == "lenient"
    diagnostics: list | None = [] if lenient else None

    state = _ParserState()
    if include_dir is not None:
        text = _expand_includes(text, include_dir, diagnostics=diagnostics)
    lines = lex(text, diagnostics=diagnostics)

    def guarded(handler, line: LogicalLine) -> bool:
        """Run a card handler; in lenient mode convert errors to records.

        Returns False when the card was skipped.
        """
        try:
            handler(line)
            return True
        except SpiceSyntaxError as exc:
            if exc.line is None:
                # Raise sites below the card level (_mos_kind,
                # _split_params) don't know the line; stamp it here.
                exc = SpiceSyntaxError(exc.message, line.number, hint=exc.hint)
            if diagnostics is None:
                raise exc
            from repro.runtime.resilience import diagnostic_from_error

            diagnostics.append(
                diagnostic_from_error(
                    exc,
                    line=line.number,
                    end_line=line.last_number,
                    card=line.card,
                )
            )
            return False

    # .model and .param cards may appear after the devices that use
    # them; collect both in a first pass so polarity resolution and
    # parameter references always see the full tables.
    for line in lines:
        if line.card == ".model":
            guarded(lambda ln: _parse_model(ln, state), line)
        elif line.card == ".param":
            def first_pass_param(ln: LogicalLine) -> None:
                _positional, params = _split_params(
                    ln.tokens[1:], state.param_table
                )
                state.param_table.update(dict(params))

            guarded(first_pass_param, line)

    def handle(line: LogicalLine) -> None:
        card = line.card
        if card.startswith("."):
            if card == ".subckt":
                _parse_subckt_header(line, state)
            elif card == ".ends":
                if len(state.stack) == 1:
                    raise SpiceSyntaxError(
                        ".ends without .subckt",
                        line.number,
                        hint="check the .subckt/.ends pairing",
                    )
                state.stack.pop()
            elif card == ".title":
                state.netlist.title = " ".join(line.tokens[1:])
            elif card == ".global":
                state.netlist.globals_ = state.netlist.globals_ + tuple(
                    line.tokens[1:]
                )
            elif card in (".end", ".model", ".param") or card in _IGNORED_CARDS:
                pass  # .model/.param handled in the first pass
            else:
                raise SpiceSyntaxError(
                    f"unsupported card {card!r}",
                    line.number,
                    hint="analysis cards (.tran/.ac/...) are skipped "
                    "automatically; remove or comment out anything else",
                )
            return

        leading = card[0]
        if leading == "m":
            state.scope.add(_parse_mos(line, state))
        elif leading == "x":
            state.scope.add(_parse_instance(line, state))
        elif leading in _DEVICE_DISPATCH:
            state.scope.add(
                _parse_two_terminal(line, _DEVICE_DISPATCH[leading], state)
            )
        else:
            raise SpiceSyntaxError(
                f"unsupported device card {card!r}",
                line.number,
                hint="supported device prefixes: M, R, C, L, V, I, D, X",
            )

    for line in lines:
        guarded(handle, line)

    if len(state.stack) != 1:
        error = SpiceSyntaxError(
            f"unterminated .subckt {state.scope.name!r}",
            lines[-1].last_number if lines else None,
            hint="add a matching .ends card",
        )
        if diagnostics is None:
            raise error
        from repro.runtime.resilience import diagnostic_from_error

        diagnostics.append(diagnostic_from_error(error, card=".subckt"))
        del state.stack[1:]  # auto-close so the netlist stays usable

    if diagnostics:
        state.netlist.diagnostics.extend(diagnostics)
    return state.netlist
