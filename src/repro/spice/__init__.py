"""SPICE netlist substrate: parsing, data model, flattening, writing.

Public surface::

    from repro.spice import parse_netlist, flatten, preprocess, write_netlist
"""

from repro.spice.flatten import flatten, instance_path
from repro.spice.netlist import (
    Circuit,
    Device,
    DeviceKind,
    Instance,
    Netlist,
    is_ground_net,
    is_power_net,
    is_supply_net,
    make_mos,
    make_passive,
    reset_power_net_memo,
)
from repro.spice.parser import parse_netlist
from repro.spice.preprocess import PreprocessReport, preprocess
from repro.spice.units import format_spice_number, is_spice_number, parse_spice_number
from repro.spice.writer import write_circuit, write_netlist

__all__ = [
    "Circuit",
    "Device",
    "DeviceKind",
    "Instance",
    "Netlist",
    "PreprocessReport",
    "flatten",
    "format_spice_number",
    "instance_path",
    "is_ground_net",
    "is_power_net",
    "is_spice_number",
    "is_supply_net",
    "make_mos",
    "make_passive",
    "parse_netlist",
    "preprocess",
    "reset_power_net_memo",
    "write_circuit",
    "write_netlist",
]
