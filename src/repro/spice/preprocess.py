"""Recognition-oriented netlist preprocessing (Sec. II-B).

The paper's preprocessing "identifies netlist features that help
performance but do not affect functionality (and can be disregarded
during recognition), e.g., parallel transistors for sizing, series
transistors for large transistor lengths, dummies, decaps."

This module implements exactly those four reductions, *for recognition
purposes only*: the output is a new flat circuit plus a
:class:`PreprocessReport` that maps every surviving device back to the
original devices it absorbed, so annotations can be projected back onto
the unreduced netlist.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace

from repro.spice.netlist import (
    Circuit,
    Device,
    DeviceKind,
    is_ground_net,
    is_power_net,
    is_supply_net,
)


@dataclass
class PreprocessReport:
    """Record of what preprocessing changed.

    ``absorbed`` maps a surviving device name to the names of all
    original devices it represents (itself included).  ``removed`` lists
    devices dropped outright (dummies, decaps) with the reason.
    """

    absorbed: dict[str, list[str]] = field(default_factory=dict)
    removed: list[tuple[str, str]] = field(default_factory=list)

    def originals_of(self, name: str) -> list[str]:
        """All original device names represented by surviving ``name``."""
        return self.absorbed.get(name, [name])

    @property
    def removed_names(self) -> set[str]:
        return {name for name, _reason in self.removed}


def _is_dummy_transistor(dev: Device) -> bool:
    """Dummy devices added for layout matching, never conducting.

    Heuristics (standard practice): drain and source on the same net, or
    the gate hard-tied to the rail that keeps the channel off (NMOS gate
    at ground, PMOS gate at supply) with drain or source also on a rail.
    """
    pins = dev.pin_map
    if pins["d"] == pins["s"]:
        return True
    gate = pins["g"]
    off_rail = is_ground_net(gate) if dev.kind is DeviceKind.NMOS else is_supply_net(gate)
    if off_rail and (is_power_net(pins["d"]) or is_power_net(pins["s"])):
        return True
    return False


def _is_decap(dev: Device) -> bool:
    """A capacitor strapped directly between power rails."""
    if dev.kind is not DeviceKind.CAPACITOR:
        return False
    pos, neg = dev.pin_map["p"], dev.pin_map["n"]
    return is_power_net(pos) and is_power_net(neg) and pos != neg


def _merge_parallel_mos(devices: list[Device], report: PreprocessReport) -> list[Device]:
    """Collapse transistors with identical (kind, model, d, g, s, b).

    The survivor keeps the first device's name and geometry with the
    multiplier ``m`` summed, mirroring how designers express sizing.
    """
    groups: dict[tuple, list[Device]] = defaultdict(list)
    order: list[tuple] = []
    for dev in devices:
        if dev.kind.is_transistor:
            key = (dev.kind, dev.model, tuple(sorted(dev.pin_map.items())))
        else:
            key = ("__unique__", dev.name)
        if key not in groups:
            order.append(key)
        groups[key].append(dev)

    merged: list[Device] = []
    for key in order:
        members = groups[key]
        # Survivor: the shortest (base) name, so derived names from
        # sizing splits never outlive their original.
        first = min(members, key=lambda d: (len(d.name), d.name))
        if len(members) == 1:
            merged.append(first)
            continue
        total_m = sum(d.param("m", 1.0) or 1.0 for d in members)
        params = tuple(
            (k, total_m if k == "m" else v) for k, v in first.params
        )
        if "m" not in {k for k, _ in params}:
            params = params + (("m", total_m),)
        merged.append(replace(first, params=params))
        # Compose absorption through earlier merge passes.
        names: list[str] = []
        for d in members:
            names.extend(report.absorbed.pop(d.name, [d.name]))
        report.absorbed[first.name] = names
    return merged


def _merge_parallel_passives(
    devices: list[Device], report: PreprocessReport
) -> list[Device]:
    """Collapse same-kind passives across the same net pair.

    Capacitors sum; resistors and inductors combine as parallel values.
    """
    groups: dict[tuple, list[Device]] = defaultdict(list)
    order: list[tuple] = []
    for dev in devices:
        if dev.kind.is_passive:
            key = (dev.kind, frozenset((dev.pin_map["p"], dev.pin_map["n"])))
        else:
            key = ("__unique__", dev.name)
        if key not in groups:
            order.append(key)
        groups[key].append(dev)

    merged: list[Device] = []
    for key in order:
        members = groups[key]
        first = min(members, key=lambda d: (len(d.name), d.name))
        if len(members) == 1:
            merged.append(first)
            continue
        values = [d.value for d in members if d.value]
        if first.kind is DeviceKind.CAPACITOR:
            value = sum(values) if values else first.value
        else:
            value = 1.0 / sum(1.0 / v for v in values) if values else first.value
        merged.append(replace(first, value=value))
        names = []
        for d in members:
            names.extend(report.absorbed.pop(d.name, [d.name]))
        report.absorbed[first.name] = names
    return merged


def _net_degrees(devices: list[Device]) -> dict[str, int]:
    degrees: dict[str, int] = defaultdict(int)
    for dev in devices:
        for net in set(dev.nets):
            degrees[net] += 1
    return degrees


def _merge_series_mos(
    devices: list[Device], ports: tuple[str, ...], report: PreprocessReport
) -> list[Device]:
    """Collapse stacked transistors used to realize long channels.

    A stack is a chain of same-kind, same-gate, same-body transistors
    joined drain-to-source through internal nets touched by nothing
    else.  The survivor's ``l`` is the sum of the members' lengths.
    """
    degrees = _net_degrees(devices)
    port_set = set(ports)

    def is_internal(net: str) -> bool:
        return (
            degrees[net] == 2 and net not in port_set and not is_power_net(net)
        )

    by_name = {d.name: d for d in devices if d.kind.is_transistor}
    # adjacency: internal net -> the two transistors whose d/s touch it
    net_to_ds: dict[str, list[str]] = defaultdict(list)
    for dev in by_name.values():
        for term in ("d", "s"):
            net = dev.pin_map[term]
            if is_internal(net):
                net_to_ds[net].append(dev.name)

    # Union chains of transistors that share an internal d/s net, same
    # gate net, same kind, same body.
    parent: dict[str, str] = {name: name for name in by_name}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        parent[find(a)] = find(b)

    for net, names in net_to_ds.items():
        if len(names) != 2:
            continue
        a, b = by_name[names[0]], by_name[names[1]]
        # A stack joins the *drain* of one device to the *source* of the
        # other; two devices sharing only their sources (a differential
        # pair) or only their drains are not in series.
        series = (a.pin_map["d"] == net and b.pin_map["s"] == net) or (
            a.pin_map["s"] == net and b.pin_map["d"] == net
        )
        if (
            series
            and a.kind is b.kind
            and a.model == b.model
            and a.pin_map["g"] == b.pin_map["g"]
            and a.pin_map["b"] == b.pin_map["b"]
        ):
            union(a.name, b.name)

    clusters: dict[str, list[Device]] = defaultdict(list)
    for name, dev in by_name.items():
        clusters[find(name)].append(dev)

    # Who touches each net through ANY terminal or device kind — a
    # stack-internal node must belong to the stack alone (a resistor
    # hanging off the junction makes it a real circuit node).
    touchers: dict[str, set[str]] = defaultdict(set)
    for dev in devices:
        for net in set(dev.nets):
            touchers[net].add(dev.name)

    merged: list[Device] = []
    consumed: set[str] = set()
    for members in clusters.values():
        if len(members) < 2:
            continue
        member_names = {d.name for d in members}
        internal = {
            net
            for d in members
            for net in (d.pin_map["d"], d.pin_map["s"])
            if is_internal(net) and touchers[net] <= member_names
        }
        # Chain endpoints: the d/s nets not internal to the cluster.
        endpoints = [
            net
            for d in members
            for net in (d.pin_map["d"], d.pin_map["s"])
            if net not in internal
        ]
        if len(endpoints) != 2:
            continue  # not a simple chain; leave untouched
        first = min(members, key=lambda d: (len(d.name), d.name))
        total_l = sum(d.param("l", 0.0) or 0.0 for d in members)
        params = tuple((k, total_l if k == "l" else v) for k, v in first.params)
        pins = (
            ("d", endpoints[0]),
            ("g", first.pin_map["g"]),
            ("s", endpoints[1]),
            ("b", first.pin_map["b"]),
        )
        merged.append(replace(first, pins=pins, params=params))
        prior = report.absorbed.pop(first.name, [first.name])
        names: list[str] = []
        for d in sorted(member_names):
            names.extend(report.absorbed.pop(d, [d]) if d != first.name else prior)
        report.absorbed[first.name] = names
        consumed |= member_names

    out = [d for d in devices if d.name not in consumed]
    return out + merged


def preprocess(circuit: Circuit) -> tuple[Circuit, PreprocessReport]:
    """Apply all four recognition reductions to a flat circuit.

    Returns the reduced circuit and a report for projecting annotations
    back.  The input circuit is not modified.
    """
    report = PreprocessReport()
    devices = list(circuit.devices)

    kept: list[Device] = []
    for dev in devices:
        if dev.kind.is_transistor and _is_dummy_transistor(dev):
            report.removed.append((dev.name, "dummy transistor"))
        elif _is_decap(dev):
            report.removed.append((dev.name, "decoupling capacitor"))
        else:
            kept.append(dev)

    # Parallel splits and series stacks compose (a sizing-split device
    # may itself be a stack of shorter devices), so iterate the merges
    # to a fixpoint — each pass can expose new merge opportunities.
    for _round in range(8):
        before = len(kept)
        kept = _merge_parallel_mos(kept, report)
        kept = _merge_series_mos(kept, circuit.ports, report)
        kept = _merge_parallel_passives(kept, report)
        if len(kept) == before:
            break

    for dev in kept:
        report.absorbed.setdefault(dev.name, [dev.name])

    # Order stability: survivors keep the position of their earliest
    # original device, so downstream vertex numbering (and with it the
    # Graclus coarsening and GCN output) is invariant to how many merge
    # rounds ran.
    position = {dev.name: i for i, dev in enumerate(circuit.devices)}
    kept.sort(
        key=lambda d: min(
            position.get(orig, len(position))
            for orig in report.originals_of(d.name)
        )
    )

    reduced = Circuit(name=circuit.name, ports=circuit.ports, devices=kept)
    return reduced, report
