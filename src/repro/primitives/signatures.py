"""SubGemini-style vertex signatures (the paper's ref [12]).

SubGemini (Ohlrich et al., DAC'93) — the source of GANA's bipartite
graph representation — prunes subgraph matching with neighborhood
labels before any backtracking.  This module implements that idea as a
sound prefilter for our VF2: each vertex gets a *signature*, the
multiset of ``(edge label, neighbor kind)`` pairs on its incident
edges, and a pattern vertex can only map to a target vertex whose
signature **covers** it (count-wise ≥ for boundary nets, = for
elements and internal nets, since those may gain no extra edges).

Soundness (never discarding a true match) is what the property tests
check; the payoff is measured by ``bench_vf2_scaling.py``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.bipartite import CircuitGraph
from repro.primitives.isomorphism import PatternGraph

#: Signature: (edge_label, neighbor_kind_token) → count.
Signature = Counter


def _kind_token(graph: CircuitGraph, vertex: int) -> object:
    if vertex < graph.n_elements:
        return graph.elements[vertex].kind
    return "net"


def vertex_signatures(graph: CircuitGraph) -> list[Signature]:
    """Per-vertex incident-edge signatures, O(E) total."""
    signatures: list[Signature] = [Counter() for _ in range(graph.n_vertices)]
    for edge in graph.edges:
        u = edge.element
        v = graph.n_elements + edge.net
        signatures[u][(edge.label, "net")] += 1
        signatures[v][(edge.label, graph.elements[u].kind)] += 1
    return signatures


def frozen_signatures(
    signatures: list[Signature],
) -> list[tuple]:
    """Hashable canonical form (repr-sorted item tuples) for O(1)
    equality.  Keys mix ints with :class:`DeviceKind`, which are not
    mutually orderable, so the sort key is the item's repr."""
    return [
        tuple(sorted(sig.items(), key=repr)) for sig in signatures
    ]


def signature_covers(
    pattern_sig: Signature, target_sig: Signature, exact: bool
) -> bool:
    """Can a vertex with ``target_sig`` host one with ``pattern_sig``?

    ``exact`` requires equal counts (elements and internal nets);
    otherwise the target may have extra edges of any kind.
    """
    if exact:
        return pattern_sig == target_sig
    for key, needed in pattern_sig.items():
        if target_sig[key] < needed:
            return False
    return True


@dataclass
class CompatibilityFilter:
    """Precomputed pattern-vertex → allowed-target-vertices sets."""

    allowed: list[set[int]]

    def ok(self, pv: int, tv: int) -> bool:
        return tv in self.allowed[pv]

    @property
    def is_feasible(self) -> bool:
        """False when some pattern vertex has no candidate at all —
        the whole match can be rejected without any search."""
        return all(self.allowed)


@dataclass
class TargetIndex:
    """Reusable per-target signature tables.

    Building this once per circuit (``TargetIndex.build``) and passing
    it to :func:`build_filter` for every template amortizes the O(E)
    signature computation across the whole library.
    """

    signatures: list[Signature]
    frozen: list[tuple]
    by_kind: dict[object, list[int]]
    by_exact: dict[tuple, list[int]]  # (kind, frozen signature) buckets

    @classmethod
    def build(cls, target: CircuitGraph) -> "TargetIndex":
        signatures = vertex_signatures(target)
        frozen = frozen_signatures(signatures)
        by_kind: dict[object, list[int]] = {}
        by_exact: dict[tuple, list[int]] = {}
        for tv in range(target.n_vertices):
            kind = _kind_token(target, tv)
            by_kind.setdefault(kind, []).append(tv)
            by_exact.setdefault((kind, frozen[tv]), []).append(tv)
        return cls(
            signatures=signatures,
            frozen=frozen,
            by_kind=by_kind,
            by_exact=by_exact,
        )


def build_filter(
    pattern: PatternGraph,
    target: CircuitGraph,
    index: TargetIndex | None = None,
) -> CompatibilityFilter:
    """Signature compatibility for every (pattern, target) vertex pair.

    Exact-signature pattern vertices (elements, internal nets) resolve
    through a hash bucket in O(1); boundary nets scan their kind bucket
    with O(1) work per candidate — linear in the target overall.
    """
    p_graph = pattern.graph
    p_sigs = vertex_signatures(p_graph)
    p_frozen = frozen_signatures(p_sigs)
    index = index or TargetIndex.build(target)
    n_el = p_graph.n_elements

    allowed: list[set[int]] = []
    for pv in range(p_graph.n_vertices):
        exact = pv < n_el or ((pv - n_el) not in pattern.boundary_nets)
        kind = _kind_token(p_graph, pv)
        if exact:
            ok = set(index.by_exact.get((kind, p_frozen[pv]), ()))
        else:
            sig = p_sigs[pv]
            ok = {
                tv
                for tv in index.by_kind.get(kind, ())
                if signature_covers(sig, index.signatures[tv], exact=False)
            }
        allowed.append(ok)
    return CompatibilityFilter(allowed=allowed)
