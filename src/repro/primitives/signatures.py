"""SubGemini-style vertex signatures (the paper's ref [12]).

SubGemini (Ohlrich et al., DAC'93) — the source of GANA's bipartite
graph representation — prunes subgraph matching with neighborhood
labels before any backtracking.  This module implements that idea as a
sound prefilter for our VF2: each vertex gets a *signature*, the
multiset of ``(edge label, neighbor kind)`` pairs on its incident
edges, and a pattern vertex can only map to a target vertex whose
signature **covers** it (count-wise ≥ for boundary nets, = for
elements and internal nets, since those may gain no extra edges).

Soundness (never discarding a true match) is what the property tests
check; the payoff is measured by ``bench_vf2_scaling.py``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.graph.bipartite import CircuitGraph
from repro.primitives.isomorphism import PatternGraph

#: Signature: (edge_label, neighbor_kind_token) → count.
Signature = Counter


def _kind_token(graph: CircuitGraph, vertex: int) -> object:
    if vertex < graph.n_elements:
        return graph.elements[vertex].kind
    return "net"


def vertex_signatures(graph: CircuitGraph) -> list[Signature]:
    """Per-vertex incident-edge signatures, O(E) total."""
    signatures: list[Signature] = [Counter() for _ in range(graph.n_vertices)]
    for edge in graph.edges:
        u = edge.element
        v = graph.n_elements + edge.net
        signatures[u][(edge.label, "net")] += 1
        signatures[v][(edge.label, graph.elements[u].kind)] += 1
    return signatures


def vertex_degrees(signatures: list[Signature]) -> list[int]:
    """Degree invariant: total incident-edge count per vertex."""
    return [sum(sig.values()) for sig in signatures]


def neighbor_kind_histograms(signatures: list[Signature]) -> list[Counter]:
    """Neighbor-type histogram invariant: kind → count, per vertex.

    A coarser projection of the full signature (the edge label is
    dropped), useful as a cheap compatibility check before the full
    multiset cover test.
    """
    histograms: list[Counter] = []
    for sig in signatures:
        hist: Counter = Counter()
        for (_label, kind), count in sig.items():
            hist[kind] += count
        histograms.append(hist)
    return histograms


def frozen_signatures(
    signatures: list[Signature],
) -> list[tuple]:
    """Hashable canonical form (repr-sorted item tuples) for O(1)
    equality.  Keys mix ints with :class:`DeviceKind`, which are not
    mutually orderable, so the sort key is the item's repr."""
    return [
        tuple(sorted(sig.items(), key=repr)) for sig in signatures
    ]


def signature_covers(
    pattern_sig: Signature, target_sig: Signature, exact: bool
) -> bool:
    """Can a vertex with ``target_sig`` host one with ``pattern_sig``?

    ``exact`` requires equal counts (elements and internal nets);
    otherwise the target may have extra edges of any kind.
    """
    if exact:
        return pattern_sig == target_sig
    for key, needed in pattern_sig.items():
        if target_sig[key] < needed:
            return False
    return True


@dataclass
class CompatibilityFilter:
    """Precomputed pattern-vertex → allowed-target-vertices sets."""

    allowed: list[set[int]]

    def ok(self, pv: int, tv: int) -> bool:
        return tv in self.allowed[pv]

    @property
    def is_feasible(self) -> bool:
        """False when some pattern vertex has no candidate at all —
        the whole match can be rejected without any search."""
        return all(self.allowed)


@dataclass
class TargetIndex:
    """Reusable per-target signature tables.

    Building this once per circuit (``TargetIndex.build``) and passing
    it to :func:`build_filter` for every template amortizes the O(E)
    signature computation across the whole library.
    """

    signatures: list[Signature]
    frozen: list[tuple]
    by_kind: dict[object, list[int]]
    by_exact: dict[tuple, list[int]]  # (kind, frozen signature) buckets
    degrees: list[int]
    #: Lazy caches filled by :func:`build_filter`; keyed by the pattern
    #: vertex's (kind, frozen sig) / frozen sig, so templates sharing a
    #: vertex signature share one candidate set.  The sets are treated
    #: as immutable by every consumer.
    exact_sets: dict[tuple, set[int]] = field(default_factory=dict)
    cover_sets: dict[tuple, set[int]] = field(default_factory=dict)

    @classmethod
    def build(cls, target: CircuitGraph) -> "TargetIndex":
        signatures = vertex_signatures(target)
        frozen = frozen_signatures(signatures)
        by_kind: dict[object, list[int]] = {}
        by_exact: dict[tuple, list[int]] = {}
        for tv in range(target.n_vertices):
            kind = _kind_token(target, tv)
            by_kind.setdefault(kind, []).append(tv)
            by_exact.setdefault((kind, frozen[tv]), []).append(tv)
        return cls(
            signatures=signatures,
            frozen=frozen,
            by_kind=by_kind,
            by_exact=by_exact,
            degrees=vertex_degrees(signatures),
        )


def build_filter(
    pattern: PatternGraph,
    target: CircuitGraph,
    index: TargetIndex | None = None,
    pattern_signatures: tuple[list[Signature], list[tuple]] | None = None,
) -> CompatibilityFilter:
    """Signature compatibility for every (pattern, target) vertex pair.

    Exact-signature pattern vertices (elements, internal nets) resolve
    through a hash bucket in O(1); boundary nets scan their kind bucket
    with O(1) work per candidate — linear in the target overall.

    ``pattern_signatures`` — ``(signatures, frozen)`` precomputed once
    per template (see :func:`repro.primitives.index.template_profile`)
    — skips the per-call pattern signature recomputation that dominated
    matcher setup before the index layer existed.
    """
    p_graph = pattern.graph
    if pattern_signatures is not None:
        p_sigs, p_frozen = pattern_signatures
    else:
        p_sigs = vertex_signatures(p_graph)
        p_frozen = frozen_signatures(p_sigs)
    index = index or TargetIndex.build(target)
    n_el = p_graph.n_elements
    n = p_graph.n_vertices

    # Exact rows first: they are O(1) hash-bucket lookups, and an empty
    # one proves the whole template infeasible here — bail before the
    # (comparatively expensive) boundary-net cover scans.  Candidate
    # sets are cached on the index and shared across templates; every
    # consumer treats them as immutable.
    allowed: list[set[int] | None] = [None] * n
    boundary: list[int] = []
    for pv in range(n):
        if pv >= n_el and (pv - n_el) in pattern.boundary_nets:
            boundary.append(pv)
            continue
        key = (_kind_token(p_graph, pv), p_frozen[pv])
        ok = index.exact_sets.get(key)
        if ok is None:
            ok = set(index.by_exact.get(key, ()))
            index.exact_sets[key] = ok
        allowed[pv] = ok
        if not ok:
            return CompatibilityFilter(
                allowed=[s if s is not None else set() for s in allowed]
            )

    for pv in boundary:
        ok = index.cover_sets.get(p_frozen[pv])
        if ok is None:
            sig = p_sigs[pv]
            need = sum(sig.values())
            ok = {
                tv
                for tv in index.by_kind.get("net", ())
                # Degree invariant first: a host with fewer incident
                # edges than the pattern needs can never cover it.
                if index.degrees[tv] >= need
                and signature_covers(sig, index.signatures[tv], exact=False)
            }
            index.cover_sets[p_frozen[pv]] = ok
        allowed[pv] = ok
    return CompatibilityFilter(allowed=allowed)
