"""Primitive annotation: match the template library into a circuit
graph (Sec. IV-A).

For every library template the matcher runs VF2 against the target,
filters matches through the template's port-role predicates, collapses
automorphic duplicates (a differential pair matches twice under its own
symmetry), and resolves overlaps largest-template-first so that, e.g.,
a cascode current mirror is not also reported as two simple mirrors.

Two execution paths produce identical results (the property tests in
``tests/primitives/test_index.py`` assert exact equality):

* **indexed** (default) — per-template profiles and a shared per-target
  context (:mod:`repro.primitives.index`) amortize matcher setup, a
  kind-histogram test rejects impossible (template, target) pairs
  before any VF2 launch, and symmetry breaking skips automorphic
  duplicate branches;
* **naive** (``indexed=False``) — the original per-call construction,
  kept as the reference implementation and performance baseline.

:func:`annotate_components` scopes matching per channel-connected
component: one shared context per CCC-induced subgraph, with the
template profiles shared across all of them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.constraints import Constraint
from repro.exceptions import BudgetExceeded
from repro.graph.bipartite import CircuitGraph
from repro.primitives.isomorphism import Isomorphism, VF2Matcher
from repro.primitives.library import (
    PrimitiveLibrary,
    PrimitiveTemplate,
    template_fingerprint,
)
from repro.runtime.resilience import Budget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.ccc import CCCPartition
    from repro.primitives.index import TargetContext, TemplateProfile
    from repro.runtime.profile import PipelineProfiler


@dataclass(frozen=True)
class PrimitiveMatch:
    """One recognized primitive instance in the target circuit."""

    primitive: str
    element_map: tuple[tuple[str, str], ...]  # template device → target device
    net_map: tuple[tuple[str, str], ...]  # template net → target net
    constraints: tuple[Constraint, ...]  # already renamed to target devices

    @property
    def elements(self) -> frozenset[str]:
        """Target device names claimed by this match."""
        return frozenset(name for _, name in self.element_map)

    @property
    def element_dict(self) -> dict[str, str]:
        return dict(self.element_map)

    @property
    def net_dict(self) -> dict[str, str]:
        return dict(self.net_map)

    def describe(self) -> str:
        devices = ", ".join(sorted(self.elements))
        return f"{self.primitive}({devices})"


def _match_from_isomorphism(
    profile: "TemplateProfile",
    target: CircuitGraph,
    iso: Isomorphism,
) -> PrimitiveMatch | None:
    """Translate a raw vertex mapping into named maps; apply predicates.

    The mapping is first rewritten to its orbit-canonical
    representative (under the profile's automorphism group), so the
    reported match does not depend on which orbit member the search
    happened to reach first — the naive and symmetry-broken paths
    report byte-identical matches.  Predicate outcomes are orbit
    invariants (semantic automorphisms preserve port predicate
    profiles), so canonicalizing before the predicate check is sound.
    Port predicates, template-side names, and constraint templates all
    come precomputed from the profile.
    """
    from repro.primitives.index import canonical_mapping

    template = profile.template
    mapping = iso.as_dict
    if profile.automorphisms:
        mapping = canonical_mapping(mapping, profile.automorphisms)
    p_n_el = profile.n_elements
    t_n_el = target.n_elements
    p_el_names = profile.element_names
    p_net_names = profile.net_names
    port_checks = profile.port_checks
    t_elements, t_nets = target.elements, target.nets
    element_map: list[tuple[str, str]] = []
    net_map: list[tuple[str, str]] = []
    for pv, tv in mapping.items():
        if pv < p_n_el:
            element_map.append((p_el_names[pv], t_elements[tv].name))
        else:
            target_net = t_nets[tv - t_n_el]
            net_map.append((p_net_names[pv - p_n_el], target_net))
            predicates = port_checks.get(pv)
            if predicates is not None:
                for predicate in predicates:
                    if not predicate(target_net):
                        return None
    if template.constraints:
        rename = dict(element_map)
        constraints = tuple(
            c.renamed(rename).with_source(template.name)
            for c in template.constraints
        )
    else:
        constraints = ()
    return PrimitiveMatch(
        primitive=template.name,
        element_map=tuple(sorted(element_map)),
        net_map=tuple(sorted(net_map)),
        constraints=constraints,
    )


def find_primitive_matches(
    template: PrimitiveTemplate,
    target: CircuitGraph,
    target_index=None,
    budget: Budget | None = None,
    *,
    profile: "TemplateProfile | None" = None,
    context: "TargetContext | None" = None,
    indexed: bool = True,
) -> list[PrimitiveMatch]:
    """All predicate-respecting, deduplicated matches of one template.

    ``target_index`` (a :class:`repro.primitives.signatures.TargetIndex`)
    shares the signature tables across templates of one circuit.
    ``budget`` bounds the underlying VF2 search; on exhaustion the
    raised :class:`~repro.exceptions.BudgetExceeded` carries the
    deduplicated matches translated so far as ``exc.partial``.

    ``indexed`` selects the hot path: the template's memoized
    :func:`~repro.primitives.index.template_profile` (or an explicit
    ``profile``) plus an optional shared ``context`` for the target,
    with symmetry breaking on.  ``indexed=False`` is the naive
    reference path — per-call setup, enumerate-all-then-deduplicate —
    guaranteed to return the same matches.
    """
    from repro.primitives.index import template_profile

    # The profile also carries the automorphism group used to
    # canonicalize matches, so both paths resolve it (memoized).
    profile = profile or template_profile(template)
    if indexed:
        matcher = VF2Matcher(
            template.pattern,
            target,
            target_index=target_index,
            profile=profile,
            target_context=context,
        )
    else:
        matcher = VF2Matcher(
            template.pattern,
            target,
            target_index=target_index,
            symmetry_break=False,
        )

    def translate(isos: list[Isomorphism]) -> list[PrimitiveMatch]:
        matches: list[PrimitiveMatch] = []
        seen: set[frozenset[str]] = set()
        for iso in isos:
            match = _match_from_isomorphism(profile, target, iso)
            if match is None:
                continue
            key = match.elements
            if key in seen:
                continue  # automorphic duplicate (e.g. DP arm swap)
            seen.add(key)
            matches.append(match)
        # Canonical order: the search enumerates candidate pools (hash
        # sets) in an order that depends on which path built them, and
        # downstream overlap resolution claims devices in match order —
        # sort so both paths hand identical lists to the claimer.
        matches.sort(key=lambda m: (m.element_map, m.net_map))
        return matches

    try:
        isos = matcher.find_all(budget=budget)
    except BudgetExceeded as exc:
        exc.partial = translate(exc.partial or [])
        raise
    return translate(isos)


@dataclass
class AnnotationResult:
    """Outcome of annotating a circuit with the primitive library."""

    matches: list[PrimitiveMatch] = field(default_factory=list)
    unclaimed: list[str] = field(default_factory=list)  # device names

    @property
    def claimed(self) -> set[str]:
        out: set[str] = set()
        for match in self.matches:
            out |= match.elements
        return out

    def constraints(self) -> list[Constraint]:
        out: list[Constraint] = []
        for match in self.matches:
            out.extend(match.constraints)
        return out

    def by_primitive(self) -> dict[str, list[PrimitiveMatch]]:
        grouped: dict[str, list[PrimitiveMatch]] = {}
        for match in self.matches:
            grouped.setdefault(match.primitive, []).append(match)
        return grouped


def annotate_primitives(
    target: CircuitGraph,
    library: PrimitiveLibrary,
    allow_overlap: bool = False,
    budget: Budget | None = None,
    *,
    context: "TargetContext | None" = None,
    profiler: "PipelineProfiler | None" = None,
    indexed: bool = True,
    match_memo: dict[str, list[PrimitiveMatch]] | None = None,
) -> AnnotationResult:
    """Recognize every primitive in ``target``.

    Default behaviour claims each device for at most one primitive,
    visiting templates largest-first; ``allow_overlap=True`` reports
    every match regardless (useful for analysis/tests).

    ``budget`` is shared across all templates, bounding the *total*
    matching work for the circuit; on exhaustion the raised
    :class:`~repro.exceptions.BudgetExceeded` carries the partial
    :class:`AnnotationResult` (matches accepted before the cutoff, plus
    the partial matches of the interrupted template) as ``exc.partial``.

    On the indexed path a shared ``context`` (built here when not
    given) serves every template, and a template whose element-kind
    histogram cannot be covered by the target's is skipped without
    launching VF2 — on small CCC subgraphs this rejects most of the
    library in O(1) each.  ``profiler`` (a
    :class:`~repro.runtime.profile.PipelineProfiler`) collects
    per-template wall-clock, launch, match, and skip counts.

    ``match_memo`` is the sub-stage incremental-recompute hook: a
    mutable ``{template_fingerprint: [PrimitiveMatch, ...]}`` dict of
    *raw* per-template match lists for this exact target.  Templates
    present in the memo skip VF2 entirely (their matches feed straight
    into overlap resolution, which stays order- and claim-identical);
    templates this call does compute are written back so the caller can
    persist the memo (see
    :class:`repro.core.stages.PrimitiveMatchCache`).  Raw match lists
    are independent of library composition — claiming happens here,
    afterwards — which is what makes them safely reusable across
    library changes.
    """
    from repro.primitives.index import TargetContext, template_profile
    from repro.primitives.signatures import TargetIndex

    result = AnnotationResult()
    claimed: set[str] = set()
    all_matched: set[str] = set()

    def accept(match: PrimitiveMatch) -> None:
        nonlocal claimed, all_matched
        elements = match.elements
        if not allow_overlap and elements & claimed:
            return
        result.matches.append(match)
        all_matched |= elements
        if not allow_overlap:
            claimed |= elements

    def finish() -> AnnotationResult:
        covered = claimed if not allow_overlap else all_matched
        result.unclaimed = [
            dev.name for dev in target.elements if dev.name not in covered
        ]
        return result

    index = None if indexed else TargetIndex.build(target)
    try:
        for template in library.by_size_desc():
            # Memo first: a fully warm memo answers every template
            # without ever paying for the target context below.
            memo_key = None
            if match_memo is not None:
                memo_key = template_fingerprint(template)
                cached = match_memo.get(memo_key)
                if cached is not None:
                    if profiler is not None:
                        profiler.count("match_cache_hits")
                    for match in cached:
                        accept(match)
                    continue
            profile = template_profile(template)
            if indexed:
                if context is None:
                    context = TargetContext.build(target)
                if not _kinds_coverable(profile, context):
                    if profiler is not None:
                        profiler.record_template_skip(template.name)
                    if match_memo is not None:
                        # A kind-rejected template's raw match list is
                        # the empty list — memoize it so warm runs skip
                        # the histogram test (and the context) too.
                        match_memo[memo_key] = []
                    continue
            started = time.perf_counter()
            matches = find_primitive_matches(
                template,
                target,
                index,
                budget=budget,
                profile=profile,
                context=context,
                indexed=indexed,
            )
            if profiler is not None:
                profiler.record_template(
                    template.name,
                    seconds=time.perf_counter() - started,
                    matches=len(matches),
                )
            if match_memo is not None:
                match_memo[memo_key] = list(matches)
            for match in matches:
                accept(match)
    except BudgetExceeded as exc:
        for match in exc.partial or []:
            accept(match)
        exc.partial = finish()
        raise
    return finish()


def _kinds_coverable(
    profile: "TemplateProfile", context: "TargetContext"
) -> bool:
    """Can the target host the template's element-kind histogram?

    A monomorphism maps elements injectively onto same-kind elements,
    so a template needing more devices of some kind than the target
    owns can never match.  O(#kinds in template).
    """
    target_counts = context.kind_counts
    for kind, needed in profile.kind_counts.items():
        if target_counts.get(kind, 0) < needed:
            return False
    return True


def annotate_components(
    graph: CircuitGraph,
    partition: "CCCPartition",
    library: PrimitiveLibrary,
    budget: Budget | None = None,
    profiler: "PipelineProfiler | None" = None,
    indexed: bool = True,
    match_cache=None,
) -> dict[int, AnnotationResult]:
    """Per-CCC primitive annotation: component id → its matches.

    Matching is scoped to each channel-connected component's induced
    subgraph (the unit Postprocessing I reasons about), which both
    bounds every VF2 launch to a handful of vertices and lets the
    kind-histogram test reject most templates per component outright.
    Template profiles are shared across every component; each component
    pays for one subgraph + one :class:`TargetContext`.

    ``match_cache`` (a
    :class:`repro.core.stages.PrimitiveMatchCache`-shaped object) makes
    matching incremental across runs: each subgraph's per-template raw
    match lists are loaded by subgraph content key, templates already
    present skip VF2, and any newly computed lists are stored back —
    but only when the component finished cleanly (a budget blow-up
    must not persist a partial memo).
    """
    results: dict[int, AnnotationResult] = {}
    for cid, members in enumerate(partition.components):
        if profiler is not None:
            profiler.count("ccc_matched")
        subgraph = graph.subgraph_of_elements(members)
        memo = None
        cache_key = None
        known = 0
        if match_cache is not None:
            cache_key = match_cache.subgraph_key(subgraph)
            memo = match_cache.load(cache_key)
            known = len(memo)
        results[cid] = annotate_primitives(
            subgraph,
            library,
            budget=budget,
            profiler=profiler,
            indexed=indexed,
            match_memo=memo,
        )
        if match_cache is not None and len(memo) > known:
            match_cache.store(cache_key, memo)
    return results
