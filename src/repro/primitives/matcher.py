"""Primitive annotation: match the template library into a circuit
graph (Sec. IV-A).

For every library template the matcher runs VF2 against the target,
filters matches through the template's port-role predicates, collapses
automorphic duplicates (a differential pair matches twice under its own
symmetry), and resolves overlaps largest-template-first so that, e.g.,
a cascode current mirror is not also reported as two simple mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import Constraint
from repro.exceptions import BudgetExceeded
from repro.graph.bipartite import CircuitGraph
from repro.primitives.isomorphism import Isomorphism, VF2Matcher
from repro.primitives.library import PrimitiveLibrary, PrimitiveTemplate
from repro.runtime.resilience import Budget


@dataclass(frozen=True)
class PrimitiveMatch:
    """One recognized primitive instance in the target circuit."""

    primitive: str
    element_map: tuple[tuple[str, str], ...]  # template device → target device
    net_map: tuple[tuple[str, str], ...]  # template net → target net
    constraints: tuple[Constraint, ...]  # already renamed to target devices

    @property
    def elements(self) -> frozenset[str]:
        """Target device names claimed by this match."""
        return frozenset(name for _, name in self.element_map)

    @property
    def element_dict(self) -> dict[str, str]:
        return dict(self.element_map)

    @property
    def net_dict(self) -> dict[str, str]:
        return dict(self.net_map)

    def describe(self) -> str:
        devices = ", ".join(sorted(self.elements))
        return f"{self.primitive}({devices})"


def _match_from_isomorphism(
    template: PrimitiveTemplate, target: CircuitGraph, iso: Isomorphism
) -> PrimitiveMatch | None:
    """Translate a raw vertex mapping into named maps; apply predicates."""
    pattern_graph = template.graph
    element_map: list[tuple[str, str]] = []
    net_map: list[tuple[str, str]] = []
    for pv, tv in iso.mapping:
        if pv < pattern_graph.n_elements:
            element_map.append(
                (pattern_graph.elements[pv].name, target.elements[tv].name)
            )
        else:
            template_net = pattern_graph.nets[pv - pattern_graph.n_elements]
            target_net = target.nets[tv - target.n_elements]
            net_map.append((template_net, target_net))
            if template_net in pattern_graph.circuit.ports:
                if not template.port_net_ok(template_net, target_net):
                    return None
    rename = dict(element_map)
    constraints = tuple(
        c.renamed(rename).with_source(template.name) for c in template.constraints
    )
    return PrimitiveMatch(
        primitive=template.name,
        element_map=tuple(sorted(element_map)),
        net_map=tuple(sorted(net_map)),
        constraints=constraints,
    )


def find_primitive_matches(
    template: PrimitiveTemplate,
    target: CircuitGraph,
    target_index=None,
    budget: Budget | None = None,
) -> list[PrimitiveMatch]:
    """All predicate-respecting, deduplicated matches of one template.

    ``target_index`` (a :class:`repro.primitives.signatures.TargetIndex`)
    shares the signature tables across templates of one circuit.
    ``budget`` bounds the underlying VF2 search; on exhaustion the
    raised :class:`~repro.exceptions.BudgetExceeded` carries the
    deduplicated matches translated so far as ``exc.partial``.
    """
    matcher = VF2Matcher(template.pattern, target, target_index=target_index)

    def translate(isos: list[Isomorphism]) -> list[PrimitiveMatch]:
        matches: list[PrimitiveMatch] = []
        seen: set[frozenset[str]] = set()
        for iso in isos:
            match = _match_from_isomorphism(template, target, iso)
            if match is None:
                continue
            key = match.elements
            if key in seen:
                continue  # automorphic duplicate (e.g. DP arm swap)
            seen.add(key)
            matches.append(match)
        return matches

    try:
        isos = matcher.find_all(budget=budget)
    except BudgetExceeded as exc:
        exc.partial = translate(exc.partial or [])
        raise
    return translate(isos)


@dataclass
class AnnotationResult:
    """Outcome of annotating a circuit with the primitive library."""

    matches: list[PrimitiveMatch] = field(default_factory=list)
    unclaimed: list[str] = field(default_factory=list)  # device names

    @property
    def claimed(self) -> set[str]:
        out: set[str] = set()
        for match in self.matches:
            out |= match.elements
        return out

    def constraints(self) -> list[Constraint]:
        out: list[Constraint] = []
        for match in self.matches:
            out.extend(match.constraints)
        return out

    def by_primitive(self) -> dict[str, list[PrimitiveMatch]]:
        grouped: dict[str, list[PrimitiveMatch]] = {}
        for match in self.matches:
            grouped.setdefault(match.primitive, []).append(match)
        return grouped


def annotate_primitives(
    target: CircuitGraph,
    library: PrimitiveLibrary,
    allow_overlap: bool = False,
    budget: Budget | None = None,
) -> AnnotationResult:
    """Recognize every primitive in ``target``.

    Default behaviour claims each device for at most one primitive,
    visiting templates largest-first; ``allow_overlap=True`` reports
    every match regardless (useful for analysis/tests).

    ``budget`` is shared across all templates, bounding the *total*
    matching work for the circuit; on exhaustion the raised
    :class:`~repro.exceptions.BudgetExceeded` carries the partial
    :class:`AnnotationResult` (matches accepted before the cutoff, plus
    the partial matches of the interrupted template) as ``exc.partial``.
    """
    from repro.primitives.signatures import TargetIndex

    result = AnnotationResult()
    claimed: set[str] = set()
    all_matched: set[str] = set()

    def accept(match: PrimitiveMatch) -> None:
        nonlocal claimed, all_matched
        elements = match.elements
        if not allow_overlap and elements & claimed:
            return
        result.matches.append(match)
        all_matched |= elements
        if not allow_overlap:
            claimed |= elements

    def finish() -> AnnotationResult:
        covered = claimed if not allow_overlap else all_matched
        result.unclaimed = [
            dev.name for dev in target.elements if dev.name not in covered
        ]
        return result

    index = TargetIndex.build(target)
    try:
        for template in library.by_size_desc():
            for match in find_primitive_matches(
                template, target, index, budget=budget
            ):
                accept(match)
    except BudgetExceeded as exc:
        for match in exc.partial or []:
            accept(match)
        exc.partial = finish()
        raise
    return finish()
