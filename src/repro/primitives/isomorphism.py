"""VF2 subgraph isomorphism for labeled bipartite circuit graphs
(Sec. IV-A).

Finds all monomorphisms of a small pattern graph (a primitive template)
into a target circuit graph, subject to the semantic feasibility the
paper relies on:

* element vertices map only to element vertices of the same
  :class:`~repro.spice.netlist.DeviceKind`;
* net vertices map only to net vertices;
* every pattern edge must exist in the target with an **identical
  3-bit label**;
* *internal* pattern nets (those not in the template's port list) must
  have the same degree in the target — nothing else may touch them —
  while port nets may fan out arbitrarily;
* element vertices always require an exact degree match (their edges
  are fully determined by their terminals).

The implementation follows Cordella et al.'s VF2: grow a partial
mapping through candidate pairs drawn from the frontier, pruned by a
consistency check and a one-look-ahead count.  For a pattern of O(1)
size and degree the work per accepted vertex is O(1), giving the O(n)
total the paper argues; ``benchmarks/bench_vf2_scaling.py`` measures
exactly this.

The O(n) argument holds for well-formed primitives, but VF2 is
worst-case exponential (Sec. II-E), and a production service cannot
let an adversarial or degenerate deck hang a worker.  ``find_all`` and
:func:`find_subgraph_isomorphisms` therefore accept an optional
:class:`~repro.runtime.resilience.Budget`: each search-tree node costs
one step, and exhausting the budget raises
:class:`~repro.exceptions.BudgetExceeded` with the matches found so
far attached as ``exc.partial``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import BudgetExceeded
from repro.graph.bipartite import CircuitGraph
from repro.runtime.resilience import Budget


@dataclass
class PatternGraph:
    """A primitive template prepared for matching.

    ``graph`` is the template's bipartite graph; ``boundary_nets`` are
    the local net indices allowed to fan out beyond the match (template
    ports).  All other net vertices are internal and matched exactly.
    """

    graph: CircuitGraph
    boundary_nets: frozenset[int]

    @classmethod
    def from_graph(cls, graph: CircuitGraph) -> "PatternGraph":
        boundary = frozenset(
            graph.net_index[p] for p in graph.circuit.ports if p in graph.net_index
        )
        return cls(graph=graph, boundary_nets=boundary)

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices


@dataclass(frozen=True)
class Isomorphism:
    """One match: pattern global-vertex index → target global-vertex index."""

    mapping: tuple[tuple[int, int], ...]

    @property
    def as_dict(self) -> dict[int, int]:
        return dict(self.mapping)


class _Adjacency:
    """Precomputed adjacency with labels and vertex kinds for one graph."""

    def __init__(self, graph: CircuitGraph):
        self.graph = graph
        self.n = graph.n_vertices
        self.neighbors: list[dict[int, int]] = [dict() for _ in range(self.n)]
        for edge in graph.edges:
            u = edge.element
            v = graph.n_elements + edge.net
            self.neighbors[u][v] = edge.label
            self.neighbors[v][u] = edge.label
        self.degree = [len(nbrs) for nbrs in self.neighbors]
        # Key sets of the neighbor dicts, for candidate-pool
        # intersections without per-search-node set() construction.
        self.neighbor_sets = [set(nbrs) for nbrs in self.neighbors]
        # Vertex kind token: DeviceKind for elements, "net" for nets.
        self.kind = [
            graph.elements[i].kind if i < graph.n_elements else "net"
            for i in range(self.n)
        ]


class VF2Matcher:
    """All subgraph monomorphisms of a pattern into a target.

    ``use_prefilter`` enables the SubGemini-style signature filter
    (:mod:`repro.primitives.signatures`): a sound pruning of candidate
    pairs before and during the search.

    Hot-path reuse (see :mod:`repro.primitives.index`): ``profile`` — a
    :class:`~repro.primitives.index.TemplateProfile` — supplies the
    pattern-side precomputation (adjacency, matching order, signatures,
    automorphisms), and ``target_context`` — a
    :class:`~repro.primitives.index.TargetContext` — the target-side
    tables, so constructing a matcher for the Nth template against the
    Mth subgraph costs only the (pattern × target) compatibility
    filter.  With a profile present, symmetry breaking prunes every
    search branch that is not the lexicographically minimal member of
    its automorphism orbit; pass ``symmetry_break=False`` to force the
    naive enumerate-then-deduplicate behaviour.
    """

    def __init__(
        self,
        pattern: PatternGraph,
        target: CircuitGraph,
        use_prefilter: bool = True,
        target_index=None,
        profile=None,
        target_context=None,
        symmetry_break: bool | None = None,
    ):
        self.pattern = pattern
        if profile is not None:
            self.p = profile.adjacency
            self.order = profile.order
            self.internal_net = profile.internal_net
        else:
            self.p = _Adjacency(pattern.graph)
            # Pattern vertex order: BFS from the highest-degree element
            # so each new vertex (after the first) touches the mapped
            # core — the "next candidate pair P(s)" discipline of VF2.
            self.order = self._matching_order()
            n_el = pattern.graph.n_elements
            self.internal_net = [
                (v >= n_el) and ((v - n_el) not in pattern.boundary_nets)
                for v in range(self.p.n)
            ]
        self.p_n_el = pattern.graph.n_elements
        self.depth_plan = (
            profile.depth_plan
            if profile is not None
            else self._build_depth_plan()
        )
        if target_context is not None and target_context.graph is target:
            self.t = target_context.adjacency
            target_index = target_context.index
        else:
            self.t = _Adjacency(target)
        self.target = target
        self.prefilter = None
        if use_prefilter:
            from repro.primitives.signatures import build_filter

            self.prefilter = build_filter(
                pattern,
                target,
                target_index,
                pattern_signatures=(
                    (profile.signatures, profile.frozen)
                    if profile is not None
                    else None
                ),
            )
        if symmetry_break is None:
            symmetry_break = profile is not None
        self.automorphisms = (
            profile.automorphisms
            if (symmetry_break and profile is not None)
            else ()
        )

    def _matching_order(self) -> list[int]:
        n = self.p.n
        if n == 0:
            return []
        start = max(range(n), key=lambda v: self.p.degree[v])
        seen = [False] * n
        order = [start]
        seen[start] = True
        frontier = [start]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in sorted(
                    self.p.neighbors[u], key=lambda w: -self.p.degree[w]
                ):
                    if not seen[v]:
                        seen[v] = True
                        order.append(v)
                        nxt.append(v)
            frontier = nxt
        # Disconnected template vertices (shouldn't happen for real
        # primitives) go last.
        for v in range(n):
            if not seen[v]:
                order.append(v)
        return order

    def _build_depth_plan(
        self,
    ) -> list[tuple[list[int], list[tuple[int, int]], int, bool]]:
        """Pattern-side search data, fixed per depth by the static order.

        At depth ``d`` the mapped core is exactly ``order[:d]``, so for
        ``pv = order[d]`` we can precompute once per pattern: which of
        its neighbors are already mapped, the ``(neighbor, label)``
        edges the candidate must reproduce, how many neighbors are
        still unmapped (the look-ahead need), and whether ``pv`` is a
        boundary net (exempt from the reverse-consistency check).
        """
        pos = {v: i for i, v in enumerate(self.order)}
        n_el = self.p_n_el
        plan: list[tuple[list[int], list[tuple[int, int]], int, bool]] = []
        for d, pv in enumerate(self.order):
            nbrs = self.p.neighbors[pv]
            mapped = [pn for pn in nbrs if pos[pn] < d]
            edges = [(pn, nbrs[pn]) for pn in mapped]
            boundary = pv >= n_el and not self.internal_net[pv]
            plan.append((mapped, edges, len(nbrs) - len(mapped), boundary))
        return plan

    # -- feasibility ----------------------------------------------------

    def _semantic_ok(self, pv: int, tv: int) -> bool:
        if self.prefilter is not None:
            # Prefilter membership already implies the kind and degree
            # conditions below: exact-signature buckets (elements,
            # internal nets) force an identical incident-edge multiset,
            # and boundary cover sets force kind "net" with degree ≥.
            return tv in self.prefilter.allowed[pv]
        if self.p.kind[pv] != self.t.kind[tv]:
            return False
        p_deg, t_deg = self.p.degree[pv], self.t.degree[tv]
        if pv < self.p_n_el:
            return p_deg == t_deg  # element terminals are fully specified
        if self.internal_net[pv]:
            return p_deg == t_deg  # internal nets: nothing else touches
        return t_deg >= p_deg  # boundary nets may fan out

    # -- search -----------------------------------------------------------
    # Consistency and one-look-ahead live inline in _search, driven by
    # the per-depth plan: every already-mapped pattern neighbor must be
    # a target neighbor with the identical label; mapped target
    # neighbors with no pattern edge are only acceptable through a
    # boundary net on either endpoint; and the candidate must offer at
    # least as many unmapped neighbors as the pattern vertex needs.
    # Mapped target neighbors are found by intersecting with the
    # O(1)-size core, not by walking tv's neighbor list (power rails
    # have O(n) neighbors).

    def find_all(
        self, limit: int | None = None, budget: Budget | None = None
    ) -> list[Isomorphism]:
        """Enumerate matches (optionally stopping after ``limit``).

        ``budget`` bounds the search: one step per search-tree node.
        On exhaustion, :class:`~repro.exceptions.BudgetExceeded` is
        raised with the matches found so far as ``exc.partial``.
        """
        self._results: list[Isomorphism] = []
        if self.prefilter is not None and not self.prefilter.is_feasible:
            return self._results  # some pattern vertex has no host at all
        self._limit = limit
        self._budget = budget
        self._core_p: dict[int, int] = {}
        self._core_t: dict[int, int] = {}
        try:
            self._search(0)
        except BudgetExceeded as exc:
            if exc.partial is None:
                exc.partial = list(self._results)
            raise
        return self._results

    def exists(self) -> bool:
        """True when at least one match exists (early exit)."""
        return bool(self.find_all(limit=1))

    def _search(self, depth: int) -> None:
        if self._budget is not None:
            self._budget.tick(what="VF2 subgraph search")
        if self._limit is not None and len(self._results) >= self._limit:
            return
        if depth == len(self.order):
            self._results.append(
                Isomorphism(mapping=tuple(sorted(self._core_p.items())))
            )
            return
        pv = self.order[depth]
        mapped_nbrs, edges, p_need, pv_boundary = self.depth_plan[depth]
        core_p, core_t = self._core_p, self._core_t
        t = self.t
        t_nbrs, t_sets, t_deg = t.neighbors, t.neighbor_sets, t.degree
        prefiltered = self.prefilter is not None

        # Candidate pool: target images of already-mapped pattern
        # neighbors (frontier discipline), intersected smallest-first
        # so a mapped power rail (O(n) neighbors) doesn't blow it up;
        # for the first vertex, the prefilter's allowed set (or a kind
        # scan).  The shared sets are never mutated (x & y allocates).
        if mapped_nbrs:
            if len(mapped_nbrs) == 1:
                pool = t_sets[core_p[mapped_nbrs[0]]]
            else:
                targets = [core_p[pn] for pn in mapped_nbrs]
                base = min(targets, key=lambda tn: len(t_sets[tn]))
                pool = t_sets[base]
                for tn in targets:
                    if tn is not base:
                        pool = pool & t_sets[tn]
            if prefiltered:
                pool = pool & self.prefilter.allowed[pv]
        elif prefiltered:
            pool = self.prefilter.allowed[pv]
        else:
            p_kind = self.p.kind[pv]
            pool = [tv for tv in range(t.n) if t.kind[tv] == p_kind]

        p_nbrs_pv = self.p.neighbors[pv]
        internal_net = self.internal_net
        n_el = self.p_n_el
        n_edges = len(edges)
        for tv in pool:
            if tv in core_t:
                continue
            # With a prefilter, pool membership already implies
            # semantic feasibility (kind + degree via signatures).
            if not prefiltered and not self._semantic_ok(pv, tv):
                continue
            t_nbrs_tv = t_nbrs[tv]
            ok = True
            for pn, label in edges:
                if t_nbrs_tv.get(core_p[pn]) != label:
                    ok = False
                    break
            if not ok:
                continue
            mapped_tns = core_t.keys() & t_sets[tv]
            if t_deg[tv] - len(mapped_tns) < p_need:
                continue
            # Reverse consistency: the forward loop accounts for
            # exactly n_edges of tv's mapped neighbors (injectivity),
            # so extras exist only when the counts differ.  An extra —
            # a mapped target neighbor with no pattern edge — is only
            # acceptable through a boundary net on either endpoint:
            # elements/internal nets of the pattern must not gain
            # edges among themselves.
            if len(mapped_tns) > n_edges and not pv_boundary:
                for tn in mapped_tns:
                    pn = core_t[tn]
                    if pn not in p_nbrs_pv and not (
                        pn >= n_el and not internal_net[pn]
                    ):
                        ok = False
                        break
                if not ok:
                    continue
            core_p[pv] = tv
            core_t[tv] = pv
            if not self.automorphisms or not self._symmetry_dominated(depth):
                self._search(depth + 1)
            del core_p[pv]
            del core_t[tv]

    def _symmetry_dominated(self, depth: int) -> bool:
        """True when an automorphic image of the current partial mapping
        is lexicographically smaller (in matching-order space).

        If so, every completion of this branch has a completion in the
        smaller-image branch (automorphisms map matches to matches and
        preserve semantics — see :mod:`repro.primitives.index`), so the
        branch can be pruned without losing any orbit.  The orbit's
        lex-minimal member dominates nothing and always survives.
        """
        order = self.order
        core_p = self._core_p
        for sigma in self.automorphisms:
            for i in range(depth + 1):
                a = core_p[order[i]]
                b = core_p.get(sigma[order[i]])
                if b is None or b > a:
                    break  # incomparable / image larger: sigma is fine
                if b < a:
                    return True
        return False


def find_subgraph_isomorphisms(
    pattern: PatternGraph,
    target: CircuitGraph,
    limit: int | None = None,
    budget: Budget | None = None,
) -> list[Isomorphism]:
    """Convenience wrapper around :class:`VF2Matcher`.

    ``budget`` (a :class:`~repro.runtime.resilience.Budget`) bounds the
    search in steps and/or wall-clock; exhaustion raises
    :class:`~repro.exceptions.BudgetExceeded` carrying partial results.
    """
    return VF2Matcher(pattern, target).find_all(limit=limit, budget=budget)
