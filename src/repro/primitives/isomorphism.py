"""VF2 subgraph isomorphism for labeled bipartite circuit graphs
(Sec. IV-A).

Finds all monomorphisms of a small pattern graph (a primitive template)
into a target circuit graph, subject to the semantic feasibility the
paper relies on:

* element vertices map only to element vertices of the same
  :class:`~repro.spice.netlist.DeviceKind`;
* net vertices map only to net vertices;
* every pattern edge must exist in the target with an **identical
  3-bit label**;
* *internal* pattern nets (those not in the template's port list) must
  have the same degree in the target — nothing else may touch them —
  while port nets may fan out arbitrarily;
* element vertices always require an exact degree match (their edges
  are fully determined by their terminals).

The implementation follows Cordella et al.'s VF2: grow a partial
mapping through candidate pairs drawn from the frontier, pruned by a
consistency check and a one-look-ahead count.  For a pattern of O(1)
size and degree the work per accepted vertex is O(1), giving the O(n)
total the paper argues; ``benchmarks/bench_vf2_scaling.py`` measures
exactly this.

The O(n) argument holds for well-formed primitives, but VF2 is
worst-case exponential (Sec. II-E), and a production service cannot
let an adversarial or degenerate deck hang a worker.  ``find_all`` and
:func:`find_subgraph_isomorphisms` therefore accept an optional
:class:`~repro.runtime.resilience.Budget`: each search-tree node costs
one step, and exhausting the budget raises
:class:`~repro.exceptions.BudgetExceeded` with the matches found so
far attached as ``exc.partial``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import BudgetExceeded
from repro.graph.bipartite import CircuitGraph
from repro.runtime.resilience import Budget


@dataclass
class PatternGraph:
    """A primitive template prepared for matching.

    ``graph`` is the template's bipartite graph; ``boundary_nets`` are
    the local net indices allowed to fan out beyond the match (template
    ports).  All other net vertices are internal and matched exactly.
    """

    graph: CircuitGraph
    boundary_nets: frozenset[int]

    @classmethod
    def from_graph(cls, graph: CircuitGraph) -> "PatternGraph":
        boundary = frozenset(
            graph.net_index[p] for p in graph.circuit.ports if p in graph.net_index
        )
        return cls(graph=graph, boundary_nets=boundary)

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices


@dataclass(frozen=True)
class Isomorphism:
    """One match: pattern global-vertex index → target global-vertex index."""

    mapping: tuple[tuple[int, int], ...]

    @property
    def as_dict(self) -> dict[int, int]:
        return dict(self.mapping)


class _Adjacency:
    """Precomputed adjacency with labels and vertex kinds for one graph."""

    def __init__(self, graph: CircuitGraph):
        self.graph = graph
        self.n = graph.n_vertices
        self.neighbors: list[dict[int, int]] = [dict() for _ in range(self.n)]
        for edge in graph.edges:
            u = edge.element
            v = graph.n_elements + edge.net
            self.neighbors[u][v] = edge.label
            self.neighbors[v][u] = edge.label
        self.degree = [len(nbrs) for nbrs in self.neighbors]
        # Vertex kind token: DeviceKind for elements, "net" for nets.
        self.kind = [
            graph.elements[i].kind if i < graph.n_elements else "net"
            for i in range(self.n)
        ]


class VF2Matcher:
    """All subgraph monomorphisms of a pattern into a target.

    ``use_prefilter`` enables the SubGemini-style signature filter
    (:mod:`repro.primitives.signatures`): a sound pruning of candidate
    pairs before and during the search.
    """

    def __init__(
        self,
        pattern: PatternGraph,
        target: CircuitGraph,
        use_prefilter: bool = True,
        target_index=None,
    ):
        self.pattern = pattern
        self.p = _Adjacency(pattern.graph)
        self.t = _Adjacency(target)
        self.target = target
        self.prefilter = None
        if use_prefilter:
            from repro.primitives.signatures import build_filter

            self.prefilter = build_filter(pattern, target, target_index)
        # Pattern vertex order: BFS from the highest-degree element so
        # each new vertex (after the first) touches the mapped core —
        # the "next candidate pair P(s)" discipline of VF2.
        self.order = self._matching_order()
        n_el = pattern.graph.n_elements
        self.internal_net = [
            (v >= n_el) and ((v - n_el) not in pattern.boundary_nets)
            for v in range(self.p.n)
        ]

    def _matching_order(self) -> list[int]:
        n = self.p.n
        if n == 0:
            return []
        start = max(range(n), key=lambda v: self.p.degree[v])
        seen = [False] * n
        order = [start]
        seen[start] = True
        frontier = [start]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in sorted(
                    self.p.neighbors[u], key=lambda w: -self.p.degree[w]
                ):
                    if not seen[v]:
                        seen[v] = True
                        order.append(v)
                        nxt.append(v)
            frontier = nxt
        # Disconnected template vertices (shouldn't happen for real
        # primitives) go last.
        for v in range(n):
            if not seen[v]:
                order.append(v)
        return order

    # -- feasibility ----------------------------------------------------

    def _semantic_ok(self, pv: int, tv: int) -> bool:
        if self.prefilter is not None and not self.prefilter.ok(pv, tv):
            return False
        if self.p.kind[pv] != self.t.kind[tv]:
            return False
        p_deg, t_deg = self.p.degree[pv], self.t.degree[tv]
        if pv < self.pattern.graph.n_elements:
            return p_deg == t_deg  # element terminals are fully specified
        if self.internal_net[pv]:
            return p_deg == t_deg  # internal nets: nothing else touches
        return t_deg >= p_deg  # boundary nets may fan out

    def _consistent(
        self, pv: int, tv: int, core_p: dict[int, int], core_t: dict[int, int]
    ) -> bool:
        # Every already-mapped pattern neighbor must be a target neighbor
        # with the same label; and (for exact-degree vertices) every
        # mapped target neighbor must correspond back.
        for pn, label in self.p.neighbors[pv].items():
            if pn in core_p:
                tn = core_p[pn]
                if self.t.neighbors[tv].get(tn) != label:
                    return False
        # Reverse direction: iterate the O(1)-size mapped core rather
        # than tv's (possibly huge — think power rails) neighbor list,
        # keeping the per-pair cost constant and VF2 O(n) overall.
        for tn, pn in core_t.items():
            if tn not in self.t.neighbors[tv]:
                continue
            if pn not in self.p.neighbors[pv]:
                # A mapped target neighbor with no pattern edge is
                # only acceptable through a boundary net on the
                # *other* endpoint — elements/internal nets of the
                # pattern must not gain edges among themselves.
                if not (
                    pn >= self.pattern.graph.n_elements
                    and not self.internal_net[pn]
                ) and not (
                    pv >= self.pattern.graph.n_elements
                    and not self.internal_net[pv]
                ):
                    return False
        return True

    def _lookahead_ok(self, pv: int, tv: int, core_p: dict[int, int]) -> bool:
        # One-look-ahead: the candidate target vertex must offer at
        # least as many unmapped neighbors as the pattern vertex needs.
        # Count tv's mapped neighbors through the O(1)-size core, not
        # through tv's neighbor list (power rails have O(n) neighbors).
        p_need = sum(1 for pn in self.p.neighbors[pv] if pn not in core_p)
        t_mapped = sum(
            1 for tn in self._core_t if tn in self.t.neighbors[tv]
        )
        return self.t.degree[tv] - t_mapped >= p_need

    # -- search -----------------------------------------------------------

    def find_all(
        self, limit: int | None = None, budget: Budget | None = None
    ) -> list[Isomorphism]:
        """Enumerate matches (optionally stopping after ``limit``).

        ``budget`` bounds the search: one step per search-tree node.
        On exhaustion, :class:`~repro.exceptions.BudgetExceeded` is
        raised with the matches found so far as ``exc.partial``.
        """
        self._results: list[Isomorphism] = []
        if self.prefilter is not None and not self.prefilter.is_feasible:
            return self._results  # some pattern vertex has no host at all
        self._limit = limit
        self._budget = budget
        self._core_p: dict[int, int] = {}
        self._core_t: dict[int, int] = {}
        try:
            self._search(0)
        except BudgetExceeded as exc:
            if exc.partial is None:
                exc.partial = list(self._results)
            raise
        return self._results

    def exists(self) -> bool:
        """True when at least one match exists (early exit)."""
        return bool(self.find_all(limit=1))

    def _candidates(self, depth: int) -> list[int]:
        pv = self.order[depth]
        # Candidates: target neighbors of already-mapped pattern
        # neighbors of pv (frontier discipline); for the first vertex,
        # every kind-compatible target vertex.
        mapped_neighbors = [
            self._core_p[pn] for pn in self.p.neighbors[pv] if pn in self._core_p
        ]
        if mapped_neighbors:
            # Intersect starting from the smallest neighbor set so a
            # mapped power rail (O(n) neighbors) doesn't blow up the
            # candidate pool.
            base = min(
                mapped_neighbors, key=lambda tn: len(self.t.neighbors[tn])
            )
            pool = set(self.t.neighbors[base])
            for tn in mapped_neighbors:
                if tn is not base:
                    pool &= set(self.t.neighbors[tn])
            return [tv for tv in pool if tv not in self._core_t]
        if self.prefilter is not None:
            return [
                tv
                for tv in self.prefilter.allowed[pv]
                if tv not in self._core_t
            ]
        return [
            tv
            for tv in range(self.t.n)
            if tv not in self._core_t and self.t.kind[tv] == self.p.kind[pv]
        ]

    def _search(self, depth: int) -> None:
        if self._budget is not None:
            self._budget.tick(what="VF2 subgraph search")
        if self._limit is not None and len(self._results) >= self._limit:
            return
        if depth == len(self.order):
            self._results.append(
                Isomorphism(mapping=tuple(sorted(self._core_p.items())))
            )
            return
        pv = self.order[depth]
        for tv in self._candidates(depth):
            if not self._semantic_ok(pv, tv):
                continue
            if not self._consistent(pv, tv, self._core_p, self._core_t):
                continue
            if not self._lookahead_ok(pv, tv, self._core_p):
                continue
            self._core_p[pv] = tv
            self._core_t[tv] = pv
            self._search(depth + 1)
            del self._core_p[pv]
            del self._core_t[tv]


def find_subgraph_isomorphisms(
    pattern: PatternGraph,
    target: CircuitGraph,
    limit: int | None = None,
    budget: Budget | None = None,
) -> list[Isomorphism]:
    """Convenience wrapper around :class:`VF2Matcher`.

    ``budget`` (a :class:`~repro.runtime.resilience.Budget`) bounds the
    search in steps and/or wall-clock; exhaustion raises
    :class:`~repro.exceptions.BudgetExceeded` carrying partial results.
    """
    return VF2Matcher(pattern, target).find_all(limit=limit, budget=budget)
