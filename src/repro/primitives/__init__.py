"""Primitive recognition: the 21-template library + VF2 matching."""

from repro.primitives.isomorphism import (
    Isomorphism,
    PatternGraph,
    VF2Matcher,
    find_subgraph_isomorphisms,
)
from repro.primitives.library import (
    extended_library,
    PrimitiveLibrary,
    PrimitiveTemplate,
    default_library,
)
from repro.primitives.signatures import (
    CompatibilityFilter,
    TargetIndex,
    build_filter,
    vertex_signatures,
)
from repro.primitives.index import (
    TargetContext,
    TemplateProfile,
    template_profile,
)
from repro.primitives.matcher import (
    AnnotationResult,
    PrimitiveMatch,
    annotate_components,
    annotate_primitives,
    find_primitive_matches,
)

__all__ = [
    "AnnotationResult",
    "Isomorphism",
    "PatternGraph",
    "PrimitiveLibrary",
    "PrimitiveMatch",
    "PrimitiveTemplate",
    "TargetContext",
    "TemplateProfile",
    "VF2Matcher",
    "CompatibilityFilter",
    "TargetIndex",
    "annotate_components",
    "annotate_primitives",
    "build_filter",
    "template_profile",
    "vertex_signatures",
    "default_library",
    "extended_library",
    "find_primitive_matches",
    "find_subgraph_isomorphisms",
]
