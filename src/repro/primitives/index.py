"""Signature index for primitive matching (the annotation hot path).

Profiling showed the old matcher spending ~70 % of Postprocessing I
*setting up* VF2 — recomputing each template's signatures, adjacency,
and matching order for every (template × channel-connected component)
pair — rather than searching.  This module hoists everything that is a
pure function of one side of the match:

* :class:`TemplateProfile` — per-template invariants (adjacency,
  matching order, internal-net flags, SubGemini signatures, element
  kind histogram) plus the template's automorphism group, computed
  **once per library load** and memoized via
  :class:`repro.runtime.cache.Memo`;
* :class:`TargetContext` — per-circuit invariants (adjacency +
  :class:`~repro.primitives.signatures.TargetIndex` signature tables +
  kind histogram), computed **once per circuit** (or per CCC-induced
  subgraph) and shared across all templates.

VF2 then only launches from (template-root, target-vertex) pairs whose
signatures are compatible (the root row of the compatibility filter),
and the automorphism group drives two further accelerations:

* **symmetry breaking** — the search keeps only the lexicographically
  minimal member of each automorphism orbit (in matching-order space),
  so a differential pair is found once, not once per arm swap;
* **canonical matches** — every surviving mapping is rewritten to its
  orbit's canonical representative, making the reported match
  independent of search order and of whether symmetry breaking ran.

Automorphisms here are *semantic*: they must preserve vertex kinds,
edge labels, boundary/internal status, the port-role predicate of
every port, and the template's constraint set — so permuting a match
through one can never change which matches are accepted or what
constraints they imply.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.bipartite import CircuitGraph
from repro.primitives.isomorphism import (
    PatternGraph,
    VF2Matcher,
    _Adjacency,
)
from repro.primitives.signatures import (
    Signature,
    TargetIndex,
    frozen_signatures,
    vertex_signatures,
)
from repro.runtime.cache import Memo

#: Process-wide memo: one profile per PrimitiveTemplate object.
_PROFILE_MEMO = Memo()


@dataclass
class TemplateProfile:
    """Everything about one template that every match launch reuses."""

    template: object  # PrimitiveTemplate (untyped to avoid an import cycle)
    pattern: PatternGraph
    adjacency: _Adjacency
    order: list[int]
    internal_net: list[bool]
    signatures: list[Signature]
    frozen: list[tuple]
    kind_counts: Counter
    n_elements: int
    #: Per-depth search plan (see ``VF2Matcher._build_depth_plan``):
    #: for each position in ``order``, the already-mapped pattern
    #: neighbors, their required (neighbor, label) edges, the
    #: look-ahead need, and whether the vertex is a boundary net.
    depth_plan: list
    #: Template device names by element-vertex index.
    element_names: tuple[str, ...]
    #: Template net names by local net index.
    net_names: tuple[str, ...]
    #: Pattern net *vertex* → resolved port-predicate callables, only
    #: for ports that carry predicates (all other nets pass trivially).
    port_checks: dict[int, tuple]
    #: Non-identity semantic automorphisms, each a full vertex
    #: permutation ``sigma[pattern_vertex] -> pattern_vertex``.
    automorphisms: tuple[tuple[int, ...], ...]

    @property
    def name(self) -> str:
        return self.template.name


@dataclass
class TargetContext:
    """Per-target tables shared by every template of one matching pass."""

    graph: CircuitGraph
    adjacency: _Adjacency
    index: TargetIndex
    kind_counts: Counter

    @classmethod
    def build(cls, graph: CircuitGraph) -> "TargetContext":
        return cls(
            graph=graph,
            adjacency=_Adjacency(graph),
            index=TargetIndex.build(graph),
            kind_counts=element_kind_counts(graph),
        )


def element_kind_counts(graph: CircuitGraph) -> Counter:
    """Histogram of element vertex kinds (DeviceKind → count)."""
    return Counter(dev.kind for dev in graph.elements)


def template_profile(template) -> TemplateProfile:
    """The (memoized) matching profile of a library template.

    The first call per template object pays for signature computation
    and the automorphism search; every later call — every circuit, every
    CCC — is a dictionary hit.
    """
    return _PROFILE_MEMO.get_or_build(template, _build_profile)


def _build_profile(template) -> TemplateProfile:
    from repro.primitives.library import PORT_PREDICATES

    pattern: PatternGraph = template.pattern
    graph = pattern.graph
    base = VF2Matcher(pattern, graph, use_prefilter=False, symmetry_break=False)
    signatures = vertex_signatures(graph)
    checks: dict[int, list] = {}
    for port, predicate in template.port_roles:
        pv = graph.n_elements + graph.net_index[port]
        checks.setdefault(pv, []).append(PORT_PREDICATES[predicate])
    return TemplateProfile(
        template=template,
        pattern=pattern,
        adjacency=base.p,
        order=base.order,
        internal_net=base.internal_net,
        signatures=signatures,
        frozen=frozen_signatures(signatures),
        kind_counts=element_kind_counts(graph),
        n_elements=graph.n_elements,
        depth_plan=base.depth_plan,
        element_names=tuple(el.name for el in graph.elements),
        net_names=tuple(graph.nets),
        port_checks={pv: tuple(fns) for pv, fns in checks.items()},
        automorphisms=_semantic_automorphisms(template, base),
    )


def _port_predicate_profiles(template) -> dict[str, tuple[str, ...]]:
    """Port name → sorted predicate names (empty tuple when none)."""
    profiles: dict[str, list[str]] = {}
    for port, predicate in template.port_roles:
        profiles.setdefault(port, []).append(predicate)
    return {port: tuple(sorted(preds)) for port, preds in profiles.items()}


def _constraint_key(constraints) -> Counter:
    """Order-insensitive fingerprint of a constraint set."""
    return Counter(
        (c.kind, frozenset(c.members), frozenset(c.attributes), c.source)
        for c in constraints
    )


def _semantic_automorphisms(
    template, matcher: VF2Matcher
) -> tuple[tuple[int, ...], ...]:
    """All non-identity automorphisms safe for symmetry breaking.

    A raw graph automorphism (found by matching the pattern onto its
    own graph: injective + all vertices covered ⇒ bijective, and equal
    edge counts make it label-preserving both ways) qualifies only if
    it also fixes the matching *semantics*: boundary nets stay boundary
    (internal stay internal — implied by bijectivity), permuted ports
    carry identical predicate profiles, and renaming the template's
    devices through it leaves the constraint set unchanged.
    """
    pattern = matcher.pattern
    graph = pattern.graph
    n = graph.n_vertices
    n_el = graph.n_elements
    predicate_profiles = _port_predicate_profiles(template)
    constraint_key = _constraint_key(template.constraints)

    automorphisms: list[tuple[int, ...]] = []
    for iso in matcher.find_all():
        mapping = iso.as_dict
        if len(mapping) != n:
            continue  # not a full-vertex bijection
        sigma = tuple(mapping[v] for v in range(n))
        if all(sigma[v] == v for v in range(n)):
            continue  # identity
        # Boundary nets must map onto boundary nets with the same
        # port-predicate profile.
        ok = True
        for local in pattern.boundary_nets:
            image = sigma[n_el + local] - n_el
            if image not in pattern.boundary_nets:
                ok = False
                break
            src = graph.nets[local]
            dst = graph.nets[image]
            if predicate_profiles.get(src, ()) != predicate_profiles.get(
                dst, ()
            ):
                ok = False
                break
        if not ok:
            continue
        # Constraints must be invariant under the induced device rename.
        rename = {
            graph.elements[v].name: graph.elements[sigma[v]].name
            for v in range(n_el)
        }
        renamed = Counter(
            (
                kind,
                frozenset(rename.get(m, m) for m in members),
                attrs,
                source,
            )
            for (kind, members, attrs, source) in constraint_key
        )
        if renamed != constraint_key:
            continue
        automorphisms.append(sigma)
    return tuple(automorphisms)


def canonical_mapping(
    mapping: dict[int, int], automorphisms: tuple[tuple[int, ...], ...]
) -> dict[int, int]:
    """Orbit-canonical form of a complete match mapping.

    Among ``{mapping ∘ sigma}`` over the automorphism group (plus the
    identity), return the variant whose target-vertex tuple — read in
    pattern-vertex order — is lexicographically smallest.  Both the
    naive and the indexed search paths canonicalize, so they report
    byte-identical matches regardless of which orbit member each
    happened to find.
    """
    if not automorphisms:
        return mapping
    n = len(mapping)
    best = tuple(mapping[p] for p in range(n))
    for sigma in automorphisms:
        candidate = tuple(mapping[sigma[p]] for p in range(n))
        if candidate < best:
            best = candidate
    return {p: best[p] for p in range(n)}
