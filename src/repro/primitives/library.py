"""The primitive template library (Sec. IV).

"We populate a library of 21 basic primitives that are building blocks
for larger sub-blocks. The primitives are specified as SPICE netlists,
enabling a user to easily add new primitives to the library."

Each :class:`PrimitiveTemplate` carries:

* a SPICE ``.subckt`` body (the user-extensible representation),
* its one-time graph translation (Sec. II-C) as a
  :class:`~repro.primitives.isomorphism.PatternGraph`,
* designer-annotated default constraints (Sec. IV-B) expressed over
  template device names, remapped onto matched devices,
* optional *port-role predicates* — e.g. a common-source amplifier's
  source terminal must land on a power rail — which disambiguate
  single-transistor primitives that are structurally identical.

Use :func:`default_library` for the paper's 21 primitives, or build a
:class:`PrimitiveLibrary` from your own SPICE strings.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.constraints import Constraint, ConstraintKind
from repro.exceptions import MatchError
from repro.graph.bipartite import CircuitGraph
from repro.primitives.isomorphism import PatternGraph
from repro.runtime.cache import Memo
from repro.spice.netlist import is_ground_net, is_power_net, is_supply_net
from repro.spice.parser import parse_netlist

def _is_bias_net(net: str) -> bool:
    """Name-convention bias nets (vb*, bias*, vref*, iref* …)."""
    from repro.graph.features import NetRole, infer_net_role

    return infer_net_role(net, ports=(net,)) is NetRole.BIAS


#: Port-role predicate vocabulary: template port name → requirement on
#: the matched target net.
PORT_PREDICATES = {
    "power": is_power_net,
    "supply": is_supply_net,
    "ground": is_ground_net,
    "signal": lambda net: not is_power_net(net),
    "bias": _is_bias_net,
}


@dataclass
class PrimitiveTemplate:
    """One library entry: netlist + graph + constraints + predicates."""

    name: str
    spice: str
    graph: CircuitGraph = field(init=False)
    pattern: PatternGraph = field(init=False)
    constraints: tuple[Constraint, ...] = ()
    port_roles: tuple[tuple[str, str], ...] = ()  # (port, predicate name)

    def __post_init__(self) -> None:
        netlist = parse_netlist(self.spice)
        if len(netlist.subckts) != 1:
            raise MatchError(
                f"primitive {self.name!r} must define exactly one .subckt"
            )
        body = next(iter(netlist.subckts.values()))
        if body.instances:
            raise MatchError(f"primitive {self.name!r} must be flat")
        self.graph = CircuitGraph.from_circuit(body)
        self.pattern = PatternGraph.from_graph(self.graph)
        for port, predicate in self.port_roles:
            if predicate not in PORT_PREDICATES:
                raise MatchError(
                    f"primitive {self.name!r}: unknown predicate {predicate!r}"
                )
            if port not in body.ports:
                raise MatchError(
                    f"primitive {self.name!r}: predicate on unknown port {port!r}"
                )

    @property
    def n_elements(self) -> int:
        return self.graph.n_elements

    def port_net_ok(self, port: str, target_net: str) -> bool:
        """Check a matched net against this template's port predicates."""
        for p, predicate in self.port_roles:
            if p == port and not PORT_PREDICATES[predicate](target_net):
                return False
        return True


@dataclass
class PrimitiveLibrary:
    """An ordered collection of templates (largest matched first)."""

    templates: list[PrimitiveTemplate] = field(default_factory=list)

    def add(self, template: PrimitiveTemplate) -> None:
        if any(t.name == template.name for t in self.templates):
            raise MatchError(f"duplicate primitive name {template.name!r}")
        self.templates.append(template)

    def add_spice(
        self,
        name: str,
        spice: str,
        constraints: tuple[Constraint, ...] = (),
        port_roles: tuple[tuple[str, str], ...] = (),
    ) -> PrimitiveTemplate:
        """User-facing extension hook: register a new SPICE primitive."""
        template = PrimitiveTemplate(
            name=name, spice=spice, constraints=constraints, port_roles=port_roles
        )
        self.add(template)
        return template

    def get(self, name: str) -> PrimitiveTemplate:
        for template in self.templates:
            if template.name == name:
                return template
        raise KeyError(name)

    def by_size_desc(self) -> list[PrimitiveTemplate]:
        """Templates ordered largest-first (overlap resolution order)."""
        return sorted(self.templates, key=lambda t: -t.n_elements)

    def __len__(self) -> int:
        return len(self.templates)

    def __iter__(self):
        return iter(self.templates)

    def names(self) -> list[str]:
        return [t.name for t in self.templates]


_TEMPLATE_FP_MEMO = Memo()


def template_fingerprint(template: PrimitiveTemplate) -> str:
    """Stable content fingerprint of one template's defining inputs.

    ``graph`` and ``pattern`` are derived from ``spice`` in
    ``__post_init__``, so (name, spice, constraints, port_roles) fully
    determine matching behavior; their ``repr`` is deterministic
    (strings, enums, tuples), which keeps this cheap enough to call per
    (CCC, template) pair.  Memoized per template object — templates are
    frozen after construction.
    """
    return _TEMPLATE_FP_MEMO.get_or_build(
        template,
        lambda t: hashlib.sha256(
            repr(
                ("template", t.name, t.spice, t.constraints, t.port_roles)
            ).encode("utf-8")
        ).hexdigest()[:32],
    )


def library_fingerprint(library: PrimitiveLibrary) -> str:
    """Fingerprint of a whole library (order-sensitive: overlap
    resolution visits templates largest-first with insertion order as
    the tiebreak, so order is semantic).  Recomputed on every call —
    the per-template digests are memoized, the join is trivial — so
    ``library.add_spice(...)`` after a cached run is still seen."""
    return hashlib.sha256(
        ",".join(template_fingerprint(t) for t in library.templates).encode()
    ).hexdigest()[:32]


def _sym(members: tuple[str, ...], source: str) -> Constraint:
    return Constraint(ConstraintKind.SYMMETRY, members, source=source)


def _match(members: tuple[str, ...], source: str) -> Constraint:
    return Constraint(ConstraintKind.MATCHING, members, source=source)


def _cc(members: tuple[str, ...], source: str) -> Constraint:
    return Constraint(ConstraintKind.COMMON_CENTROID, members, source=source)


def default_library() -> PrimitiveLibrary:
    """The paper's 21-primitive library.

    Differential pairs and cross-coupled pairs carry symmetry+matching;
    current mirrors carry matching (common-centroid for ≥3 devices);
    references and dividers carry matching.  All nets that legitimately
    fan out into surrounding circuitry are ports; truly internal nodes
    (cascode intermediates, the RC midpoint) are non-port and therefore
    matched exactly.
    """
    lib = PrimitiveLibrary()

    # 1–2: differential pairs -----------------------------------------
    lib.add_spice(
        "DP-N",
        """.subckt dp_n d1 d2 inp inn tail
m1 d1 inp tail gnd! nmos
m2 d2 inn tail gnd! nmos
.ends
""",
        constraints=(_sym(("m1", "m2"), "DP-N"), _match(("m1", "m2"), "DP-N")),
    )
    lib.add_spice(
        "DP-P",
        """.subckt dp_p d1 d2 inp inn tail
m1 d1 inp tail vdd! pmos
m2 d2 inn tail vdd! pmos
.ends
""",
        constraints=(_sym(("m1", "m2"), "DP-P"), _match(("m1", "m2"), "DP-P")),
    )

    # 3–4: simple current mirrors --------------------------------------
    lib.add_spice(
        "CM-N(2)",
        """.subckt cm_n2 ref out s
m1 ref ref s gnd! nmos
m2 out ref s gnd! nmos
.ends
""",
        constraints=(_match(("m1", "m2"), "CM-N(2)"),),
        port_roles=(("s", "power"),),
    )
    lib.add_spice(
        "CM-P(2)",
        """.subckt cm_p2 ref out s
m1 ref ref s vdd! pmos
m2 out ref s vdd! pmos
.ends
""",
        constraints=(_match(("m1", "m2"), "CM-P(2)"),),
        port_roles=(("s", "power"),),
    )

    # 5–6: three-output mirrors ----------------------------------------
    lib.add_spice(
        "CM-N(3)",
        """.subckt cm_n3 ref out1 out2 s
m1 ref ref s gnd! nmos
m2 out1 ref s gnd! nmos
m3 out2 ref s gnd! nmos
.ends
""",
        constraints=(_match(("m1", "m2", "m3"), "CM-N(3)"), _cc(("m1", "m2", "m3"), "CM-N(3)")),
        port_roles=(("s", "power"),),
    )
    lib.add_spice(
        "CM-P(3)",
        """.subckt cm_p3 ref out1 out2 s
m1 ref ref s vdd! pmos
m2 out1 ref s vdd! pmos
m3 out2 ref s vdd! pmos
.ends
""",
        constraints=(_match(("m1", "m2", "m3"), "CM-P(3)"), _cc(("m1", "m2", "m3"), "CM-P(3)")),
        port_roles=(("s", "power"),),
    )

    # 7–8: cascode current mirrors --------------------------------------
    # nc/no are the cascode intermediate nodes: internal, matched exactly.
    lib.add_spice(
        "CM-N(casc)",
        """.subckt cm_ncasc ref out s
m1 ref ref nc gnd! nmos
m2 nc nc s gnd! nmos
m3 out ref no gnd! nmos
m4 no nc s gnd! nmos
.ends
""",
        constraints=(
            _match(("m1", "m3"), "CM-N(casc)"),
            _match(("m2", "m4"), "CM-N(casc)"),
        ),
        port_roles=(("s", "power"),),
    )
    lib.add_spice(
        "CM-P(casc)",
        """.subckt cm_pcasc ref out s
m1 ref ref nc vdd! pmos
m2 nc nc s vdd! pmos
m3 out ref no vdd! pmos
m4 no nc s vdd! pmos
.ends
""",
        constraints=(
            _match(("m1", "m3"), "CM-P(casc)"),
            _match(("m2", "m4"), "CM-P(casc)"),
        ),
        port_roles=(("s", "power"),),
    )

    # 9: the five-transistor PMOS mirror of Fig. 1 ----------------------
    lib.add_spice(
        "CM-P(5)",
        """.subckt cm_p5 ref out1 out2 out3 out4 s
m1 ref ref s vdd! pmos
m2 out1 ref s vdd! pmos
m3 out2 ref s vdd! pmos
m4 out3 ref s vdd! pmos
m5 out4 ref s vdd! pmos
.ends
""",
        constraints=(
            _match(("m1", "m2", "m3", "m4", "m5"), "CM-P(5)"),
            _cc(("m1", "m2", "m3", "m4", "m5"), "CM-P(5)"),
        ),
        port_roles=(("s", "power"),),
    )

    # 10–11: common-source amplifiers ------------------------------------
    lib.add_spice(
        "CS-Amp-N",
        """.subckt cs_n out in s
m1 out in s gnd! nmos
.ends
""",
        port_roles=(("s", "power"), ("out", "signal"), ("in", "signal")),
    )
    lib.add_spice(
        "CS-Amp-P",
        """.subckt cs_p out in s
m1 out in s vdd! pmos
.ends
""",
        port_roles=(("s", "power"), ("out", "signal"), ("in", "signal")),
    )

    # 12: common-gate amplifier ------------------------------------------
    # The gate must sit on a bias net — that is what distinguishes a CG
    # stage from a pass switch (whose gate is a clock/control signal).
    lib.add_spice(
        "CG-Amp-N",
        """.subckt cg_n out vb in
m1 out vb in gnd! nmos
.ends
""",
        port_roles=(("in", "signal"), ("out", "signal"), ("vb", "bias")),
    )

    # 13: source follower ---------------------------------------------------
    lib.add_spice(
        "SF-N",
        """.subckt sf_n d in out
m1 d in out gnd! nmos
.ends
""",
        port_roles=(("d", "power"), ("in", "signal"), ("out", "signal")),
    )

    # 14–15: cross-coupled pairs ---------------------------------------------
    lib.add_spice(
        "CC-N",
        """.subckt cc_n d1 d2 s
m1 d1 d2 s gnd! nmos
m2 d2 d1 s gnd! nmos
.ends
""",
        constraints=(_sym(("m1", "m2"), "CC-N"), _match(("m1", "m2"), "CC-N")),
    )
    lib.add_spice(
        "CC-P",
        """.subckt cc_p d1 d2 s
m1 d1 d2 s vdd! pmos
m2 d2 d1 s vdd! pmos
.ends
""",
        constraints=(_sym(("m1", "m2"), "CC-P"), _match(("m1", "m2"), "CC-P")),
    )

    # 16: switched-capacitor common-mode feedback sensor ----------------------
    lib.add_spice(
        "CMF-SC",
        """.subckt cmf_sc outp outn fb
c1 outp fb 1p
c2 outn fb 1p
.ends
""",
        constraints=(
            _match(("c1", "c2"), "CMF-SC"),
            _sym(("c1", "c2"), "CMF-SC"),
        ),
        port_roles=(("outp", "signal"), ("outn", "signal"), ("fb", "signal")),
    )

    # 17: current reference (resistor-programmed diode device) -----------------
    lib.add_spice(
        "CR-N",
        """.subckt cr_n ref top s
r1 top ref 10k
m1 ref ref s gnd! nmos
.ends
""",
        port_roles=(("s", "power"), ("top", "power")),
    )

    # 18: resistive-divider voltage reference -----------------------------------
    lib.add_spice(
        "VR-RD",
        """.subckt vr_rd top out bot
r1 top out 10k
r2 out bot 10k
.ends
""",
        constraints=(_match(("r1", "r2"), "VR-RD"),),
        port_roles=(("top", "power"), ("bot", "power"), ("out", "signal")),
    )

    # 19: pass switch --------------------------------------------------------------
    lib.add_spice(
        "SW-N",
        """.subckt sw_n a b clk
m1 a clk b gnd! nmos
.ends
""",
        port_roles=(("a", "signal"), ("b", "signal"), ("clk", "signal")),
    )

    # 20: series-RC compensation (Miller zero-nulling) ---------------------------------
    # The midpoint x is internal: exactly one R and one C touch it.
    lib.add_spice(
        "CC-RC",
        """.subckt cc_rc a b
r1 a x 1k
c1 x b 1p
.ends
""",
    )

    # 21: LC tank -------------------------------------------------------------
    lib.add_spice(
        "LC-TANK",
        """.subckt lc_tank a b
l1 a b 1n
c1 a b 1p
.ends
""",
        constraints=(_sym(("l1", "c1"), "LC-TANK"),),
    )

    return lib


def extended_library() -> PrimitiveLibrary:
    """The 21 paper primitives plus INV and BUF.

    The phased-array testcase (Sec. V-B) separates "INV and BUF
    primitives ... and a separate hierarchy is created for them"; the
    paper does not enumerate its 21 templates, so we document INV/BUF
    as additions needed by that testcase.
    """
    lib = default_library()
    lib.add_spice(
        "INV",
        """.subckt inv in out vdd vss
m1 out in vss gnd! nmos
m2 out in vdd vdd! pmos
.ends
""",
        constraints=(_match(("m1", "m2"), "INV"),),
        port_roles=(("vdd", "power"), ("vss", "power"), ("in", "signal"), ("out", "signal")),
    )
    # Push–pull source-follower buffer (class-AB VCO buffer): both
    # devices' sources meet at the output, so — unlike the inverter —
    # the buffer is one channel-connected component and its output edge
    # labels are source bits, which is what VF2 keys on.
    lib.add_spice(
        "BUF",
        """.subckt buf in out vdd vss
m1 vdd in out gnd! nmos
m2 vss in out vdd! pmos
.ends
""",
        constraints=(_match(("m1", "m2"), "BUF"),),
        port_roles=(("vdd", "power"), ("vss", "power"), ("in", "signal"), ("out", "signal")),
    )
    return lib
