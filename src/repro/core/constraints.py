"""Layout constraints attached to recognized structures (Sec. III-C, IV-B).

Recognition "organically detects layout constraints": each primitive
template carries default constraints (a differential pair is symmetric
and matched; a current mirror is matched/common-centroid), and each
recognized sub-block class implies block-level constraints (an OTA is
symmetric about the differential-pair axis; RF blocks need guard rings
and short wires; an LNA must sit near the antenna).

Constraints are plain data: a kind, the device/block names it binds,
and free-form attributes.  :func:`propagate` implements the paper's
upward propagation — e.g. merging the symmetry axes of a DP and its
current-mirror load into one OTA-level axis (Sec. IV-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import ConstraintError


class ConstraintKind(enum.Enum):
    """The constraint vocabulary used across the package."""

    SYMMETRY = "symmetry"  # mirror placement about an axis
    MATCHING = "matching"  # identical device geometry/orientation
    COMMON_CENTROID = "common_centroid"  # interdigitated array placement
    PROXIMITY = "proximity"  # place close to a reference (e.g. antenna)
    GUARD_RING = "guard_ring"  # isolation ring around RF devices
    MIN_WIRELENGTH = "min_wirelength"  # parasitic-sensitive wiring
    SHIELDING = "shielding"  # sensitive-net shielding


@dataclass(frozen=True)
class Constraint:
    """A single layout constraint.

    ``members`` are device or block names, order-insensitive; for
    SYMMETRY the members pair off about the axis (odd counts put the
    last member on the axis itself).  ``attributes`` carries extras
    such as ``{"reference": "antenna"}`` for PROXIMITY.
    """

    kind: ConstraintKind
    members: tuple[str, ...]
    attributes: tuple[tuple[str, str], ...] = ()
    source: str = ""  # which primitive/sub-block produced it

    def __post_init__(self) -> None:
        if not self.members:
            raise ConstraintError(f"{self.kind.value} constraint with no members")
        if len(set(self.members)) != len(self.members):
            raise ConstraintError(
                f"{self.kind.value} constraint repeats members: {self.members}"
            )

    @property
    def attribute_map(self) -> dict[str, str]:
        return dict(self.attributes)

    def renamed(self, name_map: dict[str, str]) -> "Constraint":
        """Remap member names (template → matched device names)."""
        return Constraint(
            kind=self.kind,
            members=tuple(name_map.get(m, m) for m in self.members),
            attributes=self.attributes,
            source=self.source,
        )

    def with_source(self, source: str) -> "Constraint":
        return Constraint(
            kind=self.kind,
            members=self.members,
            attributes=self.attributes,
            source=source,
        )


#: Block-level constraints implied by each recognized sub-block class
#: (Sec. III-C).  Member placeholder "@block" is replaced by the block
#: instance name on annotation.
SUBBLOCK_CONSTRAINT_RULES: dict[str, tuple[tuple[ConstraintKind, dict[str, str]], ...]] = {
    "ota": (
        (ConstraintKind.SYMMETRY, {"axis": "differential_pair"}),
    ),
    "lna": (
        (ConstraintKind.PROXIMITY, {"reference": "antenna"}),
        (ConstraintKind.GUARD_RING, {}),
        (ConstraintKind.MIN_WIRELENGTH, {}),
    ),
    "mixer": (
        (ConstraintKind.GUARD_RING, {}),
        (ConstraintKind.MIN_WIRELENGTH, {}),
    ),
    "osc": (
        (ConstraintKind.SYMMETRY, {"axis": "cross_coupled_pair"}),
        (ConstraintKind.MIN_WIRELENGTH, {}),
    ),
    "bpf": (
        (ConstraintKind.SYMMETRY, {"axis": "cross_coupled_pair"}),
    ),
    "bias": (
        (ConstraintKind.MATCHING, {}),
    ),
}


def subblock_constraints(block_class: str, block_name: str) -> list[Constraint]:
    """Constraints implied by a recognized sub-block's class."""
    rules = SUBBLOCK_CONSTRAINT_RULES.get(block_class, ())
    return [
        Constraint(
            kind=kind,
            members=(block_name,),
            attributes=tuple(sorted(attrs.items())),
            source=f"class:{block_class}",
        )
        for kind, attrs in rules
    ]


@dataclass
class ConstraintSet:
    """Constraints collected over a hierarchy, with propagation.

    Insertion order is preserved; membership is tracked in a parallel
    set (``Constraint`` is frozen/hashable) so deduplication stays O(1)
    per add instead of rescanning the list — hierarchy assembly adds
    hundreds of constraints on large designs.
    """

    constraints: list[Constraint] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._seen = set(self.constraints)

    def _members(self) -> set[Constraint]:
        # Old pickles restore __dict__ without _seen; rebuild lazily.
        seen = self.__dict__.get("_seen")
        if seen is None:
            seen = self.__dict__["_seen"] = set(self.constraints)
        return seen

    def add(self, constraint: Constraint) -> None:
        seen = self._members()
        if constraint not in seen:
            seen.add(constraint)
            self.constraints.append(constraint)

    def extend(self, constraints: list[Constraint]) -> None:
        for constraint in constraints:
            self.add(constraint)

    def of_kind(self, kind: ConstraintKind) -> list[Constraint]:
        return [c for c in self.constraints if c.kind is kind]

    def involving(self, member: str) -> list[Constraint]:
        return [c for c in self.constraints if member in c.members]

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)


def merge_symmetry_axes(constraints: ConstraintSet) -> list[Constraint]:
    """Combine symmetry constraints that share members into common axes.

    "When propagated to the next level, these two may be combined to
    ensure a common symmetry axis for both structures" (Sec. IV-B):
    symmetry groups whose member sets intersect (or that were produced
    inside the same source block) merge into one constraint whose
    members are the union.
    """
    groups: list[tuple[set[str], set[str]]] = []  # (members, sources)
    for constraint in constraints.of_kind(ConstraintKind.SYMMETRY):
        members = set(constraint.members)
        sources = {constraint.source} if constraint.source else set()
        merged = False
        for group_members, group_sources in groups:
            if group_members & members or (sources and sources & group_sources):
                group_members |= members
                group_sources |= sources
                merged = True
                break
        if not merged:
            groups.append((members, sources))

    # Transitive closure: merging may create new intersections.
    changed = True
    while changed:
        changed = False
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                mi, si = groups[i]
                mj, sj = groups[j]
                if mi & mj or (si and si & sj):
                    groups[i] = (mi | mj, si | sj)
                    del groups[j]
                    changed = True
                    break
            if changed:
                break

    return [
        Constraint(
            kind=ConstraintKind.SYMMETRY,
            members=tuple(sorted(members)),
            source="+".join(sorted(sources)) if sources else "merged",
        )
        for members, sources in groups
    ]


def propagate(constraints: ConstraintSet) -> ConstraintSet:
    """One propagation pass: merge symmetry axes, keep everything else."""
    result = ConstraintSet()
    for constraint in constraints:
        if constraint.kind is not ConstraintKind.SYMMETRY:
            result.add(constraint)
    result.extend(merge_symmetry_axes(constraints))
    return result
