"""Staged pipeline architecture: canonical stage names, typed artifacts,
and a resumable, incrementally-cached runner.

The paper's flow (Sec. II-B) is a linear chain —

    parse → preprocess → graph → gcn → post1 → post2 → hierarchy

— and this module makes each link a first-class, independently
cacheable step instead of one inline monolith:

* :class:`StageName` — THE canonical stage vocabulary.  Timing keys,
  ``resilience.stage()`` failure tags, and profiler stage labels all
  derive from it (no more three ad-hoc string sets).
* :class:`Artifact` subclasses (:class:`ParsedDeck`,
  :class:`FlatDesign`, :class:`FeaturedGraph`, :class:`GcnPrediction`,
  :class:`Post1Result`, :class:`Post2Result`,
  :class:`AnnotatedDesign`) — the typed, picklable product of each
  stage.  Every artifact carries the forward context (design name,
  preprocess report, resolved port labels, cumulative diagnostics,
  degradation flags) needed to resume the chain from that point alone.
* :func:`content_fingerprint` — a canonical recursive hasher over
  dataclasses / dicts / numpy arrays (pickle bytes are *not*
  content-stable, so fingerprints get their own encoder).
* :class:`Stage` — the ``Stage[I, O]`` protocol: consume the upstream
  artifact, produce this stage's artifact, and derive a cache key from
  the upstream *fingerprint* plus the stage's own configuration.
* :class:`StagedRunner` — executes a stage chain with
  derivation-fingerprint caching (unchanged fingerprint ⇒ cache hit),
  ``stop_after``/``resume`` support, and per-stage save-to-disk.

Fingerprints chain: every stage's key is a hash of the upstream key
and the stage's config fingerprint, never of artifact *contents*.  A
fully-warm run therefore probes keys as pure string hashing and
deserializes exactly one artifact (the furthest hit); a run where only
the primitive library changed reuses parse/preprocess/graph/gcn
artifacts and recomputes from Postprocessing I — with
:class:`PrimitiveMatchCache` additionally reusing per-template VF2
results for every template that survived the library change.

Concrete stage implementations live in :mod:`repro.core.pipeline`
(which owns the pipeline configuration they close over); this module
is deliberately importable from anywhere below ``core`` without
cycles.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    ClassVar,
    Iterable,
    Protocol,
    TypeVar,
    runtime_checkable,
)

import numpy as np

from repro.exceptions import ArtifactError
from repro.graph.bipartite import CircuitGraph
from repro.runtime.cache import ArtifactCache, Memo
from repro.runtime.resilience import Diagnostic
from repro.runtime.resilience import stage as stage_guard
from repro.spice.netlist import Circuit, Netlist, reset_power_net_memo
from repro.spice.preprocess import PreprocessReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.annotator import Annotation, GcnAnnotator
    from repro.core.constraints import ConstraintSet
    from repro.core.hierarchy import HierarchyNode
    from repro.core.postprocess import PostprocessResult
    from repro.graph.features import NetRole
    from repro.primitives.matcher import PrimitiveMatch
    from repro.runtime.profile import PipelineProfiler


# ---------------------------------------------------------------------------
# The canonical stage vocabulary
# ---------------------------------------------------------------------------


class StageName(enum.Enum):
    """The seven steps of the GANA flow, in execution order.

    This enum is the single source of truth for stage names: timing
    dicts, failure tags, profiler labels, CLI ``--stop-after`` values,
    and artifact filenames all use ``StageName.*.value``.
    """

    PARSE = "parse"
    PREPROCESS = "preprocess"
    GRAPH = "graph"
    GCN = "gcn"
    POST1 = "post1"
    POST2 = "post2"
    HIERARCHY = "hierarchy"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: All stages, in execution order.
STAGE_ORDER: tuple[StageName, ...] = tuple(StageName)

#: The keys of ``PipelineResult.timings``: ``parse`` folds into
#: ``preprocess`` (the legacy monolith timed them as one block).
TIMING_STAGES: tuple[str, ...] = tuple(
    s.value for s in STAGE_ORDER if s is not StageName.PARSE
)


def coerce_stage(value: "StageName | str") -> StageName:
    """Normalize a stage given as enum member or name string."""
    if isinstance(value, StageName):
        return value
    try:
        return StageName(str(value).strip().lower())
    except ValueError:
        known = ", ".join(s.value for s in STAGE_ORDER)
        raise ValueError(
            f"unknown pipeline stage {value!r}; expected one of: {known}"
        ) from None


def fold_timings(stage_seconds: dict[StageName, float]) -> dict[str, float]:
    """Per-stage seconds → legacy timing keys (parse under preprocess)."""
    out: dict[str, float] = {}
    for name, seconds in stage_seconds.items():
        key = (
            StageName.PREPROCESS.value
            if name is StageName.PARSE
            else name.value
        )
        out[key] = out.get(key, 0.0) + seconds
    return out


# ---------------------------------------------------------------------------
# Content fingerprints
# ---------------------------------------------------------------------------

#: Bumped whenever the fingerprint encoding changes; every digest is
#: seeded with it so old cache entries can never collide with new ones.
FINGERPRINT_VERSION = 1

_FP_SEED = f"gana-fp-v{FINGERPRINT_VERSION}".encode()


def content_fingerprint(*parts: Any) -> str:
    """Stable hex digest of arbitrarily nested plain data.

    Handles the vocabulary artifacts are made of: scalars, strings,
    bytes, tuples/lists, sets, dicts (order-insensitive), enums, numpy
    arrays (dtype + shape + buffer), paths, and dataclasses (walked
    field by field, so non-field caches like
    ``CircuitGraph._edge_arrays`` never leak in).  Pickle bytes are not
    content-stable (memoization depends on object identity), hence this
    dedicated encoder.  Unsupported types raise ``TypeError`` rather
    than silently fingerprinting their ``repr``.
    """
    digest = hashlib.sha256(_FP_SEED)
    for part in parts:
        _hash_into(digest, part)
    return digest.hexdigest()[:32]


def _hash_into(h, obj: Any) -> None:
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, bool):
        h.update(b"B1;" if obj else b"B0;")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I%d;" % int(obj))
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F" + repr(float(obj)).encode() + b";")
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        h.update(b"S%d:" % len(raw))
        h.update(raw)
    elif isinstance(obj, bytes):
        h.update(b"Y%d:" % len(obj))
        h.update(obj)
    elif isinstance(obj, enum.Enum):
        h.update(b"E" + type(obj).__name__.encode() + b".")
        _hash_into(h, obj.name)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        header = f"A{arr.dtype.str}|{','.join(map(str, arr.shape))}:"
        h.update(header.encode())
        h.update(arr.tobytes())
    elif isinstance(obj, (tuple, list)):
        h.update(b"T(" if isinstance(obj, tuple) else b"L(")
        for item in obj:
            _hash_into(h, item)
        h.update(b")")
    elif isinstance(obj, (set, frozenset)):
        h.update(b"Z(")
        for digest in sorted(_item_digest(item) for item in obj):
            h.update(digest)
        h.update(b")")
    elif isinstance(obj, dict):
        h.update(b"D(")
        for digest in sorted(
            _item_digest(key, value) for key, value in obj.items()
        ):
            h.update(digest)
        h.update(b")")
    elif isinstance(obj, Path):
        h.update(b"P")
        _hash_into(h, str(obj))
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"C" + type(obj).__qualname__.encode() + b"(")
        for f in dataclasses.fields(obj):
            _hash_into(h, f.name)
            _hash_into(h, getattr(obj, f.name))
        h.update(b")")
    else:
        raise TypeError(
            f"cannot fingerprint object of type {type(obj).__name__}"
        )


def _item_digest(*parts: Any) -> bytes:
    h = hashlib.sha256()
    for part in parts:
        _hash_into(h, part)
    return h.digest()


_ANNOTATOR_FP_MEMO = Memo()


def annotator_fingerprint(annotator: "GcnAnnotator") -> str:
    """Fingerprint of a trained annotator: config, vocabulary, weights.

    Memoized per annotator object (weights are assumed frozen after
    training, which every construction path in this package guarantees).
    """
    return _ANNOTATOR_FP_MEMO.get_or_build(
        annotator,
        lambda a: content_fingerprint(
            "annotator",
            tuple(a.class_names),
            a.model.config,
            dict(a.model.state_dict()),
        ),
    )


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------

#: Bumped when any artifact's schema changes; saved envelopes with a
#: different version refuse to load (and cache entries miss).
#: Version 2: artifacts grew the hierarchy-scoped annotation fields
#: (``tree``/``hier``) — version-1 pickles predate them.
ARTIFACT_FORMAT_VERSION = 2

#: File suffix used by :meth:`Artifact.save` / :func:`load_artifacts`.
ARTIFACT_SUFFIX = ".artifact.pkl"


class Artifact:
    """Base class for the typed product of one pipeline stage.

    ``fingerprint`` is the *derivation* fingerprint — the cache key the
    runner computed for the stage that produced this artifact — when
    the run was cached; otherwise it is filled lazily with the content
    fingerprint at save time.  Either way a saved artifact always
    carries a non-empty fingerprint, and
    :meth:`content_fingerprint` recomputes the content digest on demand
    (the round-trip tests assert save/load preserves it exactly).
    """

    stage: ClassVar[StageName]
    fingerprint: str = ""

    def content_fingerprint(self) -> str:
        """Canonical digest of every dataclass field of this artifact."""
        return content_fingerprint(
            type(self).__name__,
            *(getattr(self, f.name) for f in dataclasses.fields(self)),
        )

    def save(self, path: str | Path) -> Path:
        """Atomically pickle this artifact (with a format envelope)."""
        path = Path(path)
        if not self.fingerprint:
            self.fingerprint = self.content_fingerprint()
        envelope = {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "kind": type(self).__name__,
            "stage": self.stage.value,
            "fingerprint": self.fingerprint,
            "artifact": self,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Artifact":
        """Load a saved artifact; validates envelope, version, and type."""
        path = Path(path)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            raise ArtifactError(f"no artifact at {path}") from None
        except Exception as exc:
            raise ArtifactError(f"unreadable artifact {path}: {exc}") from exc
        if (
            not isinstance(envelope, dict)
            or envelope.get("format_version") != ARTIFACT_FORMAT_VERSION
        ):
            raise ArtifactError(
                f"{path}: not a version-{ARTIFACT_FORMAT_VERSION} artifact"
            )
        artifact = envelope.get("artifact")
        if not isinstance(artifact, Artifact):
            raise ArtifactError(f"{path}: envelope holds no artifact")
        if cls is not Artifact and not isinstance(artifact, cls):
            raise ArtifactError(
                f"{path}: expected {cls.__name__}, "
                f"found {type(artifact).__name__}"
            )
        artifact.fingerprint = (
            envelope.get("fingerprint", "") or artifact.fingerprint
        )
        return artifact

    def describe(self) -> str:
        """One-line rendering for CLI output."""
        fp = self.fingerprint or self.content_fingerprint()
        return f"{self.stage.value}: {type(self).__name__} [{fp}]"


@dataclass
class ParsedDeck(Artifact):
    """``parse`` — the deck as parsed (or the object passed through)."""

    stage: ClassVar[StageName] = StageName.PARSE

    source: "Netlist | Circuit"
    mode: str = "strict"
    #: Cumulative diagnostics through this stage (here: parse problems).
    diagnostics: tuple[Diagnostic, ...] = ()


@dataclass
class FlatDesign(Artifact):
    """``preprocess`` — flattened and reduced circuit plus testbench
    inference results (the resolved port labels / net roles downstream
    stages consume)."""

    stage: ClassVar[StageName] = StageName.PREPROCESS

    flat: Circuit
    reduced: Circuit
    report: PreprocessReport
    design_name: str
    port_labels: dict[str, str] | None = None
    net_roles: "dict[str, NetRole] | None" = None
    diagnostics: tuple[Diagnostic, ...] = ()
    #: Hierarchy sidecar (``--hier`` runs only; None on the flat path).
    tree: "DesignTree | None" = None


@dataclass
class FeaturedGraph(Artifact):
    """``graph`` — the bipartite element/net graph (feature extraction
    reads directly off it during GCN inference)."""

    stage: ClassVar[StageName] = StageName.GRAPH

    graph: CircuitGraph
    design_name: str
    report: PreprocessReport
    port_labels: dict[str, str] | None = None
    net_roles: "dict[str, NetRole] | None" = None
    diagnostics: tuple[Diagnostic, ...] = ()
    tree: "DesignTree | None" = None


@dataclass
class GcnPrediction(Artifact):
    """``gcn`` — per-vertex class annotation (possibly the degraded
    template-library fallback)."""

    stage: ClassVar[StageName] = StageName.GCN

    annotation: "Annotation"
    design_name: str
    report: PreprocessReport
    port_labels: dict[str, str] | None = None
    degraded: bool = False
    degraded_reason: str | None = None
    diagnostics: tuple[Diagnostic, ...] = ()
    tree: "DesignTree | None" = None


@dataclass
class Post1Result(Artifact):
    """``post1`` — Postprocessing I (CCC vote + primitive matching)."""

    stage: ClassVar[StageName] = StageName.POST1

    post1: "PostprocessResult"
    gcn_annotation: "Annotation"
    design_name: str
    report: PreprocessReport
    port_labels: dict[str, str] | None = None
    degraded: bool = False
    degraded_reason: str | None = None
    diagnostics: tuple[Diagnostic, ...] = ()
    tree: "DesignTree | None" = None
    #: Hierarchy-scoped annotation report (``--hier`` runs only).
    hier: "HierReport | None" = None


@dataclass
class Post2Result(Artifact):
    """``post2`` — Postprocessing II (port rules applied)."""

    stage: ClassVar[StageName] = StageName.POST2

    post2: "PostprocessResult"
    post1: "PostprocessResult"
    gcn_annotation: "Annotation"
    design_name: str
    report: PreprocessReport
    degraded: bool = False
    degraded_reason: str | None = None
    diagnostics: tuple[Diagnostic, ...] = ()
    tree: "DesignTree | None" = None
    hier: "HierReport | None" = None


@dataclass
class AnnotatedDesign(Artifact):
    """``hierarchy`` — the final product: hierarchy tree + constraints
    plus everything needed to assemble a ``PipelineResult``."""

    stage: ClassVar[StageName] = StageName.HIERARCHY

    hierarchy: "HierarchyNode"
    constraints: "ConstraintSet"
    post2: "PostprocessResult"
    post1: "PostprocessResult"
    gcn_annotation: "Annotation"
    report: PreprocessReport
    design_name: str
    degraded: bool = False
    degraded_reason: str | None = None
    diagnostics: tuple[Diagnostic, ...] = ()
    hier: "HierReport | None" = None


#: Stage → artifact type produced by it.
ARTIFACT_TYPES: dict[StageName, type[Artifact]] = {
    StageName.PARSE: ParsedDeck,
    StageName.PREPROCESS: FlatDesign,
    StageName.GRAPH: FeaturedGraph,
    StageName.GCN: GcnPrediction,
    StageName.POST1: Post1Result,
    StageName.POST2: Post2Result,
    StageName.HIERARCHY: AnnotatedDesign,
}


def load_artifacts(path: str | Path) -> list[Artifact]:
    """Load one artifact file, or every ``*.artifact.pkl`` in a directory."""
    path = Path(path)
    if path.is_dir():
        artifacts = [
            Artifact.load(entry)
            for entry in sorted(path.glob(f"*{ARTIFACT_SUFFIX}"))
        ]
        if not artifacts:
            raise ArtifactError(f"no *{ARTIFACT_SUFFIX} files in {path}")
        return artifacts
    return [Artifact.load(path)]


# ---------------------------------------------------------------------------
# The Stage protocol and run context
# ---------------------------------------------------------------------------

I = TypeVar("I", contravariant=True)
O = TypeVar("O", bound=Artifact, covariant=True)


@runtime_checkable
class Stage(Protocol[I, O]):
    """One pipeline step: upstream artifact in, this stage's artifact out.

    ``cache_key`` derives the stage's cache key from the *upstream
    fingerprint* plus the stage's own configuration — never from
    artifact contents — so the whole key chain is computable without
    deserializing anything.  A ``None`` key marks the stage (and, by
    chaining, everything downstream) uncacheable.
    """

    name: StageName

    def cache_key(self, upstream_fp: str | None, ctx: "RunContext") -> str | None:
        ...  # pragma: no cover - protocol

    def run(self, upstream: I, ctx: "RunContext") -> O:
        ...  # pragma: no cover - protocol


@dataclass
class RunContext:
    """Mutable per-run state shared by every stage of one execution.

    ``diagnostics`` is the live list the resilience guards close over;
    the runner re-synchronizes it from artifact snapshots on cache hits
    and resume, and stages append to it while running.
    """

    pipeline: Any = None  # the GanaPipeline (duck-typed; no import cycle)
    netlist: "str | Netlist | Circuit | None" = None
    net_roles: "dict[str, NetRole] | None" = None
    port_labels: dict[str, str] | None = None
    name: str = ""
    infer_testbench: bool = True
    mode: str = "strict"
    profiler: "PipelineProfiler | None" = None
    cache: ArtifactCache | None = None
    save_dir: Path | None = None
    #: Precomputed GCN annotation (batched inference): when set, the
    #: gcn stage adopts it instead of calling the annotator, so packed
    #: multi-deck forwards slot into the ordinary stage chain.
    gcn_annotation: "Annotation | None" = None
    #: Hierarchy-scoped annotation (``--hier``): Postprocessing I
    #: dedupes VF2 across repeated subckt instances via the DesignTree.
    hier: bool = False
    #: Build the hierarchy tree from the instance table (implies the
    #: tree *shape* deviates from the flat path; opt-in).
    hier_tree: bool = False
    diagnostics: list[Diagnostic] = field(default_factory=list)
    artifacts: dict[StageName, Artifact] = field(default_factory=dict)
    stage_seconds: dict[StageName, float] = field(default_factory=dict)
    cache_hits: list[StageName] = field(default_factory=list)
    #: The run's derivation-key chain (filled in by the runner once per
    #: execute); stages may key sub-stage memos off their upstream key.
    stage_keys: dict[StageName, "str | None"] = field(default_factory=dict)


@dataclass
class StagedRun:
    """Outcome of one :meth:`StagedRunner.execute` call."""

    artifacts: dict[StageName, Artifact]
    stage_seconds: dict[StageName, float]
    cache_hits: tuple[StageName, ...]
    diagnostics: list[Diagnostic]
    saved: dict[StageName, Path] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when the chain ran through the hierarchy stage."""
        return StageName.HIERARCHY in self.artifacts

    @property
    def final(self) -> AnnotatedDesign:
        """The finished design; raises if the run stopped early."""
        artifact = self.artifacts.get(StageName.HIERARCHY)
        if not isinstance(artifact, AnnotatedDesign):
            done = ", ".join(s.value for s in self.artifacts)
            raise ArtifactError(
                f"run is incomplete (stages done: {done or 'none'})"
            )
        return artifact

    def last_artifact(self) -> Artifact:
        """The furthest artifact the run produced."""
        for name in reversed(STAGE_ORDER):
            artifact = self.artifacts.get(name)
            if artifact is not None:
                return artifact
        raise ArtifactError("run produced no artifacts")

    def timings(self) -> dict[str, float]:
        """Legacy-shaped timing dict (parse folded into preprocess)."""
        return fold_timings(self.stage_seconds)


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class StagedRunner:
    """Executes a stage chain with caching, resume, and early stop.

    Execution plan, in order:

    1. seed ``resume`` artifacts; the chain restarts after the furthest
       one (earlier stages are never run);
    2. compute the derivation-fingerprint key chain (pure string
       hashing — no artifact is touched);
    3. probe the cache from the far end: the furthest stage whose key
       is present yields ONE artifact to deserialize, and every stage
       upstream of it is a hit that is never even loaded (with a
       ``save_dir`` the per-stage loop loads each hit instead, so all
       artifacts land on disk);
    4. run the remaining stages under ``resilience.stage`` guards,
       storing each fresh artifact back to the cache.

    Escaping exceptions carry the failure stage, pre-failure
    diagnostics, and — when profiling — a partial profile
    (``_gana_profile``) so ``failure_report`` keeps them across the
    batch pool.
    """

    stages: tuple[Stage, ...]

    def execute(
        self,
        ctx: RunContext,
        resume: Iterable[Artifact] = (),
        stop_after: "StageName | str | None" = None,
    ) -> StagedRun:
        # A fresh run must never see rail-role answers memoized under a
        # previous deck's (possibly monkeypatched) net-name conventions.
        reset_power_net_memo()

        order = [impl.name for impl in self.stages]
        end = len(order) - 1
        if stop_after is not None:
            stop = coerce_stage(stop_after)
            if stop not in order:
                raise ValueError(
                    f"stage {stop.value!r} is not part of this chain"
                )
            end = order.index(stop)

        for artifact in resume or ():
            if not isinstance(artifact, Artifact):
                raise TypeError(
                    f"resume expects Artifact instances, "
                    f"got {type(artifact).__name__}"
                )
            ctx.artifacts[artifact.stage] = artifact

        keys = self._key_chain(ctx)
        ctx.stage_keys = keys

        start = 0
        prev: Artifact | None = None
        for i, impl in enumerate(self.stages):
            seeded = ctx.artifacts.get(impl.name)
            if seeded is not None and i <= end:
                start = i + 1
                prev = seeded
        if prev is not None:
            ctx.diagnostics[:] = list(prev.diagnostics)
        # Stages skipped via seeded artifacts cost nothing but must
        # still appear in the timing dict (legacy key-set contract).
        for impl in self.stages[:start]:
            ctx.stage_seconds.setdefault(impl.name, 0.0)

        if ctx.cache is not None and ctx.save_dir is None:
            hit = self._probe_backwards(ctx, keys, start, end)
            if hit is not None:
                start, prev = hit

        try:
            for i in range(start, end + 1):
                impl = self.stages[i]
                name = impl.name
                started = time.perf_counter()
                artifact = self._load_hit(ctx, keys.get(name), name)
                if artifact is None:
                    with stage_guard(name, None, ctx.diagnostics):
                        artifact = impl.run(prev, ctx)
                    key = keys.get(name)
                    if key is not None:
                        artifact.fingerprint = key
                        if ctx.cache is not None:
                            ctx.cache.store(key, artifact)
                ctx.stage_seconds[name] = time.perf_counter() - started
                ctx.artifacts[name] = artifact
                prev = artifact
        except Exception as exc:
            self._stamp_profile(ctx, exc)
            raise

        run = StagedRun(
            artifacts=dict(ctx.artifacts),
            stage_seconds=dict(ctx.stage_seconds),
            cache_hits=tuple(ctx.cache_hits),
            diagnostics=ctx.diagnostics,
        )
        if ctx.save_dir is not None:
            for i, name in enumerate(STAGE_ORDER):
                artifact = run.artifacts.get(name)
                if artifact is not None:
                    run.saved[name] = artifact.save(
                        ctx.save_dir / f"{i}-{name.value}{ARTIFACT_SUFFIX}"
                    )
        return run

    # -- internals --------------------------------------------------------

    def _key_chain(self, ctx: RunContext) -> dict[StageName, str | None]:
        """Derive every stage's cache key by chaining fingerprints."""
        keys: dict[StageName, str | None] = {}
        if ctx.cache is None and ctx.save_dir is None:
            return keys
        fp: str | None = None
        for impl in self.stages:
            seeded = ctx.artifacts.get(impl.name)
            if seeded is not None:
                if not seeded.fingerprint:
                    seeded.fingerprint = seeded.content_fingerprint()
                fp = seeded.fingerprint
            else:
                fp = impl.cache_key(fp, ctx)
            keys[impl.name] = fp
        return keys

    def _probe_backwards(
        self,
        ctx: RunContext,
        keys: dict[StageName, str | None],
        start: int,
        end: int,
    ) -> tuple[int, Artifact] | None:
        """Find the furthest cached stage; load only that one artifact."""
        for i in range(end, start - 1, -1):
            name = self.stages[i].name
            artifact = self._load_hit(ctx, keys.get(name), name, probe=True)
            if artifact is None:
                continue
            ctx.artifacts[name] = artifact
            for impl in self.stages[start : i + 1]:
                ctx.cache_hits.append(impl.name)
                # Hits cost ~one deserialize; charge them zero so the
                # timing dict keeps the legacy key set either way.
                ctx.stage_seconds.setdefault(impl.name, 0.0)
            ctx.diagnostics[:] = list(artifact.diagnostics)
            return i + 1, artifact
        return None

    def _load_hit(
        self,
        ctx: RunContext,
        key: str | None,
        name: StageName,
        probe: bool = False,
    ) -> Artifact | None:
        """Cache lookup; only trusts entries of the stage's artifact type."""
        if key is None or ctx.cache is None:
            return None
        if not probe and ctx.save_dir is None:
            # Without a save dir, hits are taken by the backward probe;
            # the forward loop only computes.
            return None
        artifact = ctx.cache.load(key)
        if not isinstance(artifact, ARTIFACT_TYPES.get(name, Artifact)):
            return None
        artifact.fingerprint = key
        if not probe:
            ctx.cache_hits.append(name)
            ctx.diagnostics[:] = list(artifact.diagnostics)
        return artifact

    def _stamp_profile(self, ctx: RunContext, exc: BaseException) -> None:
        """Attach the partial profile so FailureReport can carry it."""
        if ctx.profiler is None:
            return
        for key, seconds in fold_timings(ctx.stage_seconds).items():
            ctx.profiler.record_stage(key, seconds)
        if not hasattr(exc, "_gana_profile"):
            try:
                exc._gana_profile = ctx.profiler.as_dict()
            except Exception:  # pragma: no cover - never block the raise
                pass


# ---------------------------------------------------------------------------
# Sub-stage incremental recompute: the primitive-match cache
# ---------------------------------------------------------------------------

#: Bumped when matching semantics change (predicates, canonical order…).
MATCH_CACHE_VERSION = 1


class PrimitiveMatchCache:
    """Per-CCC-subgraph, per-template VF2 match memo.

    Postprocessing I matches every library template against every
    channel-connected component's induced subgraph.  The raw match list
    of one (subgraph, template) pair is independent of the rest of the
    library (overlap claiming happens later, largest-first), so it is
    keyed by subgraph content + template fingerprint and reused across
    runs: after a library change, only templates actually *new* to the
    library pay for VF2 — the incremental-recompute half of the staged
    architecture below stage granularity.

    Entries live in the same :class:`~repro.runtime.cache.ArtifactCache`
    as stage artifacts, one pickle per subgraph holding a
    ``{template_fingerprint: [PrimitiveMatch, ...]}`` dict.
    """

    def __init__(self, cache: ArtifactCache):
        self._cache = cache

    @staticmethod
    def subgraph_key(subgraph: CircuitGraph) -> str:
        """Content key of a CCC subgraph (devices + ports).

        ``repr`` of the element dataclasses is deterministic (strings,
        enums, floats, tuples) and an order of magnitude faster than
        the generic walker — this runs once per CCC per run.
        """
        raw = repr(
            (tuple(subgraph.elements), tuple(subgraph.circuit.ports))
        )
        digest = hashlib.sha256(raw.encode("utf-8")).hexdigest()[:32]
        return f"ccc-matches-v{MATCH_CACHE_VERSION}-{digest}"

    def load(self, key: str) -> "dict[str, list[PrimitiveMatch]]":
        """The stored template→matches dict for ``key`` (empty on miss)."""
        value = self._cache.load(key)
        return value if isinstance(value, dict) else {}

    def store(self, key: str, memo: "dict[str, list[PrimitiveMatch]]") -> None:
        self._cache.store(key, dict(memo))


# ---------------------------------------------------------------------------
# Result comparison helper
# ---------------------------------------------------------------------------


def pipeline_result_fingerprint(result: Any) -> str:
    """Semantic digest of a ``PipelineResult``: everything except
    wall-clock (timings / profile).  Two runs that recognized the same
    design identically — annotations, constraints, hierarchy,
    diagnostics, degradation — share this fingerprint; the golden tests
    use it to assert the staged path matches the legacy monolith."""
    return content_fingerprint(
        "pipeline-result",
        result.gcn_annotation,
        result.post1,
        result.post2,
        result.hierarchy,
        result.constraints,
        result.preprocess_report,
        tuple(result.diagnostics),
        result.degraded,
        result.degraded_reason,
    )
