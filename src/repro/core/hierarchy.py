"""Hierarchy trees (Sec. II-A, Fig. 1).

The recognition output is a tree over four levels: **system** →
**sub-blocks** (possibly nested) → **primitives** → **elements**.
:class:`HierarchyNode` is a plain recursive structure with rendering
and search helpers; :mod:`repro.core.pipeline` builds it from the
annotated graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.constraints import Constraint


class NodeKind(enum.Enum):
    """The four abstraction levels of Sec. II-A."""

    SYSTEM = "system"
    SUBBLOCK = "sub-block"
    PRIMITIVE = "primitive"
    ELEMENT = "element"


@dataclass
class HierarchyNode:
    """One node of the recognized hierarchy tree.

    ``block_class`` is the recognized functionality ("ota", "lna",
    "bias" …) for sub-blocks, or the template name for primitives.
    ``devices`` lists the flat device names owned *directly* (for
    primitives) — use :meth:`all_devices` for the transitive set.
    """

    name: str
    kind: NodeKind
    block_class: str = ""
    devices: tuple[str, ...] = ()
    children: list["HierarchyNode"] = field(default_factory=list)
    constraints: list[Constraint] = field(default_factory=list)

    def add(self, child: "HierarchyNode") -> "HierarchyNode":
        self.children.append(child)
        return child

    # -- queries ---------------------------------------------------------

    def walk(self) -> Iterator["HierarchyNode"]:
        """Depth-first pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "HierarchyNode | None":
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def child(self, name: str) -> "HierarchyNode | None":
        """Shallow (direct-children-only) lookup by name."""
        for node in self.children:
            if node.name == name:
                return node
        return None

    def ensure_path(
        self, path: tuple[str, ...], block_classes: dict[str, str] | None = None
    ) -> "HierarchyNode":
        """Walk (creating as needed) a chain of nested sub-block nodes.

        ``path`` is an instance path split into segments
        (``("xrx0", "xlna")``); each missing segment becomes a
        SUBBLOCK child whose ``block_class`` comes from
        ``block_classes`` (keyed by the joined path so far).  Returns
        the node at the end of the path — used by the instance-table
        hierarchy mode to mirror true subckt nesting.
        """
        node = self
        so_far: list[str] = []
        for segment in path:
            so_far.append(segment)
            existing = node.child(segment)
            if existing is None:
                existing = node.add(
                    HierarchyNode(
                        name=segment,
                        kind=NodeKind.SUBBLOCK,
                        block_class=(block_classes or {}).get(
                            "/".join(so_far), ""
                        ),
                    )
                )
            node = existing
        return node

    def subblocks(self) -> list["HierarchyNode"]:
        return [n for n in self.walk() if n.kind is NodeKind.SUBBLOCK]

    def primitives(self) -> list["HierarchyNode"]:
        return [n for n in self.walk() if n.kind is NodeKind.PRIMITIVE]

    def all_devices(self) -> set[str]:
        """Every device name owned by this subtree."""
        out: set[str] = set()
        for node in self.walk():
            out |= set(node.devices)
        return out

    def all_constraints(self) -> list[Constraint]:
        out: list[Constraint] = []
        for node in self.walk():
            out.extend(node.constraints)
        return out

    @property
    def depth(self) -> int:
        """Height of this subtree (a lone node has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth for child in self.children)

    # -- rendering --------------------------------------------------------

    def render(self, indent: str = "") -> str:
        """Multi-line ASCII tree, e.g. for the quickstart example."""
        label = self.name
        if self.block_class and self.block_class != self.name:
            label = f"{self.name} [{self.block_class}]"
        tags = []
        if self.devices:
            tags.append(f"{len(self.devices)} dev")
        if self.constraints:
            tags.append(f"{len(self.constraints)} constr")
        suffix = f"  ({', '.join(tags)})" if tags else ""
        lines = [f"{indent}{self.kind.value}: {label}{suffix}"]
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "class": self.block_class,
            "devices": list(self.devices),
            "constraints": [
                {
                    "kind": c.kind.value,
                    "members": list(c.members),
                    "source": c.source,
                }
                for c in self.constraints
            ],
            "children": [child.to_dict() for child in self.children],
        }
