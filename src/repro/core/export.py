"""Exporting recognition results for downstream tools.

GANA is one stage of the ALIGN flow (ref [6]); its output — hierarchy
plus constraints — feeds layout tools that consume JSON constraint
files.  This module serializes a :class:`PipelineResult` in three
interchange forms:

* :func:`constraints_json` — ALIGN-style constraint records
  (``{"constraint": "SymmetricBlocks", "pairs": [...]}`` …),
* :func:`hierarchy_json` — the full annotated hierarchy tree,
* :func:`hierarchy_dot` / :func:`graph_dot` — Graphviz renderings of
  the tree and of the bipartite circuit graph (annotated with classes).
"""

from __future__ import annotations

import json

from repro.core.annotator import Annotation
from repro.core.constraints import Constraint, ConstraintKind, ConstraintSet
from repro.core.hierarchy import HierarchyNode, NodeKind
from repro.graph.bipartite import CircuitGraph

#: ALIGN constraint-name mapping.
_ALIGN_NAMES: dict[ConstraintKind, str] = {
    ConstraintKind.SYMMETRY: "SymmetricBlocks",
    ConstraintKind.MATCHING: "GroupBlocks",
    ConstraintKind.COMMON_CENTROID: "CommonCentroid",
    ConstraintKind.PROXIMITY: "Proximity",
    ConstraintKind.GUARD_RING: "GuardRing",
    ConstraintKind.MIN_WIRELENGTH: "MinimizeWirelength",
    ConstraintKind.SHIELDING: "ShieldNet",
}


def constraint_record(constraint: Constraint) -> dict:
    """One ALIGN-style JSON record for a constraint."""
    record: dict = {
        "constraint": _ALIGN_NAMES[constraint.kind],
        "source": constraint.source,
    }
    if constraint.kind is ConstraintKind.SYMMETRY:
        members = list(constraint.members)
        pairs = [
            members[i : i + 2] for i in range(0, len(members) - 1, 2)
        ]
        record["pairs"] = pairs
        if len(members) % 2:
            record["self_symmetric"] = [members[-1]]
    else:
        record["instances"] = list(constraint.members)
    record.update(constraint.attribute_map)
    return record


def constraints_json(constraints: ConstraintSet, indent: int = 2) -> str:
    """Serialize a constraint set as an ALIGN-style JSON array."""
    return json.dumps(
        [constraint_record(c) for c in constraints], indent=indent
    )


def hierarchy_json(root: HierarchyNode, indent: int = 2) -> str:
    """The annotated hierarchy tree as JSON."""
    return json.dumps(root.to_dict(), indent=indent)


def _dot_escape(text: str) -> str:
    return text.replace('"', '\\"')


def hierarchy_dot(root: HierarchyNode) -> str:
    """Graphviz DOT of the hierarchy tree (shape-coded by level)."""
    shapes = {
        NodeKind.SYSTEM: "doubleoctagon",
        NodeKind.SUBBLOCK: "box",
        NodeKind.PRIMITIVE: "ellipse",
        NodeKind.ELEMENT: "plaintext",
    }
    lines = ["digraph hierarchy {", "  rankdir=TB;"]
    ids: dict[int, str] = {}
    for index, node in enumerate(root.walk()):
        ids[id(node)] = f"n{index}"
        label = node.name
        if node.block_class and node.block_class != node.name:
            label += f"\\n[{node.block_class}]"
        lines.append(
            f'  n{index} [label="{_dot_escape(label)}" '
            f"shape={shapes[node.kind]}];"
        )
    for node in root.walk():
        for child in node.children:
            lines.append(f"  {ids[id(node)]} -> {ids[id(child)]};")
    lines.append("}")
    return "\n".join(lines)


def graph_dot(
    graph: CircuitGraph, annotation: Annotation | None = None
) -> str:
    """Graphviz DOT of the bipartite circuit graph.

    Element vertices are boxes, net vertices are points; when an
    annotation is given, vertices are colored by class (a stable
    palette over the class list, as in the paper's Fig. 7 rendering).
    """
    palette = (
        "lightgreen", "lightcoral", "lightskyblue", "orange",
        "plum", "khaki", "lightgray", "cyan",
    )
    lines = ["graph circuit {", "  layout=neato;", "  overlap=false;"]

    def color_of(vertex: int) -> str:
        if annotation is None:
            return "white"
        cls = int(annotation.vertex_classes[vertex])
        if cls < 0:
            return "white"
        return palette[cls % len(palette)]

    for i, dev in enumerate(graph.elements):
        lines.append(
            f'  e{i} [label="{_dot_escape(dev.name)}" shape=box '
            f'style=filled fillcolor="{color_of(i)}"];'
        )
    for j, net in enumerate(graph.nets):
        vertex = graph.n_elements + j
        lines.append(
            f'  v{j} [label="{_dot_escape(net)}" shape=ellipse '
            f'style=filled fillcolor="{color_of(vertex)}" fontsize=9];'
        )
    for edge in graph.edges:
        attrs = f' [label="{edge.label:03b}"]' if edge.label else ""
        lines.append(f"  e{edge.element} -- v{edge.net}{attrs};")
    lines.append("}")
    return "\n".join(lines)
