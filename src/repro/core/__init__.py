"""The GANA core: annotation, postprocessing, hierarchy, constraints.

Attribute access is lazy to break the import cycle
``primitives.library → core.constraints → core.__init__ →
core.postprocess → primitives.library``: importing a submodule of
``repro.core`` directly never pulls in the others.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "Annotation": "repro.core.annotator",
    "GcnAnnotator": "repro.core.annotator",
    "Constraint": "repro.core.constraints",
    "ConstraintKind": "repro.core.constraints",
    "ConstraintSet": "repro.core.constraints",
    "merge_symmetry_axes": "repro.core.constraints",
    "propagate": "repro.core.constraints",
    "subblock_constraints": "repro.core.constraints",
    "HierarchyNode": "repro.core.hierarchy",
    "NodeKind": "repro.core.hierarchy",
    "RF_CLASSES": "repro.core.postprocess",
    "STANDALONE_PRIMITIVES": "repro.core.postprocess",
    "PostprocessResult": "repro.core.postprocess",
    "apply_port_rules": "repro.core.postprocess",
    "postprocess_ccc": "repro.core.postprocess",
    "constraint_record": "repro.core.export",
    "constraints_json": "repro.core.export",
    "graph_dot": "repro.core.export",
    "hierarchy_dot": "repro.core.export",
    "hierarchy_json": "repro.core.export",
    "Violation": "repro.core.validate",
    "validate_constraints": "repro.core.validate",
    "infer_net_roles": "repro.core.testbench",
    "infer_port_labels": "repro.core.testbench",
    "strip_sources": "repro.core.testbench",
    "BlockGraph": "repro.core.systems",
    "SystemInstance": "repro.core.systems",
    "annotate_systems": "repro.core.systems",
    "build_block_graph": "repro.core.systems",
    "detect_receivers": "repro.core.systems",
    "nest_support_blocks": "repro.core.systems",
    "GanaPipeline": "repro.core.pipeline",
    "PipelineResult": "repro.core.pipeline",
    "build_hierarchy": "repro.core.pipeline",
    "AnnotatedDesign": "repro.core.stages",
    "Artifact": "repro.core.stages",
    "FeaturedGraph": "repro.core.stages",
    "FlatDesign": "repro.core.stages",
    "GcnPrediction": "repro.core.stages",
    "ParsedDeck": "repro.core.stages",
    "Post1Result": "repro.core.stages",
    "Post2Result": "repro.core.stages",
    "StageName": "repro.core.stages",
    "StagedRun": "repro.core.stages",
    "StagedRunner": "repro.core.stages",
    "TIMING_STAGES": "repro.core.stages",
    "content_fingerprint": "repro.core.stages",
    "load_artifacts": "repro.core.stages",
    "pipeline_result_fingerprint": "repro.core.stages",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    module = importlib.import_module(module_name)
    return getattr(module, name)


def __dir__():
    return __all__
