"""System-level recognition — one level above the paper.

Sec. II-A: "Systems lie at the uppermost level of the hierarchy, and
may correspond to structures such as RF transceivers, DC-DC converters,
and a high-speed SerDes system. The effort reported in this paper goes
up to the level of sub-blocks."  This module is that next level, as the
paper's structure implies it: recognized sub-blocks become nodes of a
*block graph* whose directed edges follow signal flow (a net driven by
one block's drains/sources feeding another block's gates), and simple
rules over that graph group blocks into systems — e.g. an RF
**receiver chain** is a mixer fed by an LNA path on one side and an
oscillator (possibly through buffers) on the other, with optional IF
amplifiers downstream.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.hierarchy import HierarchyNode, NodeKind
from repro.graph.bipartite import DRAIN_BIT, GATE_BIT, SOURCE_BIT, CircuitGraph
from repro.spice.netlist import is_power_net


@dataclass
class BlockGraph:
    """Directed signal-flow graph over recognized sub-block instances."""

    classes: dict[str, str]  # block name → class
    devices: dict[str, set[str]]  # block name → device names
    edges: set[tuple[str, str]] = field(default_factory=set)  # driver → receiver

    def predecessors(self, block: str) -> set[str]:
        return {a for a, b in self.edges if b == block}

    def successors(self, block: str) -> set[str]:
        return {b for a, b in self.edges if a == block}

    def of_class(self, cls: str) -> list[str]:
        return sorted(n for n, c in self.classes.items() if c == cls)


def build_block_graph(
    hierarchy: HierarchyNode, graph: CircuitGraph
) -> BlockGraph:
    """Derive block-level signal flow from the recognized hierarchy.

    An edge A→B exists when some non-power net is *driven* by A (a
    drain/source terminal or a passive connection of a device in A) and
    *received* by B (a gate terminal of a device in B).
    """
    blocks = [
        node
        for node in hierarchy.children
        if node.kind in (NodeKind.SUBBLOCK, NodeKind.PRIMITIVE)
    ]
    owner: dict[str, str] = {}
    classes: dict[str, str] = {}
    devices: dict[str, set[str]] = {}
    for node in blocks:
        classes[node.name] = node.block_class.lower()
        devices[node.name] = node.all_devices()
        for dev in devices[node.name]:
            owner[dev] = node.name

    drivers: dict[int, set[str]] = defaultdict(set)
    receivers: dict[int, set[str]] = defaultdict(set)
    for edge in graph.edges:
        dev = graph.elements[edge.element]
        block = owner.get(dev.name)
        if block is None or is_power_net(graph.nets[edge.net]):
            continue
        if dev.kind.is_transistor:
            if edge.label & (DRAIN_BIT | SOURCE_BIT):
                drivers[edge.net].add(block)
            if edge.label & GATE_BIT:
                receivers[edge.net].add(block)
        else:
            # Passives both drive and receive (they conduct).
            drivers[edge.net].add(block)
            receivers[edge.net].add(block)

    block_graph = BlockGraph(classes=classes, devices=devices)
    for net, driving in drivers.items():
        for a in driving:
            for b in receivers.get(net, set()):
                if a != b:
                    block_graph.edges.add((a, b))
    return block_graph


#: Classes that belong to a receiver chain around its mixer.
_RF_UPSTREAM = frozenset({"lna", "bpf"})
_LO_PATH = frozenset({"osc", "buf"})
_IF_DOWNSTREAM = frozenset({"inv", "buf"})


def _collect_path(
    block_graph: BlockGraph,
    start: set[str],
    allowed: frozenset[str],
    direction: str,
) -> set[str]:
    """Transitively follow predecessors/successors within ``allowed``."""
    out: set[str] = set()
    frontier = list(start)
    step = (
        block_graph.predecessors if direction == "up" else block_graph.successors
    )
    while frontier:
        current = frontier.pop()
        if current in out:
            continue
        out.add(current)
        for nxt in step(current):
            if block_graph.classes.get(nxt) in allowed and nxt not in out:
                frontier.append(nxt)
    return out


@dataclass(frozen=True)
class SystemInstance:
    """One recognized system (e.g. a receiver chain)."""

    name: str
    system_class: str
    blocks: tuple[str, ...]


def detect_receivers(block_graph: BlockGraph) -> list[SystemInstance]:
    """RF receiver chains: LNA path → mixer ← LO path (+ IF amps).

    One instance per mixer that has both an upstream LNA/BPF path and
    an LO feed (oscillator, possibly through buffers).
    """
    systems: list[SystemInstance] = []
    for index, mixer in enumerate(block_graph.of_class("mixer")):
        preds = block_graph.predecessors(mixer)
        rf_in = {
            p for p in preds if block_graph.classes.get(p) in _RF_UPSTREAM
        }
        lo_in = {p for p in preds if block_graph.classes.get(p) in _LO_PATH}
        if not rf_in or not lo_in:
            continue
        members = {mixer}
        members |= _collect_path(block_graph, rf_in, _RF_UPSTREAM, "up")
        members |= _collect_path(block_graph, lo_in, _LO_PATH | {"osc"}, "up")
        # Pull in the oscillator behind buffer stages.
        for block in list(members):
            if block_graph.classes.get(block) == "buf":
                for pred in block_graph.predecessors(block):
                    if block_graph.classes.get(pred) in _LO_PATH:
                        members |= _collect_path(
                            block_graph, {pred}, _LO_PATH, "up"
                        )
        members |= _collect_path(
            block_graph,
            {
                s
                for s in block_graph.successors(mixer)
                if block_graph.classes.get(s) in _IF_DOWNSTREAM
            },
            _IF_DOWNSTREAM,
            "down",
        )
        systems.append(
            SystemInstance(
                name=f"receiver{index}",
                system_class="receiver",
                blocks=tuple(sorted(members)),
            )
        )
    return systems


def nest_support_blocks(
    hierarchy: HierarchyNode,
    graph: CircuitGraph,
    support_classes: frozenset[str] = frozenset({"bias"}),
) -> list[tuple[str, str]]:
    """Nest support blocks under the single block they serve.

    Sec. II-A: "sub-blocks form multiple levels of the design hierarchy
    (i.e., some sub-blocks could be contained in others)" — Fig. 1's
    current reference (with its Little OTA) lives *inside* the Big OTA.
    A support-class block (bias by default) whose outgoing signal edges
    all land on one other block is re-parented under that block.

    Returns the (child, parent) moves performed.
    """
    block_graph = build_block_graph(hierarchy, graph)
    by_name = {node.name: node for node in hierarchy.children}
    moves: list[tuple[str, str]] = []
    for name, cls in block_graph.classes.items():
        if cls not in support_classes:
            continue
        consumers = {
            b
            for b in block_graph.successors(name)
            if block_graph.classes.get(b) not in support_classes
        }
        if len(consumers) != 1:
            continue
        (parent,) = consumers
        child_node = by_name.get(name)
        parent_node = by_name.get(parent)
        if child_node is None or parent_node is None:
            continue
        hierarchy.children = [
            c for c in hierarchy.children if c.name != name
        ]
        parent_node.add(child_node)
        moves.append((name, parent))
    return moves


def annotate_systems(
    hierarchy: HierarchyNode, graph: CircuitGraph
) -> list[SystemInstance]:
    """Detect systems and graft them into the hierarchy tree.

    Recognized blocks move under a new SYSTEM node per instance;
    unclaimed blocks stay direct children of the root.  Returns the
    instances found.
    """
    block_graph = build_block_graph(hierarchy, graph)
    systems = detect_receivers(block_graph)
    if not systems:
        return systems

    by_name = {node.name: node for node in hierarchy.children}
    claimed: set[str] = set()
    for system in systems:
        system_node = HierarchyNode(
            name=system.name,
            kind=NodeKind.SYSTEM,
            block_class=system.system_class,
        )
        for block in system.blocks:
            node = by_name.get(block)
            if node is not None and block not in claimed:
                system_node.add(node)
                claimed.add(block)
        hierarchy.children = [
            child for child in hierarchy.children if child.name not in claimed
        ]
        hierarchy.add(system_node)
        by_name[system.name] = system_node
    return systems
