"""Postprocessing I and II (Sec. V-A).

The GCN is deliberately not asked to be perfect; two classes of cheap
heuristics lift its output to 100 % on all test sets:

**Postprocessing I** (design-independent, graph-based)

* vote: every element of a channel-connected component (CCC) takes the
  component's probability-weighted majority class;
* primitive annotation inside each CCC (Sec. IV);
* stand-alone separation: a CCC fully covered by auxiliary primitives
  (inverters, buffers, switches, references) is pulled out of the
  sub-block and re-labeled with the primitive's own class — the paper's
  "input buffer for an oscillator" case;
* BPF detection: a CCC that looks like an oscillator (cross-coupled
  pair) but has input transistors driven from another block is a
  band-pass filter, "a combination of an oscillator with two input
  transistors".

**Postprocessing II** (class-specific port rules)

* the CCC touching an ``antenna``-labeled net is an LNA;
* the CCC *driving* an ``oscillating``-labeled net (drain/source
  contact) is an oscillator; CCCs *receiving* it (gate contact) are
  mixers.

Port labels "can be provided by the designer as a separate label on the
port, or can be inferred from the test bench in the input SPICE
netlist" — here they arrive as an explicit ``{net: label}`` mapping.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.annotator import Annotation
from repro.graph.bipartite import DRAIN_BIT, GATE_BIT, SOURCE_BIT, CircuitGraph
from repro.graph.ccc import CCCPartition, channel_connected_components
from repro.primitives.library import PrimitiveLibrary
from repro.primitives.matcher import PrimitiveMatch, annotate_components
from repro.spice.netlist import is_power_net

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.profile import PipelineProfiler

#: Primitives that may stand alone outside any sub-block (Post-I).
#: Deliberately small: auxiliary digital-ish cells only.  Structures
#: like current references are *integral* to a bias network in the
#: OTA task and must not be separated; callers with other vocabularies
#: can pass their own set to :func:`postprocess_ccc`.
STANDALONE_PRIMITIVES = frozenset({"INV", "BUF"})

#: The RF vocabulary Postprocessing II's port rules apply to.
RF_CLASSES = ("lna", "mixer", "osc")


@dataclass
class PostprocessResult:
    """Annotation after a postprocessing stage, plus what it found."""

    annotation: Annotation
    partition: CCCPartition
    ccc_classes: dict[int, int] = field(default_factory=dict)
    standalone: list[tuple[int, PrimitiveMatch]] = field(default_factory=list)
    ccc_matches: dict[int, list[PrimitiveMatch]] = field(default_factory=dict)


def _ccc_tallies(
    annotation: Annotation, partition: CCCPartition
) -> dict[int, np.ndarray]:
    """Per-CCC probability tallies over the GCN classes.

    One vectorized scatter-add over all elements (``np.add.at``), not a
    Python loop per component member.
    """
    n_gcn_classes = len(annotation.class_names)
    n_components = partition.n_components
    tallies = np.zeros((n_components, n_gcn_classes))
    if partition.of_element:
        n = len(partition.of_element)
        elements = np.fromiter(
            partition.of_element.keys(), dtype=np.int64, count=n
        )
        cids = np.fromiter(
            partition.of_element.values(), dtype=np.int64, count=n
        )
        if annotation.probabilities is not None:
            np.add.at(tallies, cids, annotation.probabilities[elements])
        else:
            classes = annotation.vertex_classes[elements].astype(np.int64)
            valid = (classes >= 0) & (classes < n_gcn_classes)
            np.add.at(tallies, (cids[valid], classes[valid]), 1.0)
    return {cid: tallies[cid] for cid in range(n_components)}


def _ccc_vote(
    annotation: Annotation, partition: CCCPartition
) -> dict[int, int]:
    """Probability-weighted majority class per CCC (GCN classes only)."""
    tallies = _ccc_tallies(annotation, partition)
    return {
        cid: int(t.argmax()) if t.sum() > 0 else -1 for cid, t in tallies.items()
    }


def _relabel(
    annotation: Annotation,
    partition: CCCPartition,
    ccc_classes: dict[int, int],
) -> None:
    """Write CCC classes back onto element and net vertices.

    Each element takes its CCC's class.  A net takes the class of its
    adjacent CCCs when they agree; when they disagree the net is on a
    block boundary and keeps the class of the CCC it touches most
    (the paper lets such vertices belong to multiple blocks).
    """
    graph = annotation.graph
    for cid, members in enumerate(partition.components):
        cls = ccc_classes.get(cid, -1)
        if cls < 0:
            continue
        for element in members:
            annotation.vertex_classes[element] = cls

    # Net vertices: tally adjacent element classes, weighted by edges.
    net_tally: dict[int, dict[int, int]] = defaultdict(lambda: defaultdict(int))
    for edge in graph.edges:
        cls = int(annotation.vertex_classes[edge.element])
        if cls >= 0:
            net_tally[edge.net][cls] += 1
    offset = graph.n_elements
    for net_local, tally in net_tally.items():
        best = max(tally.items(), key=lambda kv: kv[1])[0]
        annotation.vertex_classes[offset + net_local] = best


def _element_owners(
    graph: CircuitGraph, partition: CCCPartition
) -> np.ndarray:
    """Element index → component id array (−1 when unassigned)."""
    owners = np.full(graph.n_elements, -1, dtype=np.int64)
    for element, cid in partition.of_element.items():
        owners[element] = cid
    return owners


def _power_net_mask(graph: CircuitGraph) -> np.ndarray:
    """Boolean mask over local net indices: is this a power net?"""
    return np.fromiter(
        (is_power_net(net) for net in graph.nets),
        dtype=bool,
        count=graph.n_nets,
    )


def _ds_drivers(
    graph: CircuitGraph, partition: CCCPartition
) -> dict[int, set[int]]:
    """Net (local index) → CCCs touching it via a drain/source edge.

    Computed once per circuit and shared by every
    :func:`_ccc_boundary_inputs` call — the old per-call O(E) rebuild
    was one of the Postprocessing I hot spots.
    """
    element, net, label = graph.edge_arrays()
    owners = _element_owners(graph, partition)
    drivers: dict[int, set[int]] = defaultdict(set)
    mask = (label & (DRAIN_BIT | SOURCE_BIT)).astype(bool) & (
        owners[element] >= 0
    )
    for n, owner in zip(net[mask], owners[element[mask]]):
        drivers[int(n)].add(int(owner))
    return dict(drivers)


def _ccc_boundary_inputs(
    graph: CircuitGraph,
    partition: CCCPartition,
    cid: int,
    drivers: dict[int, set[int]] | None = None,
) -> list[int]:
    """Transistors of CCC ``cid`` whose gate net is driven from outside.

    "Driven from outside" = the gate net touches another CCC through a
    drain/source edge and is not a power net.  These are the "input
    transistors" of the BPF rule.  Pass a precomputed ``drivers`` map
    (:func:`_ds_drivers`) when calling for more than one component.
    """
    inputs: list[int] = []
    members = partition.components[cid]
    if drivers is None:
        drivers = _ds_drivers(graph, partition)
    by_element = graph.element_edge_lists()
    member_edges = (edge for m in members for edge in by_element[m])
    for edge in member_edges:
        if not (edge.label & GATE_BIT):
            continue
        net_name = graph.nets[edge.net]
        if is_power_net(net_name):
            continue
        outside = drivers.get(edge.net, set()) - {cid}
        if not outside:
            continue
        # A true *input* transistor injects from a rail into the tank
        # (common-source).  A device whose drain AND source both sit on
        # internal circuit nets is an injection/coupling device of an
        # injection-locked oscillator, not a filter input.
        dev = graph.elements[edge.element]
        pins = dev.pin_map
        if is_power_net(pins["s"]) or is_power_net(pins["d"]):
            inputs.append(edge.element)
    return sorted(set(inputs))


def _mirror_clusters(
    graph: CircuitGraph, partition: CCCPartition
) -> list[set[int]]:
    """Group CCCs that form one current-mirror tree.

    The paper motivates flattening with exactly this structure: bias
    mirrors "split current mirror functionality across blocks".  A
    component whose *every* externally-driven transistor gate is tied
    to the gate/drain net of a diode-connected transistor of a single
    other component is a mirror branch of that component; branch and
    owner belong to one functional unit and should be voted jointly.
    """
    # Edge predicates as numpy masks over the cached edge arrays; only
    # matching edges fall back to Python (dict/set insertion).
    element, net, label = graph.edge_arrays()
    owners = _element_owners(graph, partition)
    edge_owner = owners[element]
    is_gate = (label & GATE_BIT).astype(bool)
    is_drain = (label & DRAIN_BIT).astype(bool)

    # Diode-connected transistors: a single edge carrying both the gate
    # and drain bits.  Map their net to the owning CCC (edge order, so
    # the last diode edge on a net wins — same as the scalar loop).
    diode_net_owner: dict[int, int] = {}
    diode_mask = is_gate & is_drain & (edge_owner >= 0)
    for n, owner in zip(net[diode_mask], edge_owner[diode_mask]):
        diode_net_owner[int(n)] = int(owner)

    # Per-CCC: gate nets of transistors that are not self-diode.
    external_gates: dict[int, set[int]] = defaultdict(set)
    gate_mask = (
        is_gate
        & ~is_drain
        & (edge_owner >= 0)
        & ~_power_net_mask(graph)[net]
    )
    for n, owner in zip(net[gate_mask], edge_owner[gate_mask]):
        external_gates[int(owner)].add(int(n))

    parent = list(range(partition.n_components))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for cid in range(partition.n_components):
        gates = external_gates.get(cid, set())
        if not gates:
            continue
        owners = {diode_net_owner.get(net) for net in gates}
        if None in owners:
            continue  # some gate is not mirror-driven
        owners.discard(cid)
        if len(owners) != 1:
            continue
        (owner,) = owners
        parent[find(cid)] = find(owner)

    clusters: dict[int, set[int]] = defaultdict(set)
    for cid in range(partition.n_components):
        clusters[find(cid)].add(cid)
    return [members for members in clusters.values() if len(members) > 1]


def _joint_mirror_vote(
    graph: CircuitGraph,
    partition: CCCPartition,
    ccc_classes: dict[int, int],
    tallies: dict[int, np.ndarray],
    protected: set[int],
) -> None:
    """Re-vote mirror-linked CCC clusters jointly.

    Summing the member tallies makes the vote robust both ways: a
    misclassified two-device reference is outvoted by its correctly
    classified branches, and a misclassified branch is outvoted by the
    rest of its tree.  ``protected`` CCCs (stand-alone primitives,
    detected BPFs) keep their classes.
    """
    for cluster in _mirror_clusters(graph, partition):
        votable = [cid for cid in cluster if cid not in protected]
        if len(votable) < 2:
            continue
        total = sum(tallies[cid] for cid in votable)
        if total.sum() <= 0:
            continue
        winner = int(total.argmax())
        for cid in votable:
            ccc_classes[cid] = winner


def _absorb_orphans(
    graph: CircuitGraph,
    partition: CCCPartition,
    ccc_classes: dict[int, int],
    protected: set[int],
    max_size: int = 2,
) -> None:
    """Fold tiny single-neighbor CCCs into their host sub-block.

    An input buffer (a lone source follower between a primary input and
    a differential pair) is channel-connected to nothing, so it forms
    its own one-device component; the paper's Post-I treats such
    auxiliary primitives as part of the unit they serve.  A component
    of ≤ ``max_size`` elements whose non-power nets reach exactly one
    other component inherits that component's class.

    Components containing a diode-connected transistor are exempt: they
    are mirror roots (e.g. a bias current reference whose only fanout
    is the tail gate of one OTA) and stay their own functional unit.
    """
    element, _net, label = graph.edge_arrays()
    owners = _element_owners(graph, partition)
    diode_mask = (
        (label & GATE_BIT).astype(bool)
        & (label & DRAIN_BIT).astype(bool)
        & (owners[element] >= 0)
    )
    diode_owners = {int(o) for o in owners[element[diode_mask]]}

    by_element = graph.element_edge_lists()
    for cid, members in enumerate(partition.components):
        if cid in protected or len(members) > max_size or cid in diode_owners:
            continue
        neighbors: set[int] = set()
        for edge in (e for m in members for e in by_element[m]):
            if is_power_net(graph.nets[edge.net]):
                continue
            neighbors |= partition.of_net.get(edge.net, set())
        neighbors.discard(cid)
        neighbors -= protected
        if len(neighbors) != 1:
            continue
        (host,) = neighbors
        if len(partition.components[host]) <= len(members):
            continue  # only absorb into a larger host
        target = ccc_classes.get(host, -1)
        if target >= 0:
            ccc_classes[cid] = target


def postprocess_ccc(
    annotation: Annotation,
    library: PrimitiveLibrary,
    partition: CCCPartition | None = None,
    detect_bpf: bool = True,
    standalone_primitives: frozenset[str] | None = None,
    mirror_vote: bool = True,
    absorb_orphans: bool = True,
    profiler: "PipelineProfiler | None" = None,
    indexed: bool = True,
    match_cache=None,
) -> PostprocessResult:
    """Postprocessing I: CCC vote, primitive annotation, stand-alone
    separation, BPF detection.  Returns a new annotation.

    ``standalone_primitives`` overrides which templates may be pulled
    out as stand-alone units; by default the auxiliary INV/BUF cells
    are separated only when the annotation uses the RF vocabulary.
    ``mirror_vote`` and ``absorb_orphans`` toggle the two vote-repair
    heuristics (exposed for the ablation benchmark).  ``profiler``
    collects per-template matching statistics; ``indexed=False``
    selects the naive reference matcher (see
    :mod:`repro.primitives.matcher`) — the annotation is identical
    either way.  ``match_cache`` (a
    :class:`repro.core.stages.PrimitiveMatchCache`) reuses per-CCC,
    per-template VF2 results across runs — the annotation is, again,
    identical with or without it.
    """
    annotation = annotation.copy()
    graph = annotation.graph
    partition = partition or channel_connected_components(graph)
    ccc_classes = _ccc_vote(annotation, partition)
    rf_vocab_early = all(c in annotation.class_names for c in RF_CLASSES)
    if standalone_primitives is None:
        standalone_primitives = (
            STANDALONE_PRIMITIVES if rf_vocab_early else frozenset()
        )

    result = PostprocessResult(
        annotation=annotation, partition=partition, ccc_classes=ccc_classes
    )

    rf_vocab = rf_vocab_early

    component_matches = annotate_components(
        graph,
        partition,
        library,
        profiler=profiler,
        indexed=indexed,
        match_cache=match_cache,
    )
    ds_drivers = (
        _ds_drivers(graph, partition) if detect_bpf and rf_vocab else None
    )

    for cid, members in enumerate(partition.components):
        matches = component_matches[cid]
        result.ccc_matches[cid] = matches.matches

        member_names = {graph.elements[i].name for i in members}

        standalone_here = [
            m
            for m in matches.matches
            if m.primitive in standalone_primitives
        ]
        fully_standalone = (
            standalone_here
            and {n for m in standalone_here for n in m.elements} == member_names
        )
        if fully_standalone:
            # The whole CCC is auxiliary circuitry: re-label it by its
            # dominant primitive and list it separately in the tree.
            dominant = max(standalone_here, key=lambda m: len(m.elements))
            cls_id = annotation.class_id(dominant.primitive.lower(), create=True)
            ccc_classes[cid] = cls_id
            for match in standalone_here:
                result.standalone.append((cid, match))
            continue

        if detect_bpf and rf_vocab:
            # Purely structural, independent of the GCN vote: "the BPF
            # is identified as a combination of an oscillator with two
            # input transistors".  A cross-coupled pair plus input
            # transistors injecting from a rail is a Q-enhanced filter;
            # injection-locked oscillators (whose injection device sits
            # *across* the tank) are excluded by the rail condition.
            has_cc_pair = any(
                m.primitive in ("CC-N", "CC-P") for m in matches.matches
            )
            inputs = _ccc_boundary_inputs(
                graph, partition, cid, drivers=ds_drivers
            )
            if has_cc_pair and inputs:
                ccc_classes[cid] = annotation.class_id("bpf", create=True)

    protected = {cid for cid, _match in result.standalone}
    protected |= {
        cid
        for cid, cls in ccc_classes.items()
        if cls >= len(annotation.class_names)  # extra classes (bpf, …)
    }
    tallies = _ccc_tallies(annotation, partition)
    if mirror_vote:
        _joint_mirror_vote(graph, partition, ccc_classes, tallies, protected)
    if absorb_orphans:
        _absorb_orphans(graph, partition, ccc_classes, protected)
    result.ccc_classes = ccc_classes
    _relabel(annotation, partition, ccc_classes)
    return result


def apply_port_rules(
    result: PostprocessResult,
    port_labels: dict[str, str],
) -> PostprocessResult:
    """Postprocessing II: antenna/oscillating port rules.

    Only CCCs currently holding a GCN-vocabulary RF class are
    re-labeled; stand-alone primitives and BPFs found in Post-I keep
    their classes.
    """
    annotation = result.annotation.copy()
    partition = result.partition
    graph = annotation.graph
    ccc_classes = dict(result.ccc_classes)

    rf_ids = {
        name: annotation.class_names.index(name)
        for name in RF_CLASSES
        if name in annotation.class_names
    }
    if not rf_ids:
        return PostprocessResult(
            annotation=annotation,
            partition=partition,
            ccc_classes=ccc_classes,
            standalone=list(result.standalone),
            ccc_matches=dict(result.ccc_matches),
        )
    mutable = set(rf_ids.values())

    edges_by_net: dict[int, list] = defaultdict(list)
    for edge in graph.edges:
        edges_by_net[edge.net].append(edge)

    def touching(net_local: int, bits: int) -> set[int]:
        out: set[int] = set()
        for edge in edges_by_net.get(net_local, ()):
            if bits and not (edge.label & bits):
                continue
            owner = partition.of_element.get(edge.element)
            if owner is not None:
                out.add(owner)
        return out

    for net, label in port_labels.items():
        if net not in graph.net_index:
            continue
        net_local = graph.net_index[net]
        if label == "antenna":
            for cid in touching(net_local, bits=0):
                if ccc_classes.get(cid) in mutable:
                    ccc_classes[cid] = rf_ids.get("lna", ccc_classes[cid])
        elif label == "oscillating":
            drive = touching(net_local, bits=DRAIN_BIT | SOURCE_BIT)
            receive = touching(net_local, bits=GATE_BIT) - drive
            for cid in drive:
                if ccc_classes.get(cid) in mutable:
                    ccc_classes[cid] = rf_ids.get("osc", ccc_classes[cid])
            for cid in receive:
                if ccc_classes.get(cid) in mutable:
                    ccc_classes[cid] = rf_ids.get("mixer", ccc_classes[cid])

    _relabel(annotation, partition, ccc_classes)
    return PostprocessResult(
        annotation=annotation,
        partition=partition,
        ccc_classes=ccc_classes,
        standalone=list(result.standalone),
        ccc_matches=dict(result.ccc_matches),
    )
