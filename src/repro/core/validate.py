"""Constraint validation against the netlist.

Recognition annotates MATCHING/SYMMETRY/COMMON_CENTROID constraints;
for layout to honor them, the *netlist* must already satisfy their
electrical preconditions — matched devices need identical kind and
geometry, symmetric pairs identical footprints.  This checker verifies
that, reporting a :class:`Violation` per offending constraint: a lint
pass between recognition and layout (and a safety net for constraints
a designer edited by hand).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import Constraint, ConstraintKind, ConstraintSet
from repro.spice.netlist import Circuit, Device


@dataclass(frozen=True)
class Violation:
    """One failed constraint check."""

    constraint: Constraint
    message: str

    def __str__(self) -> str:
        members = ", ".join(self.constraint.members)
        return f"{self.constraint.kind.value}[{members}]: {self.message}"


def _geometry_key(device: Device) -> tuple:
    """What must agree for devices to 'match' electrically."""
    if device.kind.is_transistor:
        return (
            device.kind,
            device.model,
            device.param("w"),
            device.param("l"),
            device.param("m", 1.0),
        )
    return (device.kind, device.value)


def _check_uniform(
    constraint: Constraint, devices: list[Device]
) -> Violation | None:
    keys = {_geometry_key(d) for d in devices}
    if len(keys) > 1:
        detail = "; ".join(
            f"{d.name}={_geometry_key(d)}" for d in devices
        )
        return Violation(
            constraint=constraint,
            message=f"members differ in kind/geometry: {detail}",
        )
    return None


def validate_constraints(
    constraints: ConstraintSet | list[Constraint], circuit: Circuit
) -> list[Violation]:
    """Check every device-level constraint against the netlist.

    Constraints whose members are block names (no such device in the
    circuit) are skipped — block-level geometry is the placer's duty.
    """
    by_name = {d.name: d for d in circuit.devices}
    violations: list[Violation] = []
    for constraint in constraints:
        devices = [by_name[m] for m in constraint.members if m in by_name]
        if len(devices) < 2:
            continue  # block-level or single-member: nothing to compare
        if constraint.kind in (
            ConstraintKind.MATCHING,
            ConstraintKind.COMMON_CENTROID,
        ):
            violation = _check_uniform(constraint, devices)
            if violation:
                violations.append(violation)
        elif constraint.kind is ConstraintKind.SYMMETRY:
            members = [m for m in constraint.members if m in by_name]
            for i in range(0, len(members) - 1, 2):
                a, b = by_name[members[i]], by_name[members[i + 1]]
                if _geometry_key(a) != _geometry_key(b):
                    violations.append(
                        Violation(
                            constraint=constraint,
                            message=(
                                f"symmetric pair {a.name}/{b.name} differs: "
                                f"{_geometry_key(a)} vs {_geometry_key(b)}"
                            ),
                        )
                    )
    return violations
