"""The end-to-end GANA flow (Sec. II-B).

    SPICE text
      → parse → flatten → preprocess            (repro.spice)
      → bipartite graph + features              (repro.graph)
      → GCN sub-block annotation                (repro.gcn / annotator)
      → Postprocessing I (CCC vote, primitives, stand-alones, BPF)
      → Postprocessing II (port rules)          (postprocess)
      → hierarchy tree + propagated constraints (hierarchy, constraints)

Every stage's wall-clock time is recorded in
:attr:`PipelineResult.timings` — the quantity Sec. V-B reports for the
switched-capacitor filter (135 s) and phased array (514 s).

Resilience (see :mod:`repro.runtime.resilience`):

* ``run(..., mode="lenient")`` parses/elaborates leniently and carries
  the collected diagnostics on :attr:`PipelineResult.diagnostics`;
* when GCN inference errors — or every vertex lands below
  ``confidence_floor`` — ``run`` falls back to the template-library
  classifier (the prior art of refs [2]/[3]) and marks the result
  ``degraded=True`` so callers can tell;
* ``run_many(..., on_error="report")`` isolates per-deck faults: each
  item yields either a :class:`PipelineResult` or a structured
  :class:`~repro.runtime.resilience.FailureReport` (stage, exception
  chain, diagnostics), in input order, with per-item wall-clock
  ``timeout`` ceilings and bounded retry-with-backoff for transient
  worker-pool failures.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.template import TemplateRecognizer, task_fallback_recognizer
from repro.core.annotator import Annotation, GcnAnnotator
from repro.core.constraints import (
    ConstraintSet,
    propagate,
    subblock_constraints,
)
from repro.core.hierarchy import HierarchyNode, NodeKind
from repro.core.postprocess import (
    PostprocessResult,
    apply_port_rules,
    postprocess_ccc,
)
from repro.graph.bipartite import CircuitGraph
from repro.graph.features import NetRole
from repro.primitives.library import PrimitiveLibrary, extended_library
from repro.runtime.resilience import (
    Diagnostic,
    FailureReport,
    failure_report,
    stage,
    time_limit,
)
from repro.spice.flatten import flatten
from repro.spice.netlist import Circuit, Netlist, is_power_net
from repro.spice.parser import parse_netlist
from repro.spice.preprocess import PreprocessReport, preprocess


@dataclass
class PipelineResult:
    """Everything the flow produces for one input netlist."""

    graph: CircuitGraph
    gcn_annotation: Annotation
    post1: PostprocessResult
    post2: PostprocessResult
    hierarchy: HierarchyNode
    constraints: ConstraintSet
    preprocess_report: PreprocessReport
    timings: dict[str, float] = field(default_factory=dict)
    #: Structured profile (stages / per_template / counters) when the
    #: run was invoked with ``profile=True``; plain dict so it pickles
    #: across the ``run_many`` pool and JSON-serializes unchanged.
    profile: dict | None = None
    #: Lenient-mode parse/elaboration problems for this input.
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: True when GCN inference failed (or fell below the confidence
    #: floor) and the annotation came from the template-library
    #: fallback instead.
    degraded: bool = False
    degraded_reason: str | None = None

    @property
    def ok(self) -> bool:
        """Mirror of :attr:`FailureReport.ok` for uniform batch filtering."""
        return True

    @property
    def annotation(self) -> Annotation:
        """The final (post-II) annotation."""
        return self.post2.annotation

    def accuracies(self, truth: dict[str, str]) -> dict[str, float]:
        """GCN / post-I / post-II accuracy against ground truth —
        the three columns of Table II's narrative."""
        return {
            "gcn": self.gcn_annotation.accuracy(truth),
            "post1": self.post1.annotation.accuracy(truth),
            "post2": self.post2.annotation.accuracy(truth),
        }


def build_hierarchy(
    result: PostprocessResult, system_name: str
) -> tuple[HierarchyNode, ConstraintSet]:
    """Assemble the hierarchy tree from a postprocessed annotation.

    Sub-block instances are connected groups of same-class CCCs
    (connected through shared non-power nets); each carries its
    class-implied constraints plus the constraints of the primitives
    inside it, with symmetry axes merged per sub-block (Sec. IV-B).
    Stand-alone primitives hang off the system root.
    """
    annotation = result.annotation
    graph = annotation.graph
    partition = result.partition

    root = HierarchyNode(name=system_name, kind=NodeKind.SYSTEM)
    all_constraints = ConstraintSet()

    standalone_cids = {cid for cid, _match in result.standalone}

    # Group CCCs: same class + net connectivity => one sub-block instance.
    # Power rails never group, and neither do distribution nets (nets
    # touching more than two components, e.g. a bias rail shared by
    # every channel's LNA): only point-to-point signal connections
    # define an instance.
    ccc_neighbors: dict[int, set[int]] = defaultdict(set)
    for net_local, cids in partition.of_net.items():
        if is_power_net(graph.nets[net_local]) or len(cids) > 2:
            continue
        for a in cids:
            for b in cids:
                if a != b:
                    ccc_neighbors[a].add(b)

    visited: set[int] = set()
    instance_counter: dict[str, int] = defaultdict(int)
    for cid in range(partition.n_components):
        if cid in visited or cid in standalone_cids:
            continue
        cls_id = result.ccc_classes.get(cid, -1)
        cls_name = annotation.class_name(cls_id)
        group = [cid]
        visited.add(cid)
        queue = [cid]
        while queue:
            current = queue.pop()
            for other in ccc_neighbors[current]:
                if (
                    other not in visited
                    and other not in standalone_cids
                    and result.ccc_classes.get(other, -1) == cls_id
                ):
                    visited.add(other)
                    group.append(other)
                    queue.append(other)

        index = instance_counter[cls_name]
        instance_counter[cls_name] += 1
        block_name = f"{cls_name}{index}"
        block = HierarchyNode(
            name=block_name, kind=NodeKind.SUBBLOCK, block_class=cls_name
        )
        block.constraints.extend(subblock_constraints(cls_name, block_name))

        block_constraints = ConstraintSet()
        for member_cid in group:
            member_devices = {
                graph.elements[i].name for i in partition.components[member_cid]
            }
            claimed: set[str] = set()
            for match in result.ccc_matches.get(member_cid, []):
                primitive = HierarchyNode(
                    name=f"{block_name}/{match.primitive}@{min(match.elements)}",
                    kind=NodeKind.PRIMITIVE,
                    block_class=match.primitive,
                    devices=tuple(sorted(match.elements)),
                    constraints=list(match.constraints),
                )
                block.add(primitive)
                claimed |= match.elements
                block_constraints.extend(list(match.constraints))
            for name in sorted(member_devices - claimed):
                block.add(
                    HierarchyNode(
                        name=name, kind=NodeKind.ELEMENT, devices=(name,)
                    )
                )
        # Merge symmetry axes within the sub-block (common axis).
        merged = propagate(block_constraints)
        block.constraints.extend(
            c for c in merged if c not in block.constraints
        )
        root.add(block)
        all_constraints.extend(block.constraints)
        for child in block.children:
            all_constraints.extend(child.constraints)

    # Stand-alone primitives get their own top-level hierarchy.
    for cid, match in result.standalone:
        node = HierarchyNode(
            name=f"standalone/{match.primitive}@{min(match.elements)}",
            kind=NodeKind.PRIMITIVE,
            block_class=match.primitive,
            devices=tuple(sorted(match.elements)),
            constraints=list(match.constraints),
        )
        root.add(node)
        all_constraints.extend(node.constraints)

    return root, all_constraints


@dataclass
class GanaPipeline:
    """User-facing entry point: a trained annotator plus the library.

    ``degrade`` controls graceful degradation: when GCN inference
    raises, or every vertex's top softmax lands below
    ``confidence_floor`` (0.0 disables the floor), annotation falls
    back to the template-library classifier and the result is marked
    ``degraded=True``.  Set ``degrade=False`` to let inference errors
    propagate instead.
    """

    annotator: GcnAnnotator
    library: PrimitiveLibrary = field(default_factory=extended_library)
    detect_bpf: bool = True
    degrade: bool = True
    confidence_floor: float = 0.0
    #: Lazily built (and then cached) template recognizer used as the
    #: degradation fallback; inject one to control its topology library.
    fallback_recognizer: TemplateRecognizer | None = None

    @property
    def class_names(self) -> tuple[str, ...]:
        return self.annotator.class_names

    @classmethod
    def pretrained(
        cls,
        task: str = "ota",
        quick: bool = True,
        seed: int = 0,
        cache: bool | None = None,
        **kwargs,
    ) -> "GanaPipeline":
        """Train (or load from cache) a recognition model.

        ``task`` is ``"ota"`` (classes: ota/bias) or ``"rf"`` (classes:
        lna/mixer/osc).  ``quick=True`` trains on a reduced dataset for
        interactive use; ``quick=False`` reproduces the paper-scale
        training run.  Extra keyword arguments (e.g. ``train_size``)
        pass through to
        :func:`repro.datasets.synth.pretrain_annotator`.  No weights
        ship with the package — datasets are generated on the fly, so
        "pretrained" means "trained now, deterministically" — but the
        runtime model cache (``~/.cache/gana`` / ``GANA_CACHE_DIR``)
        makes every call after the first a millisecond load; pass
        ``cache=False`` (or set ``GANA_NO_CACHE=1``) to force
        retraining.
        """
        from repro.datasets.synth import pretrain_annotator

        annotator = pretrain_annotator(
            task, quick=quick, seed=seed, cache=cache, **kwargs
        )
        return cls(annotator=annotator)

    def run(
        self,
        netlist: str | Netlist | Circuit,
        net_roles: dict[str, NetRole] | None = None,
        port_labels: dict[str, str] | None = None,
        name: str = "",
        infer_testbench: bool = True,
        mode: str = "strict",
        profile: bool = False,
    ) -> PipelineResult:
        """Execute the full flow on a SPICE deck / netlist / flat circuit.

        ``profile=True`` attaches a structured profile to
        :attr:`PipelineResult.profile`: per-stage wall-clock (the same
        numbers as ``timings``) plus per-primitive-template matching
        statistics from Postprocessing I (launches, matches, seconds,
        kind-histogram skips) — see :mod:`repro.runtime.profile`.

        When the deck still contains its testbench sources and
        ``infer_testbench`` is on, antenna/oscillating port labels and
        bias net roles are inferred from them (Sec. V-A footnote 2);
        explicit ``port_labels``/``net_roles`` entries always win.

        ``mode="lenient"`` parses and elaborates with error recovery:
        malformed cards and broken instances are skipped, and the
        collected :class:`~repro.runtime.resilience.Diagnostic` records
        land on :attr:`PipelineResult.diagnostics`.  Escaping
        exceptions are tagged with the stage they came from (``parse``,
        ``preprocess``, ``graph``, ``gcn``, ``post1``, ``post2``,
        ``hierarchy``) for :func:`~repro.runtime.resilience.failure_report`.
        """
        timings: dict[str, float] = {}
        diagnostics: list[Diagnostic] = []
        lenient = mode == "lenient"
        profiler = None
        if profile:
            from repro.runtime.profile import PipelineProfiler

            profiler = PipelineProfiler()

        with stage("preprocess", timings, diagnostics):
            with stage("parse", diagnostics=diagnostics):
                if isinstance(netlist, str):
                    netlist = parse_netlist(netlist, mode=mode)
                if isinstance(netlist, Netlist):
                    diagnostics.extend(netlist.diagnostics)
                    flat = flatten(
                        netlist, diagnostics=diagnostics if lenient else None
                    )
                else:
                    flat = netlist
            if infer_testbench and any(d.kind.is_source for d in flat.devices):
                from repro.core.testbench import (
                    infer_net_roles,
                    infer_port_labels,
                )

                inferred_labels = infer_port_labels(flat)
                inferred_labels.update(port_labels or {})
                port_labels = inferred_labels
                inferred_roles = infer_net_roles(flat)
                inferred_roles.update(net_roles or {})
                net_roles = inferred_roles
            reduced, report = preprocess(flat)

        with stage("graph", timings, diagnostics):
            graph = CircuitGraph.from_circuit(reduced)

        degraded_reason: str | None = None
        with stage("gcn", timings, diagnostics):
            try:
                gcn_annotation = self.annotator.annotate(
                    graph, net_roles=net_roles
                )
            except Exception as exc:
                if not self.degrade:
                    raise
                degraded_reason = (
                    f"GCN inference failed "
                    f"({type(exc).__name__}: {exc}); fell back to the "
                    f"template-library classifier"
                )
            else:
                if (
                    self.degrade
                    and self.confidence_floor > 0.0
                    and gcn_annotation.probabilities is not None
                    and graph.n_vertices > 0
                ):
                    top = gcn_annotation.probabilities.max(axis=1)
                    if float(top.max()) < self.confidence_floor:
                        degraded_reason = (
                            f"every vertex confidence below the "
                            f"{self.confidence_floor:g} floor; fell back "
                            f"to the template-library classifier"
                        )
            if degraded_reason is not None:
                gcn_annotation = self._degraded_annotation(graph)

        with stage("post1", timings, diagnostics):
            post1 = postprocess_ccc(
                gcn_annotation,
                self.library,
                detect_bpf=self.detect_bpf,
                profiler=profiler,
            )

        with stage("post2", timings, diagnostics):
            post2 = apply_port_rules(post1, port_labels or {})

        with stage("hierarchy", timings, diagnostics):
            hierarchy, constraints = build_hierarchy(
                post2, system_name=name or flat.name
            )

        profile_dict = None
        if profiler is not None:
            for stage_name, seconds in timings.items():
                profiler.record_stage(stage_name, seconds)
            profile_dict = profiler.as_dict()

        return PipelineResult(
            graph=graph,
            gcn_annotation=gcn_annotation,
            post1=post1,
            post2=post2,
            hierarchy=hierarchy,
            constraints=constraints,
            preprocess_report=report,
            timings=timings,
            diagnostics=diagnostics,
            degraded=degraded_reason is not None,
            degraded_reason=degraded_reason,
            profile=profile_dict,
        )

    # -- graceful degradation ---------------------------------------------

    def _fallback(self) -> TemplateRecognizer:
        if self.fallback_recognizer is None:
            self.fallback_recognizer = task_fallback_recognizer(
                self.class_names
            )
        return self.fallback_recognizer

    def _degraded_annotation(self, graph: CircuitGraph) -> Annotation:
        """Template-library classification shaped like a GCN annotation.

        Devices covered by a template match take its class; everything
        else gets the majority recognized class (or class 0); net
        vertices take the majority class of their adjacent elements.
        Probabilities are one-hot so the CCC vote still has weights.
        """
        recognized = self._fallback().recognize(graph)
        names = self.class_names
        name_to_id = {cls: i for i, cls in enumerate(names)}
        n = graph.n_vertices
        classes = np.full(n, -1, dtype=np.int64)
        for i, dev in enumerate(graph.elements):
            cls = recognized.get(dev.name)
            if cls in name_to_id:
                classes[i] = name_to_id[cls]
        assigned = classes[: graph.n_elements]
        covered = assigned[assigned >= 0]
        default = (
            int(np.bincount(covered).argmax()) if covered.size else 0
        )
        classes[:graph.n_elements][assigned < 0] = default
        votes: dict[int, Counter] = defaultdict(Counter)
        for edge in graph.edges:
            votes[edge.net][int(classes[edge.element])] += 1
        for j in range(len(graph.nets)):
            tally = votes.get(j)
            classes[graph.n_elements + j] = (
                tally.most_common(1)[0][0] if tally else default
            )
        probabilities = np.zeros((n, len(names)))
        probabilities[np.arange(n), classes] = 1.0
        return Annotation(
            graph=graph,
            class_names=names,
            vertex_classes=classes,
            probabilities=probabilities,
        )

    def run_many(
        self,
        netlists: list[str | Netlist | Circuit],
        names: list[str] | None = None,
        port_labels: dict[str, str] | list[dict[str, str] | None] | None = None,
        net_roles: dict[str, NetRole] | list[dict[str, NetRole] | None] | None = None,
        infer_testbench: bool = True,
        workers: int | None = None,
        chunksize: int | None = None,
        mode: str = "strict",
        on_error: str = "raise",
        timeout: float | None = None,
        pool_retries: int = 2,
        profile: bool = False,
    ) -> list[PipelineResult | FailureReport]:
        """Annotate a fleet of netlists, in parallel where possible.

        Each netlist goes through exactly the same :meth:`run` flow;
        results come back in input order and are identical to a serial
        ``[self.run(n) for n in netlists]`` (only wall-clock differs).
        ``port_labels``/``net_roles`` may be a single mapping applied to
        every netlist or a per-netlist list; ``names`` is an optional
        per-netlist system-name list.  ``workers`` follows
        :func:`repro.runtime.parallel.resolve_workers` (explicit >
        ``GANA_WORKERS`` > cpu count); one worker, one netlist, or an
        unusable pool all degrade to the serial loop.

        Fault isolation: with ``on_error="report"`` a failing item does
        not sink the batch — its slot holds a
        :class:`~repro.runtime.resilience.FailureReport` (failing stage,
        exception chain, diagnostics) instead of a
        :class:`PipelineResult`, still in input order; filter with
        ``r.ok``.  ``on_error="raise"`` (default) preserves the original
        fail-fast contract.  ``timeout`` is a per-item wall-clock
        ceiling in seconds (SIGALRM-based, see
        :func:`~repro.runtime.resilience.time_limit`); a deck that blows
        it becomes a ``BudgetExceeded`` failure for that item only.
        ``mode`` and ``profile`` are forwarded to :meth:`run` (each
        result carries its own profile); ``pool_retries`` bounds
        retry-with-backoff when the worker pool itself dies a transient
        death (see :func:`repro.runtime.parallel.parallel_map`).

        The trained pipeline ships to each worker once (pool
        initializer), not once per netlist, so per-item IPC stays
        proportional to the netlist text + result.
        """
        if on_error not in ("raise", "report"):
            raise ValueError(
                f"on_error must be 'raise' or 'report', got {on_error!r}"
            )
        from repro.runtime.parallel import parallel_map, resolve_workers

        def per_item(value, index):
            if isinstance(value, (list, tuple)):
                return value[index]
            return value

        jobs = [
            {
                "index": i,
                "isolate": on_error == "report",
                "timeout": timeout,
                "kwargs": {
                    "netlist": netlist,
                    "net_roles": per_item(net_roles, i),
                    "port_labels": per_item(port_labels, i),
                    "name": names[i] if names else "",
                    "infer_testbench": infer_testbench,
                    "mode": mode,
                    "profile": profile,
                },
            }
            for i, netlist in enumerate(netlists)
        ]
        if resolve_workers(workers) <= 1 or len(jobs) <= 1:
            return [_run_pipeline_job(self, job) for job in jobs]
        return parallel_map(
            _pipeline_worker_run,
            jobs,
            workers=workers,
            chunksize=chunksize,
            initializer=_pipeline_worker_init,
            initargs=(self,),
            pool_retries=pool_retries,
        )


def _run_pipeline_job(
    pipeline: GanaPipeline, job: dict
) -> PipelineResult | FailureReport:
    """One batch item: run under the item's time ceiling, and — in
    isolation mode — convert any escape into a :class:`FailureReport`
    so the batch (and, across processes, the pool protocol) survives.
    """
    kwargs = job["kwargs"]
    label = kwargs["name"] or f"item {job['index']}"
    try:
        with time_limit(job["timeout"], what=f"pipeline run for {label}"):
            return pipeline.run(**kwargs)
    except Exception as exc:
        if not job["isolate"]:
            raise
        return failure_report(exc, index=job["index"], name=kwargs["name"])


#: Per-process pipeline installed by the ``run_many`` pool initializer,
#: so the (potentially large) trained model is pickled once per worker
#: instead of once per netlist.
_WORKER_PIPELINE: GanaPipeline | None = None


def _pipeline_worker_init(pipeline: GanaPipeline) -> None:
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = pipeline


def _pipeline_worker_run(job: dict) -> PipelineResult | FailureReport:
    assert _WORKER_PIPELINE is not None, "worker initializer did not run"
    return _run_pipeline_job(_WORKER_PIPELINE, job)
