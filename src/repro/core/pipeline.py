"""The end-to-end GANA flow (Sec. II-B).

    SPICE text
      → parse → flatten → preprocess            (repro.spice)
      → bipartite graph + features              (repro.graph)
      → GCN sub-block annotation                (repro.gcn / annotator)
      → Postprocessing I (CCC vote, primitives, stand-alones, BPF)
      → Postprocessing II (port rules)          (postprocess)
      → hierarchy tree + propagated constraints (hierarchy, constraints)

Every stage's wall-clock time is recorded in
:attr:`PipelineResult.timings` — the quantity Sec. V-B reports for the
switched-capacitor filter (135 s) and phased array (514 s).

Resilience (see :mod:`repro.runtime.resilience`):

* ``run(..., mode="lenient")`` parses/elaborates leniently and carries
  the collected diagnostics on :attr:`PipelineResult.diagnostics`;
* when GCN inference errors — or every vertex lands below
  ``confidence_floor`` — ``run`` falls back to the template-library
  classifier (the prior art of refs [2]/[3]) and marks the result
  ``degraded=True`` so callers can tell;
* ``run_many(..., on_error="report")`` isolates per-deck faults: each
  item yields either a :class:`PipelineResult` or a structured
  :class:`~repro.runtime.resilience.FailureReport` (stage, exception
  chain, diagnostics), in input order, with per-item wall-clock
  ``timeout`` ceilings and bounded retry-with-backoff for transient
  worker-pool failures.

Staged architecture (see :mod:`repro.core.stages`): :meth:`run` is a
thin façade over a :class:`~repro.core.stages.StagedRunner` executing
the seven concrete stages defined here (:class:`ParseStage` …
:class:`HierarchyStage`).  :meth:`GanaPipeline.run_staged` exposes the
full surface — per-stage artifact caching and incremental recompute
(``artifact_cache``), early stop (``stop_after``), resume from saved
artifacts (``resume_from``), artifact export (``save_artifacts``).
The pre-refactor single-function implementation is kept verbatim as
:meth:`GanaPipeline._run_monolith`, the behavioral reference the
golden tests compare against.
"""

from __future__ import annotations

import logging
import time
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.baselines.template import TemplateRecognizer, task_fallback_recognizer
from repro.core.annotator import Annotation, GcnAnnotator
from repro.core.constraints import (
    ConstraintSet,
    propagate,
    subblock_constraints,
)
from repro.core.hierarchy import HierarchyNode, NodeKind
from repro.core.postprocess import (
    PostprocessResult,
    apply_port_rules,
    postprocess_ccc,
)
from repro.core.stages import (
    AnnotatedDesign,
    Artifact,
    FeaturedGraph,
    FlatDesign,
    GcnPrediction,
    ParsedDeck,
    Post1Result,
    Post2Result,
    PrimitiveMatchCache,
    RunContext,
    StagedRun,
    StagedRunner,
    StageName,
    annotator_fingerprint,
    content_fingerprint,
    load_artifacts,
    reset_power_net_memo,
)
from repro.graph.bipartite import CircuitGraph
from repro.graph.features import NetRole
from repro.primitives.library import (
    PrimitiveLibrary,
    extended_library,
    library_fingerprint,
)
from repro.runtime.cache import ArtifactCache
from repro.runtime.resilience import (
    Diagnostic,
    FailureReport,
    failure_report,
    stage,
    time_limit,
    worker_crash_report,
)
from repro.spice.flatten import SEP, flatten, flatten_hierarchical
from repro.spice.netlist import Circuit, Netlist, is_power_net
from repro.spice.parser import parse_netlist
from repro.spice.preprocess import PreprocessReport, preprocess

_LOG = logging.getLogger(__name__)


@dataclass
class PipelineResult:
    """Everything the flow produces for one input netlist."""

    graph: CircuitGraph
    gcn_annotation: Annotation
    post1: PostprocessResult
    post2: PostprocessResult
    hierarchy: HierarchyNode
    constraints: ConstraintSet
    preprocess_report: PreprocessReport
    timings: dict[str, float] = field(default_factory=dict)
    #: Structured profile (stages / per_template / counters) when the
    #: run was invoked with ``profile=True``; plain dict so it pickles
    #: across the ``run_many`` pool and JSON-serializes unchanged.
    profile: dict | None = None
    #: Lenient-mode parse/elaboration problems for this input.
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: True when GCN inference failed (or fell below the confidence
    #: floor) and the annotation came from the template-library
    #: fallback instead.
    degraded: bool = False
    degraded_reason: str | None = None
    #: Hierarchy-scoped annotation report (``--hier`` runs only):
    #: definition/instance statistics, reuse counts, and advisory
    #: per-definition GCN summaries.  Advisory — the annotation itself
    #: is byte-identical to the flat path.
    hier: "HierReport | None" = None

    @property
    def ok(self) -> bool:
        """Mirror of :attr:`FailureReport.ok` for uniform batch filtering."""
        return True

    @property
    def annotation(self) -> Annotation:
        """The final (post-II) annotation."""
        return self.post2.annotation

    def accuracies(self, truth: dict[str, str]) -> dict[str, float]:
        """GCN / post-I / post-II accuracy against ground truth —
        the three columns of Table II's narrative."""
        return {
            "gcn": self.gcn_annotation.accuracy(truth),
            "post1": self.post1.annotation.accuracy(truth),
            "post2": self.post2.annotation.accuracy(truth),
        }


def build_hierarchy(
    result: PostprocessResult,
    system_name: str,
    instances: "tuple | None" = None,
) -> tuple[HierarchyNode, ConstraintSet]:
    """Assemble the hierarchy tree from a postprocessed annotation.

    Sub-block instances are connected groups of same-class CCCs
    (connected through shared non-power nets); each carries its
    class-implied constraints plus the constraints of the primitives
    inside it, with symmetry axes merged per sub-block (Sec. IV-B).
    Stand-alone primitives hang off the system root.

    ``instances`` (a :class:`~repro.spice.flatten.DesignTree` instance
    table) switches sub-block *placement* to true subckt nesting: each
    recognized block hangs under the chain of instance-path nodes that
    own its devices instead of directly under the root, so the tree
    mirrors the designer's hierarchy (``--hier-tree``).  Grouping,
    naming, and constraints are unchanged — only where blocks attach.
    """
    annotation = result.annotation
    graph = annotation.graph
    partition = result.partition

    instance_index: dict[str, object] = {}
    block_classes: dict[str, str] = {}
    if instances:
        for rec in instances:
            instance_index[rec.path] = rec
            block_classes[rec.path] = rec.definition

    def owner_path(devices: "set[str]") -> tuple[str, ...]:
        """Deepest recorded instance path prefixing every device."""
        if not instance_index or not devices:
            return ()
        parts = next(iter(devices)).split(SEP)[:-1]
        for depth in range(len(parts), 0, -1):
            path = SEP.join(parts[:depth])
            if path not in instance_index:
                continue
            prefix = path + SEP
            if all(name.startswith(prefix) for name in devices):
                return tuple(parts[:depth])
        return ()

    root = HierarchyNode(name=system_name, kind=NodeKind.SYSTEM)
    all_constraints = ConstraintSet()

    standalone_cids = {cid for cid, _match in result.standalone}

    # Group CCCs: same class + net connectivity => one sub-block instance.
    # Power rails never group, and neither do distribution nets (nets
    # touching more than two components, e.g. a bias rail shared by
    # every channel's LNA): only point-to-point signal connections
    # define an instance.
    ccc_neighbors: dict[int, set[int]] = defaultdict(set)
    for net_local, cids in partition.of_net.items():
        if is_power_net(graph.nets[net_local]) or len(cids) > 2:
            continue
        for a in cids:
            for b in cids:
                if a != b:
                    ccc_neighbors[a].add(b)

    visited: set[int] = set()
    instance_counter: dict[str, int] = defaultdict(int)
    for cid in range(partition.n_components):
        if cid in visited or cid in standalone_cids:
            continue
        cls_id = result.ccc_classes.get(cid, -1)
        cls_name = annotation.class_name(cls_id)
        group = [cid]
        visited.add(cid)
        queue = [cid]
        while queue:
            current = queue.pop()
            for other in ccc_neighbors[current]:
                if (
                    other not in visited
                    and other not in standalone_cids
                    and result.ccc_classes.get(other, -1) == cls_id
                ):
                    visited.add(other)
                    group.append(other)
                    queue.append(other)

        index = instance_counter[cls_name]
        instance_counter[cls_name] += 1
        block_name = f"{cls_name}{index}"
        block = HierarchyNode(
            name=block_name, kind=NodeKind.SUBBLOCK, block_class=cls_name
        )
        block.constraints.extend(subblock_constraints(cls_name, block_name))

        block_constraints = ConstraintSet()
        group_devices: set[str] = set()
        for member_cid in group:
            member_devices = {
                graph.elements[i].name for i in partition.components[member_cid]
            }
            group_devices |= member_devices
            claimed: set[str] = set()
            for match in result.ccc_matches.get(member_cid, []):
                primitive = HierarchyNode(
                    name=f"{block_name}/{match.primitive}@{min(match.elements)}",
                    kind=NodeKind.PRIMITIVE,
                    block_class=match.primitive,
                    devices=tuple(sorted(match.elements)),
                    constraints=list(match.constraints),
                )
                block.add(primitive)
                claimed |= match.elements
                block_constraints.extend(list(match.constraints))
            for name in sorted(member_devices - claimed):
                block.add(
                    HierarchyNode(
                        name=name, kind=NodeKind.ELEMENT, devices=(name,)
                    )
                )
        # Merge symmetry axes within the sub-block (common axis).
        merged = propagate(block_constraints)
        block.constraints.extend(
            c for c in merged if c not in block.constraints
        )
        parent = (
            root.ensure_path(owner_path(group_devices), block_classes)
            if instance_index
            else root
        )
        parent.add(block)
        all_constraints.extend(block.constraints)
        for child in block.children:
            all_constraints.extend(child.constraints)

    # Stand-alone primitives get their own top-level hierarchy (or,
    # in instance-table mode, hang under their owning instance).
    for cid, match in result.standalone:
        node = HierarchyNode(
            name=f"standalone/{match.primitive}@{min(match.elements)}",
            kind=NodeKind.PRIMITIVE,
            block_class=match.primitive,
            devices=tuple(sorted(match.elements)),
            constraints=list(match.constraints),
        )
        parent = (
            root.ensure_path(owner_path(set(match.elements)), block_classes)
            if instance_index
            else root
        )
        parent.add(node)
        all_constraints.extend(node.constraints)

    return root, all_constraints


@dataclass
class GanaPipeline:
    """User-facing entry point: a trained annotator plus the library.

    ``degrade`` controls graceful degradation: when GCN inference
    raises, or every vertex's top softmax lands below
    ``confidence_floor`` (0.0 disables the floor), annotation falls
    back to the template-library classifier and the result is marked
    ``degraded=True``.  Set ``degrade=False`` to let inference errors
    propagate instead.
    """

    annotator: GcnAnnotator
    library: PrimitiveLibrary = field(default_factory=extended_library)
    detect_bpf: bool = True
    degrade: bool = True
    confidence_floor: float = 0.0
    #: Lazily built (and then cached) template recognizer used as the
    #: degradation fallback; inject one to control its topology library.
    fallback_recognizer: TemplateRecognizer | None = None

    @property
    def class_names(self) -> tuple[str, ...]:
        return self.annotator.class_names

    @classmethod
    def pretrained(
        cls,
        task: str = "ota",
        quick: bool = True,
        seed: int = 0,
        cache: bool | None = None,
        **kwargs,
    ) -> "GanaPipeline":
        """Train (or load from cache) a recognition model.

        ``task`` is ``"ota"`` (classes: ota/bias) or ``"rf"`` (classes:
        lna/mixer/osc).  ``quick=True`` trains on a reduced dataset for
        interactive use; ``quick=False`` reproduces the paper-scale
        training run.  Extra keyword arguments (e.g. ``train_size``)
        pass through to
        :func:`repro.datasets.synth.pretrain_annotator`.  No weights
        ship with the package — datasets are generated on the fly, so
        "pretrained" means "trained now, deterministically" — but the
        runtime model cache (``~/.cache/gana`` / ``GANA_CACHE_DIR``)
        makes every call after the first a millisecond load; pass
        ``cache=False`` (or set ``GANA_NO_CACHE=1``) to force
        retraining.
        """
        from repro.datasets.synth import pretrain_annotator

        annotator = pretrain_annotator(
            task, quick=quick, seed=seed, cache=cache, **kwargs
        )
        return cls(annotator=annotator)

    def run(
        self,
        netlist: str | Netlist | Circuit,
        net_roles: dict[str, NetRole] | None = None,
        port_labels: dict[str, str] | None = None,
        name: str = "",
        infer_testbench: bool = True,
        mode: str = "strict",
        profile: bool = False,
        artifact_cache: ArtifactCache | str | Path | None = None,
        save_artifacts: str | Path | None = None,
        hier: bool = False,
        hier_tree: bool = False,
    ) -> PipelineResult:
        """Execute the full flow on a SPICE deck / netlist / flat circuit.

        ``profile=True`` attaches a structured profile to
        :attr:`PipelineResult.profile`: per-stage wall-clock (the same
        numbers as ``timings``) plus per-primitive-template matching
        statistics from Postprocessing I (launches, matches, seconds,
        kind-histogram skips) — see :mod:`repro.runtime.profile`.

        When the deck still contains its testbench sources and
        ``infer_testbench`` is on, antenna/oscillating port labels and
        bias net roles are inferred from them (Sec. V-A footnote 2);
        explicit ``port_labels``/``net_roles`` entries always win.

        ``mode="lenient"`` parses and elaborates with error recovery:
        malformed cards and broken instances are skipped, and the
        collected :class:`~repro.runtime.resilience.Diagnostic` records
        land on :attr:`PipelineResult.diagnostics`.  Escaping
        exceptions are tagged with the stage they came from (``parse``,
        ``preprocess``, ``graph``, ``gcn``, ``post1``, ``post2``,
        ``hierarchy``) for :func:`~repro.runtime.resilience.failure_report`.

        ``artifact_cache`` (an
        :class:`~repro.runtime.cache.ArtifactCache` or a directory
        path) turns on per-stage incremental recompute: stages whose
        derivation fingerprint is unchanged load from the cache instead
        of re-running — e.g. re-annotating with a different primitive
        library reuses the parse/preprocess/graph/GCN artifacts and
        recomputes only Postprocessing I onwards.  ``save_artifacts``
        writes every stage's artifact under the given directory (for
        later ``run_staged(resume_from=...)``).  Both default to off;
        the default call is byte-identical to the legacy monolith.
        """
        profiler = None
        if profile:
            from repro.runtime.profile import PipelineProfiler

            profiler = PipelineProfiler()
        staged = self.run_staged(
            netlist,
            net_roles=net_roles,
            port_labels=port_labels,
            name=name,
            infer_testbench=infer_testbench,
            mode=mode,
            profiler=profiler,
            artifact_cache=artifact_cache,
            save_artifacts=save_artifacts,
            hier=hier,
            hier_tree=hier_tree,
        )
        return self.result_from_staged(staged, profiler=profiler)

    def run_staged(
        self,
        netlist: str | Netlist | Circuit | None = None,
        net_roles: dict[str, NetRole] | None = None,
        port_labels: dict[str, str] | None = None,
        name: str = "",
        infer_testbench: bool = True,
        mode: str = "strict",
        profiler=None,
        artifact_cache: ArtifactCache | str | Path | None = None,
        save_artifacts: str | Path | None = None,
        resume_from=None,
        stop_after: StageName | str | None = None,
        gcn_annotation: Annotation | None = None,
        hier: bool = False,
        hier_tree: bool = False,
    ) -> StagedRun:
        """Run the stage chain with full staged-execution control.

        Returns the :class:`~repro.core.stages.StagedRun` (artifacts,
        per-stage seconds, cache hits) instead of a
        :class:`PipelineResult`; feed a complete run through
        :meth:`result_from_staged` to get the classic result object.

        ``stop_after`` halts the chain after the named stage
        (:class:`~repro.core.stages.StageName` or its string value).
        ``resume_from`` seeds artifacts — an
        :class:`~repro.core.stages.Artifact`, a saved artifact file, a
        directory of them, or an iterable of any of those; the chain
        restarts after the furthest seeded stage, so ``netlist`` may be
        omitted when resuming.  ``artifact_cache`` / ``save_artifacts``
        as in :meth:`run`.

        ``gcn_annotation`` hands the gcn stage a precomputed
        :class:`~repro.core.annotator.Annotation` (from a packed
        :meth:`GcnAnnotator.annotate_batch` pass) to adopt instead of
        calling the annotator; degrade/confidence-floor semantics still
        apply to it.

        ``hier`` turns on hierarchy-scoped annotation: flattening also
        emits a :class:`~repro.spice.flatten.DesignTree`, and
        Postprocessing I dedupes VF2 matching across repeated subckt
        instances (byte-identical results; see
        :mod:`repro.core.hier_annotate`).  ``hier_tree`` (implies
        ``hier``) additionally builds the hierarchy tree from the
        instance table, nesting recognized blocks under their true
        subckt instances — a deliberate output-shape deviation from
        the flat path.
        """
        hier = hier or hier_tree
        cache = artifact_cache
        if cache is not None and not isinstance(cache, ArtifactCache):
            cache = ArtifactCache(cache)
        resume: list[Artifact] = []
        if resume_from is not None:
            candidates = (
                [resume_from]
                if isinstance(resume_from, (str, Path, Artifact))
                else list(resume_from)
            )
            for item in candidates:
                if isinstance(item, Artifact):
                    resume.append(item)
                else:
                    resume.extend(load_artifacts(item))
        ctx = RunContext(
            pipeline=self,
            netlist=netlist,
            net_roles=net_roles,
            port_labels=port_labels,
            name=name,
            infer_testbench=infer_testbench,
            mode=mode,
            profiler=profiler,
            cache=cache,
            save_dir=Path(save_artifacts) if save_artifacts else None,
            gcn_annotation=gcn_annotation,
            hier=hier,
            hier_tree=hier_tree,
        )
        runner = StagedRunner(default_stages())
        return runner.execute(ctx, resume=resume, stop_after=stop_after)

    def result_from_staged(
        self, staged: StagedRun, profiler=None
    ) -> PipelineResult:
        """Assemble the classic :class:`PipelineResult` from a complete
        staged run (raises if the run stopped before ``hierarchy``)."""
        final = staged.final
        timings = staged.timings()
        profile_dict = None
        if profiler is not None:
            for stage_name, seconds in timings.items():
                profiler.record_stage(stage_name, seconds)
            profile_dict = profiler.as_dict()
        return PipelineResult(
            graph=final.gcn_annotation.graph,
            gcn_annotation=final.gcn_annotation,
            post1=final.post1,
            post2=final.post2,
            hierarchy=final.hierarchy,
            constraints=final.constraints,
            preprocess_report=final.report,
            timings=timings,
            diagnostics=list(staged.diagnostics),
            degraded=final.degraded,
            degraded_reason=final.degraded_reason,
            profile=profile_dict,
            hier=getattr(final, "hier", None),
        )

    def _run_monolith(
        self,
        netlist: str | Netlist | Circuit,
        net_roles: dict[str, NetRole] | None = None,
        port_labels: dict[str, str] | None = None,
        name: str = "",
        infer_testbench: bool = True,
        mode: str = "strict",
        profile: bool = False,
    ) -> PipelineResult:
        """The pre-staged single-function implementation, kept verbatim.

        This is the behavioral reference for the staged runner: the
        golden tests assert :meth:`run` produces a semantically
        identical :class:`PipelineResult` on every example netlist.  Do
        not add features here — it exists to be compared against.
        """
        reset_power_net_memo()
        timings: dict[str, float] = {}
        diagnostics: list[Diagnostic] = []
        lenient = mode == "lenient"
        profiler = None
        if profile:
            from repro.runtime.profile import PipelineProfiler

            profiler = PipelineProfiler()

        with stage("preprocess", timings, diagnostics):
            with stage("parse", diagnostics=diagnostics):
                if isinstance(netlist, str):
                    netlist = parse_netlist(netlist, mode=mode)
                if isinstance(netlist, Netlist):
                    diagnostics.extend(netlist.diagnostics)
                    flat = flatten(
                        netlist, diagnostics=diagnostics if lenient else None
                    )
                else:
                    flat = netlist
            if infer_testbench and any(d.kind.is_source for d in flat.devices):
                from repro.core.testbench import (
                    infer_net_roles,
                    infer_port_labels,
                )

                inferred_labels = infer_port_labels(flat)
                inferred_labels.update(port_labels or {})
                port_labels = inferred_labels
                inferred_roles = infer_net_roles(flat)
                inferred_roles.update(net_roles or {})
                net_roles = inferred_roles
            reduced, report = preprocess(flat)

        with stage("graph", timings, diagnostics):
            graph = CircuitGraph.from_circuit(reduced)

        degraded_reason: str | None = None
        with stage("gcn", timings, diagnostics):
            try:
                gcn_annotation = self.annotator.annotate(
                    graph, net_roles=net_roles
                )
            except Exception as exc:
                if not self.degrade:
                    raise
                degraded_reason = (
                    f"GCN inference failed "
                    f"({type(exc).__name__}: {exc}); fell back to the "
                    f"template-library classifier"
                )
            else:
                if (
                    self.degrade
                    and self.confidence_floor > 0.0
                    and gcn_annotation.probabilities is not None
                    and graph.n_vertices > 0
                ):
                    top = gcn_annotation.probabilities.max(axis=1)
                    if float(top.max()) < self.confidence_floor:
                        degraded_reason = (
                            f"every vertex confidence below the "
                            f"{self.confidence_floor:g} floor; fell back "
                            f"to the template-library classifier"
                        )
            if degraded_reason is not None:
                gcn_annotation = self._degraded_annotation(graph)

        with stage("post1", timings, diagnostics):
            post1 = postprocess_ccc(
                gcn_annotation,
                self.library,
                detect_bpf=self.detect_bpf,
                profiler=profiler,
            )

        with stage("post2", timings, diagnostics):
            post2 = apply_port_rules(post1, port_labels or {})

        with stage("hierarchy", timings, diagnostics):
            hierarchy, constraints = build_hierarchy(
                post2, system_name=name or flat.name
            )

        profile_dict = None
        if profiler is not None:
            for stage_name, seconds in timings.items():
                profiler.record_stage(stage_name, seconds)
            profile_dict = profiler.as_dict()

        return PipelineResult(
            graph=graph,
            gcn_annotation=gcn_annotation,
            post1=post1,
            post2=post2,
            hierarchy=hierarchy,
            constraints=constraints,
            preprocess_report=report,
            timings=timings,
            diagnostics=diagnostics,
            degraded=degraded_reason is not None,
            degraded_reason=degraded_reason,
            profile=profile_dict,
        )

    # -- graceful degradation ---------------------------------------------

    def _fallback(self) -> TemplateRecognizer:
        if self.fallback_recognizer is None:
            self.fallback_recognizer = task_fallback_recognizer(
                self.class_names
            )
        return self.fallback_recognizer

    def _degraded_annotation(self, graph: CircuitGraph) -> Annotation:
        """Template-library classification shaped like a GCN annotation.

        Devices covered by a template match take its class; everything
        else gets the majority recognized class (or class 0); net
        vertices take the majority class of their adjacent elements.
        Probabilities are one-hot so the CCC vote still has weights.
        """
        recognized = self._fallback().recognize(graph)
        names = self.class_names
        name_to_id = {cls: i for i, cls in enumerate(names)}
        n = graph.n_vertices
        classes = np.full(n, -1, dtype=np.int64)
        for i, dev in enumerate(graph.elements):
            cls = recognized.get(dev.name)
            if cls in name_to_id:
                classes[i] = name_to_id[cls]
        assigned = classes[: graph.n_elements]
        covered = assigned[assigned >= 0]
        default = (
            int(np.bincount(covered).argmax()) if covered.size else 0
        )
        classes[:graph.n_elements][assigned < 0] = default
        votes: dict[int, Counter] = defaultdict(Counter)
        for edge in graph.edges:
            votes[edge.net][int(classes[edge.element])] += 1
        for j in range(len(graph.nets)):
            tally = votes.get(j)
            classes[graph.n_elements + j] = (
                tally.most_common(1)[0][0] if tally else default
            )
        probabilities = np.zeros((n, len(names)))
        probabilities[np.arange(n), classes] = 1.0
        return Annotation(
            graph=graph,
            class_names=names,
            vertex_classes=classes,
            probabilities=probabilities,
        )

    def run_many(
        self,
        netlists: list[str | Netlist | Circuit],
        names: list[str] | None = None,
        port_labels: dict[str, str] | list[dict[str, str] | None] | None = None,
        net_roles: dict[str, NetRole] | list[dict[str, NetRole] | None] | None = None,
        infer_testbench: bool = True,
        workers: int | None = None,
        chunksize: int | None = None,
        mode: str = "strict",
        on_error: str = "raise",
        timeout: float | None = None,
        pool_retries: int = 2,
        profile: bool = False,
        artifact_cache: ArtifactCache | str | Path | None = None,
        hier: bool = False,
    ) -> list[PipelineResult | FailureReport]:
        """Annotate a fleet of netlists, in parallel where possible.

        Each netlist goes through exactly the same :meth:`run` flow;
        results come back in input order and are identical to a serial
        ``[self.run(n) for n in netlists]`` (only wall-clock differs).
        ``port_labels``/``net_roles`` may be a single mapping applied to
        every netlist or a per-netlist list; ``names`` is an optional
        per-netlist system-name list.  ``workers`` follows
        :func:`repro.runtime.parallel.resolve_workers` (explicit >
        ``GANA_WORKERS`` > cpu count); one worker, one netlist, or an
        unusable pool all degrade to the serial loop.

        Fault isolation: with ``on_error="report"`` a failing item does
        not sink the batch — its slot holds a
        :class:`~repro.runtime.resilience.FailureReport` (failing stage,
        exception chain, diagnostics) instead of a
        :class:`PipelineResult`, still in input order; filter with
        ``r.ok``.  ``on_error="raise"`` (default) preserves the original
        fail-fast contract.  ``timeout`` is a per-item wall-clock
        ceiling in seconds (SIGALRM-based, see
        :func:`~repro.runtime.resilience.time_limit`); a deck that blows
        it becomes a ``BudgetExceeded`` failure for that item only.
        ``mode`` and ``profile`` are forwarded to :meth:`run` (each
        result carries its own profile); ``pool_retries`` bounds
        retry-with-backoff when the worker pool itself dies a transient
        death (see :func:`repro.runtime.parallel.parallel_map`).

        The trained pipeline ships to each worker once (pool
        initializer), not once per netlist, so per-item IPC stays
        proportional to the netlist text + result.  Pools themselves
        are kept warm between ``run_many`` calls: the initializer state
        is fingerprinted (annotator weights, library, degrade knobs),
        so a repeat call with an equivalent pipeline reuses the
        already-initialized workers instead of re-forking and
        re-pickling the model (see
        :func:`repro.runtime.parallel.shutdown_pools`).

        Batched GCN inference: when the annotator supports
        :meth:`~repro.core.annotator.GcnAnnotator.annotate_batch` (and
        no ``timeout``/``artifact_cache`` complicates the split), each
        worker receives a contiguous *chunk* of netlists, runs every
        deck up to the graph stage, classifies all of the chunk's
        graphs in one block-diagonal packed forward, then finishes each
        deck from the precomputed annotation.  Results are unchanged
        (class predictions are identical; softmax probabilities agree
        to fp64 rounding — see ``repro/gcn/batch.py``); the packed GCN
        seconds are attributed to each item proportional to its vertex
        count.  Any packed failure falls back to the ordinary per-item
        flow for that chunk.

        ``artifact_cache`` (an
        :class:`~repro.runtime.cache.ArtifactCache` or directory path)
        is forwarded to every item's :meth:`run`: the cache object is
        just a directory handle, so it pickles to pool workers and the
        whole fleet shares one on-disk artifact store.  (Cache-backed
        fleets use the per-item flow, so batched inference never
        bypasses or pollutes the content-addressed store.)
        """
        if on_error not in ("raise", "report"):
            raise ValueError(
                f"on_error must be 'raise' or 'report', got {on_error!r}"
            )
        from repro.runtime.parallel import parallel_map, resolve_workers

        def per_item(value, index):
            if isinstance(value, (list, tuple)):
                return value[index]
            return value

        jobs = [
            {
                "index": i,
                "isolate": on_error == "report",
                "timeout": timeout,
                "kwargs": {
                    "netlist": netlist,
                    "net_roles": per_item(net_roles, i),
                    "port_labels": per_item(port_labels, i),
                    "name": names[i] if names else "",
                    "infer_testbench": infer_testbench,
                    "mode": mode,
                    "profile": profile,
                    "artifact_cache": artifact_cache,
                    "hier": hier,
                },
            }
            for i, netlist in enumerate(netlists)
        ]
        if resolve_workers(workers) <= 1 or len(jobs) <= 1:
            return [_run_pipeline_job(self, job) for job in jobs]
        batched = (
            timeout is None
            and artifact_cache is None
            and callable(getattr(self.annotator, "annotate_batch", None))
        )
        # Pool supervision (on_error="report" only): a worker killed
        # outright (segfault, OOM kill, os._exit) breaks the whole
        # executor, so parallel_map bisects the batch to quarantine the
        # poison deck — its slot becomes a stage="worker" FailureReport
        # while every sibling deck still completes.  With
        # on_error="raise" the historical contract stands: blind
        # retry, then the serial fallback re-raises.
        def job_crash(job, exc):
            return worker_crash_report(
                exc, index=job["index"], name=job["kwargs"]["name"]
            )

        supervise = on_error == "report"
        if not batched:
            return parallel_map(
                _pipeline_worker_run,
                jobs,
                workers=workers,
                chunksize=chunksize,
                initializer=_pipeline_worker_init,
                initargs=(self,),
                pool_retries=pool_retries,
                pool_key=self._pool_key(),
                on_crash=job_crash if supervise else None,
            )
        # Contiguous chunks, one per worker, so every worker gets one
        # packed GCN forward for its whole share of the fleet.
        n_workers = min(resolve_workers(workers), len(jobs))
        bounds = [len(jobs) * k // n_workers for k in range(n_workers + 1)]
        chunks = [jobs[lo:hi] for lo, hi in zip(bounds, bounds[1:]) if hi > lo]

        def chunk_crash(chunk, exc):
            # The crash is somewhere in this chunk.  Re-dispatch its
            # jobs individually (plain per-item flow, no packed GCN)
            # so only the poison deck degrades to a FailureReport.
            if len(chunk) == 1:
                return [job_crash(chunk[0], exc)]
            return parallel_map(
                _pipeline_worker_run,
                chunk,
                workers=min(n_workers, len(chunk)),
                chunksize=1,
                initializer=_pipeline_worker_init,
                initargs=(self,),
                pool_retries=0,
                pool_key=self._pool_key(),
                on_crash=job_crash,
            )

        nested = parallel_map(
            _pipeline_worker_run_chunk,
            chunks,
            workers=workers,
            chunksize=1,
            initializer=_pipeline_worker_init,
            initargs=(self,),
            pool_retries=pool_retries,
            pool_key=self._pool_key(),
            on_crash=chunk_crash if supervise else None,
        )
        return [result for chunk in nested for result in chunk]

    def _pool_key(self) -> str | None:
        """Content fingerprint of the state ``_pipeline_worker_init``
        installs, so :func:`~repro.runtime.parallel.parallel_map` can
        hand an equivalent pipeline the already-warm worker pool.
        ``None`` (no reuse) when any component lacks a stable
        fingerprint (injected fallbacks, stub annotators in tests).
        """
        if self.fallback_recognizer is not None:
            return None
        try:
            return content_fingerprint(
                "pipeline-pool",
                annotator_fingerprint(self.annotator),
                library_fingerprint(self.library),
                self.detect_bpf,
                self.degrade,
                self.confidence_floor,
            )
        except Exception:
            return None


# ---------------------------------------------------------------------------
# Concrete stages (the Stage[I, O] implementations run() executes)
# ---------------------------------------------------------------------------


class ParseStage:
    """``parse``: SPICE text (or a pre-parsed object) → :class:`ParsedDeck`."""

    name = StageName.PARSE

    def cache_key(self, upstream_fp: str | None, ctx: RunContext) -> str:
        source = ctx.netlist
        if isinstance(source, str):
            root = content_fingerprint("spice-text", source)
        else:
            # Netlist/Circuit are plain dataclasses whose reprs cover
            # every field deterministically; hashing the repr is ~5x
            # cheaper than the generic structural walk, and this key is
            # recomputed on every warm run.
            root = content_fingerprint("netlist-object", repr(source))
        return content_fingerprint("stage", self.name.value, root, ctx.mode)

    def run(self, upstream: None, ctx: RunContext) -> ParsedDeck:
        source = ctx.netlist
        if source is None:
            raise ValueError(
                "no input netlist and no artifact to resume from"
            )
        if isinstance(source, str):
            source = parse_netlist(source, mode=ctx.mode)
        if isinstance(source, Netlist):
            ctx.diagnostics.extend(source.diagnostics)
        return ParsedDeck(
            source=source,
            mode=ctx.mode,
            diagnostics=tuple(ctx.diagnostics),
        )


class PreprocessStage:
    """``preprocess``: flatten, infer testbench roles, reduce."""

    name = StageName.PREPROCESS

    def cache_key(self, upstream_fp: str | None, ctx: RunContext) -> str | None:
        if upstream_fp is None:
            return None
        return content_fingerprint(
            "stage",
            self.name.value,
            upstream_fp,
            ctx.infer_testbench,
            ctx.port_labels,
            ctx.net_roles,
            ctx.hier,
        )

    def run(self, upstream: ParsedDeck, ctx: RunContext) -> FlatDesign:
        source = upstream.source
        lenient = ctx.mode == "lenient"
        # Flatten failures keep their historical "parse" failure tag
        # (innermost stage guard wins).
        tree = None
        with stage(StageName.PARSE, diagnostics=ctx.diagnostics):
            if isinstance(source, Netlist):
                if ctx.hier:
                    flat, tree = flatten_hierarchical(
                        source,
                        diagnostics=ctx.diagnostics if lenient else None,
                    )
                else:
                    flat = flatten(
                        source,
                        diagnostics=ctx.diagnostics if lenient else None,
                    )
            else:
                flat = source
        port_labels = ctx.port_labels
        net_roles = ctx.net_roles
        if ctx.infer_testbench and any(
            d.kind.is_source for d in flat.devices
        ):
            from repro.core.testbench import (
                infer_net_roles,
                infer_port_labels,
            )

            inferred_labels = infer_port_labels(flat)
            inferred_labels.update(port_labels or {})
            port_labels = inferred_labels
            inferred_roles = infer_net_roles(flat)
            inferred_roles.update(net_roles or {})
            net_roles = inferred_roles
        reduced, report = preprocess(flat)
        return FlatDesign(
            flat=flat,
            reduced=reduced,
            report=report,
            design_name=flat.name,
            port_labels=port_labels,
            net_roles=net_roles,
            diagnostics=tuple(ctx.diagnostics),
            tree=tree,
        )


class GraphStage:
    """``graph``: reduced circuit → bipartite element/net graph."""

    name = StageName.GRAPH

    def cache_key(self, upstream_fp: str | None, ctx: RunContext) -> str | None:
        if upstream_fp is None:
            return None
        return content_fingerprint("stage", self.name.value, upstream_fp)

    def run(self, upstream: FlatDesign, ctx: RunContext) -> FeaturedGraph:
        graph = CircuitGraph.from_circuit(upstream.reduced)
        return FeaturedGraph(
            graph=graph,
            design_name=upstream.design_name,
            report=upstream.report,
            port_labels=upstream.port_labels,
            net_roles=upstream.net_roles,
            diagnostics=tuple(ctx.diagnostics),
            tree=getattr(upstream, "tree", None),
        )


class GcnStage:
    """``gcn``: GCN inference with graceful degradation."""

    name = StageName.GCN

    def cache_key(self, upstream_fp: str | None, ctx: RunContext) -> str | None:
        pipeline = ctx.pipeline
        if upstream_fp is None:
            return None
        if ctx.gcn_annotation is not None:
            # A precomputed annotation came from a packed forward whose
            # logits can differ from the per-sample path by fp64
            # rounding; keep it out of the content-addressed store.
            return None
        if pipeline.fallback_recognizer is not None and pipeline.degrade:
            # An injected fallback has no stable fingerprint; a cached
            # degraded annotation could silently outlive it.
            return None
        return content_fingerprint(
            "stage",
            self.name.value,
            upstream_fp,
            annotator_fingerprint(pipeline.annotator),
            pipeline.degrade,
            pipeline.confidence_floor,
        )

    def run(self, upstream: FeaturedGraph, ctx: RunContext) -> GcnPrediction:
        pipeline = ctx.pipeline
        graph = upstream.graph
        degraded_reason: str | None = None
        try:
            if ctx.gcn_annotation is not None:
                # Batched inference already classified this graph in a
                # packed multi-deck forward; adopt it and let the usual
                # confidence-floor/degrade checks below vet it.
                annotation = ctx.gcn_annotation
            else:
                annotation = pipeline.annotator.annotate(
                    graph, net_roles=upstream.net_roles
                )
        except Exception as exc:
            if not pipeline.degrade:
                raise
            degraded_reason = (
                f"GCN inference failed "
                f"({type(exc).__name__}: {exc}); fell back to the "
                f"template-library classifier"
            )
        else:
            if (
                pipeline.degrade
                and pipeline.confidence_floor > 0.0
                and annotation.probabilities is not None
                and graph.n_vertices > 0
            ):
                top = annotation.probabilities.max(axis=1)
                if float(top.max()) < pipeline.confidence_floor:
                    degraded_reason = (
                        f"every vertex confidence below the "
                        f"{pipeline.confidence_floor:g} floor; fell back "
                        f"to the template-library classifier"
                    )
        if degraded_reason is not None:
            annotation = pipeline._degraded_annotation(graph)
        return GcnPrediction(
            annotation=annotation,
            design_name=upstream.design_name,
            report=upstream.report,
            port_labels=upstream.port_labels,
            degraded=degraded_reason is not None,
            degraded_reason=degraded_reason,
            diagnostics=tuple(ctx.diagnostics),
            tree=getattr(upstream, "tree", None),
        )


class Post1Stage:
    """``post1``: CCC vote + primitive matching (match-cache aware)."""

    name = StageName.POST1

    def cache_key(self, upstream_fp: str | None, ctx: RunContext) -> str | None:
        if upstream_fp is None:
            return None
        return content_fingerprint(
            "stage",
            self.name.value,
            upstream_fp,
            library_fingerprint(ctx.pipeline.library),
            ctx.pipeline.detect_bpf,
            ctx.hier,
        )

    def run(self, upstream: GcnPrediction, ctx: RunContext) -> Post1Result:
        from repro.graph.ccc import CCCPartition

        pipeline = ctx.pipeline
        tree = getattr(upstream, "tree", None)
        hier_cache = None
        if ctx.hier and tree is not None and tree.instances:
            from repro.core.hier_annotate import HierMatchCache

            hier_cache = HierMatchCache(
                tree, artifact_cache=ctx.cache, profiler=ctx.profiler
            )
            match_cache = hier_cache
        else:
            match_cache = (
                PrimitiveMatchCache(ctx.cache)
                if ctx.cache is not None
                else None
            )
        # The CCC partition depends only on the graph/annotation, not on
        # the library — key it off the upstream (gcn) derivation key so
        # a library-only change reuses it across runs.
        partition = None
        partition_key = None
        if ctx.cache is not None:
            gcn_key = ctx.stage_keys.get(StageName.GCN)
            if gcn_key:
                partition_key = f"ccc-partition-{gcn_key}"
                cached = ctx.cache.load(partition_key)
                if isinstance(cached, CCCPartition):
                    partition = cached
        post1 = postprocess_ccc(
            upstream.annotation,
            pipeline.library,
            partition=partition,
            detect_bpf=pipeline.detect_bpf,
            profiler=ctx.profiler,
            match_cache=match_cache,
        )
        if partition is None and partition_key is not None:
            ctx.cache.store(partition_key, post1.partition)
        hier_report = None
        if hier_cache is not None:
            from repro.core.hier_annotate import annotate_definitions

            definition_annotations = ()
            try:
                # Advisory per-definition summaries (one packed GCN
                # forward over the unique bodies); never allowed to
                # fail the run — the byte-identical output path does
                # not consume them.
                definition_annotations = annotate_definitions(
                    tree, pipeline.annotator, cache=ctx.cache
                )
            except Exception:
                _LOG.warning(
                    "per-definition annotation failed; continuing "
                    "without definition summaries",
                    exc_info=True,
                )
            hier_report = hier_cache.finalize(
                definition_annotations=definition_annotations
            )
        return Post1Result(
            post1=post1,
            gcn_annotation=upstream.annotation,
            design_name=upstream.design_name,
            report=upstream.report,
            port_labels=upstream.port_labels,
            degraded=upstream.degraded,
            degraded_reason=upstream.degraded_reason,
            diagnostics=tuple(ctx.diagnostics),
            tree=tree,
            hier=hier_report,
        )


class Post2Stage:
    """``post2``: port rules."""

    name = StageName.POST2

    def cache_key(self, upstream_fp: str | None, ctx: RunContext) -> str | None:
        if upstream_fp is None:
            return None
        return content_fingerprint("stage", self.name.value, upstream_fp)

    def run(self, upstream: Post1Result, ctx: RunContext) -> Post2Result:
        post2 = apply_port_rules(upstream.post1, upstream.port_labels or {})
        return Post2Result(
            post2=post2,
            post1=upstream.post1,
            gcn_annotation=upstream.gcn_annotation,
            design_name=upstream.design_name,
            report=upstream.report,
            degraded=upstream.degraded,
            degraded_reason=upstream.degraded_reason,
            diagnostics=tuple(ctx.diagnostics),
            tree=getattr(upstream, "tree", None),
            hier=getattr(upstream, "hier", None),
        )


class HierarchyStage:
    """``hierarchy``: assemble the tree + propagated constraints."""

    name = StageName.HIERARCHY

    def cache_key(self, upstream_fp: str | None, ctx: RunContext) -> str | None:
        if upstream_fp is None:
            return None
        return content_fingerprint(
            "stage", self.name.value, upstream_fp, ctx.name, ctx.hier_tree
        )

    def run(self, upstream: Post2Result, ctx: RunContext) -> AnnotatedDesign:
        tree = getattr(upstream, "tree", None)
        instances = (
            tree.instances if ctx.hier_tree and tree is not None else None
        )
        hierarchy, constraints = build_hierarchy(
            upstream.post2,
            system_name=ctx.name or upstream.design_name,
            instances=instances,
        )
        return AnnotatedDesign(
            hierarchy=hierarchy,
            constraints=constraints,
            post2=upstream.post2,
            post1=upstream.post1,
            gcn_annotation=upstream.gcn_annotation,
            report=upstream.report,
            design_name=upstream.design_name,
            degraded=upstream.degraded,
            degraded_reason=upstream.degraded_reason,
            diagnostics=tuple(ctx.diagnostics),
            hier=getattr(upstream, "hier", None),
        )


def default_stages() -> tuple:
    """The canonical seven-stage chain :meth:`GanaPipeline.run` executes."""
    return (
        ParseStage(),
        PreprocessStage(),
        GraphStage(),
        GcnStage(),
        Post1Stage(),
        Post2Stage(),
        HierarchyStage(),
    )


def _run_pipeline_job(
    pipeline: GanaPipeline, job: dict
) -> PipelineResult | FailureReport:
    """One batch item: run under the item's time ceiling, and — in
    isolation mode — convert any escape into a :class:`FailureReport`
    so the batch (and, across processes, the pool protocol) survives.
    """
    kwargs = job["kwargs"]
    label = kwargs["name"] or f"item {job['index']}"
    try:
        with time_limit(job["timeout"], what=f"pipeline run for {label}"):
            return pipeline.run(**kwargs)
    except Exception as exc:
        if not job["isolate"]:
            raise
        return failure_report(exc, index=job["index"], name=kwargs["name"])


def _run_pipeline_chunk(
    pipeline: GanaPipeline, jobs: list[dict]
) -> list[PipelineResult | FailureReport]:
    """A worker's contiguous slice of a ``run_many`` fleet, classified
    with one packed GCN forward.

    Phase 1 runs every deck through the graph stage (with the usual
    per-item fault isolation); a single
    :meth:`~repro.core.annotator.GcnAnnotator.annotate_batch` call then
    classifies all surviving graphs block-diagonally; phase 2 resumes
    each deck from its graph artifact with the precomputed annotation
    injected into the gcn stage.  The packed pass's wall-clock is
    attributed to items proportional to their vertex counts, so
    per-item ``timings["gcn"]`` stays meaningful.  If the packed pass
    fails, the chunk's items fall back to ordinary per-item GCN
    inference — identical semantics, just without the speedup.
    """
    if len(jobs) < 2:
        return [_run_pipeline_job(pipeline, job) for job in jobs]

    from repro.runtime.profile import PipelineProfiler

    results: list[PipelineResult | FailureReport | None] = [None] * len(jobs)
    phase1: list[StagedRun | None] = [None] * len(jobs)
    profilers: list[PipelineProfiler | None] = [None] * len(jobs)
    for k, job in enumerate(jobs):
        kwargs = job["kwargs"]
        if kwargs["profile"]:
            profilers[k] = PipelineProfiler()
        try:
            phase1[k] = pipeline.run_staged(
                kwargs["netlist"],
                net_roles=kwargs["net_roles"],
                port_labels=kwargs["port_labels"],
                name=kwargs["name"],
                infer_testbench=kwargs["infer_testbench"],
                mode=kwargs["mode"],
                profiler=profilers[k],
                stop_after=StageName.GRAPH,
                hier=kwargs.get("hier", False),
            )
        except Exception as exc:
            if not job["isolate"]:
                raise
            results[k] = failure_report(
                exc, index=job["index"], name=kwargs["name"]
            )

    pending = [k for k in range(len(jobs)) if phase1[k] is not None]
    annotations: dict[int, Annotation] = {}
    gcn_shares: dict[int, float] = {}
    if len(pending) > 1:
        featured = [phase1[k].artifacts[StageName.GRAPH] for k in pending]
        started = time.perf_counter()
        try:
            batch = pipeline.annotator.annotate_batch(
                [f.graph for f in featured],
                [f.net_roles for f in featured],
            )
        except Exception:
            _LOG.warning(
                "packed annotate_batch failed; falling back to per-item "
                "GCN inference for this chunk",
                exc_info=True,
            )
        else:
            packed_seconds = time.perf_counter() - started
            total = sum(f.graph.n_vertices for f in featured) or 1
            for k, f, annotation in zip(pending, featured, batch):
                annotations[k] = annotation
                gcn_shares[k] = packed_seconds * f.graph.n_vertices / total

    for k in pending:
        job = jobs[k]
        kwargs = job["kwargs"]
        try:
            staged = pipeline.run_staged(
                name=kwargs["name"],
                mode=kwargs["mode"],
                profiler=profilers[k],
                resume_from=[phase1[k].artifacts[StageName.GRAPH]],
                gcn_annotation=annotations.get(k),
                hier=kwargs.get("hier", False),
            )
            # Resuming seeds the pre-graph stages at 0 s; fold the real
            # phase-1 numbers back in, plus this item's share of the
            # packed GCN pass.
            for stage_name, seconds in phase1[k].stage_seconds.items():
                if not staged.stage_seconds.get(stage_name):
                    staged.stage_seconds[stage_name] = seconds
            staged.stage_seconds[StageName.GCN] = (
                staged.stage_seconds.get(StageName.GCN, 0.0)
                + gcn_shares.get(k, 0.0)
            )
            results[k] = pipeline.result_from_staged(
                staged, profiler=profilers[k]
            )
        except Exception as exc:
            if not job["isolate"]:
                raise
            results[k] = failure_report(
                exc, index=job["index"], name=kwargs["name"]
            )
    return results


#: Per-process pipeline installed by the ``run_many`` pool initializer,
#: so the (potentially large) trained model is pickled once per worker
#: instead of once per netlist.
_WORKER_PIPELINE: GanaPipeline | None = None


def _pipeline_worker_init(pipeline: GanaPipeline) -> None:
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = pipeline


def _pipeline_worker_run(job: dict) -> PipelineResult | FailureReport:
    assert _WORKER_PIPELINE is not None, "worker initializer did not run"
    return _run_pipeline_job(_WORKER_PIPELINE, job)


def _pipeline_worker_run_chunk(
    jobs: list[dict],
) -> list[PipelineResult | FailureReport]:
    assert _WORKER_PIPELINE is not None, "worker initializer did not run"
    return _run_pipeline_chunk(_WORKER_PIPELINE, jobs)
