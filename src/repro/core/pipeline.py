"""The end-to-end GANA flow (Sec. II-B).

    SPICE text
      → parse → flatten → preprocess            (repro.spice)
      → bipartite graph + features              (repro.graph)
      → GCN sub-block annotation                (repro.gcn / annotator)
      → Postprocessing I (CCC vote, primitives, stand-alones, BPF)
      → Postprocessing II (port rules)          (postprocess)
      → hierarchy tree + propagated constraints (hierarchy, constraints)

Every stage's wall-clock time is recorded in
:attr:`PipelineResult.timings` — the quantity Sec. V-B reports for the
switched-capacitor filter (135 s) and phased array (514 s).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.annotator import Annotation, GcnAnnotator
from repro.core.constraints import (
    ConstraintSet,
    propagate,
    subblock_constraints,
)
from repro.core.hierarchy import HierarchyNode, NodeKind
from repro.core.postprocess import (
    PostprocessResult,
    apply_port_rules,
    postprocess_ccc,
)
from repro.graph.bipartite import CircuitGraph
from repro.graph.features import NetRole
from repro.primitives.library import PrimitiveLibrary, extended_library
from repro.spice.flatten import flatten
from repro.spice.netlist import Circuit, Netlist, is_power_net
from repro.spice.parser import parse_netlist
from repro.spice.preprocess import PreprocessReport, preprocess


@dataclass
class PipelineResult:
    """Everything the flow produces for one input netlist."""

    graph: CircuitGraph
    gcn_annotation: Annotation
    post1: PostprocessResult
    post2: PostprocessResult
    hierarchy: HierarchyNode
    constraints: ConstraintSet
    preprocess_report: PreprocessReport
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def annotation(self) -> Annotation:
        """The final (post-II) annotation."""
        return self.post2.annotation

    def accuracies(self, truth: dict[str, str]) -> dict[str, float]:
        """GCN / post-I / post-II accuracy against ground truth —
        the three columns of Table II's narrative."""
        return {
            "gcn": self.gcn_annotation.accuracy(truth),
            "post1": self.post1.annotation.accuracy(truth),
            "post2": self.post2.annotation.accuracy(truth),
        }


def build_hierarchy(
    result: PostprocessResult, system_name: str
) -> tuple[HierarchyNode, ConstraintSet]:
    """Assemble the hierarchy tree from a postprocessed annotation.

    Sub-block instances are connected groups of same-class CCCs
    (connected through shared non-power nets); each carries its
    class-implied constraints plus the constraints of the primitives
    inside it, with symmetry axes merged per sub-block (Sec. IV-B).
    Stand-alone primitives hang off the system root.
    """
    annotation = result.annotation
    graph = annotation.graph
    partition = result.partition

    root = HierarchyNode(name=system_name, kind=NodeKind.SYSTEM)
    all_constraints = ConstraintSet()

    standalone_cids = {cid for cid, _match in result.standalone}

    # Group CCCs: same class + net connectivity => one sub-block instance.
    # Power rails never group, and neither do distribution nets (nets
    # touching more than two components, e.g. a bias rail shared by
    # every channel's LNA): only point-to-point signal connections
    # define an instance.
    ccc_neighbors: dict[int, set[int]] = defaultdict(set)
    for net_local, cids in partition.of_net.items():
        if is_power_net(graph.nets[net_local]) or len(cids) > 2:
            continue
        for a in cids:
            for b in cids:
                if a != b:
                    ccc_neighbors[a].add(b)

    visited: set[int] = set()
    instance_counter: dict[str, int] = defaultdict(int)
    for cid in range(partition.n_components):
        if cid in visited or cid in standalone_cids:
            continue
        cls_id = result.ccc_classes.get(cid, -1)
        cls_name = annotation.class_name(cls_id)
        group = [cid]
        visited.add(cid)
        queue = [cid]
        while queue:
            current = queue.pop()
            for other in ccc_neighbors[current]:
                if (
                    other not in visited
                    and other not in standalone_cids
                    and result.ccc_classes.get(other, -1) == cls_id
                ):
                    visited.add(other)
                    group.append(other)
                    queue.append(other)

        index = instance_counter[cls_name]
        instance_counter[cls_name] += 1
        block_name = f"{cls_name}{index}"
        block = HierarchyNode(
            name=block_name, kind=NodeKind.SUBBLOCK, block_class=cls_name
        )
        block.constraints.extend(subblock_constraints(cls_name, block_name))

        block_constraints = ConstraintSet()
        for member_cid in group:
            member_devices = {
                graph.elements[i].name for i in partition.components[member_cid]
            }
            claimed: set[str] = set()
            for match in result.ccc_matches.get(member_cid, []):
                primitive = HierarchyNode(
                    name=f"{block_name}/{match.primitive}@{min(match.elements)}",
                    kind=NodeKind.PRIMITIVE,
                    block_class=match.primitive,
                    devices=tuple(sorted(match.elements)),
                    constraints=list(match.constraints),
                )
                block.add(primitive)
                claimed |= match.elements
                block_constraints.extend(list(match.constraints))
            for name in sorted(member_devices - claimed):
                block.add(
                    HierarchyNode(
                        name=name, kind=NodeKind.ELEMENT, devices=(name,)
                    )
                )
        # Merge symmetry axes within the sub-block (common axis).
        merged = propagate(block_constraints)
        block.constraints.extend(
            c for c in merged if c not in block.constraints
        )
        root.add(block)
        all_constraints.extend(block.constraints)
        for child in block.children:
            all_constraints.extend(child.constraints)

    # Stand-alone primitives get their own top-level hierarchy.
    for cid, match in result.standalone:
        node = HierarchyNode(
            name=f"standalone/{match.primitive}@{min(match.elements)}",
            kind=NodeKind.PRIMITIVE,
            block_class=match.primitive,
            devices=tuple(sorted(match.elements)),
            constraints=list(match.constraints),
        )
        root.add(node)
        all_constraints.extend(node.constraints)

    return root, all_constraints


@dataclass
class GanaPipeline:
    """User-facing entry point: a trained annotator plus the library."""

    annotator: GcnAnnotator
    library: PrimitiveLibrary = field(default_factory=extended_library)
    detect_bpf: bool = True

    @property
    def class_names(self) -> tuple[str, ...]:
        return self.annotator.class_names

    @classmethod
    def pretrained(
        cls,
        task: str = "ota",
        quick: bool = True,
        seed: int = 0,
        cache: bool | None = None,
        **kwargs,
    ) -> "GanaPipeline":
        """Train (or load from cache) a recognition model.

        ``task`` is ``"ota"`` (classes: ota/bias) or ``"rf"`` (classes:
        lna/mixer/osc).  ``quick=True`` trains on a reduced dataset for
        interactive use; ``quick=False`` reproduces the paper-scale
        training run.  Extra keyword arguments (e.g. ``train_size``)
        pass through to
        :func:`repro.datasets.synth.pretrain_annotator`.  No weights
        ship with the package — datasets are generated on the fly, so
        "pretrained" means "trained now, deterministically" — but the
        runtime model cache (``~/.cache/gana`` / ``GANA_CACHE_DIR``)
        makes every call after the first a millisecond load; pass
        ``cache=False`` (or set ``GANA_NO_CACHE=1``) to force
        retraining.
        """
        from repro.datasets.synth import pretrain_annotator

        annotator = pretrain_annotator(
            task, quick=quick, seed=seed, cache=cache, **kwargs
        )
        return cls(annotator=annotator)

    def run(
        self,
        netlist: str | Netlist | Circuit,
        net_roles: dict[str, NetRole] | None = None,
        port_labels: dict[str, str] | None = None,
        name: str = "",
        infer_testbench: bool = True,
    ) -> PipelineResult:
        """Execute the full flow on a SPICE deck / netlist / flat circuit.

        When the deck still contains its testbench sources and
        ``infer_testbench`` is on, antenna/oscillating port labels and
        bias net roles are inferred from them (Sec. V-A footnote 2);
        explicit ``port_labels``/``net_roles`` entries always win.
        """
        timings: dict[str, float] = {}

        start = time.perf_counter()
        if isinstance(netlist, str):
            netlist = parse_netlist(netlist)
        if isinstance(netlist, Netlist):
            flat = flatten(netlist)
        else:
            flat = netlist
        if infer_testbench and any(d.kind.is_source for d in flat.devices):
            from repro.core.testbench import infer_net_roles, infer_port_labels

            inferred_labels = infer_port_labels(flat)
            inferred_labels.update(port_labels or {})
            port_labels = inferred_labels
            inferred_roles = infer_net_roles(flat)
            inferred_roles.update(net_roles or {})
            net_roles = inferred_roles
        reduced, report = preprocess(flat)
        timings["preprocess"] = time.perf_counter() - start

        start = time.perf_counter()
        graph = CircuitGraph.from_circuit(reduced)
        timings["graph"] = time.perf_counter() - start

        start = time.perf_counter()
        gcn_annotation = self.annotator.annotate(graph, net_roles=net_roles)
        timings["gcn"] = time.perf_counter() - start

        start = time.perf_counter()
        post1 = postprocess_ccc(
            gcn_annotation, self.library, detect_bpf=self.detect_bpf
        )
        timings["post1"] = time.perf_counter() - start

        start = time.perf_counter()
        post2 = apply_port_rules(post1, port_labels or {})
        timings["post2"] = time.perf_counter() - start

        start = time.perf_counter()
        hierarchy, constraints = build_hierarchy(
            post2, system_name=name or flat.name
        )
        timings["hierarchy"] = time.perf_counter() - start

        return PipelineResult(
            graph=graph,
            gcn_annotation=gcn_annotation,
            post1=post1,
            post2=post2,
            hierarchy=hierarchy,
            constraints=constraints,
            preprocess_report=report,
            timings=timings,
        )

    def run_many(
        self,
        netlists: list[str | Netlist | Circuit],
        names: list[str] | None = None,
        port_labels: dict[str, str] | list[dict[str, str] | None] | None = None,
        net_roles: dict[str, NetRole] | list[dict[str, NetRole] | None] | None = None,
        infer_testbench: bool = True,
        workers: int | None = None,
        chunksize: int | None = None,
    ) -> list[PipelineResult]:
        """Annotate a fleet of netlists, in parallel where possible.

        Each netlist goes through exactly the same :meth:`run` flow;
        results come back in input order and are identical to a serial
        ``[self.run(n) for n in netlists]`` (only wall-clock differs).
        ``port_labels``/``net_roles`` may be a single mapping applied to
        every netlist or a per-netlist list; ``names`` is an optional
        per-netlist system-name list.  ``workers`` follows
        :func:`repro.runtime.parallel.resolve_workers` (explicit >
        ``GANA_WORKERS`` > cpu count); one worker, one netlist, or an
        unusable pool all degrade to the serial loop.

        The trained pipeline ships to each worker once (pool
        initializer), not once per netlist, so per-item IPC stays
        proportional to the netlist text + result.
        """
        from repro.runtime.parallel import parallel_map, resolve_workers

        def per_item(value, index):
            if isinstance(value, (list, tuple)):
                return value[index]
            return value

        jobs = [
            {
                "netlist": netlist,
                "net_roles": per_item(net_roles, i),
                "port_labels": per_item(port_labels, i),
                "name": names[i] if names else "",
                "infer_testbench": infer_testbench,
            }
            for i, netlist in enumerate(netlists)
        ]
        if resolve_workers(workers) <= 1 or len(jobs) <= 1:
            return [self.run(**job) for job in jobs]
        return parallel_map(
            _pipeline_worker_run,
            jobs,
            workers=workers,
            chunksize=chunksize,
            initializer=_pipeline_worker_init,
            initargs=(self,),
        )


#: Per-process pipeline installed by the ``run_many`` pool initializer,
#: so the (potentially large) trained model is pickled once per worker
#: instead of once per netlist.
_WORKER_PIPELINE: GanaPipeline | None = None


def _pipeline_worker_init(pipeline: GanaPipeline) -> None:
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = pipeline


def _pipeline_worker_run(job: dict) -> PipelineResult:
    assert _WORKER_PIPELINE is not None, "worker initializer did not run"
    return _WORKER_PIPELINE.run(**job)
