"""Port-label inference from the testbench (Sec. V-A, footnote 2).

Postprocessing II needs to know which nets carry an antenna signal and
which carry an oscillating one.  The paper: such information "can be
provided by the designer as a separate label on the port, **or can be
inferred from the test bench in the input SPICE netlist**".  This
module is that inference:

* a V/I source with a periodic waveform (``SIN``, ``PULSE``, ``SFFM``)
  directly driving a net ⇒ that net is **oscillating**;
* a source coupled through a port resistance (≈50 Ω, the universal RF
  port convention) ⇒ the far side of the resistor is an **antenna**
  input;
* a plain DC source driving only transistor gates ⇒ the net is a
  **bias** rail (refines the 18-feature net-type slots).

The pipeline applies these automatically when the input deck still
contains its sources; explicit ``port_labels`` always win.
"""

from __future__ import annotations

from repro.graph.features import NetRole
from repro.spice.netlist import (
    Circuit,
    DeviceKind,
    is_ground_net,
    is_power_net,
)

#: Waveform model tokens that imply a periodic (oscillating) source.
OSCILLATING_SHAPES = frozenset({"sin", "pulse", "sffm", "am"})

#: Port resistance range treated as an RF port (antenna) coupling.
PORT_RESISTANCE = (10.0, 200.0)


def _source_net(device) -> str | None:
    """The signal net a 2-terminal source drives (the non-ground pin)."""
    pos, neg = device.pin_map["p"], device.pin_map["n"]
    if is_ground_net(pos):
        return None if is_ground_net(neg) else neg
    return pos


def infer_port_labels(circuit: Circuit) -> dict[str, str]:
    """Testbench-derived ``{net: "antenna" | "oscillating"}`` labels.

    Operates on a flat circuit that still contains its V/I sources.
    """
    labels: dict[str, str] = {}
    periodic_nets: set[str] = set()
    for dev in circuit.devices:
        if not dev.kind.is_source:
            continue
        shape = (dev.model or "").lower()
        net = _source_net(dev)
        if net is None:
            continue
        if shape in OSCILLATING_SHAPES:
            periodic_nets.add(net)
            labels[net] = "oscillating"

    # Antenna detection: a port resistor couples a source net onward.
    low, high = PORT_RESISTANCE
    for dev in circuit.devices:
        if dev.kind is not DeviceKind.RESISTOR:
            continue
        if dev.value is None or not (low <= dev.value <= high):
            continue
        pos, neg = dev.pin_map["p"], dev.pin_map["n"]
        for source_side, circuit_side in ((pos, neg), (neg, pos)):
            if source_side in periodic_nets and not is_power_net(circuit_side):
                # The RF port: periodic source behind port resistance.
                labels[circuit_side] = "antenna"
                labels.pop(source_side, None)
                periodic_nets.discard(source_side)
    return labels


def infer_net_roles(circuit: Circuit) -> dict[str, NetRole]:
    """DC-source-driven nets become BIAS-role for the feature builder."""
    roles: dict[str, NetRole] = {}
    for dev in circuit.devices:
        if dev.kind is not DeviceKind.VSOURCE:
            continue
        shape = (dev.model or "dc").lower()
        if shape in OSCILLATING_SHAPES or shape == "ac":
            continue
        net = _source_net(dev)
        if net is not None and not is_power_net(net):
            roles[net] = NetRole.BIAS
    return roles


def strip_sources(circuit: Circuit) -> Circuit:
    """Copy of the circuit without V/I source cards (recognition input)."""
    return Circuit(
        name=circuit.name,
        ports=circuit.ports,
        devices=[d for d in circuit.devices if not d.kind.is_source],
        instances=list(circuit.instances),
    )
