"""Hierarchy-scoped annotation: match each unique definition once.

The flat pipeline (``repro.core.pipeline``) annotates every deck as one
flat graph — a phased array with 8 identical receiver chains pays for 8
identical VF2 passes.  This module exploits the
:class:`~repro.spice.flatten.DesignTree` sidecar to do that work once
per *unique subcircuit definition* and replicate it per call site,
while staying byte-identical to the flat path:

* :class:`HierMatchCache` plugs into the untouched
  :func:`repro.primitives.matcher.annotate_components` through its
  ``match_cache`` protocol (``subgraph_key`` / ``load`` / ``store``).
  A channel-connected component whose devices all live inside one
  instance is *canonicalized* against that instance's definition —
  prefix-stripped device names, port-binding-resolved net names,
  per-net port-predicate profiles — and its raw per-template VF2 match
  lists are shared across every instance with the same canonical key,
  renamed into each instance's namespace under a strict
  order-preservation guard.  CCCs that cross an instance boundary (or
  whose rename would not preserve name order) fall back to direct
  matching — the "narrow re-match band" — so the final annotation is
  the one the flat path computes, byte for byte.

* :func:`annotate_definitions` runs one packed GCN forward
  (:meth:`~repro.core.annotator.GcnAnnotator.annotate_batch`) over the
  standalone bodies of all unique ``(fingerprint, multiplier)`` groups.
  Its :class:`DefinitionAnnotation` summaries are advisory — per
  definition class statistics for reporting, caching, and profiling —
  and never touch the byte-identical output path.

Definition-keyed persistence: with a backing
:class:`~repro.runtime.cache.ArtifactCache`, shared entries are stored
under keys embedding the definition fingerprint, so editing one subckt
invalidates exactly that definition's entries (content-addressed: the
new body produces new fingerprints, old entries simply stop matching
and can be swept with ``ArtifactCache.invalidate_prefix``).
"""

from __future__ import annotations

import hashlib
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.core.stages import MATCH_CACHE_VERSION
from repro.primitives.matcher import PrimitiveMatch
from repro.spice.flatten import SEP, DesignTree, InstanceRecord
from repro.spice.netlist import is_power_net

#: Versioned prefix shared by every hierarchy-scoped cache entry.
HIER_MATCH_PREFIX = "hier-matches"


#: net name → predicate truth vector.  The predicates are pure
#: functions of the name and the PORT_PREDICATES table is a module
#: constant, so the memo is safe to share across runs; power rails and
#: testbench nets recur in every deck, making warm runs nearly free.
_PRED_PROFILE_MEMO: dict[str, tuple[bool, ...]] = {}


def _predicate_profile(net: str) -> tuple[bool, ...]:
    """Port-predicate truth vector of a real net name.

    Template port checks (:data:`repro.primitives.library.PORT_PREDICATES`)
    evaluate *real* target net names — ``vdd!`` passes ``supply`` where
    ``sig3`` does not — so two instances may only share match lists
    when every net agrees on every predicate.
    """
    profile = _PRED_PROFILE_MEMO.get(net)
    if profile is None:
        from repro.primitives.library import PORT_PREDICATES

        profile = _PRED_PROFILE_MEMO[net] = tuple(
            bool(PORT_PREDICATES[key](net)) for key in sorted(PORT_PREDICATES)
        )
    return profile


def _order_preserving(rename: dict[str, str]) -> bool:
    """True when ``rename`` maps sorted sources onto strictly
    increasing targets.

    Every name-dependent ordering downstream of matching — the sorted
    ``element_map`` / ``net_map`` tuples, the ``(element_map, net_map)``
    match sort, claim order, ``min(match.elements)`` hierarchy names —
    is invariant under an order-preserving rename, which is what makes
    replaying a representative's match lists byte-identical to
    recomputing them.
    """
    previous = None
    for source in sorted(rename):
        target = rename[source]
        if previous is not None and target <= previous:
            return False
        previous = target
    return True


@dataclass
class _CccPlan:
    """Everything :meth:`HierMatchCache.subgraph_key` learned about one
    CCC, consumed by the immediately following ``load``/``store``."""

    key: str
    eligible: bool
    definition: str
    def_fingerprint: str = ""
    scope: str = ""
    dev_canon: dict[str, str] = field(default_factory=dict)
    net_canon: dict[str, str] = field(default_factory=dict)
    reused: bool = False
    started: float = 0.0


@dataclass(frozen=True)
class DefinitionAnnotation:
    """Advisory per-definition GCN summary (one packed forward)."""

    definition: str
    fingerprint: str
    multiplier: float
    n_instances: int
    instance_paths: tuple[str, ...]
    n_devices: int
    class_counts: tuple[tuple[str, int], ...]
    majority_class: str


@dataclass
class HierReport:
    """What the hierarchy-scoped path did for one run."""

    n_definitions: int = 0
    n_instances: int = 0
    n_unique_groups: int = 0
    cccs: int = 0
    interior: int = 0
    boundary: int = 0
    reused: int = 0
    guard_failures: int = 0
    persisted_hits: int = 0
    replayed: int = 0
    #: ``definition → {"instances", "cccs", "reused", "seconds"}``.
    per_definition: dict[str, dict] = field(default_factory=dict)
    definition_annotations: tuple[DefinitionAnnotation, ...] = ()

    def as_dict(self) -> dict:
        return {
            "n_definitions": self.n_definitions,
            "n_instances": self.n_instances,
            "n_unique_groups": self.n_unique_groups,
            "cccs": self.cccs,
            "interior": self.interior,
            "boundary": self.boundary,
            "reused": self.reused,
            "guard_failures": self.guard_failures,
            "persisted_hits": self.persisted_hits,
            "replayed": self.replayed,
            "per_definition": {
                name: dict(stats) for name, stats in self.per_definition.items()
            },
            "definitions": [
                {
                    "definition": d.definition,
                    "fingerprint": d.fingerprint[:12],
                    "multiplier": d.multiplier,
                    "n_instances": d.n_instances,
                    "n_devices": d.n_devices,
                    "majority_class": d.majority_class,
                }
                for d in self.definition_annotations
            ],
        }


class HierMatchCache:
    """Definition-scoped VF2 dedup behind the ``match_cache`` protocol.

    Stateful adapter: :func:`~repro.primitives.matcher.annotate_components`
    calls ``subgraph_key(subgraph)`` then ``load``/``store`` strictly in
    sequence for each CCC, so the plan computed by ``subgraph_key`` is
    stashed and consumed by the very next ``load``/``store`` pair.

    ``artifact_cache`` (optional) persists shared entries across runs
    under definition-fingerprint-keyed entries, and gives boundary CCCs
    the exact flat-path
    :class:`~repro.core.stages.PrimitiveMatchCache` persistence.
    """

    def __init__(
        self,
        tree: DesignTree,
        artifact_cache=None,
        profiler=None,
    ):
        self._tree = tree
        self._cache = artifact_cache
        self._profiler = profiler
        self._records: dict[str, InstanceRecord] = {
            rec.path: rec for rec in tree.instances
        }
        self._globals = set(tree.globals_)
        #: canonical key → {"devices": {canon: rep}, "nets": …, "memo": …}.
        self._entries: dict[str, dict] = {}
        #: (def fingerprint, multiplier, stripped device names) →
        #: canonical plan template (dev_parts + canon-net list), or
        #: None when the representative CCC was ambiguous and every
        #: sibling must take the full walk.
        self._templates: dict[tuple, dict | None] = {}
        self._plan: _CccPlan | None = None
        self._seq = 0
        self.stats = Counter()
        self.per_definition: dict[str, dict] = {}

    # -- plan construction -------------------------------------------------

    def _scope_of(self, devices) -> InstanceRecord | None:
        """Deepest instance whose path prefixes every member device."""
        name = devices[0].name
        if SEP not in name:
            return None
        parts = name.split(SEP)[:-1]
        for depth in range(len(parts), 0, -1):
            path = SEP.join(parts[:depth])
            rec = self._records.get(path)
            if rec is None:
                continue
            prefix = path + SEP
            if all(dev.name.startswith(prefix) for dev in devices):
                return rec
        return None

    def _boundary_plan(self, subgraph) -> _CccPlan:
        if self._cache is not None:
            # With a backing store, boundary CCCs keep the flat path's
            # content-addressed persistence, byte for byte.
            from repro.core.stages import PrimitiveMatchCache

            key = PrimitiveMatchCache.subgraph_key(subgraph)
        else:
            self._seq += 1
            key = f"hier-boundary-{self._seq}"
        return _CccPlan(key=key, eligible=False, definition="(boundary)")

    def _plan_for(self, subgraph) -> _CccPlan:
        devices = subgraph.elements
        if not devices:
            return self._boundary_plan(subgraph)
        rec = self._scope_of(devices)
        if rec is None:
            return self._boundary_plan(subgraph)
        prefix = rec.path + SEP
        dev_names = tuple(dev.name[len(prefix):] for dev in devices)
        template_key = (rec.fingerprint, rec.multiplier, dev_names)
        template = self._templates.get(template_key, False)
        if template is not False:
            if template is not None:
                plan = self._replay_plan(template, rec, prefix)
                if plan is not None:
                    self.stats["replayed"] += 1
                    return plan
            return self._walk_plan(subgraph, rec, prefix, None)
        return self._walk_plan(subgraph, rec, prefix, template_key)

    def _walk_plan(
        self, subgraph, rec: InstanceRecord, prefix: str, template_key
    ) -> _CccPlan:
        """Full canonicalization walk over the CCC's devices and nets.

        When ``template_key`` is given and the walk succeeds, an
        instance-independent plan template is recorded so sibling
        instances can :meth:`_replay_plan` instead of re-walking —
        unless the representative was *ambiguous* (some net belongs to
        more than one canonical class: an interior name that looks like
        a power rail, a port bound to a global, ...), in which case the
        template slot is poisoned with ``None``.
        """
        devices = subgraph.elements
        bound_ports: dict[str, list[str]] = {}
        for port, net in rec.bindings:
            bound_ports.setdefault(net, []).append(port)

        net_canon: dict[str, str] = {}
        real_of: dict[str, str] = {}

        def canon_net(net: str) -> str | None:
            cached = net_canon.get(net)
            if cached is not None:
                return cached
            if net.startswith(prefix):
                canon = f"i:{net[len(prefix):]}"
            elif net in bound_ports:
                canon = "p:" + ",".join(sorted(bound_ports[net]))
            elif net in self._globals or is_power_net(net):
                canon = f"g:{net}"
            else:
                return None  # reaches outside the instance: boundary band
            if real_of.setdefault(canon, net) != net:
                return None  # two real nets collapsed — never share
            net_canon[net] = canon
            return canon

        dev_canon: dict[str, str] = {}
        dev_parts = []
        for dev in devices:
            canon_name = dev.name[len(prefix):]
            pins = []
            for term, net in dev.pins:
                canon = canon_net(net)
                if canon is None:
                    return self._boundary_plan(subgraph)
                pins.append((term, canon))
            dev_canon[canon_name] = dev.name
            dev_parts.append(
                (canon_name, dev.kind.value, tuple(pins), dev.value, dev.model, dev.params)
            )
        net_parts = sorted(
            (canon, _predicate_profile(net)) for net, canon in net_canon.items()
        )
        dev_parts = tuple(dev_parts)
        dev_repr = repr(dev_parts)
        raw = f"({dev_repr}, {tuple(net_parts)!r})"
        digest = hashlib.sha256(raw.encode("utf-8")).hexdigest()[:32]
        if template_key is not None:
            # Unambiguous ⇔ every net belongs to exactly one canonical
            # class; only then does replaying the template reproduce
            # this walk on every sibling instance.
            unambiguous = all(
                (
                    net.startswith(prefix)
                    + (net in bound_ports)
                    + (net in self._globals or is_power_net(net))
                )
                == 1
                for net in net_canon
            )
            self._templates[template_key] = (
                {
                    "dev_parts": dev_parts,
                    "dev_repr": dev_repr,
                    "canons": tuple(net_canon.values()),
                }
                if unambiguous
                else None
            )
        return _CccPlan(
            key=f"{HIER_MATCH_PREFIX}-v{MATCH_CACHE_VERSION}-{digest}",
            eligible=True,
            definition=rec.definition,
            def_fingerprint=rec.fingerprint,
            scope=rec.path,
            dev_canon=dev_canon,
            net_canon={canon: net for net, canon in net_canon.items()},
        )

    def _replay_plan(
        self, template: dict, rec: InstanceRecord, prefix: str
    ) -> _CccPlan | None:
        """Rebuild a sibling instance's plan from a definition template.

        The canonical device parts are instance-independent; only the
        canon → real net map (and with it the content digest, via the
        per-net predicate profiles) must be re-derived.  Every step
        that could make this instance classify nets differently from
        the template's representative returns ``None`` — the caller
        falls back to the full walk, so replay can narrow coverage but
        never change a key.
        """
        bound_ports: dict[str, list[str]] = {}
        binding_of: dict[str, str] = {}
        for port, net in rec.bindings:
            bound_ports.setdefault(net, []).append(port)
            binding_of[port] = net
        net_canon: dict[str, str] = {}
        seen: set[str] = set()
        for canon in template["canons"]:
            kind, payload = canon[0], canon[2:]
            if kind == "i":
                real = prefix + payload
                if (
                    real in bound_ports
                    or real in self._globals
                    or is_power_net(real)
                ):
                    return None
            elif kind == "g":
                real = payload
                if real in bound_ports:
                    return None
            else:  # "p": a group of ports bound to one parent net
                group = payload.split(",")
                real = binding_of.get(group[0], "")
                if not real or sorted(bound_ports.get(real, ())) != group:
                    return None
                if (
                    real.startswith(prefix)
                    or real in self._globals
                    or is_power_net(real)
                ):
                    return None
            if real in seen:
                return None
            seen.add(real)
            net_canon[canon] = real
        net_parts = sorted(
            (canon, _predicate_profile(real))
            for canon, real in net_canon.items()
        )
        # Compose the digest input from the precomputed device repr —
        # byte-identical to ``repr((dev_parts, net_parts))`` on the
        # full-walk path.
        raw = f"({template['dev_repr']}, {tuple(net_parts)!r})"
        digest = hashlib.sha256(raw.encode("utf-8")).hexdigest()[:32]
        return _CccPlan(
            key=f"{HIER_MATCH_PREFIX}-v{MATCH_CACHE_VERSION}-{digest}",
            eligible=True,
            definition=rec.definition,
            def_fingerprint=rec.fingerprint,
            scope=rec.path,
            dev_canon={
                part[0]: prefix + part[0] for part in template["dev_parts"]
            },
            net_canon=net_canon,
        )

    # -- match_cache protocol ----------------------------------------------

    def subgraph_key(self, subgraph) -> str:
        now = time.perf_counter()
        self._flush(now)
        plan = self._plan_for(subgraph)
        plan.started = now
        self._plan = plan
        self.stats["cccs"] += 1
        self.stats["interior" if plan.eligible else "boundary"] += 1
        return plan.key

    def load(self, key: str) -> dict[str, list[PrimitiveMatch]]:
        plan = self._plan
        if plan is None or plan.key != key or not plan.eligible:
            if self._cache is not None and not key.startswith("hier-boundary-"):
                value = self._cache.load(key)
                if isinstance(value, dict):
                    return value
            return {}
        entry = self._entries.get(key)
        if entry is None and self._cache is not None:
            stored = self._cache.load(self._persist_key(plan))
            if (
                isinstance(stored, dict)
                and {"devices", "nets", "memo"} <= stored.keys()
            ):
                entry = self._entries[key] = stored
                self.stats["persisted_hits"] += 1
        if entry is None:
            return {}
        memo = self._rename_memo(entry, plan)
        if memo is None:
            self.stats["guard_failures"] += 1
            return {}
        plan.reused = True
        self.stats["reused"] += 1
        return memo

    def store(self, key: str, memo: dict[str, list[PrimitiveMatch]]) -> None:
        plan = self._plan
        if plan is None or plan.key != key or not plan.eligible:
            if self._cache is not None and not key.startswith("hier-boundary-"):
                self._cache.store(key, dict(memo))
            return
        entry = {
            "devices": {canon: real for canon, real in plan.dev_canon.items()},
            "nets": {canon: real for canon, real in plan.net_canon.items()},
            "memo": {fp: list(matches) for fp, matches in memo.items()},
        }
        self._entries[key] = entry
        if self._cache is not None:
            self._cache.store(self._persist_key(plan), entry)

    # -- replay -------------------------------------------------------------

    @staticmethod
    def _persist_key(plan: _CccPlan) -> str:
        # The definition fingerprint rides in the key so one subckt
        # edit leaves every other definition's entries untouched (and
        # makes them sweepable by prefix).
        digest = plan.key.rsplit("-", 1)[-1]
        return (
            f"{HIER_MATCH_PREFIX}-def-{plan.def_fingerprint[:12]}-{digest}"
        )

    def _rename_memo(
        self, entry: dict, plan: _CccPlan
    ) -> dict[str, list[PrimitiveMatch]] | None:
        rep_devices: dict[str, str] = entry["devices"]
        rep_nets: dict[str, str] = entry["nets"]
        if len(rep_devices) != len(plan.dev_canon) or len(rep_nets) != len(
            plan.net_canon
        ):
            return None
        dev_rename: dict[str, str] = {}
        for canon, rep_name in rep_devices.items():
            current = plan.dev_canon.get(canon)
            if current is None:
                return None
            dev_rename[rep_name] = current
        net_rename: dict[str, str] = {}
        for canon, rep_net in rep_nets.items():
            current = plan.net_canon.get(canon)
            if current is None:
                return None
            net_rename[rep_net] = current
        if not _order_preserving(dev_rename) or not _order_preserving(net_rename):
            return None
        try:
            memo: dict[str, list[PrimitiveMatch]] = {}
            for template_fp, matches in entry["memo"].items():
                memo[template_fp] = [
                    PrimitiveMatch(
                        primitive=m.primitive,
                        # Stored maps are sorted by template name, and
                        # template names are unique within a map, so an
                        # order-preserving rename leaves the sort order
                        # untouched — no re-sort needed.
                        element_map=tuple(
                            (t, dev_rename[x]) for t, x in m.element_map
                        ),
                        net_map=tuple(
                            (t, net_rename[x]) for t, x in m.net_map
                        ),
                        constraints=tuple(
                            c.renamed(dev_rename) for c in m.constraints
                        ),
                    )
                    for m in matches
                ]
            return memo
        except KeyError:
            return None

    # -- per-definition attribution ------------------------------------------

    def _flush(self, now: float) -> None:
        plan = self._plan
        if plan is None:
            return
        stats = self.per_definition.setdefault(
            plan.definition,
            {"instances": set(), "cccs": 0, "reused": 0, "seconds": 0.0},
        )
        stats["cccs"] += 1
        stats["seconds"] += now - plan.started
        if plan.scope:
            stats["instances"].add(plan.scope)
        if plan.reused:
            stats["reused"] += 1
        self._plan = None

    def finalize(
        self,
        definition_annotations: tuple[DefinitionAnnotation, ...] = (),
    ) -> HierReport:
        """Flush attribution, feed the profiler, and build the report."""
        self._flush(time.perf_counter())
        per_definition = {
            name: {
                "instances": len(stats["instances"]),
                "cccs": stats["cccs"],
                "reused": stats["reused"],
                "seconds": stats["seconds"],
            }
            for name, stats in self.per_definition.items()
        }
        if self._profiler is not None:
            for name, stats in per_definition.items():
                self._profiler.record_definition(
                    name,
                    instances=stats["instances"],
                    cccs=stats["cccs"],
                    reused=stats["reused"],
                    seconds=stats["seconds"],
                )
        return HierReport(
            n_definitions=len(self._tree.definitions),
            n_instances=len(self._tree.instances),
            n_unique_groups=self._tree.n_unique(),
            cccs=self.stats["cccs"],
            interior=self.stats["interior"],
            boundary=self.stats["boundary"],
            reused=self.stats["reused"],
            guard_failures=self.stats["guard_failures"],
            persisted_hits=self.stats["persisted_hits"],
            replayed=self.stats["replayed"],
            per_definition=per_definition,
            definition_annotations=definition_annotations,
        )


# ---------------------------------------------------------------------------
# Per-definition packed GCN summaries (advisory)
# ---------------------------------------------------------------------------

#: (annotator fp, definition fp, multiplier) → summary.  Content-keyed,
#: so it is safe to share process-wide; definitions are few, so the
#: memo stays tiny.  Repeat runs in one process (fleets, benchmarks)
#: skip the per-definition forward without needing a disk cache.
_DEF_ANN_MEMO: dict[tuple[str, str, float], DefinitionAnnotation] = {}


def annotate_definitions(
    tree: DesignTree, annotator, cache=None
) -> tuple[DefinitionAnnotation, ...]:
    """One packed GCN forward over every unique definition body.

    Classifies each unique ``(fingerprint, multiplier)`` group's
    standalone body through
    :meth:`~repro.core.annotator.GcnAnnotator.annotate_batch` and
    summarizes per-definition class statistics.  Advisory only: the
    byte-identical annotation path never consumes these.  Summaries are
    memoized in-process per (annotator, definition, multiplier); with a
    backing ``cache`` (an :class:`~repro.runtime.cache.ArtifactCache`)
    they also persist across processes.
    """
    from repro.core.stages import annotator_fingerprint
    from repro.graph.bipartite import CircuitGraph
    from repro.spice.preprocess import preprocess

    groups = tree.groups()
    try:
        ann_fp = annotator_fingerprint(annotator)
    except Exception:
        ann_fp = ""
        cache = None
    items = []
    for (fingerprint, multiplier), paths in sorted(groups.items()):
        body = tree.bodies.get((fingerprint, multiplier))
        if body is None:
            continue
        if not any(not d.kind.is_source for d in body.devices):
            continue
        items.append((fingerprint, multiplier, paths, body))

    def rescoped(stored: DefinitionAnnotation, paths) -> DefinitionAnnotation:
        return DefinitionAnnotation(
            definition=stored.definition,
            fingerprint=stored.fingerprint,
            multiplier=stored.multiplier,
            n_instances=len(paths),
            instance_paths=tuple(paths),
            n_devices=stored.n_devices,
            class_counts=stored.class_counts,
            majority_class=stored.majority_class,
        )

    summaries: dict[int, DefinitionAnnotation] = {}
    pending: list[int] = []
    keys: dict[int, str] = {}
    memo_keys: dict[int, tuple[str, str, float]] = {}
    for index, (fingerprint, multiplier, paths, body) in enumerate(items):
        if ann_fp:
            memo_key = (ann_fp, fingerprint, multiplier)
            memo_keys[index] = memo_key
            memoized = _DEF_ANN_MEMO.get(memo_key)
            if memoized is not None:
                summaries[index] = rescoped(memoized, paths)
                continue
        if cache is not None:
            key = (
                f"hier-def-ann-{ann_fp[:12]}-{fingerprint[:12]}-{multiplier!r}"
            )
            keys[index] = key
            stored = cache.load(key)
            if isinstance(stored, DefinitionAnnotation):
                summary = rescoped(stored, paths)
                summaries[index] = summary
                if index in memo_keys:
                    _DEF_ANN_MEMO[memo_keys[index]] = summary
                continue
        pending.append(index)

    if pending:
        graphs = []
        for index in pending:
            body = items[index][3]
            reduced, _report = preprocess(body)
            graphs.append(CircuitGraph.from_circuit(reduced))
        if len(graphs) > 1 and callable(getattr(annotator, "annotate_batch", None)):
            annotations = annotator.annotate_batch(graphs)
        else:
            annotations = [annotator.annotate(graph) for graph in graphs]
        for index, annotation in zip(pending, annotations):
            fingerprint, multiplier, paths, body = items[index]
            counts = Counter(annotation.element_classes.values())
            majority = counts.most_common(1)[0][0] if counts else "?"
            summary = DefinitionAnnotation(
                definition=_definition_name_of(tree, fingerprint),
                fingerprint=fingerprint,
                multiplier=multiplier,
                n_instances=len(paths),
                instance_paths=tuple(paths),
                n_devices=annotation.graph.n_elements,
                class_counts=tuple(sorted(counts.items())),
                majority_class=majority,
            )
            summaries[index] = summary
            if index in memo_keys:
                _DEF_ANN_MEMO[memo_keys[index]] = summary
            if cache is not None:
                cache.store(keys[index], summary)
    return tuple(summaries[i] for i in range(len(items)) if i in summaries)


def _definition_name_of(tree: DesignTree, fingerprint: str) -> str:
    for key, definition in tree.definitions.items():
        if definition.fingerprint == fingerprint:
            return definition.name
    return fingerprint[:12]
