"""GCN-based sub-block annotation (Sec. II-B, "GCN-based recognition").

The :class:`GcnAnnotator` wraps a trained
:class:`~repro.gcn.model.GCNModel` and a class vocabulary; it turns a
flat circuit into a per-vertex :class:`Annotation` that downstream
postprocessing refines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gcn.model import GCNModel
from repro.gcn.samples import GraphSample
from repro.graph.bipartite import CircuitGraph
from repro.graph.features import NetRole


@dataclass
class Annotation:
    """Per-vertex class assignment over a circuit graph.

    ``vertex_classes[v]`` indexes into ``class_names``; −1 marks an
    unclassified vertex.  ``probabilities`` keeps the GCN softmax so
    postprocessing can weigh votes by confidence.  ``extra_classes``
    accumulates labels postprocessing invents beyond the GCN vocabulary
    (e.g. "bpf", "buf", "inv" in the phased-array testcase).
    """

    graph: CircuitGraph
    class_names: tuple[str, ...]
    vertex_classes: np.ndarray
    probabilities: np.ndarray | None = None
    extra_classes: list[str] = field(default_factory=list)

    def class_id(self, name: str, create: bool = False) -> int:
        """Id of a class name, optionally registering a new extra class."""
        names = self.all_class_names
        if name in names:
            return names.index(name)
        if not create:
            raise KeyError(name)
        self.extra_classes.append(name)
        return len(self.all_class_names) - 1

    @property
    def all_class_names(self) -> tuple[str, ...]:
        return self.class_names + tuple(self.extra_classes)

    def class_name(self, class_id: int) -> str:
        if class_id < 0:
            return "?"
        return self.all_class_names[class_id]

    @property
    def element_classes(self) -> dict[str, str]:
        """Device name → class name."""
        return {
            dev.name: self.class_name(int(self.vertex_classes[i]))
            for i, dev in enumerate(self.graph.elements)
        }

    @property
    def net_classes(self) -> dict[str, str]:
        """Net name → class name."""
        offset = self.graph.n_elements
        return {
            net: self.class_name(int(self.vertex_classes[offset + j]))
            for j, net in enumerate(self.graph.nets)
        }

    def accuracy(
        self, truth: dict[str, str], devices_only: bool = False
    ) -> float:
        """Fraction of vertices named in ``truth`` classified correctly.

        ``truth`` maps device/net names to class-name strings; vertices
        absent from it are ignored (boundary nets the paper allows to
        belong to several blocks can simply be left out).
        """
        correct = 0
        total = 0
        for vertex in range(self.graph.n_vertices):
            if devices_only and not self.graph.is_element_vertex(vertex):
                continue
            name = self.graph.vertex_name(vertex)
            if name not in truth:
                continue
            total += 1
            if self.class_name(int(self.vertex_classes[vertex])) == truth[name]:
                correct += 1
        return correct / total if total else 1.0

    def copy(self) -> "Annotation":
        return Annotation(
            graph=self.graph,
            class_names=self.class_names,
            vertex_classes=self.vertex_classes.copy(),
            probabilities=(
                None if self.probabilities is None else self.probabilities.copy()
            ),
            extra_classes=list(self.extra_classes),
        )


@dataclass
class GcnAnnotator:
    """Trained model + vocabulary → per-vertex annotations."""

    model: GCNModel
    class_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.class_names) != self.model.config.n_classes:
            raise ValueError(
                f"{len(self.class_names)} class names for a "
                f"{self.model.config.n_classes}-way model"
            )

    def annotate(
        self,
        graph: CircuitGraph,
        net_roles: dict[str, NetRole] | None = None,
    ) -> Annotation:
        """Classify every vertex of ``graph``."""
        sample = GraphSample.from_graph(
            graph,
            labels={},
            levels=self.model.config.levels_needed,
            net_roles=net_roles,
        )
        probabilities = self.model.predict_proba(sample)
        return Annotation(
            graph=graph,
            class_names=self.class_names,
            vertex_classes=probabilities.argmax(axis=1).astype(np.int64),
            probabilities=probabilities,
        )

    def annotate_batch(
        self,
        graphs: list[CircuitGraph],
        net_roles_list: list[dict[str, NetRole] | None] | None = None,
    ) -> list[Annotation]:
        """Classify every vertex of several graphs in one packed pass.

        Builds the same per-graph samples :meth:`annotate` would, then
        runs a single block-diagonal forward
        (:meth:`GCNModel.predict_proba_batch`) instead of one forward
        per graph.
        """
        if net_roles_list is None:
            net_roles_list = [None] * len(graphs)
        samples = [
            GraphSample.from_graph(
                graph,
                labels={},
                levels=self.model.config.levels_needed,
                net_roles=net_roles,
            )
            for graph, net_roles in zip(graphs, net_roles_list)
        ]
        return [
            Annotation(
                graph=graph,
                class_names=self.class_names,
                vertex_classes=probabilities.argmax(axis=1).astype(np.int64),
                probabilities=probabilities,
            )
            for graph, probabilities in zip(
                graphs, self.model.predict_proba_batch(samples)
            )
        ]
