"""Deterministic randomness helpers.

Dataset generation and GCN training must be reproducible run-to-run, so
every stochastic component in this package draws from a
:class:`numpy.random.Generator` created through :func:`seeded_rng`.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(*parts: object) -> int:
    """Return a platform-stable 63-bit hash of ``parts``.

    Python's builtin ``hash`` is salted per process, which would make
    dataset splits irreproducible; this uses blake2b instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "big") >> 1


def seeded_rng(seed: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from any hashable seed.

    Strings, tuples, and ints are all accepted; equal seeds give equal
    streams on every platform.
    """
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    return np.random.default_rng(stable_hash(seed))
