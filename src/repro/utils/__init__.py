"""Small shared utilities (seeded RNG helpers, logging)."""

from repro.utils.rng import seeded_rng, stable_hash

__all__ = ["seeded_rng", "stable_hash"]
