"""Command-line interface.

::

    python -m repro annotate my_amp.sp --task ota [--model model.npz]
    python -m repro train --task rf --out model.npz [--quick]
    python -m repro primitives [--extended]
    python -m repro datasets --task ota -n 10 --out-dir decks/

``annotate`` prints the per-device annotation, the hierarchy tree, and
the discovered constraints.  ``train`` trains a recognition model on
generated data and saves its weights.  ``primitives`` lists the
template library.  ``datasets`` writes generated SPICE decks to disk.

Error handling: every library error (:class:`~repro.exceptions.GanaError`)
is caught at the top level and rendered as a one-line diagnostic —
with the offending line number and fix hint when the parser knows them
— and a non-zero exit code.  ``annotate --lenient`` recovers from bad
cards instead, reporting them as per-line diagnostics on stderr while
still annotating what parsed; in batch mode it additionally isolates
per-deck faults so one poisoned deck cannot sink the batch.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _cmd_annotate(args: argparse.Namespace) -> int:
    from repro.core.annotator import GcnAnnotator
    from repro.core.pipeline import GanaPipeline
    from repro.datasets.synth import pretrain_annotator, task_classes
    from repro.gcn.model import GCNModel

    paths = [Path(p) for p in args.netlist]
    if not paths and not args.resume_from:
        print(
            "error: give at least one netlist (or --resume-from an artifact)",
            file=sys.stderr,
        )
        return 2
    missing = [p for p in paths if not p.is_file()]
    if missing:
        for p in missing:
            print(f"error: no such netlist: {p}", file=sys.stderr)
        return 2
    if len(paths) > 1 and (
        args.stop_after or args.resume_from or args.save_artifacts
    ):
        print(
            "error: --stop-after/--resume-from/--save-artifacts work on a "
            "single netlist, not a batch",
            file=sys.stderr,
        )
        return 2
    if args.model:
        classes = task_classes(args.task)
        model = GCNModel.load(args.model)
        if model.config.n_classes != len(classes):
            print(
                f"error: model has {model.config.n_classes} classes but task "
                f"{args.task!r} needs {len(classes)}",
                file=sys.stderr,
            )
            return 2
        annotator = GcnAnnotator(model=model, class_names=classes)
    else:
        cache = False if args.no_cache else None
        print(
            "no --model given; training a quick model "
            "(cached across runs unless --no-cache) ...",
            file=sys.stderr,
        )
        annotator = pretrain_annotator(args.task, quick=True, cache=cache)
    pipeline = GanaPipeline(annotator=annotator)

    port_labels = {}
    for spec in args.port or []:
        net, _, label = spec.partition("=")
        port_labels[net] = label

    mode = "lenient" if args.lenient else "strict"
    if args.hier_tree and args.flat:
        print("error: --hier-tree implies --hier, not --flat", file=sys.stderr)
        return 2
    hier = bool(args.hier or args.hier_tree)
    if len(paths) > 1:
        return _annotate_batch(args, pipeline, paths, port_labels, mode, hier)
    if args.stop_after or args.resume_from:
        profiler = None
        if args.profile:
            from repro.runtime.profile import PipelineProfiler

            profiler = PipelineProfiler()
        staged = pipeline.run_staged(
            paths[0].read_text() if paths else None,
            port_labels=port_labels,
            name=paths[0].stem if paths else "",
            mode=mode,
            profiler=profiler,
            artifact_cache=args.artifact_cache,
            save_artifacts=args.save_artifacts,
            resume_from=args.resume_from,
            stop_after=args.stop_after,
            hier=hier,
            hier_tree=bool(args.hier_tree),
        )
        if not staged.complete:
            return _report_staged_stop(args, staged, profiler)
        result = pipeline.result_from_staged(staged, profiler=profiler)
    else:
        result = pipeline.run(
            paths[0].read_text(),
            port_labels=port_labels,
            name=paths[0].stem,
            mode=mode,
            profile=bool(args.profile),
            artifact_cache=args.artifact_cache,
            save_artifacts=args.save_artifacts,
            hier=hier,
            hier_tree=bool(args.hier_tree),
        )
    source = paths[0] if paths else Path(args.resume_from)
    _report_result_health(source, result)
    _report_hier_summary(result)

    if args.profile:
        Path(args.profile).write_text(json.dumps(result.profile, indent=2) + "\n")
        print(f"wrote stage/template profile to {args.profile}", file=sys.stderr)

    if args.export_dir:
        from repro.core.export import (
            constraints_json,
            graph_dot,
            hierarchy_dot,
            hierarchy_json,
        )

        out = Path(args.export_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "constraints.json").write_text(
            constraints_json(result.constraints)
        )
        (out / "hierarchy.json").write_text(hierarchy_json(result.hierarchy))
        (out / "hierarchy.dot").write_text(hierarchy_dot(result.hierarchy))
        (out / "graph.dot").write_text(
            graph_dot(result.graph, result.annotation)
        )
        print(f"wrote constraints/hierarchy/graph exports to {out}", file=sys.stderr)

    if args.json:
        payload = {
            "devices": result.annotation.element_classes,
            "nets": result.annotation.net_classes,
            "hierarchy": result.hierarchy.to_dict(),
            "hier": result.hier.as_dict() if result.hier else None,
            "timings": result.timings,
            "degraded": result.degraded,
            "diagnostics": [d.to_dict() for d in result.diagnostics],
        }
        print(json.dumps(payload, indent=2))
        return 0

    print("per-device annotation:")
    for device, cls in sorted(result.annotation.element_classes.items()):
        print(f"  {device:<16} {cls}")
    print("\nhierarchy:")
    print(result.hierarchy.render())
    print("\nconstraints:")
    for constraint in result.constraints:
        print(
            f"  {constraint.kind.value:<16} {', '.join(constraint.members)}"
            f"  ({constraint.source})"
        )
    return 0


def _report_staged_stop(args: argparse.Namespace, staged, profiler) -> int:
    """Render a staged run that halted before ``hierarchy``.

    One line per produced artifact (stage, type, fingerprint), flagged
    with the cache-hit marker and the saved path when applicable.
    """
    last = staged.last_artifact()
    print(f"stopped after stage {last.stage.value!r}:")
    for name, artifact in staged.artifacts.items():
        hit = "  (cache hit)" if name in staged.cache_hits else ""
        saved = staged.saved.get(name)
        where = f"  -> {saved}" if saved else ""
        print(f"  {artifact.describe()}{hit}{where}")
    for diag in staged.diagnostics:
        print(diag.format(), file=sys.stderr)
    if args.profile and profiler is not None:
        for stage_name, seconds in staged.timings().items():
            profiler.record_stage(stage_name, seconds)
        Path(args.profile).write_text(
            json.dumps(profiler.as_dict(), indent=2) + "\n"
        )
        print(f"wrote stage profile to {args.profile}", file=sys.stderr)
    return 0


def _report_hier_summary(result) -> None:
    """One stderr line summarizing what ``--hier`` reused, if anything."""
    report = getattr(result, "hier", None)
    if report is None:
        return
    print(
        f"hier: {report.n_instances} instance(s) of "
        f"{report.n_unique_groups} unique definition(s); "
        f"{report.reused}/{report.interior} interior CCC match sets "
        f"reused ({report.boundary} boundary)",
        file=sys.stderr,
    )


def _report_result_health(path: Path, result) -> None:
    """Surface lenient-mode diagnostics and degradation on stderr."""
    for diag in result.diagnostics:
        print(f"{path}: {diag.format()}", file=sys.stderr)
    if result.degraded:
        print(
            f"{path}: warning: annotation degraded — {result.degraded_reason}",
            file=sys.stderr,
        )


def _annotate_batch(
    args: argparse.Namespace,
    pipeline,
    paths: list[Path],
    port_labels: dict,
    mode: str,
    hier: bool = False,
) -> int:
    """Batch-annotate several decks through ``GanaPipeline.run_many``.

    In lenient mode the batch is fault-isolated: a deck that still
    fails (or blows ``--timeout``) yields a one-line failure summary on
    stderr and a non-zero exit, but every other deck is annotated.
    """
    results = pipeline.run_many(
        [path.read_text() for path in paths],
        names=[path.stem for path in paths],
        port_labels=port_labels,
        workers=args.workers,
        mode=mode,
        on_error="report" if mode == "lenient" else "raise",
        timeout=args.timeout,
        profile=bool(args.profile),
        artifact_cache=args.artifact_cache,
        hier=hier,
    )
    if args.profile:
        # Failed items carry the partial pre-failure profile too
        # (FailureReport.profile) — "None" now means "worker died
        # before recording anything", not "the item failed".
        payload = [
            {
                "netlist": str(path),
                "profile": result.profile,
            }
            for path, result in zip(paths, results)
        ]
        Path(args.profile).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote stage/template profiles to {args.profile}", file=sys.stderr)
    failures = 0
    for path, result in zip(paths, results):
        if not result.ok:
            failures += 1
            print(f"{path}: {result.summary()}", file=sys.stderr)
            for diag in result.diagnostics:
                print(f"{path}: {diag.format()}", file=sys.stderr)
        else:
            _report_result_health(path, result)
            _report_hier_summary(result)
    if args.json:
        payload = []
        for path, result in zip(paths, results):
            if result.ok:
                payload.append(
                    {
                        "netlist": str(path),
                        "devices": result.annotation.element_classes,
                        "nets": result.annotation.net_classes,
                        "hierarchy": result.hierarchy.to_dict(),
                        "hier": (
                            result.hier.as_dict() if result.hier else None
                        ),
                        "timings": result.timings,
                        "degraded": result.degraded,
                        "diagnostics": [
                            d.to_dict() for d in result.diagnostics
                        ],
                    }
                )
            else:
                payload.append(
                    {
                        "netlist": str(path),
                        "failed": True,
                        "stage": result.stage,
                        "error": result.error,
                        "diagnostics": [
                            d.to_dict() for d in result.diagnostics
                        ],
                    }
                )
        print(json.dumps(payload, indent=2))
        return 1 if failures else 0
    for path, result in zip(paths, results):
        if not result.ok:
            continue
        print(f"=== {path} ===")
        for device, cls in sorted(result.annotation.element_classes.items()):
            print(f"  {device:<16} {cls}")
        print(result.hierarchy.render())
    return 1 if failures else 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.datasets.synth import pretrain_annotator
    from repro.gcn.train import FaultTolerance

    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    fault = None
    if args.checkpoint_dir or args.max_divergence_retries is not None:
        defaults = FaultTolerance()
        fault = FaultTolerance(
            checkpoint_dir=args.checkpoint_dir,
            resume=bool(args.resume),
            max_divergence_retries=(
                args.max_divergence_retries
                if args.max_divergence_retries is not None
                else defaults.max_divergence_retries
            ),
        )
    annotator = pretrain_annotator(
        args.task,
        quick=args.quick,
        seed=args.seed,
        cache=False if args.no_cache else None,
        workers=args.workers,
        fault=fault,
    )
    annotator.model.save(args.out)
    print(f"saved {args.task} model ({annotator.model.n_parameters()} params) to {args.out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime.cache import ModelCache

    cache = ModelCache()
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached model(s) from {cache.directory}")
        return 0
    entries = cache.entries()
    print(f"cache dir: {cache.directory}  ({len(entries)} model(s))")
    for path in entries:
        print(f"  {path.name}  {path.stat().st_size} bytes")
    return 0


def _cmd_primitives(args: argparse.Namespace) -> int:
    from repro.primitives.library import default_library, extended_library

    library = extended_library() if args.extended else default_library()
    print(f"{len(library)} primitives:")
    for template in library:
        constraints = ", ".join(
            c.kind.value for c in template.constraints
        ) or "-"
        print(
            f"  {template.name:<12} {template.n_elements} elements   "
            f"constraints: {constraints}"
        )
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.datasets.synth import (
        generate_ota_bias_dataset,
        generate_rf_dataset,
    )
    from repro.spice.writer import write_circuit

    generator = (
        generate_ota_bias_dataset if args.task == "ota" else generate_rf_dataset
    )
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for item in generator(args.count, seed=args.seed):
        (out_dir / f"{item.name}.sp").write_text(write_circuit(item.circuit))
        (out_dir / f"{item.name}.labels.json").write_text(
            json.dumps(item.device_labels, indent=2)
        )
    print(f"wrote {args.count} decks (+labels) to {out_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GANA: GCN-based automated netlist annotation (DATE 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.core.stages import STAGE_ORDER

    stage_names = tuple(s.value for s in STAGE_ORDER)

    annotate = sub.add_parser("annotate", help="annotate SPICE netlist(s)")
    annotate.add_argument(
        "netlist",
        nargs="*",
        help="path(s) to SPICE deck(s); several decks batch-annotate in "
        "parallel (may be omitted with --resume-from)",
    )
    annotate.add_argument("--task", choices=("ota", "rf"), default="ota")
    annotate.add_argument("--model", help="trained model .npz (else quick-train)")
    annotate.add_argument(
        "--port",
        action="append",
        metavar="NET=LABEL",
        help="testbench port label, e.g. rfin=antenna or lo=oscillating",
    )
    annotate.add_argument("--json", action="store_true", help="JSON output")
    annotate.add_argument(
        "--export-dir",
        help="write ALIGN-style constraints.json, hierarchy.json/dot, graph.dot",
    )
    annotate.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the trained-model cache (always retrain)",
    )
    annotate.add_argument(
        "--stop-after",
        choices=stage_names,
        metavar="STAGE",
        help="halt after the named stage "
        f"({', '.join(stage_names)}); pairs with --save-artifacts",
    )
    annotate.add_argument(
        "--resume-from",
        metavar="ARTIFACT",
        help="resume from a saved stage artifact (.artifact.pkl file or a "
        "directory of them); the netlist argument may then be omitted",
    )
    annotate.add_argument(
        "--save-artifacts",
        metavar="DIR",
        help="write every stage's artifact under DIR for later --resume-from",
    )
    annotate.add_argument(
        "--artifact-cache",
        metavar="DIR",
        help="per-stage incremental recompute: stages whose inputs are "
        "unchanged load their artifact from DIR instead of re-running",
    )
    annotate.add_argument(
        "--workers",
        type=int,
        help="process-pool size for batch annotation (default: GANA_WORKERS or cpu count)",
    )
    elaboration = annotate.add_mutually_exclusive_group()
    elaboration.add_argument(
        "--hier",
        action="store_true",
        help="hierarchy-scoped annotation: match each unique subckt "
        "definition once and replay the results onto every instance "
        "(byte-identical output, faster on repeated-instance designs)",
    )
    elaboration.add_argument(
        "--flat",
        action="store_true",
        help="force the flat annotation path (default)",
    )
    annotate.add_argument(
        "--hier-tree",
        action="store_true",
        help="with --hier (implied): nest recognized blocks under their "
        "owning subckt instances in the hierarchy tree",
    )
    strictness = annotate.add_mutually_exclusive_group()
    strictness.add_argument(
        "--strict",
        action="store_true",
        help="fail on the first malformed card (default)",
    )
    strictness.add_argument(
        "--lenient",
        action="store_true",
        help="recover from malformed cards, reporting them as diagnostics;"
        " in batch mode also isolate per-deck failures",
    )
    annotate.add_argument(
        "--timeout",
        type=float,
        help="per-deck wall-clock ceiling in seconds for batch annotation",
    )
    annotate.add_argument(
        "--profile",
        metavar="OUT.json",
        help="write a stage/per-template profile of the run as JSON "
        "(a list keyed by netlist in batch mode)",
    )
    annotate.set_defaults(func=_cmd_annotate)

    train = sub.add_parser("train", help="train a recognition model")
    train.add_argument("--task", choices=("ota", "rf"), default="ota")
    train.add_argument("--out", required=True, help="output .npz path")
    train.add_argument("--quick", action="store_true", help="small/fast training")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the trained-model cache (always retrain)",
    )
    train.add_argument(
        "--workers",
        type=int,
        help="process-pool size for dataset generation (default: GANA_WORKERS or cpu count)",
    )
    train.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="write per-epoch training checkpoints to DIR (a killed run "
        "can resume with --resume)",
    )
    train.add_argument(
        "--resume",
        action="store_true",
        help="resume training from the newest checkpoint in "
        "--checkpoint-dir (corrupt/stale checkpoints are skipped with "
        "a warning)",
    )
    train.add_argument(
        "--max-divergence-retries",
        type=int,
        metavar="N",
        help="rollback budget for NaN/exploding-gradient recovery "
        "(default: 2; exhaustion aborts with a typed error)",
    )
    train.set_defaults(func=_cmd_train)

    cache = sub.add_parser("cache", help="inspect or clear the trained-model cache")
    cache.add_argument("--clear", action="store_true", help="delete all entries")
    cache.set_defaults(func=_cmd_cache)

    primitives = sub.add_parser("primitives", help="list the template library")
    primitives.add_argument(
        "--extended", action="store_true", help="include INV/BUF"
    )
    primitives.set_defaults(func=_cmd_primitives)

    datasets = sub.add_parser("datasets", help="write generated decks to disk")
    datasets.add_argument("--task", choices=("ota", "rf"), default="ota")
    datasets.add_argument("-n", "--count", type=int, default=10)
    datasets.add_argument("--out-dir", default="generated_decks")
    datasets.add_argument("--seed", default="cli")
    datasets.set_defaults(func=_cmd_datasets)

    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.exceptions import GanaError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except GanaError as exc:
        # One line, with the offending line number and hint when the
        # error carries them (SpiceSyntaxError does; see exceptions.py).
        where = ""
        line = getattr(exc, "line", None)
        if line is not None:
            where = f" at line {line}"
        hint = getattr(exc, "hint", None)
        suffix = f" (hint: {hint})" if hint else ""
        message = getattr(exc, "message", None) or str(exc)
        print(
            f"error: {type(exc).__name__}{where}: {message}{suffix}",
            file=sys.stderr,
        )
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
