"""Wirelength estimation over placements.

The paper's constraint annotation includes MIN_WIRELENGTH for
parasitic-sensitive RF blocks (Sec. III-C); this module provides the
metric those constraints optimize: half-perimeter wirelength (HPWL),
the standard placement objective, computed per net from device pin
positions (approximated by placed-rect centers).
"""

from __future__ import annotations

from collections import defaultdict

from repro.layout.placer import Layout
from repro.spice.netlist import Circuit, is_power_net


def net_pins(circuit: Circuit, include_power: bool = False) -> dict[str, list[str]]:
    """Net → devices touching it (each device counted once per net)."""
    pins: dict[str, set[str]] = defaultdict(set)
    for dev in circuit.devices:
        for net in set(dev.nets):
            if include_power or not is_power_net(net):
                pins[net].add(dev.name)
    return {net: sorted(devs) for net, devs in pins.items()}


def net_hpwl(layout: Layout, devices: list[str]) -> float:
    """Half-perimeter wirelength of one net over placed rect centers.

    Devices missing from the layout are skipped; single-pin (or fully
    unplaced) nets cost zero.
    """
    xs, ys = [], []
    for name in devices:
        rect = layout.device_rects.get(name)
        if rect is not None:
            cx, cy = rect.center
            xs.append(cx)
            ys.append(cy)
    if len(xs) < 2:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_wirelength(layout: Layout, circuit: Circuit) -> float:
    """Sum of per-net HPWL over all non-power nets."""
    return sum(
        net_hpwl(layout, devices)
        for devices in net_pins(circuit).values()
    )


def wirelength_report(layout: Layout, circuit: Circuit, top: int = 10) -> str:
    """Human-readable report: total plus the longest nets."""
    per_net = {
        net: net_hpwl(layout, devices)
        for net, devices in net_pins(circuit).items()
    }
    total = sum(per_net.values())
    lines = [f"total HPWL: {total:.1f} units over {len(per_net)} nets"]
    for net, value in sorted(per_net.items(), key=lambda kv: -kv[1])[:top]:
        lines.append(f"  {net:<20} {value:7.1f}")
    return "\n".join(lines)
