"""Rectangles, placements, and symmetry geometry for the layout use case."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import LayoutError


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle: origin (x, y) plus width/height."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise LayoutError(
                f"rect must have positive size, got {self.width}×{self.height}"
            )

    @property
    def x2(self) -> float:
        return self.x + self.width

    @property
    def y2(self) -> float:
        return self.y + self.height

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def area(self) -> float:
        return self.width * self.height

    def moved_to(self, x: float, y: float) -> "Rect":
        return replace(self, x=x, y=y)

    def overlaps(self, other: "Rect") -> bool:
        """Strict interior overlap (shared edges are fine)."""
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    def union(self, other: "Rect") -> "Rect":
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        return Rect(
            x=x,
            y=y,
            width=max(self.x2, other.x2) - x,
            height=max(self.y2, other.y2) - y,
        )

    def mirrored_about_x(self, axis_x: float) -> "Rect":
        """Mirror image about the vertical line x = axis_x."""
        return replace(self, x=2.0 * axis_x - self.x2)


def bounding_box(rects: list[Rect]) -> Rect:
    """Smallest rectangle covering every input rect."""
    if not rects:
        raise LayoutError("bounding_box of no rectangles")
    box = rects[0]
    for rect in rects[1:]:
        box = box.union(rect)
    return box


def symmetry_error(
    rects: list[tuple[Rect, Rect]], axis_x: float
) -> float:
    """Total mismatch of rect pairs about a vertical axis.

    Zero means every pair is perfectly mirrored; used by tests and the
    benchmark to check the placer honors symmetry constraints.
    """
    total = 0.0
    for left, right in rects:
        mirrored = right.mirrored_about_x(axis_x)
        total += abs(mirrored.x - left.x) + abs(mirrored.y - left.y)
        total += abs(mirrored.width - left.width)
        total += abs(mirrored.height - left.height)
    return total
