"""Simulated-annealing placement refinement.

The constructive placer (:func:`repro.layout.placer.place_hierarchy`)
is legal by construction but order-arbitrary.  This module anneals the
*orderings* it consumes — the left-to-right block sequence and each
block's internal device/pair sequence — against the total HPWL of the
circuit's nets.  Because every candidate is produced by the same legal
constructor, constraints (symmetry, no overlap) hold at every step;
the optimizer can only improve wirelength, never break the layout.

This is the consumer the MIN_WIRELENGTH constraint annotation exists
for (Sec. III-C): "if a sub-block is recognized as part of a wireless
circuit, minimization of wire lengths is important".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.hierarchy import HierarchyNode, NodeKind
from repro.exceptions import BudgetExceeded
from repro.layout.placer import Layout, place_hierarchy
from repro.layout.wirelength import total_wirelength
from repro.runtime.resilience import Budget
from repro.spice.netlist import Circuit
from repro.utils.rng import seeded_rng


@dataclass
class AnnealConfig:
    """Annealing schedule parameters."""

    steps: int = 400
    initial_temperature: float = 5.0
    cooling: float = 0.99  # geometric per-step factor
    seed: object = 0


@dataclass
class AnnealResult:
    """Best layout found plus the optimization trace."""

    layout: Layout
    block_order: dict[str, int]
    device_orders: dict[str, dict[str, int]]
    initial_cost: float
    final_cost: float
    history: list[float] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Fractional HPWL reduction (0.15 = 15 % shorter wires)."""
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


class _State:
    """Mutable ordering state with invertible random moves."""

    def __init__(self, root: HierarchyNode, rng):
        self.rng = rng
        self.blocks = [
            node.name
            for node in root.children
            if node.kind in (NodeKind.SUBBLOCK, NodeKind.PRIMITIVE)
        ]
        self.members: dict[str, list[str]] = {}
        for node in root.children:
            if node.kind in (NodeKind.SUBBLOCK, NodeKind.PRIMITIVE):
                self.members[node.name] = sorted(node.all_devices())

    def orders(self) -> tuple[dict[str, int], dict[str, dict[str, int]]]:
        block_order = {name: i for i, name in enumerate(self.blocks)}
        device_orders = {
            block: {name: i for i, name in enumerate(devs)}
            for block, devs in self.members.items()
        }
        return block_order, device_orders

    def random_move(self):
        """Apply a random swap; returns an undo closure."""
        if len(self.blocks) >= 2 and self.rng.random() < 0.3:
            i, j = self.rng.choice(len(self.blocks), size=2, replace=False)
            blocks = self.blocks

            blocks[i], blocks[j] = blocks[j], blocks[i]

            def undo():
                blocks[i], blocks[j] = blocks[j], blocks[i]

            return undo
        # Swap two devices inside one (big-enough) block.
        candidates = [b for b in self.blocks if len(self.members[b]) >= 2]
        if not candidates:
            return lambda: None
        block = candidates[int(self.rng.integers(0, len(candidates)))]
        devs = self.members[block]
        i, j = self.rng.choice(len(devs), size=2, replace=False)
        devs[i], devs[j] = devs[j], devs[i]

        def undo():
            devs[i], devs[j] = devs[j], devs[i]

        return undo


def anneal_placement(
    root: HierarchyNode,
    circuit: Circuit,
    config: AnnealConfig | None = None,
    budget: Budget | None = None,
) -> AnnealResult:
    """Refine the constructive placement by annealing orderings.

    Returns the best (lowest-HPWL) layout observed; the result always
    passes :meth:`~repro.layout.placer.Layout.verify`.

    ``budget`` (a :class:`~repro.runtime.resilience.Budget`) bounds the
    refinement in annealing steps and/or wall-clock.  On exhaustion
    :class:`~repro.exceptions.BudgetExceeded` is raised with the
    best-so-far :class:`AnnealResult` attached as ``exc.partial`` —
    every intermediate state is a legal layout, so the partial result
    is always usable.
    """
    config = config or AnnealConfig()
    rng = seeded_rng(("anneal", config.seed))
    state = _State(root, rng)

    def cost_of_current() -> tuple[float, Layout]:
        block_order, device_orders = state.orders()
        layout = place_hierarchy(root, circuit, block_order, device_orders)
        return total_wirelength(layout, circuit), layout

    cost, layout = cost_of_current()
    initial_cost = cost
    best_cost, best_layout = cost, layout
    best_orders = state.orders()
    history = [cost]
    temperature = config.initial_temperature

    def result() -> AnnealResult:
        return AnnealResult(
            layout=best_layout,
            block_order=best_orders[0],
            device_orders=best_orders[1],
            initial_cost=initial_cost,
            final_cost=best_cost,
            history=history,
        )

    for _step in range(config.steps):
        if budget is not None:
            try:
                budget.tick(what="annealing placer")
            except BudgetExceeded as exc:
                exc.partial = result()
                raise
        undo = state.random_move()
        new_cost, new_layout = cost_of_current()
        delta = new_cost - cost
        accept = delta <= 0 or rng.random() < math.exp(
            -delta / max(temperature, 1e-9)
        )
        if accept:
            cost, layout = new_cost, new_layout
            if cost < best_cost:
                best_cost, best_layout = cost, layout
                best_orders = state.orders()
        else:
            undo()
        history.append(cost)
        temperature *= config.cooling

    return result()
