"""Constraint-aware hierarchical placement (the Fig. 6 use case).

The paper closes with a use case: the extracted hierarchy and its
constraints drive a layout generator — primitives get placed, symmetric
pairs share a common axis, and blocks assemble hierarchically.  This
module is that consumer, on an abstract coordinate grid instead of a
PDK: a shelf packer per sub-block with symmetric pairs mirrored about
the block's axis, blocks abutted at the top level.

The output is checkable: :meth:`Layout.verify` asserts no overlaps and
zero symmetry error, which is what the layout benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import ConstraintKind
from repro.core.hierarchy import HierarchyNode, NodeKind
from repro.exceptions import LayoutError
from repro.layout.geometry import Rect, bounding_box, symmetry_error
from repro.spice.netlist import Circuit, Device, DeviceKind

#: Abstract grid units.
_UNIT = 1.0
_SPACING = 1.0
_BLOCK_SPACING = 4.0


def device_footprint(device: Device) -> tuple[float, float]:
    """(width, height) of a device on the abstract grid.

    Transistor area scales with W·m (finger count); capacitors with
    value (common-centroid arrays are big); resistors are tall and
    thin; inductors are large squares.
    """
    if device.kind.is_transistor:
        w = (device.param("w", 1e-6) or 1e-6) * (device.param("m", 1.0) or 1.0)
        width = max(1.0, round(w / 1e-6)) * _UNIT
        return (width, 2.0 * _UNIT)
    if device.kind is DeviceKind.CAPACITOR:
        value = device.value or 1e-12
        side = max(2.0, round((value / 1e-12) ** 0.5 * 2.0)) * _UNIT
        return (side, side)
    if device.kind is DeviceKind.RESISTOR:
        return (1.0 * _UNIT, 3.0 * _UNIT)
    if device.kind is DeviceKind.INDUCTOR:
        return (6.0 * _UNIT, 6.0 * _UNIT)
    return (1.0 * _UNIT, 1.0 * _UNIT)


@dataclass
class Layout:
    """Placement result: per-device rects, block outlines, axes."""

    device_rects: dict[str, Rect] = field(default_factory=dict)
    block_outlines: dict[str, Rect] = field(default_factory=dict)
    symmetry_axes: dict[str, float] = field(default_factory=dict)
    symmetric_pairs: dict[str, list[tuple[str, str]]] = field(default_factory=dict)

    @property
    def outline(self) -> Rect:
        return bounding_box(list(self.device_rects.values()))

    def total_area(self) -> float:
        return self.outline.area

    def verify(self) -> None:
        """Raise :class:`LayoutError` on overlap or symmetry violation."""
        rects = list(self.device_rects.items())
        for i, (name_a, rect_a) in enumerate(rects):
            for name_b, rect_b in rects[i + 1 :]:
                if rect_a.overlaps(rect_b):
                    raise LayoutError(f"devices {name_a} and {name_b} overlap")
        for block, pairs in self.symmetric_pairs.items():
            axis = self.symmetry_axes.get(block)
            if axis is None:
                raise LayoutError(f"block {block} has pairs but no axis")
            rect_pairs = [
                (self.device_rects[a], self.device_rects[b]) for a, b in pairs
            ]
            error = symmetry_error(rect_pairs, axis)
            if error > 1e-9:
                raise LayoutError(
                    f"block {block}: symmetry error {error} about x={axis}"
                )

    def summary(self) -> str:
        box = self.outline
        return (
            f"Layout: {len(self.device_rects)} devices, "
            f"{len(self.block_outlines)} blocks, "
            f"{box.width:.0f}×{box.height:.0f} units"
        )


def _symmetric_pairs_of(block: HierarchyNode) -> list[tuple[str, str]]:
    """Device pairs bound by symmetry constraints inside a block."""
    pairs: list[tuple[str, str]] = []
    seen: set[frozenset[str]] = set()
    for constraint in block.all_constraints():
        if constraint.kind is not ConstraintKind.SYMMETRY:
            continue
        members = [m for m in constraint.members]
        # Pair off adjacent members; symmetry groups from primitives
        # are two-device; merged axes list all devices sorted, pair in
        # twos (odd leftovers sit on the axis and need no mirror).
        for i in range(0, len(members) - 1, 2):
            key = frozenset((members[i], members[i + 1]))
            if key not in seen:
                seen.add(key)
                pairs.append((members[i], members[i + 1]))
    return pairs


def _place_block(
    block: HierarchyNode,
    devices: dict[str, Device],
    origin_x: float,
    origin_y: float,
    device_order: dict[str, int] | None = None,
) -> tuple[dict[str, Rect], float, list[tuple[str, str]]]:
    """Place one sub-block; returns (rects, axis_x, symmetric pairs).

    Symmetric pairs stack about the block axis (one device left, its
    partner mirrored right).  Remaining devices shelf-pack below.
    ``device_order`` optionally reorders the shelf/pair sequences —
    the knob the annealing optimizer turns.
    """
    names = sorted(n for n in block.all_devices() if n in devices)
    if device_order is not None:
        names.sort(key=lambda n: device_order.get(n, 0))
    pairs = [
        (a, b)
        for a, b in _symmetric_pairs_of(block)
        if a in devices and b in devices
    ]
    if device_order is not None:
        pairs.sort(key=lambda p: device_order.get(p[0], 0))
    paired = {n for pair in pairs for n in pair}

    rects: dict[str, Rect] = {}
    # Axis x: leave room for the widest mirrored member on the left.
    widest = max(
        [device_footprint(devices[a])[0] for a, _ in pairs] or [0.0]
    )
    axis_x = origin_x + widest + _SPACING

    y = origin_y
    for a, b in pairs:
        wa, ha = device_footprint(devices[a])
        right = Rect(x=axis_x + _SPACING / 2, y=y, width=wa, height=ha)
        left = right.mirrored_about_x(axis_x)
        rects[b] = right
        rects[a] = left
        y += ha + _SPACING

    # Shelf-pack the rest below the symmetric stack.
    shelf_x = origin_x
    shelf_y = y + _SPACING
    shelf_height = 0.0
    max_width = max(20.0 * _UNIT, 2 * (axis_x - origin_x) + 4 * _UNIT)
    for name in names:
        if name in paired:
            continue
        w, h = device_footprint(devices[name])
        if shelf_x + w > origin_x + max_width and shelf_x > origin_x:
            shelf_x = origin_x
            shelf_y += shelf_height + _SPACING
            shelf_height = 0.0
        rects[name] = Rect(x=shelf_x, y=shelf_y, width=w, height=h)
        shelf_x += w + _SPACING
        shelf_height = max(shelf_height, h)

    return rects, axis_x, pairs


def place_hierarchy(
    root: HierarchyNode,
    circuit: Circuit,
    block_order: dict[str, int] | None = None,
    device_orders: dict[str, dict[str, int]] | None = None,
) -> Layout:
    """Place a recognized hierarchy onto the abstract grid.

    Sub-blocks (and stand-alone primitives) are placed left to right;
    inside each, symmetry constraints are honored exactly.  The input
    ``circuit`` supplies device geometry.  ``block_order`` and
    ``device_orders`` (block name → device → rank) reorder the layout
    without ever breaking legality — the annealer's move space.
    """
    devices = {d.name: d for d in circuit.devices}
    layout = Layout()
    x = 0.0
    top_children = [
        node
        for node in root.children
        if node.kind in (NodeKind.SUBBLOCK, NodeKind.PRIMITIVE)
    ]
    if not top_children:
        raise LayoutError("hierarchy has no placeable children")
    if block_order is not None:
        top_children.sort(key=lambda n: block_order.get(n.name, 0))
    for node in top_children:
        order = (device_orders or {}).get(node.name)
        rects, axis_x, pairs = _place_block(node, devices, x, 0.0, order)
        if not rects:
            continue
        layout.device_rects.update(rects)
        outline = bounding_box(list(rects.values()))
        layout.block_outlines[node.name] = outline
        if pairs:
            layout.symmetry_axes[node.name] = axis_x
            layout.symmetric_pairs[node.name] = pairs
        x = outline.x2 + _BLOCK_SPACING
    return layout
