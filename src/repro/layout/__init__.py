"""Layout use case: constraint-aware placement + wirelength optimization."""

from repro.layout.anneal import AnnealConfig, AnnealResult, anneal_placement
from repro.layout.geometry import Rect, bounding_box, symmetry_error
from repro.layout.placer import Layout, device_footprint, place_hierarchy
from repro.layout.wirelength import (
    net_hpwl,
    net_pins,
    total_wirelength,
    wirelength_report,
)

__all__ = [
    "AnnealConfig",
    "AnnealResult",
    "Layout",
    "Rect",
    "anneal_placement",
    "bounding_box",
    "device_footprint",
    "net_hpwl",
    "net_pins",
    "place_hierarchy",
    "symmetry_error",
    "total_wirelength",
    "wirelength_report",
]
