"""First-order GCN baseline (Kipf & Welling, the paper's ref [9]).

The Kipf layer is the K=1 simplification of spectral convolution:
``Y = Â X W`` with ``Â = D̃^{-1/2} (A + I) D̃^{-1/2}``.  GANA chose
Defferrard's order-K Chebyshev filters instead; this module provides
the Kipf layer as a drop-in :class:`~repro.gcn.layers.Layer` so the
choice can be ablated (``benchmarks/bench_baseline_kipf.py``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.gcn.layers import Dense, Dropout, Layer, ReLU, SampleContext
from repro.gcn.model import GCNModel
from repro.utils.rng import seeded_rng


def renormalized_adjacency(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Kipf's renormalization trick: ``D̃^{-1/2} (A+I) D̃^{-1/2}``."""
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    n = adjacency.shape[0]
    with_loops = adjacency + sp.identity(n, format="csr")
    degrees = np.asarray(with_loops.sum(axis=1)).ravel()
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
    d = sp.diags(inv_sqrt)
    return sp.csr_matrix(d @ with_loops @ d)


class KipfConv(Layer):
    """``Y = Â X W + b`` — one-hop neighborhood averaging.

    The propagation operator is derived from the sample's cached
    rescaled Laplacian (``L̂ = −D^{-1/2}AD^{-1/2}`` when λmax = 2):
    ``Â = ½(I − L̂) = ½(I + D^{-1/2}AD^{-1/2})``, the lazy-random-walk
    smoother — spectrally the same first-order propagation family as
    Kipf's renormalized ``D̃^{-1/2}(A+I)D̃^{-1/2}`` (available exactly
    via :func:`renormalized_adjacency` when built from raw adjacency).
    """

    def __init__(self, in_features: int, out_features: int, rng):
        super().__init__()
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.params["weight"] = rng.normal(
            0.0, scale, size=(in_features, out_features)
        )
        self.params["bias"] = np.zeros(out_features)
        self.zero_grad()
        self._cache: dict[int, sp.csr_matrix] = {}

    def _propagation(self, ctx: SampleContext) -> sp.csr_matrix:
        lap = ctx.laplacian
        key = id(lap)
        if key not in self._cache:
            n = lap.shape[0]
            identity = sp.identity(n, format="csr")
            self._cache[key] = sp.csr_matrix(0.5 * (identity - lap))
        return self._cache[key]

    def forward(self, x, ctx, training):
        a_hat = self._propagation(ctx)
        self._ax = a_hat @ x
        self._a_hat = a_hat
        return self._ax @ self.params["weight"] + self.params["bias"]

    def backward(self, grad):
        self.grads["weight"] += self._ax.T @ grad
        self.grads["bias"] += grad.sum(axis=0)
        return self._a_hat.T @ (grad @ self.params["weight"].T)


def kipf_model(
    n_features: int = 18,
    n_classes: int = 2,
    hidden: tuple[int, ...] = (32, 64),
    fc_size: int = 64,
    dropout: float = 0.2,
    seed: int = 0,
) -> GCNModel:
    """A node-classification model with Kipf layers instead of ChebConv.

    Assembled by hand (no pooling — Kipf's semi-supervised setting) but
    reusing the training stack: the returned object is a plain
    :class:`~repro.gcn.model.GCNModel` whose layer list was replaced.
    """
    from repro.gcn.model import GCNConfig

    config = GCNConfig(
        n_features=n_features,
        n_classes=n_classes,
        n_layers=len(hidden),
        channels=hidden,
        filter_size=1,
        fc_size=fc_size,
        dropout=dropout,
        batch_norm=False,
        pooling=False,
        seed=seed,
    )
    model = GCNModel(config)
    rng = seeded_rng(("kipf", seed))
    layers: list[Layer] = []
    in_features = n_features
    for width in hidden:
        layers.append(KipfConv(in_features, width, rng))
        layers.append(ReLU())
        in_features = width
    layers.append(Dense(in_features, fc_size, rng))
    layers.append(ReLU())
    layers.append(Dropout(dropout, seeded_rng(("kipf-drop", seed))))
    layers.append(Dense(fc_size, n_classes, rng))
    model.layers = layers
    return model
