"""Library-based sub-block recognition — the prior art GANA replaces.

Refs [2] (sizing-rules method) and [3] (FEATS) match circuits against
"prespecified templates, requiring an enumeration of possible
topologies in an exhaustive database".  This module implements that
approach faithfully at the sub-block level: each library entry is a
*complete* sub-block netlist (a specific OTA/LNA/mixer/oscillator
topology), and recognition is exact subgraph isomorphism.

Its failure mode is the paper's motivation: any variant not enumerated
— a different load, an extra cascode, a new compensation branch — goes
unrecognized.  ``benchmarks/bench_baseline_template.py`` quantifies
this against the GCN on the same held-out variant sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.bipartite import CircuitGraph
from repro.primitives.isomorphism import PatternGraph, VF2Matcher
from repro.spice.netlist import Circuit


@dataclass
class SubblockTemplate:
    """One enumerated sub-block topology with its class label."""

    name: str
    block_class: str
    pattern: PatternGraph

    @classmethod
    def from_circuit(
        cls, name: str, block_class: str, circuit: Circuit
    ) -> "SubblockTemplate":
        graph = CircuitGraph.from_circuit(circuit)
        return cls(
            name=name, block_class=block_class,
            pattern=PatternGraph.from_graph(graph),
        )


@dataclass
class TemplateRecognizer:
    """Exact-match recognizer over an enumerated topology database."""

    templates: list[SubblockTemplate] = field(default_factory=list)

    def add(self, template: SubblockTemplate) -> None:
        self.templates.append(template)

    def recognize(self, graph: CircuitGraph) -> dict[str, str]:
        """Device name → class for every device covered by a template
        match; devices no template covers are absent (unrecognized)."""
        out: dict[str, str] = {}
        for template in sorted(
            self.templates, key=lambda t: -t.pattern.graph.n_elements
        ):
            matcher = VF2Matcher(template.pattern, graph)
            for iso in matcher.find_all():
                pattern_graph = template.pattern.graph
                for pv, tv in iso.mapping:
                    if pv < pattern_graph.n_elements:
                        name = graph.elements[tv].name
                        out.setdefault(name, template.block_class)
        return out

    def accuracy(self, graph: CircuitGraph, truth: dict[str, str]) -> float:
        """Device-level accuracy; uncovered devices count as wrong —
        a library-based flow simply has no answer for them."""
        recognized = self.recognize(graph)
        device_truth = {
            name: cls
            for name, cls in truth.items()
            if name in {d.name for d in graph.elements}
        }
        if not device_truth:
            return 1.0
        correct = sum(
            1
            for name, cls in device_truth.items()
            if recognized.get(name) == cls
        )
        return correct / len(device_truth)


def subblock_template_library(
    train_items, max_templates: int = 50
) -> TemplateRecognizer:
    """Build the enumerated database from *training* circuits.

    Each training circuit contributes its class-pure device groups as
    whole-topology templates (deduplicated by a cheap structural
    signature).  This mirrors how a template library is curated: every
    known topology gets an entry; nothing else exists.
    """
    recognizer = TemplateRecognizer()
    seen_signatures: set[tuple] = set()
    for item in train_items:
        graph = CircuitGraph.from_circuit(item.circuit)
        by_class: dict[str, list] = {}
        for dev in item.circuit.devices:
            cls = item.device_labels.get(dev.name)
            if cls is not None:
                by_class.setdefault(cls, []).append(dev)
        for cls, devices in by_class.items():
            signature = (
                cls,
                tuple(sorted((d.kind.value) for d in devices)),
                len({n for d in devices for n in d.nets}),
            )
            if signature in seen_signatures:
                continue
            seen_signatures.add(signature)
            if len(recognizer.templates) >= max_templates:
                return recognizer
            sub = Circuit(
                name=f"{item.name}_{cls}",
                # Every boundary net is a port: templates must embed.
                ports=tuple(
                    sorted({n for d in devices for n in d.nets})
                ),
                devices=list(devices),
            )
            recognizer.add(
                SubblockTemplate.from_circuit(sub.name, cls, sub)
            )
    return recognizer


def task_fallback_recognizer(
    class_names: tuple[str, ...],
    n_train: int = 16,
    seed: object = "degraded-fallback",
    max_templates: int = 40,
) -> TemplateRecognizer:
    """A template recognizer covering a task's class vocabulary.

    This is the degradation ladder's safety net: when GCN inference
    fails (or is too unsure to trust), ``GanaPipeline.run`` falls back
    to exactly the prior art the paper replaces — template matching
    over an enumerated topology database — built here from a small
    seeded sample of the task's generator circuits.  Construction is
    deterministic and pure, so the recognizer can be built lazily and
    cached on the pipeline.
    """
    from repro.datasets.synth import generate_ota_bias_dataset, generate_rf_dataset

    generator = (
        generate_rf_dataset
        if {"lna", "mixer", "osc"} & set(class_names)
        else generate_ota_bias_dataset
    )
    items = generator(n_train, seed=seed)
    return subblock_template_library(items, max_templates=max_templates)
