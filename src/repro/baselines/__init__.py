"""Baselines the paper positions GANA against.

* :mod:`repro.baselines.template` — library-based sub-block recognition
  (the prior art of refs [2], [3]): exact subgraph isomorphism against a
  library of *whole sub-block* templates.  Works only for topologies
  enumerated in the library — the brittleness that motivates the GCN.
* :mod:`repro.baselines.kipf` — first-order GCN layer (Kipf & Welling,
  ref [9]) as a drop-in alternative to the Chebyshev filters.
"""

from repro.baselines.kipf import KipfConv, kipf_model
from repro.baselines.template import (
    TemplateRecognizer,
    subblock_template_library,
)

__all__ = [
    "KipfConv",
    "TemplateRecognizer",
    "kipf_model",
    "subblock_template_library",
]
