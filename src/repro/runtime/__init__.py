"""Runtime layer: caching, parallel execution, and resilience.

The paper's headline numbers are wall-clock (Sec. V-B: 135 s for the
switched-capacitor filter, 514 s for the phased array), and the
north-star deployment feeds the flow arbitrary user netlists at
volume — so runtime behaviour is a first-class concern of the
reproduction.  This package holds the infrastructure the rest of the
code builds on:

* :mod:`repro.runtime.cache` — a content-addressed disk cache for
  trained recognition models, so ``GanaPipeline.pretrained()`` is a
  millisecond load after the first call in *any* process;
* :mod:`repro.runtime.parallel` — a process-pool ``parallel_map`` with
  chunking, deterministic result ordering, transient-failure retries,
  and a logged serial fallback; used for dataset generation,
  cross-validation folds, and batch annotation;
* :mod:`repro.runtime.resilience` — structured diagnostics for lenient
  parsing, per-item failure reports for fault-isolated batch runs,
  step/wall-clock budgets for unbounded searches, and SIGALRM
  time limits;
* :mod:`repro.runtime.profile` — a stage/per-template profiler for
  annotation runs (``GanaPipeline.run(..., profile=True)``, CLI
  ``--profile out.json``).
"""

from repro.runtime.cache import (
    ModelCache,
    cache_enabled,
    default_cache_dir,
    fingerprint,
)
from repro.runtime.parallel import parallel_map, resolve_workers
from repro.runtime.profile import PipelineProfiler, TemplateStats
from repro.runtime.resilience import (
    Budget,
    Diagnostic,
    FailureReport,
    diagnostic_from_error,
    failure_report,
    stage,
    time_limit,
)

__all__ = [
    "Budget",
    "Diagnostic",
    "FailureReport",
    "ModelCache",
    "cache_enabled",
    "default_cache_dir",
    "diagnostic_from_error",
    "failure_report",
    "fingerprint",
    "parallel_map",
    "resolve_workers",
    "PipelineProfiler",
    "TemplateStats",
    "stage",
    "time_limit",
]
