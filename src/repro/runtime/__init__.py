"""Runtime layer: caching and parallel execution for the GANA flow.

The paper's headline numbers are wall-clock (Sec. V-B: 135 s for the
switched-capacitor filter, 514 s for the phased array), so runtime is a
first-class concern of the reproduction.  This package holds the two
infrastructure pieces the rest of the code builds on:

* :mod:`repro.runtime.cache` — a content-addressed disk cache for
  trained recognition models, so ``GanaPipeline.pretrained()`` is a
  millisecond load after the first call in *any* process;
* :mod:`repro.runtime.parallel` — a process-pool ``parallel_map`` with
  chunking, deterministic result ordering, and a serial fallback, used
  for dataset generation, cross-validation folds, and batch annotation.
"""

from repro.runtime.cache import (
    ModelCache,
    cache_enabled,
    default_cache_dir,
    fingerprint,
)
from repro.runtime.parallel import parallel_map, resolve_workers

__all__ = [
    "ModelCache",
    "cache_enabled",
    "default_cache_dir",
    "fingerprint",
    "parallel_map",
    "resolve_workers",
]
