"""Stage-level profiling for the annotation pipeline.

The ISSUE's observability requirement: know *where* an annotation run
spends its time without reaching for cProfile.  A
:class:`PipelineProfiler` rides through ``GanaPipeline.run(...,
profile=True)`` and collects

* **stages** — wall-clock seconds per pipeline stage (preprocess,
  graph, gcn, post1, post2, hierarchy), the same numbers
  ``PipelineResult.timings`` reports;
* **per_template** — per primitive template: VF2 launches, matches
  found, cumulative seconds, and how often the kind-histogram test
  skipped the template without launching a search;
* **counters** — free-form event counts (channel-connected components
  matched, ...);
* **definitions** — hierarchy-scoped runs (``--hier``) attribute
  Postprocessing I wall-clock per subckt definition × instance count:
  how many CCCs each definition owned, how many were answered by
  cross-instance match reuse, and the seconds spent.

Everything is plain ``dict``/``float``/``int`` so the profile pickles
across the ``run_many`` process pool and serializes with
``json.dump`` unchanged (``--profile out.json`` on the CLI).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator


@dataclass
class TemplateStats:
    """Accumulated matching statistics for one primitive template."""

    launches: int = 0
    matches: int = 0
    seconds: float = 0.0
    skips: int = 0  # kind-histogram rejections (no VF2 launch)

    def as_dict(self) -> dict[str, Any]:
        return {
            "launches": self.launches,
            "matches": self.matches,
            "seconds": round(self.seconds, 6),
            "skips": self.skips,
        }


@dataclass
class PipelineProfiler:
    """Collects per-stage and per-template timings for one pipeline run."""

    stages: dict[str, float] = field(default_factory=dict)
    templates: dict[str, TemplateStats] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    definitions: dict[str, dict] = field(default_factory=dict)

    # -- recording ---------------------------------------------------

    @contextmanager
    def stage(self, name) -> Iterator[None]:
        """Time a block as pipeline stage ``name`` (additive on re-entry).

        ``name`` is a string or a ``repro.core.stages.StageName``
        member; labels are always stored as string values.
        """
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record_stage(name, time.perf_counter() - started)

    def record_stage(self, name, seconds: float) -> None:
        name = getattr(name, "value", name)
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def _stats(self, template: str) -> TemplateStats:
        stats = self.templates.get(template)
        if stats is None:
            stats = self.templates[template] = TemplateStats()
        return stats

    def record_template(
        self, template: str, seconds: float, matches: int
    ) -> None:
        """One VF2 launch of ``template``: its wall-clock and match count."""
        stats = self._stats(template)
        stats.launches += 1
        stats.matches += matches
        stats.seconds += seconds

    def record_template_skip(self, template: str) -> None:
        """The kind-histogram test rejected ``template`` without a launch."""
        self._stats(template).skips += 1

    def count(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    def record_definition(
        self,
        definition: str,
        *,
        instances: int,
        cccs: int,
        reused: int,
        seconds: float,
    ) -> None:
        """Attribute hierarchy-scoped matching work to one definition.

        Additive on re-entry (``instances`` takes the max — it is a
        population size, not an event count).
        """
        stats = self.definitions.setdefault(
            definition,
            {"instances": 0, "cccs": 0, "reused": 0, "seconds": 0.0},
        )
        stats["instances"] = max(stats["instances"], instances)
        stats["cccs"] += cccs
        stats["reused"] += reused
        stats["seconds"] += seconds

    # -- reporting ---------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready profile: stages, per-template stats, counters.

        Templates are sorted by cumulative seconds, most expensive
        first, so the hot template is the first key a reader sees.
        """
        per_template = {
            name: stats.as_dict()
            for name, stats in sorted(
                self.templates.items(),
                key=lambda item: item[1].seconds,
                reverse=True,
            )
        }
        out = {
            "stages": {k: round(v, 6) for k, v in self.stages.items()},
            "per_template": per_template,
            "counters": dict(self.counters),
        }
        if self.definitions:
            out["definitions"] = {
                name: {**stats, "seconds": round(stats["seconds"], 6)}
                for name, stats in sorted(
                    self.definitions.items(),
                    key=lambda item: item[1]["seconds"],
                    reverse=True,
                )
            }
        return out

    def write_json(self, path: str | Path) -> Path:
        """Dump the profile to ``path`` (pretty-printed, trailing newline)."""
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path
