"""Process-pool ``parallel_map`` with chunking, retries, and a serial
fallback.

The GANA flow has three embarrassingly parallel loops: synthetic
dataset generation, cross-validation folds, and fleet-scale batch
annotation.  All three funnel through :func:`parallel_map`, which

* resolves the worker count from the argument, the ``GANA_WORKERS``
  environment variable, or ``os.cpu_count()`` (in that order),
* preserves input order in the result list regardless of completion
  order (``ProcessPoolExecutor.map`` semantics),
* chunks items so per-task IPC overhead amortizes,
* retries transient pool failures (a killed/OOMed worker breaks the
  whole pool) with exponential backoff before giving up on the pool,
* keeps executors warm between calls: pools are expensive to build
  (fork + per-worker initializer), so pools without an initializer —
  and pools whose initializer state is fingerprinted by a ``pool_key``
  — are cached in a small LRU registry and handed back to the next
  compatible call instead of being torn down (see
  :func:`shutdown_pools`), and
* falls back to a plain serial loop when only one worker is available,
  when the item list is tiny, or when the pool cannot be used at all
  (unpicklable payloads, sandboxed environments without ``fork``) —
  results are identical either way, only wall-clock differs.  The
  fallback is *logged* with the original pool failure (logger
  ``repro.runtime.parallel``), and if the serial rerun itself fails,
  the pool failure is chained in as the exception's ``__cause__`` so
  batch failures stay debuggable.
"""

from __future__ import annotations

import atexit
import logging
import math
import os
import pickle
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

#: Environment variable overriding the default worker count.
WORKERS_ENV = "GANA_WORKERS"

#: Pool failures worth retrying: a crashed worker (OOM-kill, segfault,
#: ``os._exit``) breaks the executor, but a fresh pool usually works.
TRANSIENT_POOL_ERRORS = (BrokenProcessPool, OSError)

#: Pool failures that will never succeed on retry (unpicklable payloads,
#: missing multiprocessing support) — go straight to the serial path.
_FATAL_POOL_ERRORS = (
    ValueError,
    TypeError,
    AttributeError,
    ImportError,
    pickle.PicklingError,
)

_LOG = logging.getLogger(__name__)

#: Warm executors keyed by ``(n_workers, pool_key)``.  A ``None`` key
#: slot holds the generic no-initializer pool; keyed slots hold pools
#: whose per-worker initializer state is pinned by the caller's
#: ``pool_key`` fingerprint (same key ⇒ same initializer semantics, so
#: reuse is safe).  Ordered for LRU eviction.
_POOLS: "OrderedDict[tuple[int, str | None], ProcessPoolExecutor]" = OrderedDict()

#: How many warm pools to keep at once; the least recently used pool
#: beyond this is shut down.  Two covers the common interleaving of a
#: generic pool (cross-validation, dataset generation) with one
#: pipeline-initialized pool (batch annotation).
_MAX_POOLS = 2


def _checkout_pool(
    n_workers: int,
    pool_key: str | None,
    initializer: Callable[..., None] | None,
    initargs: Sequence[Any],
) -> ProcessPoolExecutor:
    """Fetch (or build) the warm pool for this key; refresh its LRU slot."""
    key = (n_workers, pool_key)
    pool = _POOLS.pop(key, None)
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=initializer,
            initargs=tuple(initargs),
        )
    _POOLS[key] = pool
    while len(_POOLS) > _MAX_POOLS:
        _, stale = _POOLS.popitem(last=False)
        stale.shutdown(wait=False, cancel_futures=True)
    return pool


def _discard_pool(pool: ProcessPoolExecutor) -> None:
    """Drop a (presumed broken) pool from the registry and kill it."""
    for key, cached in list(_POOLS.items()):
        if cached is pool:
            del _POOLS[key]
    pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools(wait: bool = True) -> None:
    """Shut down every warm executor (atexit runs this with wait=False).

    Call it explicitly from long-lived hosts that want to release the
    worker processes early; the registry refills on the next pooled
    :func:`parallel_map` call.
    """
    while _POOLS:
        _, pool = _POOLS.popitem(last=False)
        pool.shutdown(wait=wait, cancel_futures=not wait)


atexit.register(shutdown_pools, wait=False)


def resolve_workers(workers: int | None = None) -> int:
    """Worker count: explicit argument > ``GANA_WORKERS`` > cpu count."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def default_chunksize(n_items: int, workers: int) -> int:
    """Aim for ~4 chunks per worker so stragglers rebalance."""
    return max(1, math.ceil(n_items / (workers * 4)))


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: int | None = None,
    chunksize: int | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
    pool_retries: int = 1,
    backoff: float = 0.2,
    pool_key: str | None = None,
) -> list[Any]:
    """``[fn(x) for x in items]``, possibly across a process pool.

    The result order always matches the input order.  ``fn`` (and the
    items) must be picklable for the pool path.  Transient pool
    failures (a worker killed mid-batch) are retried ``pool_retries``
    times with exponential backoff (``backoff * 2**attempt`` seconds);
    ``fn`` must therefore be effectively pure, since a retry recomputes
    the whole batch.  If the pool stays unusable the map reruns
    serially, logging the original pool failure — callers get the same
    values either way.

    ``initializer(*initargs)`` runs once per worker (pool path) or once
    up front (serial path) — use it to install heavyweight shared state
    such as a trained pipeline instead of pickling it per item.

    Pool reuse: a call with no initializer always reuses the warm
    generic pool.  A call *with* an initializer reuses a warm pool only
    when ``pool_key`` is given — the key must fingerprint the
    initializer state, because reused workers keep the state the pool's
    *first* call installed.  Without a key, an initializer call gets a
    throwaway pool, exactly as before.
    """
    items = list(items)
    n_workers = min(resolve_workers(workers), len(items))
    if n_workers <= 1 or len(items) <= 1:
        return _serial_map(fn, items, initializer, initargs)
    chunksize = chunksize or default_chunksize(len(items), n_workers)
    reusable = initializer is None or pool_key is not None

    pool_failure: BaseException | None = None
    for attempt in range(max(0, pool_retries) + 1):
        pool: ProcessPoolExecutor | None = None
        try:
            if reusable:
                pool = _checkout_pool(
                    n_workers,
                    pool_key if initializer is not None else None,
                    initializer,
                    initargs,
                )
                return list(pool.map(fn, items, chunksize=chunksize))
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=initializer,
                initargs=tuple(initargs),
            ) as pool:
                return list(pool.map(fn, items, chunksize=chunksize))
        except _FATAL_POOL_ERRORS as exc:
            pool_failure = exc
            _LOG.warning(
                "process pool unusable (%s: %s); falling back to the "
                "serial path",
                type(exc).__name__,
                exc,
            )
            break
        except TRANSIENT_POOL_ERRORS as exc:
            pool_failure = exc
            if reusable and pool is not None:
                # A broken pool must never be handed to the next call.
                _discard_pool(pool)
            if attempt < pool_retries:
                delay = backoff * (2**attempt)
                _LOG.warning(
                    "process pool failed (%s: %s); rebuilding and "
                    "retrying in %.2gs (attempt %d of %d)",
                    type(exc).__name__,
                    exc,
                    delay,
                    attempt + 1,
                    pool_retries,
                )
                time.sleep(delay)
            else:
                _LOG.warning(
                    "process pool failed %d time(s) (%s: %s); falling "
                    "back to the serial path",
                    attempt + 1,
                    type(exc).__name__,
                    exc,
                )

    try:
        return _serial_map(fn, items, initializer, initargs)
    except Exception as exc:
        if pool_failure is not None and exc.__cause__ is None:
            # Surface the pool failure alongside the serial one —
            # "silently swallowed the pool error" is undebuggable.
            raise exc from pool_failure
        raise


def _serial_map(fn, items, initializer, initargs) -> list[Any]:
    if initializer is not None:
        initializer(*initargs)
    return [fn(item) for item in items]
