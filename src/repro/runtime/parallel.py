"""Process-pool ``parallel_map`` with chunking and a serial fallback.

The GANA flow has three embarrassingly parallel loops: synthetic
dataset generation, cross-validation folds, and fleet-scale batch
annotation.  All three funnel through :func:`parallel_map`, which

* resolves the worker count from the argument, the ``GANA_WORKERS``
  environment variable, or ``os.cpu_count()`` (in that order),
* preserves input order in the result list regardless of completion
  order (``ProcessPoolExecutor.map`` semantics),
* chunks items so per-task IPC overhead amortizes, and
* falls back to a plain serial loop when only one worker is available,
  when the item list is tiny, or when the pool cannot be used at all
  (unpicklable payloads, sandboxed environments without ``fork``) —
  results are identical either way, only wall-clock differs.
"""

from __future__ import annotations

import math
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

#: Environment variable overriding the default worker count.
WORKERS_ENV = "GANA_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Worker count: explicit argument > ``GANA_WORKERS`` > cpu count."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def default_chunksize(n_items: int, workers: int) -> int:
    """Aim for ~4 chunks per worker so stragglers rebalance."""
    return max(1, math.ceil(n_items / (workers * 4)))


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: int | None = None,
    chunksize: int | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
) -> list[Any]:
    """``[fn(x) for x in items]``, possibly across a process pool.

    The result order always matches the input order.  ``fn`` (and the
    items) must be picklable for the pool path; if pool setup or
    execution fails for an infrastructure reason, the map silently
    reruns serially, so callers never need a try/except of their own.

    ``initializer(*initargs)`` runs once per worker (pool path) or once
    up front (serial path) — use it to install heavyweight shared state
    such as a trained pipeline instead of pickling it per item.
    """
    items = list(items)
    n_workers = min(resolve_workers(workers), len(items))
    if n_workers <= 1 or len(items) <= 1:
        return _serial_map(fn, items, initializer, initargs)
    chunksize = chunksize or default_chunksize(len(items), n_workers)
    try:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=initializer,
            initargs=tuple(initargs),
        ) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (
        OSError,
        ValueError,
        TypeError,
        AttributeError,
        ImportError,
        pickle.PicklingError,
        BrokenProcessPool,
    ):
        # Pool unavailable (sandbox, missing sem support) or payload
        # unpicklable — the serial path computes the same values.
        return _serial_map(fn, items, initializer, initargs)


def _serial_map(fn, items, initializer, initargs) -> list[Any]:
    if initializer is not None:
        initializer(*initargs)
    return [fn(item) for item in items]
