"""Process-pool ``parallel_map`` with chunking, retries, and a serial
fallback.

The GANA flow has three embarrassingly parallel loops: synthetic
dataset generation, cross-validation folds, and fleet-scale batch
annotation.  All three funnel through :func:`parallel_map`, which

* resolves the worker count from the argument, the ``GANA_WORKERS``
  environment variable, or ``os.cpu_count()`` (in that order),
* preserves input order in the result list regardless of completion
  order (``ProcessPoolExecutor.map`` semantics),
* chunks items so per-task IPC overhead amortizes,
* retries transient pool failures (a killed/OOMed worker breaks the
  whole pool) with exponential backoff before giving up on the pool,
* keeps executors warm between calls: pools are expensive to build
  (fork + per-worker initializer), so pools without an initializer —
  and pools whose initializer state is fingerprinted by a ``pool_key``
  — are cached in a small LRU registry and handed back to the next
  compatible call instead of being torn down (see
  :func:`shutdown_pools`); a cached pool is health-checked at checkout
  (broken flag, shut-down flag, per-worker liveness) and silently
  rebuilt when a worker died between calls,
* supervises crashes when the caller passes ``on_crash``: a broken
  pool triggers a bisection over the item list that quarantines the
  specific poison item (run alone in a sacrificial single-worker
  pool) and maps it through ``on_crash`` while every sibling item
  completes normally — per-pool health counters (:func:`pool_health`)
  record breaks, rebuilds, and quarantines, and
* falls back to a plain serial loop when only one worker is available,
  when the item list is tiny, or when the pool cannot be used at all
  (unpicklable payloads, sandboxed environments without ``fork``) —
  results are identical either way, only wall-clock differs.  The
  fallback is *logged* with the original pool failure (logger
  ``repro.runtime.parallel``), and if the serial rerun itself fails,
  the pool failure is chained in as the exception's ``__cause__`` so
  batch failures stay debuggable.
"""

from __future__ import annotations

import atexit
import logging
import math
import os
import pickle
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

#: Environment variable overriding the default worker count.
WORKERS_ENV = "GANA_WORKERS"

#: Pool failures worth retrying: a crashed worker (OOM-kill, segfault,
#: ``os._exit``) breaks the executor, but a fresh pool usually works.
TRANSIENT_POOL_ERRORS = (BrokenProcessPool, OSError)

#: Pool failures that will never succeed on retry (unpicklable payloads,
#: missing multiprocessing support) — go straight to the serial path.
_FATAL_POOL_ERRORS = (
    ValueError,
    TypeError,
    AttributeError,
    ImportError,
    pickle.PicklingError,
)

_LOG = logging.getLogger(__name__)

#: Warm executors keyed by ``(n_workers, pool_key)``.  A ``None`` key
#: slot holds the generic no-initializer pool; keyed slots hold pools
#: whose per-worker initializer state is pinned by the caller's
#: ``pool_key`` fingerprint (same key ⇒ same initializer semantics, so
#: reuse is safe).  Ordered for LRU eviction.
_POOLS: "OrderedDict[tuple[int, str | None], ProcessPoolExecutor]" = OrderedDict()

#: How many warm pools to keep at once; the least recently used pool
#: beyond this is shut down.  Two covers the common interleaving of a
#: generic pool (cross-validation, dataset generation) with one
#: pipeline-initialized pool (batch annotation).
_MAX_POOLS = 2


@dataclass
class PoolHealth:
    """Lifecycle counters for one warm-pool registry slot.

    Counters survive pool rebuilds and shutdowns — they describe the
    *slot* (a ``(n_workers, pool_key)`` pairing), not one executor
    instance, so a long-lived host can watch crash rates over time.
    """

    checkouts: int = 0  # warm (reused) checkouts served
    rebuilt: int = 0  # cached pools found unhealthy and rebuilt
    maps: int = 0  # completed parallel_map calls
    items: int = 0  # items completed across those maps
    breaks: int = 0  # BrokenProcessPool/OSError events
    quarantined: int = 0  # poison items isolated by bisection


#: Health counters per registry key; see :func:`pool_health`.
_POOL_HEALTH: dict[tuple[int, str | None], PoolHealth] = {}


def _health(key: tuple[int, str | None]) -> PoolHealth:
    return _POOL_HEALTH.setdefault(key, PoolHealth())


def pool_health() -> dict[tuple[int, str | None], PoolHealth]:
    """Live per-slot health counters keyed by ``(n_workers, pool_key)``."""
    return dict(_POOL_HEALTH)


def reset_pool_health() -> None:
    """Zero all health counters (test isolation)."""
    _POOL_HEALTH.clear()


def _pool_is_healthy(pool: ProcessPoolExecutor) -> bool:
    """True when the executor can still serve work.

    Not broken, not shut down, and every spawned worker alive.  A
    worker that died *between* calls (OOM killer, external SIGKILL)
    only flags the executor on its next use — checking liveness up
    front keeps :func:`_checkout_pool` from handing out a doomed pool.
    """
    if getattr(pool, "_broken", False) or getattr(pool, "_shutdown_thread", False):
        return False
    processes = getattr(pool, "_processes", None) or {}
    return all(process.is_alive() for process in processes.values())


def _checkout_pool(
    n_workers: int,
    pool_key: str | None,
    initializer: Callable[..., None] | None,
    initargs: Sequence[Any],
) -> ProcessPoolExecutor:
    """Fetch (or build) the warm pool for this key; refresh its LRU slot.

    An unhealthy cached pool (dead worker, broken, already shut down)
    is discarded and replaced with a fresh one — callers never see it.
    """
    key = (n_workers, pool_key)
    pool = _POOLS.pop(key, None)
    if pool is not None and not _pool_is_healthy(pool):
        _LOG.warning(
            "warm pool %s is unhealthy (broken executor or dead worker); "
            "rebuilding",
            key,
        )
        _health(key).rebuilt += 1
        _shutdown_quietly(pool, wait=False)
        pool = None
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=initializer,
            initargs=tuple(initargs),
        )
    else:
        _health(key).checkouts += 1
    _POOLS[key] = pool
    while len(_POOLS) > _MAX_POOLS:
        _, stale = _POOLS.popitem(last=False)
        _shutdown_quietly(stale, wait=False)
    return pool


def _shutdown_quietly(
    pool: ProcessPoolExecutor, wait: bool, join_timeout: float = 10.0
) -> None:
    """Shut a pool down without letting a broken executor's teardown
    error escape into the caller's (often already-failing) path.

    The waiting path is bounded: a worker wedged by an unlucky fork
    (e.g. a child forked while another thread held a lock) stays alive
    but never drains its call queue, so ``shutdown(wait=True)`` would
    join the manager thread forever.  Grab the thread/process handles
    before ``shutdown`` clears them, give the manager ``join_timeout``
    seconds to drain, then kill the workers and join once more.
    """
    try:
        if not wait:
            pool.shutdown(wait=False, cancel_futures=True)
            return
        thread = getattr(pool, "_executor_manager_thread", None)
        procs = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=False, cancel_futures=True)
        if thread is None:
            return
        thread.join(join_timeout)
        if thread.is_alive():
            _LOG.warning(
                "pool shutdown stalled >%.0fs; killing %d worker(s)",
                join_timeout,
                len(procs),
            )
            for proc in procs.values():
                try:
                    proc.kill()
                except Exception:
                    pass
            thread.join(join_timeout)
    except Exception:
        _LOG.debug("pool shutdown raised", exc_info=True)


def _discard_pool(pool: ProcessPoolExecutor) -> None:
    """Drop a (presumed broken) pool from the registry and kill it."""
    for key, cached in list(_POOLS.items()):
        if cached is pool:
            del _POOLS[key]
    _shutdown_quietly(pool, wait=False)


def shutdown_pools(wait: bool = True) -> None:
    """Shut down every warm executor (atexit runs this with wait=False).

    Call it explicitly from long-lived hosts that want to release the
    worker processes early; the registry refills on the next pooled
    :func:`parallel_map` call.  Pools already marked broken (or with
    dead workers) are discarded without waiting — joining a crashed
    worker set at exit would hang the interpreter.
    """
    while _POOLS:
        _, pool = _POOLS.popitem(last=False)
        _shutdown_quietly(pool, wait=wait and _pool_is_healthy(pool))


atexit.register(shutdown_pools, wait=False)


def resolve_workers(workers: int | None = None) -> int:
    """Worker count: explicit argument > ``GANA_WORKERS`` > cpu count."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def default_chunksize(n_items: int, workers: int) -> int:
    """Aim for ~4 chunks per worker so stragglers rebalance."""
    return max(1, math.ceil(n_items / (workers * 4)))


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: int | None = None,
    chunksize: int | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
    pool_retries: int = 1,
    backoff: float = 0.2,
    pool_key: str | None = None,
    on_crash: Callable[[Any, BaseException], Any] | None = None,
) -> list[Any]:
    """``[fn(x) for x in items]``, possibly across a process pool.

    The result order always matches the input order.  ``fn`` (and the
    items) must be picklable for the pool path.  Transient pool
    failures (a worker killed mid-batch) are retried ``pool_retries``
    times with exponential backoff (``backoff * 2**attempt`` seconds);
    ``fn`` must therefore be effectively pure, since a retry recomputes
    the whole batch.  If the pool stays unusable the map reruns
    serially, logging the original pool failure — callers get the same
    values either way.

    ``initializer(*initargs)`` runs once per worker (pool path) or once
    up front (serial path) — use it to install heavyweight shared state
    such as a trained pipeline instead of pickling it per item.

    Pool reuse: a call with no initializer always reuses the warm
    generic pool.  A call *with* an initializer reuses a warm pool only
    when ``pool_key`` is given — the key must fingerprint the
    initializer state, because reused workers keep the state the pool's
    *first* call installed.  Without a key, an initializer call gets a
    throwaway pool, exactly as before.

    ``on_crash`` switches a broken pool from blind whole-batch retry to
    *supervision*: the item list is bisected across fresh pools until
    the poison item that kills its worker is isolated, that item maps
    to ``on_crash(item, exc)`` (e.g. a
    :class:`~repro.runtime.resilience.FailureReport`), and every other
    item completes normally.  The broken pool is evicted from the warm
    registry either way, so the next call gets a healthy pool.
    """
    items = list(items)
    n_workers = min(resolve_workers(workers), len(items))
    if n_workers <= 1 or len(items) <= 1:
        return _serial_map(fn, items, initializer, initargs)
    chunksize = chunksize or default_chunksize(len(items), n_workers)
    reusable = initializer is None or pool_key is not None
    key = (n_workers, pool_key if initializer is not None else None)

    pool_failure: BaseException | None = None
    for attempt in range(max(0, pool_retries) + 1):
        pool: ProcessPoolExecutor | None = None
        try:
            if reusable:
                pool = _checkout_pool(
                    n_workers,
                    pool_key if initializer is not None else None,
                    initializer,
                    initargs,
                )
                result = list(pool.map(fn, items, chunksize=chunksize))
            else:
                with ProcessPoolExecutor(
                    max_workers=n_workers,
                    initializer=initializer,
                    initargs=tuple(initargs),
                ) as pool:
                    result = list(pool.map(fn, items, chunksize=chunksize))
            health = _health(key)
            health.maps += 1
            health.items += len(items)
            return result
        except _FATAL_POOL_ERRORS as exc:
            pool_failure = exc
            _LOG.warning(
                "process pool unusable (%s: %s); falling back to the "
                "serial path",
                type(exc).__name__,
                exc,
            )
            break
        except TRANSIENT_POOL_ERRORS as exc:
            pool_failure = exc
            _health(key).breaks += 1
            if reusable and pool is not None:
                # A broken pool must never be handed to the next call.
                _discard_pool(pool)
            if on_crash is not None:
                _LOG.warning(
                    "process pool broke (%s: %s); bisecting %d item(s) to "
                    "quarantine the crash",
                    type(exc).__name__,
                    exc,
                    len(items),
                )
                return _bisect_map(
                    fn, items, n_workers, initializer, initargs, on_crash, key
                )
            if attempt < pool_retries:
                delay = backoff * (2**attempt)
                _LOG.warning(
                    "process pool failed (%s: %s); rebuilding and "
                    "retrying in %.2gs (attempt %d of %d)",
                    type(exc).__name__,
                    exc,
                    delay,
                    attempt + 1,
                    pool_retries,
                )
                time.sleep(delay)
            else:
                _LOG.warning(
                    "process pool failed %d time(s) (%s: %s); falling "
                    "back to the serial path",
                    attempt + 1,
                    type(exc).__name__,
                    exc,
                )

    try:
        return _serial_map(fn, items, initializer, initargs)
    except Exception as exc:
        if pool_failure is not None and exc.__cause__ is None:
            # Surface the pool failure alongside the serial one —
            # "silently swallowed the pool error" is undebuggable.
            raise exc from pool_failure
        raise


def _bisect_map(
    fn: Callable[[Any], Any],
    items: list[Any],
    n_workers: int,
    initializer: Callable[..., None] | None,
    initargs: Sequence[Any],
    on_crash: Callable[[Any, BaseException], Any],
    key: tuple[int, str | None],
) -> list[Any]:
    """Quarantine the poison item(s) in a crashed batch.

    ``BrokenProcessPool`` gives no hint *which* item killed its worker
    — every in-flight future is marked broken — so the whole list is
    suspect.  Classic fault isolation: split in half, run each half on
    a fresh throwaway pool, recurse into halves that crash again.  A
    single suspect item runs alone in a sacrificial one-worker pool; if
    it kills that worker too, it is quarantined through ``on_crash``.
    A purely transient crash (a worker OOM-killed once) costs one level
    of bisection and quarantines nothing — both halves simply succeed
    on their fresh pools.
    """
    if len(items) == 1:
        try:
            with ProcessPoolExecutor(
                max_workers=1,
                initializer=initializer,
                initargs=tuple(initargs),
            ) as solo:
                return [solo.submit(fn, items[0]).result()]
        except TRANSIENT_POOL_ERRORS as exc:
            _health(key).quarantined += 1
            _LOG.warning(
                "quarantined poison item (%s: %s)", type(exc).__name__, exc
            )
            return [on_crash(items[0], exc)]
    mid = len(items) // 2
    results: list[Any] = []
    for half in (items[:mid], items[mid:]):
        if len(half) == 1:
            # Straight to the sacrificial solo pool — mapping a single
            # suspect in a throwaway pool first would just crash twice.
            results.extend(
                _bisect_map(
                    fn, half, n_workers, initializer, initargs, on_crash, key
                )
            )
            continue
        try:
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(half)),
                initializer=initializer,
                initargs=tuple(initargs),
            ) as pool:
                # Materialize before extending: a crash mid-iteration
                # must not leave half-consumed results in the output.
                mapped = list(pool.map(fn, half, chunksize=1))
            results.extend(mapped)
        except TRANSIENT_POOL_ERRORS:
            _health(key).breaks += 1
            results.extend(
                _bisect_map(
                    fn, half, n_workers, initializer, initargs, on_crash, key
                )
            )
    return results


def _serial_map(fn, items, initializer, initargs) -> list[Any]:
    if initializer is not None:
        initializer(*initargs)
    return [fn(item) for item in items]
