"""Content-addressed disk cache for trained recognition models.

``pretrain_annotator`` is deterministic: the trained weights are a pure
function of the model config, the training config, the dataset spec,
and the seed.  That makes the trained model safely cacheable by a
fingerprint of those inputs — the first ``GanaPipeline.pretrained()``
call in any process pays for training, every later one (including in
other processes) is a millisecond ``np.load``.

Layout: one ``<fingerprint>.npz`` per model under the cache directory
(default ``~/.cache/gana``, overridable via the ``GANA_CACHE_DIR``
environment variable).  Each file carries the full model state dict,
the model config, the class vocabulary, and a format-version stamp;
any mismatch, truncation, or unpickling error is treated as a cache
miss and falls back to retraining.  Writes are atomic (temp file +
``os.replace``) so a crashed or concurrent writer can never leave a
half-written entry behind.

Set ``GANA_NO_CACHE=1`` (or pass ``cache=False`` / ``--no-cache``) to
bypass the cache entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import weakref
from pathlib import Path
from typing import Any, Callable, TypeVar

import numpy as np

_T = TypeVar("_T")

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "GANA_CACHE_DIR"
#: Environment variable disabling the cache ("1"/"true"/"yes").
NO_CACHE_ENV = "GANA_NO_CACHE"
#: Bumped whenever the on-disk format or training semantics change;
#: entries with a different version are stale and ignored.  Version 2:
#: batched minibatch training (block-diagonal packing) became the
#: default, which reorders float accumulation relative to v1 weights.
CACHE_FORMAT_VERSION = 2


def default_cache_dir() -> Path:
    """The active cache directory (``GANA_CACHE_DIR`` or ``~/.cache/gana``)."""
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "gana"


def cache_enabled() -> bool:
    """False when ``GANA_NO_CACHE`` asks to bypass the cache."""
    return os.environ.get(NO_CACHE_ENV, "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


def _canonical(obj: Any) -> Any:
    """JSON-encode dataclasses/tuples/sets so fingerprints are stable."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__name__, **dataclasses.asdict(obj)}
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if isinstance(obj, Path):
        return str(obj)
    raise TypeError(f"unfingerprintable object of type {type(obj).__name__}")


def fingerprint(spec: dict[str, Any]) -> str:
    """Deterministic hex digest of a training spec.

    ``spec`` may contain nested dataclasses (``GCNConfig``,
    ``TrainConfig``), tuples, and plain JSON scalars; key order never
    matters.
    """
    canon = json.dumps(spec, sort_keys=True, default=_canonical)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:32]


class Memo:
    """In-process memo keyed by object *identity*, weakref-guarded.

    The disk cache above amortizes work across processes; this one
    amortizes derived, unpicklable structures across call sites inside
    one process — e.g. the per-template matching profiles of
    :mod:`repro.primitives.index`, computed once per library load and
    reused by every annotation call.  Keys are ``id(obj)`` with a
    weak reference confirming the object is still the same one (id
    values are recycled); entries die with their objects, so the memo
    can never pin memory or serve stale values.  Objects that do not
    support weak references are computed but not stored.
    """

    def __init__(self) -> None:
        self._entries: dict[int, tuple[weakref.ref, Any]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_build(self, obj: Any, builder: Callable[[Any], _T]) -> _T:
        key = id(obj)
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is obj:
            return entry[1]
        value = builder(obj)
        try:
            ref = weakref.ref(
                obj, lambda _ref, key=key: self._entries.pop(key, None)
            )
        except TypeError:
            return value  # unweakrefable: still correct, just uncached
        self._entries[key] = (ref, value)
        return value

    def clear(self) -> None:
        self._entries.clear()


class ModelCache:
    """Load/store trained annotators keyed by training-spec fingerprint."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    # -- store -----------------------------------------------------------

    def store(self, key: str, annotator) -> Path | None:
        """Atomically persist an annotator; returns the entry path.

        Failures (read-only filesystem, disk full) are swallowed — the
        cache is an accelerator, never a correctness dependency.
        """
        path = self.path_for(key)
        meta = {
            "format_version": CACHE_FORMAT_VERSION,
            "class_names": list(annotator.class_names),
            "config": _config_dict(annotator.model.config),
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.savez(
                        handle,
                        __meta__=np.array(json.dumps(meta)),
                        **annotator.model.state_dict(),
                    )
                os.replace(tmp_name, path)
            except BaseException:
                os.unlink(tmp_name)
                raise
        except OSError:
            return None
        return path

    # -- load ------------------------------------------------------------

    def load(self, key: str):
        """Return the cached :class:`GcnAnnotator` for ``key``, or None.

        Corrupted, truncated, stale-format, or otherwise unreadable
        entries are misses (the bad file is removed so the next store
        rewrites it cleanly).
        """
        from repro.core.annotator import GcnAnnotator
        from repro.gcn.model import GCNConfig, GCNModel

        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                meta = json.loads(str(data["__meta__"]))
                if meta.get("format_version") != CACHE_FORMAT_VERSION:
                    raise ValueError("stale cache format")
                raw = dict(meta["config"])
                raw["channels"] = tuple(raw["channels"])
                config = GCNConfig(**raw)
                state = {
                    k: data[k] for k in data.files if k != "__meta__"
                }
            model = GCNModel(config)
            model.load_state_dict(state)
            return GcnAnnotator(
                model=model, class_names=tuple(meta["class_names"])
            )
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return None

    # -- partial-train resume --------------------------------------------

    def checkpoint_dir_for(self, key: str) -> Path:
        """Epoch-checkpoint directory for the training run behind ``key``.

        ``pretrain_annotator`` checkpoints an in-flight training run
        here (one subdirectory per training fingerprint, so unrelated
        specs never read each other's envelopes) and removes the
        directory once the finished model lands in the cache proper —
        a killed pretraining resumes instead of starting over.
        """
        return self.directory / "checkpoints" / key

    # -- maintenance -----------------------------------------------------

    def entries(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.npz"))

    def clear(self) -> int:
        """Delete every cache entry (and any in-flight training
        checkpoints); returns the number of entries removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        checkpoints = self.directory / "checkpoints"
        if checkpoints.is_dir():
            import shutil

            shutil.rmtree(checkpoints, ignore_errors=True)
        return removed


class ArtifactCache:
    """Content-addressed pickle store for pipeline stage artifacts.

    The staged runner (:mod:`repro.core.stages`) keys every stage's
    artifact by its derivation fingerprint — a hash chain over the
    input netlist and each stage's configuration — so an unchanged
    fingerprint is a cache hit and the stage never re-runs.  Same
    contract as :class:`ModelCache`: writes are atomic (temp file +
    ``os.replace``), any read problem is a miss (the bad entry is
    removed), and a failing write is swallowed — the cache accelerates,
    it is never a correctness dependency.

    Layout: one ``<key>.pkl`` per entry under ``directory`` (default
    ``<cache dir>/artifacts``).
    """

    def __init__(self, directory: str | Path | None = None):
        self.directory = (
            Path(directory) if directory else default_cache_dir() / "artifacts"
        )

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def store(self, key: str, value: Any) -> Path | None:
        """Atomically persist ``value`` under ``key``; None on failure."""
        path = self.path_for(key)
        payload = {
            "format_version": CACHE_FORMAT_VERSION,
            "key": key,
            "value": value,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key[:32]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(
                        payload, handle, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(tmp_name, path)
            except BaseException:
                os.unlink(tmp_name)
                raise
        except (OSError, pickle.PicklingError):
            return None
        return path

    def load(self, key: str) -> Any:
        """The value stored under ``key``, or None on any problem."""
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if (
                not isinstance(payload, dict)
                or payload.get("format_version") != CACHE_FORMAT_VERSION
                or payload.get("key") != key
            ):
                raise ValueError("stale or foreign cache entry")
            return payload["value"]
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def entries(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.pkl"))

    def remove(self, key: str) -> bool:
        """Delete one entry; True when something was removed."""
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def invalidate_prefix(self, prefix: str) -> int:
        """Delete every entry whose key starts with ``prefix``.

        Definition-keyed sub-entries (``hier-matches-def-<fp12>-…``)
        make targeted invalidation possible: sweeping the prefix of one
        definition fingerprint drops exactly that definition's shared
        match entries and nothing else.  Returns the number removed.
        """
        removed = 0
        for path in self.entries():
            if path.name.startswith(prefix):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def _config_dict(config) -> dict[str, Any]:
    raw = dataclasses.asdict(config)
    raw["channels"] = list(raw["channels"])
    return raw
