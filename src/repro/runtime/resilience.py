"""Resilience primitives: diagnostics, failure reports, budgets, timeouts.

The north-star deployment ingests arbitrary user netlists at volume, so
the flow must survive messy input instead of dying on the first bad
card.  This module holds the vocabulary the rest of the package speaks:

* :class:`Diagnostic` — one structured parse/elaboration problem
  (severity, offending card, 1-based line span, message, fix hint).
  Lenient-mode parsing (``parse_netlist(..., mode="lenient")``) collects
  these instead of raising on the first error.
* :class:`FailureReport` — the per-item outcome of a batch run that
  failed: which pipeline stage died, the full exception chain, and any
  diagnostics gathered before the failure.  ``GanaPipeline.run_many``
  with ``on_error="report"`` yields these in place of results so one
  poisoned deck cannot sink a batch.
* :class:`Budget` — a step/wall-clock guard for worst-case-exponential
  searches (VF2, the annealing placer).  Exhaustion raises
  :class:`~repro.exceptions.BudgetExceeded` carrying partial results.
* :func:`time_limit` — a SIGALRM-based per-item wall-clock ceiling used
  by batch runs, so one pathological deck cannot stall a worker.
* :func:`stage` — a context manager that tags escaping exceptions with
  the pipeline stage they came from (for failure taxonomy) and records
  per-stage wall-clock.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.exceptions import BudgetExceeded, SpiceSyntaxError

#: Diagnostic severities.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One structured problem found while ingesting a netlist."""

    severity: str  # ERROR or WARNING
    message: str
    card: str = ""  # offending card/token, e.g. ".foo" or "m1"
    line: int | None = None  # 1-based first physical line
    end_line: int | None = None  # 1-based last physical line (continuations)
    hint: str | None = None  # suggested fix, when we have one

    def format(self) -> str:
        """One-line human-readable rendering."""
        where = ""
        if self.line is not None:
            where = f"line {self.line}"
            if self.end_line is not None and self.end_line != self.line:
                where = f"lines {self.line}-{self.end_line}"
            where += ": "
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.severity}: {where}{self.message}{hint}"

    def to_dict(self) -> dict:
        return {
            "severity": self.severity,
            "message": self.message,
            "card": self.card,
            "line": self.line,
            "end_line": self.end_line,
            "hint": self.hint,
        }


def diagnostic_from_error(
    exc: Exception,
    line: int | None = None,
    end_line: int | None = None,
    card: str = "",
) -> Diagnostic:
    """Convert a raised parse/elaboration error into a record.

    :class:`SpiceSyntaxError` contributes its raw message, line, and fix
    hint; anything else is stringified as-is.
    """
    if isinstance(exc, SpiceSyntaxError):
        return Diagnostic(
            severity=ERROR,
            message=exc.message,
            card=card,
            line=exc.line if exc.line is not None else line,
            end_line=end_line,
            hint=exc.hint,
        )
    return Diagnostic(
        severity=ERROR,
        message=str(exc) or repr(exc),
        card=card,
        line=line,
        end_line=end_line,
    )


@dataclass(frozen=True)
class FailureReport:
    """Structured outcome of one failed batch item.

    Everything is plain data (strings/tuples) so reports cross process
    boundaries — a pool worker builds one and pickles it back.
    """

    stage: str  # pipeline stage that failed ("parse", "gcn", ...)
    error: str  # proximate error, "ExcType: message"
    exception_chain: tuple[str, ...] = ()  # proximate first, root cause last
    diagnostics: tuple[Diagnostic, ...] = ()
    index: int | None = None  # position in the input batch
    name: str = ""  # the item's system name, when given
    traceback: str = ""  # formatted traceback of the proximate error
    #: Partial per-stage profile gathered before the failure (plain
    #: dict, same shape as ``PipelineResult.profile``) when the run was
    #: profiling; survives pickling across the batch pool.
    profile: dict | None = None

    @property
    def ok(self) -> bool:
        return False

    def summary(self) -> str:
        """One-line rendering for logs and the CLI."""
        label = self.name or (
            f"item {self.index}" if self.index is not None else "item"
        )
        return f"{label}: failed in stage {self.stage!r}: {self.error}"


def exception_chain(exc: BaseException) -> tuple[str, ...]:
    """``__cause__``/``__context__`` chain as strings, proximate first."""
    chain: list[str] = []
    seen: set[int] = set()
    current: BaseException | None = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        current = current.__cause__ or current.__context__
    return tuple(chain)


def failure_report(
    exc: BaseException, index: int | None = None, name: str = ""
) -> FailureReport:
    """Build a :class:`FailureReport` from an escaped exception.

    The failing stage, any pre-failure diagnostics, and the partial
    profile come from the ``_gana_stage`` / ``_gana_diagnostics`` /
    ``_gana_profile`` attributes the :func:`stage` guard (and the
    staged runner) stamp onto escaping exceptions; ``BaseException``
    pickles its ``__dict__``, so the attributes survive the pool.
    """
    diagnostics = list(getattr(exc, "_gana_diagnostics", ()) or ())
    if isinstance(exc, SpiceSyntaxError) and not diagnostics:
        diagnostics.append(diagnostic_from_error(exc))
    return FailureReport(
        stage=getattr(exc, "_gana_stage", "unknown"),
        error=f"{type(exc).__name__}: {exc}",
        exception_chain=exception_chain(exc),
        diagnostics=tuple(diagnostics),
        index=index,
        name=name,
        traceback="".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        profile=getattr(exc, "_gana_profile", None),
    )


def worker_crash_report(
    exc: BaseException, index: int | None = None, name: str = ""
) -> FailureReport:
    """Build the :class:`FailureReport` for a quarantined poison item.

    A worker that dies outright (segfault, ``os._exit``, OOM kill)
    never gets to build its own report — the parent only sees the
    executor's ``BrokenProcessPool``.  This wraps that parent-side
    exception in the standard report shape, with stage ``"worker"``
    marking that the process itself was lost rather than any pipeline
    stage failing.
    """
    return FailureReport(
        stage="worker",
        error=f"{type(exc).__name__}: {exc}",
        exception_chain=exception_chain(exc),
        diagnostics=(
            Diagnostic(
                severity=ERROR,
                message=(
                    "worker process died while running this item; the item "
                    "was quarantined and the rest of the batch completed"
                ),
                card=name or "worker",
                hint=(
                    "the input likely triggers a native-level crash or "
                    "out-of-memory kill; rerun it alone under a memory/"
                    "time budget to reproduce"
                ),
            ),
        ),
        index=index,
        name=name,
    )


@contextmanager
def stage(
    name: str,
    timings: dict[str, float] | None = None,
    diagnostics: list[Diagnostic] | None = None,
):
    """Tag escaping exceptions with the pipeline stage they came from.

    ``name`` is a plain string or a
    :class:`repro.core.stages.StageName` member (the canonical stage
    vocabulary) — the tag is always stored as its string value.  The
    innermost tag wins (set only if absent), so nesting a fine
    ``stage("parse")`` inside a coarse ``stage("preprocess", timings)``
    yields ``parse`` as the failure stage while the timing lands under
    the coarse key.  ``diagnostics`` gathered before the failure ride
    along on the exception for :func:`failure_report`.
    """
    name = getattr(name, "value", name)
    start = time.perf_counter()
    try:
        yield
    except Exception as exc:
        if not hasattr(exc, "_gana_stage"):
            exc._gana_stage = name
        if diagnostics is not None and not hasattr(exc, "_gana_diagnostics"):
            exc._gana_diagnostics = tuple(diagnostics)
        raise
    finally:
        if timings is not None:
            timings[name] = time.perf_counter() - start


@dataclass
class Budget:
    """Step/wall-clock guard for potentially unbounded searches.

    Call :meth:`tick` once per unit of work; it raises
    :class:`~repro.exceptions.BudgetExceeded` when either limit is
    crossed.  One budget may be shared across several searches (e.g.
    every template of a primitive-matching pass) so the *total* work is
    bounded, not just each piece.
    """

    max_steps: int | None = None
    max_seconds: float | None = None
    steps: int = 0
    started: float = field(default_factory=time.monotonic)

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def exceeded(self) -> bool:
        """Non-raising check."""
        if self.max_steps is not None and self.steps > self.max_steps:
            return True
        if self.max_seconds is not None and self.elapsed > self.max_seconds:
            return True
        return False

    def tick(self, n: int = 1, what: str = "search") -> None:
        self.steps += n
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceeded(
                f"{what} exceeded its step budget "
                f"({self.steps} > {self.max_steps})",
                steps=self.steps,
                elapsed=self.elapsed,
            )
        if self.max_seconds is not None:
            elapsed = self.elapsed
            if elapsed > self.max_seconds:
                raise BudgetExceeded(
                    f"{what} exceeded its time budget "
                    f"({elapsed:.3f}s > {self.max_seconds:g}s)",
                    steps=self.steps,
                    elapsed=elapsed,
                )


@contextmanager
def time_limit(seconds: float | None, what: str = "operation"):
    """Preemptive wall-clock ceiling via ``SIGALRM``.

    Raises :class:`~repro.exceptions.BudgetExceeded` from inside the
    guarded block when ``seconds`` elapse — even if the block is stuck
    in a C-level loop-free hang like ``time.sleep``.  Only the main
    thread of a (POSIX) process can host signal handlers; elsewhere the
    guard silently degrades to a no-op, which keeps the API portable —
    batch-pool workers run jobs on their main thread, so the common
    path is covered.
    """
    if (
        not seconds
        or seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise BudgetExceeded(
            f"{what} exceeded its {seconds:g}s wall-clock limit",
            elapsed=seconds,
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
