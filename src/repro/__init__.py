"""GANA reproduction: GCN-based automated netlist annotation for analog
circuits (Kunal et al., DATE 2020).

The package layers, bottom to top:

* :mod:`repro.spice`    — SPICE parsing, flattening, preprocessing
* :mod:`repro.graph`    — bipartite circuit graphs, features, Laplacians
* :mod:`repro.gcn`      — spectral Chebyshev GCN built on numpy/scipy
* :mod:`repro.primitives` — 21-template library + VF2 matching
* :mod:`repro.core`     — the GANA pipeline: annotate → postprocess →
  hierarchy + constraints
* :mod:`repro.layout`   — constraint-aware placement use case
* :mod:`repro.datasets` — parametric analog circuit generators

Quick start::

    from repro import GanaPipeline
    pipeline = GanaPipeline.pretrained("ota")
    result = pipeline.run(spice_text)
    print(result.hierarchy.render())
"""

__version__ = "1.0.0"


def __getattr__(name: str):
    # Lazy import so that `repro.spice` etc. are usable while the core
    # package is only partially built/installed.
    if name in ("GanaPipeline", "PipelineResult"):
        from repro.core.pipeline import GanaPipeline, PipelineResult

        return {"GanaPipeline": GanaPipeline, "PipelineResult": PipelineResult}[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = ["GanaPipeline", "PipelineResult", "__version__"]
