"""Metamorphic deck transforms with declared invariants.

Each transform rewrites a deck into a variant whose annotation is
related to the original's in a *declared* way — the invariant is part
of the transform's contract, and :func:`check_invariant` is the
executable form of that contract:

========================  =============================================
transform                 invariant
========================  =============================================
rename_devices            ``UP_TO_RENAME`` — per-device classes,
                          primitive matches and constraints identical
                          modulo the rename map
rename_nets               ``UP_TO_RENAME`` (net side of the map)
insert_unit_mfactor       ``BYTE_IDENTICAL`` — ``m=1`` on an instance
                          is a no-op through flattening
permute_cards             ``SAME_STRUCTURE`` — flat device multiset
                          and CCC partition unchanged (annotation may
                          legitimately differ in float-tie ordering)
split_mfactor             ``SAME_NETS`` — net set and rail roles
                          unchanged; device count grows by the split
inline_first_instance     ``SAME_STRUCTURE`` modulo the rename map —
                          manual flattening of one leaf instance
outline_tail_devices      ``SAME_STRUCTURE`` modulo the rename map —
                          wrap trailing top-level devices into a fresh
                          single-instance subckt
========================  =============================================

Order preservation is load-bearing for ``UP_TO_RENAME``: the GCN
forward is bitwise-deterministic only for a fixed vertex order, so the
rename transforms never reorder cards, and rename maps are
role-preserving — power/bias/input-ish net names are never touched,
and fresh names are chosen outside every role convention — so vertex
features are unchanged as well.  Inline/outline *do* preserve flat
device order, but the feature extractor deliberately encodes hierarchy
depth (``features.py``'s level slot), so moving a device across a
``.subckt`` boundary legitimately changes its features; those two
transforms therefore only claim structural equivalence (flat device
multiset + CCC partition, compared through the rename map).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.graph.ccc import channel_connected_components
from repro.graph.bipartite import CircuitGraph
from repro.spice.flatten import SEP, flatten
from repro.spice.netlist import is_power_net
from repro.spice.parser import parse_netlist
from repro.spice.writer import write_netlist

#: Net-name prefixes with a conventional role anywhere in the repo
#: (bias distribution, input/output ports, clocks, rails).  A rename is
#: role-preserving iff neither endpoint matches any of these.
_ROLE_PREFIXES = (
    "vb", "bias", "ib", "vbn", "vbp", "vref", "iref", "vcm",
    "vin", "inp", "inn", "in", "rfin", "ant", "lo", "clk", "vi",
    "vout", "out", "outp", "outn", "ifout", "vo",
)


def _has_role(name: str) -> bool:
    leaf = name.split(SEP)[-1]
    return is_power_net(name) or any(leaf.startswith(p) for p in _ROLE_PREFIXES)


class Invariant(enum.Enum):
    """How a transformed deck's annotation relates to the original's."""

    BYTE_IDENTICAL = "byte-identical"
    UP_TO_RENAME = "up-to-rename"
    SAME_STRUCTURE = "same-structure"
    SAME_NETS = "same-nets"


@dataclass
class TransformedDeck:
    """A transform's output: new deck text + the declared relation."""

    transform: str
    text: str
    invariant: Invariant
    #: Original flat device name → transformed flat device name (only
    #: names that changed).  Identity for unlisted names.
    device_map: dict[str, str] = field(default_factory=dict)
    #: Original flat net name → transformed flat net name.
    net_map: dict[str, str] = field(default_factory=dict)
    #: True when the transform had nothing to do (deck returned as-is).
    noop: bool = False


# ---------------------------------------------------------------------------
# Transforms
# ---------------------------------------------------------------------------


def rename_devices(text: str, rng: random.Random) -> TransformedDeck:
    """Append one uniform suffix to every top-level device name.

    Uniform-suffix is deliberate: preprocess picks parallel/series
    merge representatives by *shortlex* name order
    (``min(members, key=lambda d: (len(d.name), d.name))``), and
    appending the same suffix to every name is exactly the rename
    family that preserves shortlex order (lengths all grow by the same
    amount; equal-length comparisons reduce to the original names).
    A per-device random rename would legitimately flip which member
    survives a merge — a different result, not a divergence.
    """
    netlist = parse_netlist(text)
    # Single-char suffixes only: a top-level device can merge with an
    # instance-internal one (flat name ``x…/…``, ≥ 5 chars), and the
    # renamed top name must stay shortlex-smaller than that.
    suffix = rng.choice(("q", "z", "v"))
    device_map = {
        dev.name: f"{dev.name}{suffix}" for dev in netlist.top.devices
    }
    netlist.top.devices = [
        dev.renamed(device_map[dev.name], {}) for dev in netlist.top.devices
    ]
    return TransformedDeck(
        transform="rename_devices",
        text=write_netlist(netlist),
        invariant=Invariant.UP_TO_RENAME,
        device_map=device_map,
        noop=not device_map,
    )


def rename_nets(text: str, rng: random.Random) -> TransformedDeck:
    """Rename role-free top-level nets to fresh role-free names."""
    netlist = parse_netlist(text)
    candidates = [
        net
        for net in netlist.top.nets
        if not _has_role(net) and net not in netlist.globals_
    ]
    net_map = {
        net: f"ren{i}"
        for i, net in enumerate(candidates)
        if rng.random() < 0.5
    }
    netlist.top.devices = [
        dev.renamed(dev.name, net_map) for dev in netlist.top.devices
    ]
    netlist.top.instances = [
        inst.renamed(inst.name, net_map) for inst in netlist.top.instances
    ]
    return TransformedDeck(
        transform="rename_nets",
        text=write_netlist(netlist),
        invariant=Invariant.UP_TO_RENAME,
        net_map=net_map,
        noop=not net_map,
    )


def insert_unit_mfactor(text: str, rng: random.Random) -> TransformedDeck:
    """Add an explicit ``m=1`` to instances lacking an m-factor."""
    netlist = parse_netlist(text)
    changed = False
    out = []
    for inst in netlist.top.instances:
        if "m" not in {k for k, _ in inst.params} and rng.random() < 0.7:
            from dataclasses import replace

            out.append(replace(inst, params=inst.params + (("m", 1.0),)))
            changed = True
        else:
            out.append(inst)
    netlist.top.instances = out
    return TransformedDeck(
        transform="insert_unit_mfactor",
        text=write_netlist(netlist),
        invariant=Invariant.BYTE_IDENTICAL,
        noop=not changed,
    )


def permute_cards(text: str, rng: random.Random) -> TransformedDeck:
    """Shuffle top-level device and instance card order."""
    netlist = parse_netlist(text)
    devices = list(netlist.top.devices)
    instances = list(netlist.top.instances)
    rng.shuffle(devices)
    rng.shuffle(instances)
    noop = (
        devices == netlist.top.devices and instances == netlist.top.instances
    )
    netlist.top.devices = devices
    netlist.top.instances = instances
    return TransformedDeck(
        transform="permute_cards",
        text=write_netlist(netlist),
        invariant=Invariant.SAME_STRUCTURE,
        noop=noop,
    )


def split_mfactor(text: str, rng: random.Random) -> TransformedDeck:
    """Replace one ``m=k`` instance (integer k ≥ 2) with k unit copies."""
    from dataclasses import replace

    netlist = parse_netlist(text)
    splittable = [
        (i, inst)
        for i, inst in enumerate(netlist.top.instances)
        if float(dict(inst.params).get("m", 1.0)).is_integer()
        and dict(inst.params).get("m", 1.0) >= 2
    ]
    if not splittable:
        return TransformedDeck(
            transform="split_mfactor",
            text=text,
            invariant=Invariant.SAME_NETS,
            noop=True,
        )
    index, inst = rng.choice(splittable)
    k = int(dict(inst.params)["m"])
    rest = tuple((p, v) for p, v in inst.params if p != "m")
    copies = [
        replace(inst, name=f"{inst.name}_s{j}", params=rest) for j in range(k)
    ]
    netlist.top.instances = (
        netlist.top.instances[:index]
        + copies
        + netlist.top.instances[index + 1 :]
    )
    return TransformedDeck(
        transform="split_mfactor",
        text=write_netlist(netlist),
        invariant=Invariant.SAME_NETS,
    )


def inline_first_instance(text: str, rng: random.Random) -> TransformedDeck:
    """Manually flatten the first top-level instance of a leaf subckt.

    The inlined cards are appended after every existing top-level
    device card — exactly where :func:`repro.spice.flatten.flatten`
    would have emitted them (top devices first, then instances in
    order) — so the flat circuit is identical up to the
    ``x<inst>/name`` → ``x<inst>_name`` rename.  Annotation identity is
    *not* claimed: the feature extractor encodes hierarchy depth, which
    this transform changes by construction.
    """
    netlist = parse_netlist(text)
    target = None
    if netlist.top.instances:
        first = netlist.top.instances[0]
        body = netlist.subckts.get(first.subckt)
        if body is not None and not body.instances and len(body.ports) == len(first.nets):
            if float(dict(first.params).get("m", 1.0)) == 1.0:
                target = (first, body)
    if target is None:
        return TransformedDeck(
            transform="inline_first_instance",
            text=text,
            invariant=Invariant.SAME_STRUCTURE,
            noop=True,
        )
    inst, body = target
    port_map = dict(zip(body.ports, inst.nets))
    device_map: dict[str, str] = {}
    net_map: dict[str, str] = {}
    inlined = []
    for dev in body.devices:
        local: dict[str, str] = {}
        for net in dev.nets:
            if net in port_map:
                local[net] = port_map[net]
            elif net in netlist.globals_ or is_power_net(net):
                local[net] = net
            else:
                local[net] = f"{inst.name}_{net}"
                net_map[f"{inst.name}{SEP}{net}"] = local[net]
        # The writer prefixes the card letter when a name does not lead
        # with it (repro.spice.writer._card_name); pre-apply the same
        # rule so the map matches what the re-parsed deck will contain.
        candidate = f"{inst.name}_{dev.name}"
        letter = dev.name[0]
        new_name = (
            candidate if candidate.startswith(letter) else f"{letter}{candidate}"
        )
        device_map[f"{inst.name}{SEP}{dev.name}"] = new_name
        inlined.append(dev.renamed(new_name, local))
    netlist.top.devices = netlist.top.devices + inlined
    netlist.top.instances = netlist.top.instances[1:]
    return TransformedDeck(
        transform="inline_first_instance",
        text=write_netlist(netlist),
        invariant=Invariant.SAME_STRUCTURE,
        device_map=device_map,
        net_map=net_map,
    )


def outline_tail_devices(text: str, rng: random.Random) -> TransformedDeck:
    """Wrap the trailing top-level devices into a one-shot subckt.

    The new instance is inserted *first* in the instance list, so the
    flat device order — remaining top devices, then the wrapped block,
    then the original instances — matches the original deck exactly.
    """
    netlist = parse_netlist(text)
    devices = netlist.top.devices
    if len(devices) < 2:
        return TransformedDeck(
            transform="outline_tail_devices",
            text=text,
            invariant=Invariant.SAME_STRUCTURE,
            noop=True,
        )
    n_wrap = rng.randint(1, max(1, len(devices) // 2))
    wrapped, kept = devices[-n_wrap:], devices[:-n_wrap]
    wrapped_nets: set[str] = set()
    for dev in wrapped:
        wrapped_nets.update(dev.nets)
    outside_nets: set[str] = set()
    for dev in kept:
        outside_nets.update(dev.nets)
    for inst in netlist.top.instances:
        outside_nets.update(inst.nets)
    shared = sorted(
        net
        for net in wrapped_nets
        if net in outside_nets
        and not is_power_net(net)
        and net not in netlist.globals_
    )
    internal = sorted(
        net
        for net in wrapped_nets
        if net not in outside_nets
        and not is_power_net(net)
        and net not in netlist.globals_
    )
    sub_name = "outlined"
    while sub_name in netlist.subckts:
        sub_name += "x"
    inst_name = "xoutl"
    from repro.spice.netlist import Circuit, Instance

    body = Circuit(name=sub_name, ports=tuple(shared))
    device_map: dict[str, str] = {}
    net_map: dict[str, str] = {}
    for dev in wrapped:
        body.add(dev)
        device_map[dev.name] = f"{inst_name}{SEP}{dev.name}"
    for net in internal:
        net_map[net] = f"{inst_name}{SEP}{net}"
    netlist.subckts[sub_name] = body
    netlist.top.devices = kept
    netlist.top.instances = [
        Instance(name=inst_name, subckt=sub_name, nets=tuple(shared))
    ] + netlist.top.instances
    return TransformedDeck(
        transform="outline_tail_devices",
        text=write_netlist(netlist),
        invariant=Invariant.SAME_STRUCTURE,
        device_map=device_map,
        net_map=net_map,
    )


#: The transform registry, in a stable order (the campaign indexes it).
TRANSFORMS = {
    fn.__name__: fn
    for fn in (
        rename_devices,
        rename_nets,
        insert_unit_mfactor,
        permute_cards,
        split_mfactor,
        inline_first_instance,
        outline_tail_devices,
    )
}


def apply_transform(
    name: str, text: str, rng: random.Random
) -> TransformedDeck:
    return TRANSFORMS[name](text, rng)


# ---------------------------------------------------------------------------
# Invariant checking
# ---------------------------------------------------------------------------


class InvariantViolation(AssertionError):
    """A metamorphic invariant did not hold."""


def _flat_graph(text: str) -> CircuitGraph:
    return CircuitGraph.from_circuit(flatten(parse_netlist(text)))


def _mapped(name: str, mapping: dict[str, str]) -> str:
    return mapping.get(name, name)


def _match_summary(result, device_map):
    """Primitive matches as an order-free comparable set."""
    out = set()
    for matches in result.post1.ccc_matches.values():
        for m in matches:
            out.add(
                (m.primitive, frozenset(_mapped(e, device_map) for e in m.elements))
            )
    for _cid, m in result.post1.standalone:
        out.add(
            (m.primitive, frozenset(_mapped(e, device_map) for e in m.elements))
        )
    return out


def _constraint_summary(result, device_map):
    return sorted(
        (c.kind.value, tuple(sorted(_mapped(m, device_map) for m in c.members)))
        for c in result.constraints
    )


def check_invariant(
    original_result,
    transformed_result,
    transformed: TransformedDeck,
    original_text: str | None = None,
) -> None:
    """Assert the declared invariant between two pipeline results.

    ``original_result``/``transformed_result`` are
    :class:`~repro.core.pipeline.PipelineResult` objects for
    annotation-level invariants; for :attr:`Invariant.SAME_STRUCTURE`
    and :attr:`Invariant.SAME_NETS` they may be ``None`` and the check
    runs at the parse/flatten level on ``original_text`` /
    ``transformed.text``.  Raises :class:`InvariantViolation` with a
    description of the first difference.
    """
    invariant = transformed.invariant
    if invariant is Invariant.BYTE_IDENTICAL:
        from repro.core.stages import pipeline_result_fingerprint

        got = pipeline_result_fingerprint(transformed_result)
        want = pipeline_result_fingerprint(original_result)
        if got != want:
            raise InvariantViolation(
                f"{transformed.transform}: result fingerprint changed "
                f"({want[:12]} -> {got[:12]})"
            )
        return
    if invariant is Invariant.UP_TO_RENAME:
        dmap, nmap = transformed.device_map, transformed.net_map
        want = {
            _mapped(k, dmap): v
            for k, v in original_result.annotation.element_classes.items()
        }
        got = transformed_result.annotation.element_classes
        if got != want:
            diff = {
                k: (want.get(k), got.get(k))
                for k in set(want) | set(got)
                if want.get(k) != got.get(k)
            }
            raise InvariantViolation(
                f"{transformed.transform}: element classes changed under "
                f"rename: {diff}"
            )
        want_nets = {
            _mapped(k, nmap): v
            for k, v in original_result.annotation.net_classes.items()
        }
        got_nets = transformed_result.annotation.net_classes
        if got_nets != want_nets:
            diff = {
                k: (want_nets.get(k), got_nets.get(k))
                for k in set(want_nets) | set(got_nets)
                if want_nets.get(k) != got_nets.get(k)
            }
            raise InvariantViolation(
                f"{transformed.transform}: net classes changed under "
                f"rename: {diff}"
            )
        if _match_summary(transformed_result, {}) != _match_summary(
            original_result, dmap
        ):
            raise InvariantViolation(
                f"{transformed.transform}: primitive matches changed under rename"
            )
        if _constraint_summary(transformed_result, {}) != _constraint_summary(
            original_result, dmap
        ):
            raise InvariantViolation(
                f"{transformed.transform}: constraints changed under rename"
            )
        if transformed_result.degraded != original_result.degraded:
            raise InvariantViolation(
                f"{transformed.transform}: degradation flag flipped"
            )
        return
    if invariant is Invariant.SAME_STRUCTURE:
        dmap, nmap = transformed.device_map, transformed.net_map

        def canon(dev, device_map, net_map):
            return (
                _mapped(dev.name, device_map),
                dev.kind,
                tuple(
                    (term, _mapped(net, net_map)) for term, net in dev.pins
                ),
                dev.value,
                dev.model,
                dev.params,
            )

        a = _flat_graph(original_text)
        b = _flat_graph(transformed.text)
        want = sorted(str(canon(d, dmap, nmap)) for d in a.elements)
        got = sorted(str(canon(d, {}, {})) for d in b.elements)
        if want != got:
            diff = set(want) ^ set(got)
            raise InvariantViolation(
                f"{transformed.transform}: flat device multiset changed "
                f"modulo rename: {sorted(diff)[:4]}"
            )
        # Transistor partition only: passives tie-break toward the
        # lowest component *id*, which depends on element order — a
        # permutation can legitimately move a two-CCC-bridging passive.
        pa = {
            comp_t
            for comp in channel_connected_components(a).components
            if (
                comp_t := frozenset(
                    _mapped(a.elements[i].name, dmap)
                    for i in comp
                    if a.elements[i].kind.is_transistor
                )
            )
        }
        pb = {
            comp_t
            for comp in channel_connected_components(b).components
            if (
                comp_t := frozenset(
                    b.elements[i].name
                    for i in comp
                    if b.elements[i].kind.is_transistor
                )
            )
        }
        if pa != pb:
            raise InvariantViolation(
                f"{transformed.transform}: transistor CCC partition changed"
            )
        return
    if invariant is Invariant.SAME_NETS:
        a = flatten(parse_netlist(original_text))
        b = flatten(parse_netlist(transformed.text))
        nets_a = set(a.nets)
        nets_b = set(b.nets)
        # Splitting renames the split instance's internal nets; compare
        # the *shared* namespace (nets visible outside any instance).
        outside_a = {n for n in nets_a if SEP not in n}
        outside_b = {n for n in nets_b if SEP not in n}
        if outside_a != outside_b:
            raise InvariantViolation(
                f"{transformed.transform}: top-level net set changed: "
                f"{sorted(outside_a ^ outside_b)}"
            )
        roles_a = {n: is_power_net(n) for n in outside_a}
        roles_b = {n: is_power_net(n) for n in outside_b}
        if roles_a != roles_b:
            raise InvariantViolation(
                f"{transformed.transform}: rail classification changed"
            )
        if len(b.devices) < len(a.devices):
            raise InvariantViolation(
                f"{transformed.transform}: device count shrank "
                f"({len(a.devices)} -> {len(b.devices)})"
            )
        return
    raise ValueError(f"unknown invariant {invariant!r}")
