"""Differential oracle registry.

Each oracle takes one generated deck and runs it through a *pair* of
execution paths that the repo promises are equivalent, raising
:class:`DivergenceError` on the first observable difference:

====================  =====================================================
oracle                paired paths
====================  =====================================================
parse_modes           strict parse/flatten vs lenient on clean decks
                      (identical flat circuit); strict-fatal vs
                      lenient-recovered on dirty decks
elaboration           ``flatten`` vs ``flatten_hierarchical`` flat circuit
include_roundtrip     ``.include``-split files vs self-contained text
indexed_matching      ``find_primitive_matches(indexed=True)`` vs the
                      naive ``indexed=False`` reference, per template
packed_gcn            ``GcnAnnotator.annotate_batch`` (block-diagonal
                      packed forward) vs per-sample ``annotate``
staged_vs_monolith    ``GanaPipeline.run`` (staged) vs ``_run_monolith``
hier_vs_flat          ``run(hier=True)`` vs the flat run
warm_cache            warm :class:`ArtifactCache` re-run (all stages
                      cache-hit) vs the cold run
metamorphic           a random transform from
                      :mod:`repro.testing.metamorphic` + its invariant
====================  =====================================================

Function-level imports that an oracle dereferences at call time
(``find_primitive_matches`` in particular) are module attributes on
purpose: a test can monkeypatch
``repro.testing.oracles.find_primitive_matches`` to inject a fault and
watch the fuzzer catch and shrink it.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.stages import pipeline_result_fingerprint
from repro.exceptions import GanaError
from repro.graph.bipartite import CircuitGraph
from repro.primitives.index import TargetContext
from repro.primitives.matcher import find_primitive_matches
from repro.spice.flatten import flatten, flatten_hierarchical
from repro.spice.parser import parse_netlist
from repro.testing.generator import GeneratedDeck
from repro.testing.metamorphic import (
    TRANSFORMS,
    InvariantViolation,
    apply_transform,
    check_invariant,
)


class DivergenceError(AssertionError):
    """Two supposedly equivalent execution paths disagreed."""

    def __init__(self, oracle: str, detail: str):
        super().__init__(f"[{oracle}] {detail}")
        self.oracle = oracle
        self.detail = detail


@dataclass
class OracleContext:
    """Shared (expensive) state for one fuzz campaign.

    The pipeline is built lazily so oracles that never annotate
    (parse/flatten/matching) stay model-free, and it is shared across
    iterations so the quick-trained annotator is paid for once.
    """

    seed: int = 0
    _pipeline: object = field(default=None, repr=False)

    @property
    def pipeline(self):
        if self._pipeline is None:
            from repro.core.pipeline import GanaPipeline

            self._pipeline = GanaPipeline.pretrained(
                "ota", quick=True, seed=0, train_size=150
            )
        return self._pipeline

    def rng(self, deck: GeneratedDeck, salt: str) -> random.Random:
        """Deterministic per-deck/per-oracle randomness."""
        return random.Random(f"{self.seed}:{deck.seed}:{salt}")


@dataclass(frozen=True)
class Oracle:
    """One registered differential check."""

    name: str
    description: str
    fn: Callable[[GeneratedDeck, OracleContext], None]
    #: Whether the check needs a trained annotator (model training /
    #: loading is the expensive part of a campaign).
    needs_pipeline: bool = False


ORACLES: dict[str, Oracle] = {}


def _oracle(description: str, needs_pipeline: bool = False):
    def register(fn):
        name = fn.__name__.removeprefix("check_")
        ORACLES[name] = Oracle(
            name=name,
            description=description,
            fn=fn,
            needs_pipeline=needs_pipeline,
        )
        return fn

    return register


def run_oracle(name: str, deck: GeneratedDeck, ctx: OracleContext) -> None:
    """Run one registered oracle; raises :class:`DivergenceError`."""
    ORACLES[name].fn(deck, ctx)


# ---------------------------------------------------------------------------
# Comparison helpers
# ---------------------------------------------------------------------------


def _diverge(oracle: str, detail: str) -> None:
    raise DivergenceError(oracle, detail)


def _circuit_repr(circuit) -> list[str]:
    return [repr(d) for d in circuit.devices]


def _flat_graph(deck: GeneratedDeck) -> CircuitGraph:
    netlist = parse_netlist(deck.text, mode=deck.mode)
    diags = [] if deck.mode == "lenient" else None
    return CircuitGraph.from_circuit(flatten(netlist, diagnostics=diags))


def _match_key(match) -> tuple:
    return (match.primitive, match.element_map, match.net_map)


# ---------------------------------------------------------------------------
# Parse / elaboration oracles (no model needed)
# ---------------------------------------------------------------------------


@_oracle("strict vs lenient parse+flatten agree on clean decks; dirt is strict-fatal, lenient-recovered")
def check_parse_modes(deck: GeneratedDeck, ctx: OracleContext) -> None:
    if deck.mode == "strict":
        strict = flatten(parse_netlist(deck.text, mode="strict"))
        diags = []
        lenient_netlist = parse_netlist(deck.text, mode="lenient")
        lenient = flatten(lenient_netlist, diagnostics=diags)
        if _circuit_repr(strict) != _circuit_repr(lenient):
            _diverge(
                "parse_modes",
                "strict and lenient flat circuits differ on a clean deck",
            )
        if diags or lenient_netlist.diagnostics:
            _diverge(
                "parse_modes",
                f"lenient mode reported diagnostics on a clean deck: "
                f"{[d.message for d in diags + list(lenient_netlist.diagnostics)]}",
            )
        return
    # Dirty deck: the strict path must refuse it somewhere in
    # parse→flatten, the lenient path must absorb it with diagnostics.
    try:
        flatten(parse_netlist(deck.text, mode="strict"))
    except GanaError:
        pass
    else:
        _diverge("parse_modes", "strict mode accepted a dirty deck")
    diags = []
    netlist = parse_netlist(deck.text, mode="lenient")
    flatten(netlist, diagnostics=diags)
    if not (diags or netlist.diagnostics):
        _diverge(
            "parse_modes",
            "lenient mode recovered a dirty deck without diagnostics",
        )


@_oracle("flatten vs flatten_hierarchical produce the same flat circuit")
def check_elaboration(deck: GeneratedDeck, ctx: OracleContext) -> None:
    netlist = parse_netlist(deck.text, mode=deck.mode)
    diags = [] if deck.mode == "lenient" else None
    flat = flatten(netlist, diagnostics=diags)
    netlist2 = parse_netlist(deck.text, mode=deck.mode)
    diags2 = [] if deck.mode == "lenient" else None
    flat_h, tree = flatten_hierarchical(netlist2, diagnostics=diags2)
    if _circuit_repr(flat) != _circuit_repr(flat_h):
        _diverge(
            "elaboration",
            "flatten and flatten_hierarchical flat circuits differ",
        )
    known = {inst.path for inst in tree.instances}
    missing = {
        d.name.rsplit("/", 1)[0]
        for d in flat.devices
        if "/" in d.name
        and not any(d.name.startswith(p + "/") for p in known)
    }
    if missing:
        _diverge(
            "elaboration",
            f"DesignTree is missing instance paths: {sorted(missing)}",
        )


@_oracle(".include-split files expand to the self-contained deck")
def check_include_roundtrip(deck: GeneratedDeck, ctx: OracleContext) -> None:
    if not deck.files:
        return
    with tempfile.TemporaryDirectory(prefix="fuzz-inc-") as tmp:
        root = Path(tmp)
        for name, content in deck.files.items():
            (root / name).write_text(content)
        split = parse_netlist(
            deck.files["main.sp"], include_dir=root, mode=deck.mode
        )
        joined = parse_netlist(deck.text, mode=deck.mode)
        diags_s = [] if deck.mode == "lenient" else None
        diags_j = [] if deck.mode == "lenient" else None
        flat_s = flatten(split, diagnostics=diags_s)
        flat_j = flatten(joined, diagnostics=diags_j)
    if _circuit_repr(flat_s) != _circuit_repr(flat_j):
        _diverge(
            "include_roundtrip",
            ".include expansion and self-contained text flatten differently",
        )


@_oracle("indexed VF2 matching equals the naive indexed=False reference")
def check_indexed_matching(deck: GeneratedDeck, ctx: OracleContext) -> None:
    from repro.primitives.library import extended_library

    graph = _flat_graph(deck)
    context = TargetContext.build(graph)
    for template in extended_library().templates:
        naive = find_primitive_matches(template, graph, indexed=False)
        fast = find_primitive_matches(
            template, graph, context=context, indexed=True
        )
        if [_match_key(m) for m in naive] != [_match_key(m) for m in fast]:
            _diverge(
                "indexed_matching",
                f"template {template.name}: indexed path returned "
                f"{len(fast)} matches vs naive {len(naive)} "
                "(or same count, different content/order)",
            )


# ---------------------------------------------------------------------------
# Pipeline oracles (need the trained annotator)
# ---------------------------------------------------------------------------


@_oracle("packed block-diagonal GCN forward equals per-sample forward", needs_pipeline=True)
def check_packed_gcn(deck: GeneratedDeck, ctx: OracleContext) -> None:
    graph = _flat_graph(deck)
    annotator = ctx.pipeline.annotator
    solo = annotator.annotate(graph)
    packed = annotator.annotate_batch([graph, graph])
    for i, ann in enumerate(packed):
        if not np.array_equal(ann.vertex_classes, solo.vertex_classes):
            _diverge(
                "packed_gcn",
                f"packed sample {i}: vertex classes differ from per-sample path",
            )
        if not np.allclose(
            ann.probabilities, solo.probabilities, rtol=1e-9, atol=1e-12
        ):
            worst = float(
                np.max(np.abs(ann.probabilities - solo.probabilities))
            )
            _diverge(
                "packed_gcn",
                f"packed sample {i}: probabilities drifted (max |Δ|={worst:g})",
            )


@_oracle("staged runner equals the monolith reference", needs_pipeline=True)
def check_staged_vs_monolith(deck: GeneratedDeck, ctx: OracleContext) -> None:
    pipeline = ctx.pipeline
    staged = pipeline.run(deck.text, mode=deck.mode)
    monolith = pipeline._run_monolith(deck.text, mode=deck.mode)
    got = pipeline_result_fingerprint(staged)
    want = pipeline_result_fingerprint(monolith)
    if got != want:
        _diverge(
            "staged_vs_monolith",
            f"result fingerprints differ: staged {got[:12]} vs monolith {want[:12]}",
        )
    if staged.degraded != monolith.degraded:
        _diverge("staged_vs_monolith", "degradation flags differ")


@_oracle("hierarchy-scoped annotation is byte-identical to the flat path", needs_pipeline=True)
def check_hier_vs_flat(deck: GeneratedDeck, ctx: OracleContext) -> None:
    pipeline = ctx.pipeline
    flat = pipeline.run(deck.text, mode=deck.mode)
    hier = pipeline.run(deck.text, mode=deck.mode, hier=True)
    got = pipeline_result_fingerprint(hier)
    want = pipeline_result_fingerprint(flat)
    if got != want:
        _diverge(
            "hier_vs_flat",
            f"result fingerprints differ: hier {got[:12]} vs flat {want[:12]}",
        )


@_oracle("warm artifact-cache re-run hits every stage and matches cold", needs_pipeline=True)
def check_warm_cache(deck: GeneratedDeck, ctx: OracleContext) -> None:
    pipeline = ctx.pipeline
    with tempfile.TemporaryDirectory(prefix="fuzz-cache-") as tmp:
        cold_staged = pipeline.run_staged(
            deck.text, mode=deck.mode, artifact_cache=tmp
        )
        cold = pipeline.result_from_staged(cold_staged)
        warm_staged = pipeline.run_staged(
            deck.text, mode=deck.mode, artifact_cache=tmp
        )
        warm = pipeline.result_from_staged(warm_staged)
    missed = [
        s.value
        for s in warm_staged.artifacts
        if s not in warm_staged.cache_hits
    ]
    # The gcn stage (and everything downstream of it) deliberately
    # opts out of the content-addressed store once the pipeline holds
    # a lazily-built fallback recognizer (no stable fingerprint) or
    # the run degraded — mirror that contract: parse/preprocess/graph
    # must always hit warm; gcn+ only while gcn stays cacheable.
    gcn_cacheable = not cold.degraded and not (
        pipeline.fallback_recognizer is not None and pipeline.degrade
    )
    always_cached = {"parse", "preprocess", "graph"}
    missed = [
        s for s in missed if gcn_cacheable or s in always_cached
    ]
    if missed:
        _diverge(
            "warm_cache",
            f"warm run recomputed stages instead of cache-hitting: {missed}",
        )
    got = pipeline_result_fingerprint(warm)
    want = pipeline_result_fingerprint(cold)
    if got != want:
        _diverge(
            "warm_cache",
            f"warm result fingerprint {got[:12]} != cold {want[:12]}",
        )


@_oracle("a random metamorphic transform preserves its declared invariant", needs_pipeline=True)
def check_metamorphic(deck: GeneratedDeck, ctx: OracleContext) -> None:
    if deck.mode != "strict":
        return  # transforms re-serialize through the strict writer
    rng = ctx.rng(deck, "metamorphic")
    name = rng.choice(sorted(TRANSFORMS))
    transformed = apply_transform(name, deck.text, rng)
    if transformed.noop:
        return
    from repro.testing.metamorphic import Invariant

    pipeline = ctx.pipeline
    original = transformed_result = None
    if transformed.invariant in (
        Invariant.BYTE_IDENTICAL,
        Invariant.UP_TO_RENAME,
    ):
        original = pipeline.run(deck.text)
        transformed_result = pipeline.run(transformed.text)
    try:
        check_invariant(
            original, transformed_result, transformed, original_text=deck.text
        )
    except InvariantViolation as exc:
        _diverge("metamorphic", str(exc))
