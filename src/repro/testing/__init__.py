"""Generative fuzzing + differential-oracle harness (ISSUE 10).

The correctness backstop for every dual execution path in the repo:

* :mod:`repro.testing.generator` — seeded random SPICE deck
  composition from grammar-level building blocks (primitive templates,
  passive/active glue, nested ``.subckt`` hierarchies with m-factors,
  ``.include`` chains, optional lenient-mode dirt), returning both the
  deck text and a JSON-serializable generation recipe;
* :mod:`repro.testing.metamorphic` — semantics-preserving deck
  transforms, each with a declared annotation-level invariant
  (byte-identical, identical up to rename, …);
* :mod:`repro.testing.oracles` — the differential oracle registry:
  one deck through paired execution paths, equivalence asserted
  (indexed vs naive matching, packed vs per-sample GCN, staged vs
  monolith, hier vs flat, warm vs cold cache, strict vs lenient parse,
  include expansion, both elaboration modes);
* :mod:`repro.testing.shrink` — delta-debugging minimizer that turns
  any failing deck into a small committed repro;
* :mod:`repro.testing.campaign` — the fuzz loop behind
  ``python -m repro.fuzz``.
"""

from repro.testing.campaign import FuzzReport, run_campaign
from repro.testing.generator import (
    GenConfig,
    GeneratedDeck,
    generate_deck,
    regenerate,
)
from repro.testing.metamorphic import (
    Invariant,
    TransformedDeck,
    TRANSFORMS,
    apply_transform,
    check_invariant,
)
from repro.testing.oracles import (
    ORACLES,
    DivergenceError,
    Oracle,
    OracleContext,
    run_oracle,
)
from repro.testing.shrink import shrink_deck, write_corpus_entry

__all__ = [
    "DivergenceError",
    "FuzzReport",
    "GenConfig",
    "GeneratedDeck",
    "Invariant",
    "ORACLES",
    "Oracle",
    "OracleContext",
    "TRANSFORMS",
    "TransformedDeck",
    "apply_transform",
    "check_invariant",
    "generate_deck",
    "regenerate",
    "run_campaign",
    "run_oracle",
    "shrink_deck",
    "write_corpus_entry",
]
