"""The fuzz loop behind ``python -m repro.fuzz``.

One campaign iterates seeds ``base_seed, base_seed+1, …``: each seed
generates a deck (cycling through a small set of generator
configurations so hierarchy, m-factors, ``.include`` splits and
lenient-mode dirt all appear), runs every selected oracle on it, and
on the first divergence shrinks the deck with
:func:`~repro.testing.shrink.shrink_deck` and writes the minimized
repro into the corpus directory.  The loop is bounded by iterations
*and* wall-clock, whichever comes first, so a CI smoke job cannot run
away.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.testing.generator import GenConfig, GeneratedDeck, generate_deck
from repro.testing.oracles import (
    ORACLES,
    DivergenceError,
    OracleContext,
)
from repro.testing.shrink import shrink_deck, write_corpus_entry

#: The configuration rotation: index ``seed % len(_CONFIG_CYCLE)``.
#: Covers flat decks, deep hierarchy + m-factors, ``.include`` splits,
#: and lenient-mode dirt.
_CONFIG_CYCLE: tuple[GenConfig, ...] = (
    GenConfig(),
    GenConfig(max_subckts=0, max_blocks=3),
    GenConfig(max_subckts=2, p_nested=0.6, p_mfactor=0.5),
    GenConfig(include_split=True),
    GenConfig(n_dirt=2, max_blocks=2),
)


@dataclass
class Divergence:
    """One caught oracle failure, after shrinking."""

    seed: int
    oracle: str
    detail: str
    shrunk_text: str
    shrunk_lines: int
    original_lines: int
    probes: int
    corpus_path: str | None = None


@dataclass
class FuzzReport:
    """Aggregate outcome of one campaign."""

    iterations: int = 0
    oracle_runs: int = 0
    #: oracle name → times executed.
    per_oracle: dict[str, int] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    elapsed: float = 0.0
    stopped_by: str = "iterations"

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.iterations} decks, {self.oracle_runs} oracle runs "
            f"in {self.elapsed:.1f}s (stopped by {self.stopped_by})"
        ]
        for name in sorted(self.per_oracle):
            lines.append(f"  {name}: {self.per_oracle[name]} runs")
        if self.divergences:
            lines.append(f"  DIVERGENCES: {len(self.divergences)}")
            for d in self.divergences:
                where = f" -> {d.corpus_path}" if d.corpus_path else ""
                lines.append(
                    f"    seed {d.seed} [{d.oracle}] shrunk "
                    f"{d.original_lines} -> {d.shrunk_lines} lines "
                    f"({d.probes} probes){where}: {d.detail}"
                )
        else:
            lines.append("  all oracles green")
        return "\n".join(lines)


def _deck_for(seed: int) -> GeneratedDeck:
    config = _CONFIG_CYCLE[seed % len(_CONFIG_CYCLE)]
    return generate_deck(seed, config)


def run_campaign(
    base_seed: int = 0,
    iterations: int = 50,
    time_budget: float | None = None,
    oracle_names: list[str] | None = None,
    corpus_dir: str | None = None,
    ctx: OracleContext | None = None,
    stop_on_first: bool = False,
    log=None,
) -> FuzzReport:
    """Run a bounded fuzz campaign; returns the :class:`FuzzReport`.

    ``oracle_names`` defaults to every registered oracle.  When
    ``corpus_dir`` is given, each shrunken divergence is written there
    via :func:`~repro.testing.shrink.write_corpus_entry`.
    ``stop_on_first`` ends the campaign at the first divergence
    (after shrinking it) instead of continuing to the bound.
    """
    names = list(oracle_names or sorted(ORACLES))
    unknown = [n for n in names if n not in ORACLES]
    if unknown:
        raise ValueError(
            f"unknown oracles {unknown}; registered: {sorted(ORACLES)}"
        )
    ctx = ctx or OracleContext(seed=base_seed)
    report = FuzzReport()
    start = time.monotonic()

    for i in range(iterations):
        if time_budget is not None and time.monotonic() - start > time_budget:
            report.stopped_by = "time-budget"
            break
        seed = base_seed + i
        deck = _deck_for(seed)
        report.iterations += 1
        for name in names:
            oracle = ORACLES[name]
            report.oracle_runs += 1
            report.per_oracle[name] = report.per_oracle.get(name, 0) + 1
            try:
                oracle.fn(deck, ctx)
            except DivergenceError as exc:
                if log:
                    log(
                        f"seed {seed}: [{name}] diverged — shrinking "
                        f"({deck.n_lines} lines)"
                    )
                divergence = _handle_divergence(
                    deck, name, exc, ctx, corpus_dir
                )
                report.divergences.append(divergence)
                if stop_on_first:
                    report.stopped_by = "divergence"
                    report.elapsed = time.monotonic() - start
                    return report
        if log and (i + 1) % 10 == 0:
            log(f"{i + 1}/{iterations} decks fuzzed, all green")

    report.elapsed = time.monotonic() - start
    return report


def _handle_divergence(
    deck: GeneratedDeck,
    oracle_name: str,
    exc: DivergenceError,
    ctx: OracleContext,
    corpus_dir: str | None,
) -> Divergence:
    oracle = ORACLES[oracle_name]

    def predicate(text: str) -> None:
        candidate = GeneratedDeck(
            text=text, recipe=deck.recipe, mode=deck.mode, files={}
        )
        oracle.fn(candidate, ctx)

    try:
        shrunk = shrink_deck(deck.text, predicate)
        shrunk_text, shrunk_lines = shrunk.text, shrunk.shrunk_lines
        original_lines, probes = shrunk.original_lines, shrunk.probes
    except ValueError:
        # The divergence does not reproduce from the joined text alone
        # (e.g. it needs the .include file split); keep the deck as-is.
        shrunk_text, shrunk_lines = deck.text, deck.n_lines
        original_lines, probes = deck.n_lines, 1
    divergence = Divergence(
        seed=deck.seed,
        oracle=oracle_name,
        detail=exc.detail,
        shrunk_text=shrunk_text,
        shrunk_lines=shrunk_lines,
        original_lines=original_lines,
        probes=probes,
    )
    if corpus_dir:
        path = write_corpus_entry(
            corpus_dir,
            f"shrunk_seed{deck.seed}_{oracle_name}",
            shrunk_text,
            oracle=oracle_name,
            mode=deck.mode,
            detail=exc.detail,
            recipe=deck.recipe,
        )
        divergence.corpus_path = str(path)
    return divergence
