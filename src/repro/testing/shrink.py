"""Delta-debugging deck minimizer.

When an oracle raises :class:`~repro.testing.oracles.DivergenceError`
on a generated deck, the deck is rarely a good bug report: most of its
lines are irrelevant to the divergence.  :func:`shrink_deck` runs the
classic ddmin algorithm over the deck's *lines*, keeping a candidate
only when the oracle still raises a ``DivergenceError`` on it (any
other exception means the candidate broke for an unrelated reason —
a malformed deck is not a repro), then finishes with a greedy
single-line elimination pass.  The result is a locally 1-minimal
failing deck: removing any single remaining line makes the divergence
disappear.

:func:`write_corpus_entry` persists a shrunken deck plus a JSON
sidecar (oracle name, divergence message, generation recipe) into a
corpus directory; ``tests/fuzz/test_corpus.py`` replays every entry as
an ordinary pytest case, so each fuzz find becomes a permanent
regression test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable


@dataclass
class ShrinkResult:
    """Outcome of one :func:`shrink_deck` call."""

    text: str
    #: Oracle/predicate evaluations spent (a cost/progress metric).
    probes: int = 0
    #: Line counts before/after.
    original_lines: int = 0
    shrunk_lines: int = 0
    trace: list[str] = field(default_factory=list)

    @property
    def reduction(self) -> float:
        if not self.original_lines:
            return 0.0
        return 1.0 - self.shrunk_lines / self.original_lines


def _still_fails(
    predicate: Callable[[str], None], text: str, result: ShrinkResult
) -> bool:
    """True iff ``predicate`` raises DivergenceError on ``text``."""
    from repro.testing.oracles import DivergenceError

    result.probes += 1
    try:
        predicate(text)
    except DivergenceError:
        return True
    except Exception:
        # A different failure (parse error, pipeline crash …) is not
        # the divergence we are minimizing; treat as "does not fail".
        return False
    return False


def shrink_deck(
    text: str,
    predicate: Callable[[str], None],
    max_probes: int = 2000,
) -> ShrinkResult:
    """Minimize a failing deck with ddmin over its lines.

    ``predicate`` runs the failing oracle on a candidate deck text; a
    raised :class:`~repro.testing.oracles.DivergenceError` marks the
    candidate as still-failing.  ``max_probes`` bounds total predicate
    evaluations (the current best deck is returned on exhaustion).
    """
    lines = text.splitlines()
    result = ShrinkResult(
        text=text, original_lines=len(lines), shrunk_lines=len(lines)
    )
    if not _still_fails(predicate, text, result):
        raise ValueError("input deck does not fail the predicate")

    def join(parts: list[str]) -> str:
        return "\n".join(parts) + "\n"

    # Classic ddmin: try removing chunks at granularity n, doubling
    # granularity when nothing at the current level can be removed.
    n = 2
    while len(lines) >= 2 and result.probes < max_probes:
        chunk = max(1, len(lines) // n)
        removed_any = False
        start = 0
        while start < len(lines) and result.probes < max_probes:
            candidate = lines[:start] + lines[start + chunk :]
            if candidate and _still_fails(predicate, join(candidate), result):
                result.trace.append(
                    f"ddmin: dropped lines [{start}:{start + chunk}) "
                    f"({len(lines)} -> {len(candidate)})"
                )
                lines = candidate
                n = max(n - 1, 2)
                removed_any = True
            else:
                start += chunk
        if not removed_any:
            if n >= len(lines):
                break
            n = min(len(lines), n * 2)

    # Greedy 1-minimal pass: every surviving line is load-bearing.
    i = 0
    while i < len(lines) and result.probes < max_probes:
        candidate = lines[:i] + lines[i + 1 :]
        if candidate and _still_fails(predicate, join(candidate), result):
            result.trace.append(f"1-minimal: dropped line {i!r}: {lines[i]}")
            lines = candidate
        else:
            i += 1

    result.text = join(lines)
    result.shrunk_lines = len(lines)
    return result


def write_corpus_entry(
    corpus_dir: str | Path,
    name: str,
    text: str,
    *,
    oracle: str,
    mode: str = "strict",
    detail: str = "",
    recipe: dict | None = None,
) -> Path:
    """Write ``<name>.sp`` + ``<name>.json`` into the corpus directory.

    Returns the path of the deck file.  The JSON sidecar carries
    everything the replay test needs: which oracle diverged, the parse
    mode the deck requires, the divergence message at capture time, and
    (when the deck came from the generator) the reproduction recipe.
    """
    corpus = Path(corpus_dir)
    corpus.mkdir(parents=True, exist_ok=True)
    deck_path = corpus / f"{name}.sp"
    deck_path.write_text(text)
    sidecar = {
        "oracle": oracle,
        "mode": mode,
        "detail": detail,
        "recipe": recipe,
    }
    (corpus / f"{name}.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n"
    )
    return deck_path
