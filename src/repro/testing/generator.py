"""Seeded random SPICE deck generation.

The generator composes *valid* decks from grammar-level building
blocks, so a fuzz iteration exercises the same structures real analog
netlists have — primitive topologies the library knows, passive and
active glue between them, nested ``.subckt`` hierarchies with
m-factors, ``.include`` chains — plus, in lenient mode, deliberate
dirt (malformed cards, undefined subckt instances) that the resilient
parse path must absorb.

Every deck comes back as a :class:`GeneratedDeck`: the self-contained
deck ``text``, the optional ``files`` split (a main deck plus include
files whose expansion equals ``text``), the parse ``mode`` the deck
requires (``"lenient"`` iff dirt was injected), and the ``recipe`` —
a JSON-serializable dict from which :func:`regenerate` reproduces the
deck byte-for-byte.  Determinism is the contract: one seed, one deck.

Building blocks come from the real primitive library
(:func:`repro.primitives.library.extended_library`): each snippet is a
template's ``.subckt`` body with fresh device/net names and its port
nets drawn according to the template's declared port roles (power
ports land on rails, bias ports on ``vb*`` nets, signal ports on the
deck's signal-net pool), so generated decks actually contain matchable
primitives instead of random soup.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

from repro.primitives.library import PrimitiveLibrary, extended_library
from repro.spice.netlist import Circuit, DeviceKind, is_power_net
from repro.spice.parser import parse_netlist
from repro.spice.writer import _device_line

#: Recipe schema version; bump on any change that would alter the deck
#: produced from an existing recipe.
RECIPE_VERSION = 1

#: Glue-value pools (SPICE suffix notation, parsed by repro.spice.units).
_R_VALUES = ("1k", "10k", "50k", "100")
_C_VALUES = ("1p", "100f", "10p")
_L_VALUES = ("1n", "10n")

#: Lenient-mode dirt lines.  Every entry must be *strict-fatal*
#: somewhere in parse→flatten (that asymmetry is what the parse-modes
#: oracle checks) while being skippable in lenient mode.
_DIRT_LINES = (
    "qbogus a b c npn",  # unsupported card type
    "mshort n900 n901",  # MOS with too few pins
    "xundef n902 n903 nosuchcell",  # instance of an undefined subckt
    "rnoval n904 n905",  # resistor without a value
)


@dataclass(frozen=True)
class GenConfig:
    """Knobs for one generated deck.  All sizes are inclusive bounds."""

    #: Top-level primitive snippets (drawn from the template library).
    min_blocks: int = 1
    max_blocks: int = 4
    #: Random passive/active glue devices at the top level.
    max_glue: int = 3
    #: Subcircuit definitions (0 disables hierarchy for this deck).
    max_subckts: int = 2
    #: Instances per definition.
    max_instances: int = 3
    #: Probability a definition nests an instance of an earlier one.
    p_nested: float = 0.3
    #: Probability an instance card carries an integer m-factor.
    p_mfactor: float = 0.25
    #: Number of dirt lines to inject (> 0 forces mode="lenient").
    n_dirt: int = 0
    #: Emit the deck as main + .include files as well as joined text.
    include_split: bool = False

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class GeneratedDeck:
    """One generated deck plus everything needed to reproduce it."""

    text: str
    recipe: dict
    #: ``"strict"`` for clean decks, ``"lenient"`` when dirt is present.
    mode: str = "strict"
    #: Optional ``.include`` split: file name → content.  Parsing
    #: ``files["main.sp"]`` with ``include_dir`` pointing at these
    #: files must equal parsing the self-contained ``text``.
    files: dict[str, str] = field(default_factory=dict)

    @property
    def seed(self) -> int:
        return self.recipe["seed"]

    @property
    def n_lines(self) -> int:
        return len(self.text.splitlines())


class _Namer:
    """Unique device/net name supply for one deck."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}

    def fresh(self, prefix: str) -> str:
        n = self.counters.get(prefix, 0)
        self.counters[prefix] = n + 1
        return f"{prefix}{n}"


_CARD_LETTER: dict[DeviceKind, str] = {
    DeviceKind.NMOS: "m",
    DeviceKind.PMOS: "m",
    DeviceKind.RESISTOR: "r",
    DeviceKind.CAPACITOR: "c",
    DeviceKind.INDUCTOR: "l",
    DeviceKind.DIODE: "d",
}

_LIBRARY: PrimitiveLibrary | None = None
_BODY_MEMO: dict[str, Circuit] = {}


def _library() -> PrimitiveLibrary:
    global _LIBRARY
    if _LIBRARY is None:
        _LIBRARY = extended_library()
    return _LIBRARY


def _template_body(template) -> Circuit:
    """The template's parsed ``.subckt`` body (memoized per template)."""
    body = _BODY_MEMO.get(template.name)
    if body is None:
        netlist = parse_netlist(template.spice)
        body = _BODY_MEMO[template.name] = next(iter(netlist.subckts.values()))
    return body


def _template_rail(template) -> str:
    """Rail a 'power'-role port should land on for this template."""
    kinds = {d.kind for d in template.graph.elements}
    return "vdd!" if DeviceKind.PMOS in kinds and DeviceKind.NMOS not in kinds else "gnd!"


class _Scope:
    """One net namespace (the top level, or one subckt body)."""

    def __init__(self, rng: random.Random, namer: _Namer, net_prefix: str = "n"):
        self.rng = rng
        self.namer = namer
        self.net_prefix = net_prefix
        self.signal_nets: list[str] = []
        self.bias_nets: list[str] = []

    def fresh_signal(self) -> str:
        net = self.namer.fresh(self.net_prefix)
        self.signal_nets.append(net)
        return net

    def signal(self, p_reuse: float = 0.4) -> str:
        if self.signal_nets and self.rng.random() < p_reuse:
            return self.rng.choice(self.signal_nets)
        return self.fresh_signal()

    def bias(self) -> str:
        if self.bias_nets and self.rng.random() < 0.5:
            return self.rng.choice(self.bias_nets)
        net = self.namer.fresh("vb")
        self.bias_nets.append(net)
        return net


def _emit_snippet(scope: _Scope, namer: _Namer) -> list[str]:
    """One primitive-template instantiation as raw device cards."""
    rng = scope.rng
    template = rng.choice(_library().templates)
    body = _template_body(template)
    roles = dict(template.port_roles)
    net_map: dict[str, str] = {}
    for port in body.ports:
        role = roles.get(port)
        if role in ("power",):
            net_map[port] = _template_rail(template)
        elif role == "supply":
            net_map[port] = "vdd!"
        elif role == "ground":
            net_map[port] = "gnd!"
        elif role == "bias":
            net_map[port] = scope.bias()
        else:  # "signal" or undeclared: any non-power net
            net_map[port] = scope.signal()
    lines: list[str] = []
    for dev in body.devices:
        for net in dev.nets:
            if net in net_map or is_power_net(net):
                continue
            net_map[net] = scope.fresh_signal()  # internal template net
        letter = _CARD_LETTER[dev.kind]
        renamed = dev.renamed(namer.fresh(letter), net_map)
        lines.append(_device_line(renamed))
    return lines


def _emit_glue(scope: _Scope, namer: _Namer) -> str:
    """One random glue device card."""
    rng = scope.rng
    kind = rng.choice(("r", "c", "l", "mdiode", "mos"))
    if kind == "r":
        return f"{namer.fresh('r')} {scope.signal()} {scope.signal()} {rng.choice(_R_VALUES)}"
    if kind == "c":
        return f"{namer.fresh('c')} {scope.signal()} {rng.choice(('gnd!', scope.signal()))} {rng.choice(_C_VALUES)}"
    if kind == "l":
        return f"{namer.fresh('l')} {scope.signal()} {scope.signal()} {rng.choice(_L_VALUES)}"
    if kind == "mdiode":
        d = scope.signal()
        return f"{namer.fresh('m')} {d} {d} gnd! gnd! nmos w=1u l=100n"
    model = rng.choice(("nmos", "pmos"))
    rail = "vdd!" if model == "pmos" else "gnd!"
    return (
        f"{namer.fresh('m')} {scope.signal()} {scope.signal()} "
        f"{rng.choice((rail, scope.signal()))} {rail} {model} w=2u l=100n"
    )


def generate_deck(seed: int, config: GenConfig | None = None) -> GeneratedDeck:
    """Generate one deterministic deck for ``seed`` under ``config``."""
    config = config or GenConfig()
    rng = random.Random(seed)
    namer = _Namer()
    top = _Scope(rng, namer)

    lines: list[str] = [f"* fuzz deck seed={seed}", ".global vdd! gnd!"]
    subckt_lines: list[str] = []
    instance_lines: list[str] = []
    definitions: list[tuple[str, int]] = []  # (name, n_ports)

    # -- subcircuit definitions ------------------------------------------
    n_subckts = rng.randint(0, config.max_subckts)
    for s in range(n_subckts):
        sub_name = f"cell{s}"
        sub_namer = _Namer()
        sub_scope = _Scope(rng, sub_namer, net_prefix="sn")
        body: list[str] = []
        for _ in range(rng.randint(1, 2)):
            body.extend(_emit_snippet(sub_scope, sub_namer))
        if rng.random() < 0.5:
            body.append(_emit_glue(sub_scope, sub_namer))
        if definitions and rng.random() < config.p_nested:
            inner_name, inner_ports = rng.choice(definitions)
            nets = [sub_scope.signal() for _ in range(inner_ports)]
            body.append(f"{sub_namer.fresh('x')} {' '.join(nets)} {inner_name}")
        # Ports: a stable subset of the body's signal nets (≥1).
        pool = sub_scope.signal_nets or [sub_scope.fresh_signal()]
        n_ports = max(1, min(len(pool), rng.randint(1, 3)))
        ports = pool[:n_ports]
        subckt_lines.append(f".subckt {sub_name} " + " ".join(ports))
        subckt_lines.extend(body)
        subckt_lines.append(".ends")
        definitions.append((sub_name, n_ports))

    # -- top-level content ------------------------------------------------
    device_lines: list[str] = []
    n_blocks = rng.randint(config.min_blocks, config.max_blocks)
    for _ in range(n_blocks):
        device_lines.extend(_emit_snippet(top, namer))
    for _ in range(rng.randint(0, config.max_glue)):
        device_lines.append(_emit_glue(top, namer))
    for name, n_ports in definitions:
        for _ in range(rng.randint(1, config.max_instances)):
            nets = [top.signal() for _ in range(n_ports)]
            card = f"{namer.fresh('x')} {' '.join(nets)} {name}"
            if rng.random() < config.p_mfactor:
                card += f" m={rng.randint(2, 3)}"
            instance_lines.append(card)

    # Without replacement: lenient mode *recovers* some dirt (e.g. the
    # value-less resistor) into real devices, so a repeated line would
    # produce duplicate device names in the flat circuit.
    dirt = rng.sample(_DIRT_LINES, min(config.n_dirt, len(_DIRT_LINES)))
    mode = "lenient" if dirt else "strict"

    body_lines = subckt_lines + device_lines + instance_lines + dirt
    text = "\n".join(lines + body_lines + [".end"]) + "\n"

    files: dict[str, str] = {}
    if config.include_split and subckt_lines:
        files["cells.inc"] = "\n".join(subckt_lines) + "\n"
        main = (
            lines
            + [".include cells.inc"]
            + device_lines
            + instance_lines
            + dirt
            + [".end"]
        )
        files["main.sp"] = "\n".join(main) + "\n"

    recipe = {
        "version": RECIPE_VERSION,
        "seed": seed,
        "config": config.as_dict(),
    }
    return GeneratedDeck(text=text, recipe=recipe, mode=mode, files=files)


def regenerate(recipe: dict) -> GeneratedDeck:
    """Reproduce a deck from its recipe (the reproducibility contract)."""
    version = recipe.get("version")
    if version != RECIPE_VERSION:
        raise ValueError(
            f"recipe version {version!r} not supported "
            f"(this generator writes version {RECIPE_VERSION})"
        )
    return generate_deck(recipe["seed"], GenConfig(**recipe["config"]))
