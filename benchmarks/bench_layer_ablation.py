"""Sec. V-A — choosing the number of layers (and the activation).

Paper: "in going from one layer to two, there is a noticeable
improvement in accuracy, but moving to three layers reduces the
accuracy" (over-smoothing); two-layer accuracy 88.89 % ± 1.71 % (OTA)
and 83.86 % ± 1.98 % (RF); "ReLU provides consistently better results"
than tanh.

We train 1/2/3-layer GCNs on both datasets (multiple seeds) and report
mean ± variance, asserting the 2 > 1 and 2 > 3 ordering on the mean,
plus a ReLU-vs-tanh comparison at two layers.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import EPOCHS, PAPER, write_result
from repro.datasets.synth import (
    build_samples,
    generate_ota_bias_dataset,
    generate_rf_dataset,
    task_classes,
)
from repro.gcn.metrics import mean_and_variance
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.samples import train_validation_split
from repro.gcn.train import TrainConfig, evaluate, train

N_CIRCUITS = 160 if PAPER else 40
N_SEEDS = 3 if PAPER else 2
ABLATION_EPOCHS = max(10, EPOCHS // 3)


@pytest.fixture(scope="module")
def task_splits():
    splits = {}
    for task, generator in (
        ("ota", generate_ota_bias_dataset),
        ("rf", generate_rf_dataset),
    ):
        dataset = generator(N_CIRCUITS, seed=f"ablate-{task}")
        samples = build_samples(
            dataset, task_classes(task), levels=3
        )  # 3 levels so the 3-layer model fits too
        splits[task] = train_validation_split(samples, 0.2, seed=3)
    return splits


def _accuracy(split, task, n_layers, activation, seed):
    train_samples, val_samples = split
    channels = (16, 32, 32)[:n_layers] if n_layers > 1 else (16,)
    config = GCNConfig(
        n_classes=len(task_classes(task)),
        n_layers=n_layers,
        channels=channels,
        filter_size=8,
        fc_size=64,
        activation=activation,
        seed=seed,
    )
    model = GCNModel(config)
    train(
        model,
        train_samples,
        val_samples,
        TrainConfig(epochs=ABLATION_EPOCHS, patience=0, seed=seed),
    )
    return evaluate(model, val_samples)


def bench_layer_ablation(benchmark, task_splits):
    lines = [
        "{:<6} {:<8} {:<6} {:>12} {:>10}".format(
            "task", "layers", "act", "val acc", "variance"
        )
    ]
    means: dict[tuple[str, int], float] = {}
    for task in ("ota", "rf"):
        for n_layers in (1, 2, 3):
            accs = [
                _accuracy(task_splits[task], task, n_layers, "relu", seed)
                for seed in range(N_SEEDS)
            ]
            mean, var = mean_and_variance(accs)
            means[(task, n_layers)] = mean
            lines.append(
                "{:<6} {:<8} {:<6} {:>11.2%} {:>10.4f}".format(
                    task, n_layers, "relu", mean, var
                )
            )

    # ReLU vs tanh at the chosen two layers (OTA).
    tanh_accs = [
        _accuracy(task_splits["ota"], "ota", 2, "tanh", seed)
        for seed in range(N_SEEDS)
    ]
    tanh_mean, tanh_var = mean_and_variance(tanh_accs)
    lines.append(
        "{:<6} {:<8} {:<6} {:>11.2%} {:>10.4f}".format(
            "ota", 2, "tanh", tanh_mean, tanh_var
        )
    )
    lines.append("")
    lines.append("paper: 2 layers best (88.89% OTA / 83.86% RF); ReLU > tanh")
    write_result("layer_ablation", "\n".join(lines))

    benchmark.pedantic(
        lambda: _accuracy(task_splits["ota"], "ota", 2, "relu", 99),
        rounds=1,
        iterations=1,
    )

    # Shape: three layers over-smooth — the paper's central depth claim.
    for task in ("ota", "rf"):
        assert means[(task, 2)] >= means[(task, 3)] - 0.02, task
    # Documented deviation (EXPERIMENTS.md): on our synthetic datasets a
    # single layer already separates the classes (the variant space,
    # while wide, is more locally separable than the paper's curated
    # circuits), so the paper's 1→2 improvement does not reproduce;
    # the 1-layer row is reported above for the record.
    # ReLU at least matches tanh.
    assert means[("ota", 2)] >= tanh_mean - 0.03
