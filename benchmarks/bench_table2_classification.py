"""Table II — classification results on the four test sets.

Paper:

    Test set                  # Circuits  # Nodes  GCN accuracy
    OTA bias                  168         9296     90.5%   (→100% post-I)
    Switched capacitor filter 1           57       98.2%   (→100% post-I)
    RF data                   105         17640    83.64%  (→89.24% post-I → 100% post-II)
    Phased array system       1           902      79.8%   (→87.3% post-I → 100% post-II)

The reproduced table reports GCN / post-I / post-II accuracy per row.
The shape assertions: postprocessing is monotone per row-average, every
row ends at ≥99 % after its final stage at paper scale, and the phased
array is the hardest row for the raw GCN.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import OTA_TEST, PAPER, RF_TEST, load_pipeline, write_result
from repro.datasets.synth import generate_ota_test_set, generate_rf_test_set
from repro.datasets.systems import phased_array, switched_cap_filter
from repro.graph.bipartite import CircuitGraph


def _eval_set(pipeline, items):
    accs = {"gcn": [], "post1": [], "post2": []}
    n_nodes = 0
    for item in items:
        result = pipeline.run(
            item.circuit, port_labels=item.port_labels, name=item.name
        )
        n_nodes += result.graph.n_vertices
        for key, value in result.accuracies(item.truth(result.graph)).items():
            accs[key].append(value)
    return {k: float(np.mean(v)) for k, v in accs.items()}, n_nodes


@pytest.fixture(scope="module")
def pipelines():
    return load_pipeline("ota"), load_pipeline("rf")


def bench_table2_classification(benchmark, pipelines):
    ota_pipe, rf_pipe = pipelines

    ota_items = generate_ota_test_set(OTA_TEST)
    rf_items = generate_rf_test_set(RF_TEST)
    sc = switched_cap_filter()
    pa = phased_array()

    rows: list[tuple[str, int, int, dict]] = []

    accs, nodes = _eval_set(ota_pipe, ota_items)
    rows.append(("OTA bias", len(ota_items), nodes, accs))

    accs, nodes = _eval_set(ota_pipe, [sc])
    rows.append(("Switched capacitor filter", 1, nodes, accs))

    accs, nodes = _eval_set(rf_pipe, rf_items)
    rows.append(("RF data", len(rf_items), nodes, accs))

    accs, nodes = _eval_set(rf_pipe, [pa])
    rows.append(("Phased array system", 1, nodes, accs))

    # The benchmarked quantity: one full pipeline run on the largest case.
    benchmark.pedantic(
        lambda: rf_pipe.run(pa.circuit, port_labels=pa.port_labels),
        rounds=3,
        iterations=1,
    )

    paper_gcn = {
        "OTA bias": 0.905,
        "Switched capacitor filter": 0.982,
        "RF data": 0.8364,
        "Phased array system": 0.798,
    }
    lines = [
        "{:<26} {:>9} {:>8} {:>8} {:>8} {:>8} {:>11}".format(
            "Test set", "#Circuits", "#Nodes", "GCN", "Post-I", "Post-II", "paper GCN"
        )
    ]
    for name, n_circ, nodes, accs in rows:
        lines.append(
            "{:<26} {:>9} {:>8} {:>7.1%} {:>7.1%} {:>7.1%} {:>10.1%}".format(
                name, n_circ, nodes, accs["gcn"], accs["post1"], accs["post2"],
                paper_gcn[name],
            )
        )
    write_result("table2_classification", "\n".join(lines))

    # Shape assertions (the paper's qualitative claims).
    by_name = {name: accs for name, _c, _n, accs in rows}
    for name, accs in by_name.items():
        assert accs["post1"] >= accs["gcn"] - 0.02, name
        assert accs["post2"] >= accs["post1"] - 1e-9, name
    # The phased array is the hardest row for the raw GCN.
    assert by_name["Phased array system"]["gcn"] == min(
        a["gcn"] for a in by_name.values()
    )
    if PAPER:
        # Postprocessing reaches (essentially) perfect annotation.
        assert by_name["OTA bias"]["post1"] >= 0.99
        assert by_name["Switched capacitor filter"]["post1"] >= 0.99
        assert by_name["RF data"]["post2"] >= 0.99
        assert by_name["Phased array system"]["post2"] >= 0.99
