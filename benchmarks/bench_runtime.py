"""Sec. V-B runtime — annotation wall-clock per stage.

Paper (Intel Core i7 @ 2.6 GHz, 8 cores, 32 GB): 135 s for the
switched-capacitor filter, 514 s for the phased array, postprocessing
< 30 s; "dominated by the runtime of the GCN".

Our numby GCN does inference only (training is offline), so absolute
numbers are far smaller; the *shape* claims checked here:

* the phased array costs more than the SC filter,
* postprocessing stays a small fraction of the total,
* runtime scales roughly linearly in vertex count across phased-array
  sizes (the pipeline is O(K·E) + O(n) postprocessing).
"""

from __future__ import annotations

import time

import pytest

from benchmarks._common import load_pipeline, write_result
from repro.datasets.systems import phased_array, switched_cap_filter


@pytest.fixture(scope="module")
def pipelines():
    return load_pipeline("ota"), load_pipeline("rf")


def _timed_run(pipeline, system):
    start = time.perf_counter()
    result = pipeline.run(
        system.circuit, port_labels=system.port_labels, name=system.name
    )
    total = time.perf_counter() - start
    return result, total


def bench_runtime_pipeline_stages(benchmark, pipelines):
    ota_pipe, rf_pipe = pipelines
    sc = switched_cap_filter()
    pa = phased_array()

    sc_result, sc_total = _timed_run(ota_pipe, sc)
    pa_result, pa_total = _timed_run(rf_pipe, pa)

    benchmark.pedantic(
        lambda: rf_pipe.run(pa.circuit, port_labels=pa.port_labels),
        rounds=3,
        iterations=1,
    )

    lines = [
        "{:<28} {:>10} {:>10}".format("stage", "SC filter", "phased array"),
    ]
    for stage in ("preprocess", "graph", "gcn", "post1", "post2", "hierarchy"):
        lines.append(
            "{:<28} {:>9.4f}s {:>9.4f}s".format(
                stage, sc_result.timings[stage], pa_result.timings[stage]
            )
        )
    lines.append("{:<28} {:>9.4f}s {:>9.4f}s".format("total", sc_total, pa_total))
    lines.append("")
    lines.append("paper (authors' host): 135s SC filter, 514s phased array,")
    lines.append("postprocessing < 30s; runtime dominated by the GCN stage")
    write_result("runtime", "\n".join(lines))

    # Shape: the bigger circuit costs more end to end.
    assert pa_total > sc_total
    # Postprocessing is a bounded share of the total (paper: <30/514).
    pa_post = pa_result.timings["post1"] + pa_result.timings["post2"]
    assert pa_post <= 0.9 * pa_total


def bench_runtime_scaling_with_size(benchmark, pipelines):
    """Pipeline wall-clock grows sublinearly-to-linearly in channels."""
    _ota_pipe, rf_pipe = pipelines
    times: dict[int, float] = {}
    sizes: dict[int, int] = {}
    for n_channels in (2, 4, 8):
        system = phased_array(n_channels=n_channels)
        result, total = _timed_run(rf_pipe, system)
        times[n_channels] = total
        sizes[n_channels] = result.graph.n_vertices

    benchmark.pedantic(
        lambda: rf_pipe.run(
            phased_array(n_channels=2).circuit,
        ),
        rounds=2,
        iterations=1,
    )

    lines = ["{:>9} {:>9} {:>10}".format("channels", "vertices", "seconds")]
    for n_channels in (2, 4, 8):
        lines.append(
            "{:>9} {:>9} {:>9.4f}s".format(
                n_channels, sizes[n_channels], times[n_channels]
            )
        )
    write_result("runtime_scaling", "\n".join(lines))

    # 4× the channels should cost well under 16× (i.e. far from quadratic).
    assert times[8] <= 16 * max(times[2], 1e-3)
    assert times[8] >= times[2] * 0.5  # monotone-ish, allowing noise
