"""Sec. V-B runtime — annotation wall-clock per stage.

Paper (Intel Core i7 @ 2.6 GHz, 8 cores, 32 GB): 135 s for the
switched-capacitor filter, 514 s for the phased array, postprocessing
< 30 s; "dominated by the runtime of the GCN".

Our numby GCN does inference only (training is offline), so absolute
numbers are far smaller; the *shape* claims checked here:

* the phased array costs more than the SC filter,
* postprocessing stays a small fraction of the total,
* runtime scales roughly linearly in vertex count across phased-array
  sizes (the pipeline is O(K·E) + O(n) postprocessing).
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks._common import (
    BENCH_JSON,
    load_pipeline,
    update_bench_json,
    write_result,
)
from repro.core.stages import TIMING_STAGES
from repro.datasets.systems import phased_array, switched_cap_filter

__all__ = ["BENCH_JSON", "update_bench_json"]  # re-exported from _common


@pytest.fixture(scope="module")
def pipelines():
    return load_pipeline("ota"), load_pipeline("rf")


def _timed_run(pipeline, system):
    start = time.perf_counter()
    result = pipeline.run(
        system.circuit, port_labels=system.port_labels, name=system.name
    )
    total = time.perf_counter() - start
    return result, total


def bench_runtime_pipeline_stages(benchmark, pipelines):
    ota_pipe, rf_pipe = pipelines
    sc = switched_cap_filter()
    pa = phased_array()

    sc_result, sc_total = _timed_run(ota_pipe, sc)
    pa_result, pa_total = _timed_run(rf_pipe, pa)

    benchmark.pedantic(
        lambda: rf_pipe.run(pa.circuit, port_labels=pa.port_labels),
        rounds=3,
        iterations=1,
    )

    lines = [
        "{:<28} {:>10} {:>10}".format("stage", "SC filter", "phased array"),
    ]
    for stage in TIMING_STAGES:
        lines.append(
            "{:<28} {:>9.4f}s {:>9.4f}s".format(
                stage, sc_result.timings[stage], pa_result.timings[stage]
            )
        )
    lines.append("{:<28} {:>9.4f}s {:>9.4f}s".format("total", sc_total, pa_total))
    lines.append("")
    lines.append("paper (authors' host): 135s SC filter, 514s phased array,")
    lines.append("postprocessing < 30s; runtime dominated by the GCN stage")
    write_result("runtime", "\n".join(lines))
    update_bench_json(
        "pipeline_stages",
        {
            "sc_filter": {**sc_result.timings, "total": sc_total},
            "phased_array": {**pa_result.timings, "total": pa_total},
        },
    )

    # Shape: the bigger circuit costs more end to end.
    assert pa_total > sc_total
    # Postprocessing is a bounded share of the total (paper: <30/514).
    pa_post = pa_result.timings["post1"] + pa_result.timings["post2"]
    assert pa_post <= 0.9 * pa_total


def bench_runtime_scaling_with_size(benchmark, pipelines):
    """Pipeline wall-clock grows sublinearly-to-linearly in channels."""
    _ota_pipe, rf_pipe = pipelines
    times: dict[int, float] = {}
    sizes: dict[int, int] = {}
    for n_channels in (2, 4, 8):
        system = phased_array(n_channels=n_channels)
        result, total = _timed_run(rf_pipe, system)
        times[n_channels] = total
        sizes[n_channels] = result.graph.n_vertices

    benchmark.pedantic(
        lambda: rf_pipe.run(
            phased_array(n_channels=2).circuit,
        ),
        rounds=2,
        iterations=1,
    )

    lines = ["{:>9} {:>9} {:>10}".format("channels", "vertices", "seconds")]
    for n_channels in (2, 4, 8):
        lines.append(
            "{:>9} {:>9} {:>9.4f}s".format(
                n_channels, sizes[n_channels], times[n_channels]
            )
        )
    write_result("runtime_scaling", "\n".join(lines))

    # 4× the channels should cost well under 16× (i.e. far from quadratic).
    assert times[8] <= 16 * max(times[2], 1e-3)
    assert times[8] >= times[2] * 0.5  # monotone-ish, allowing noise

    update_bench_json(
        "scaling",
        {
            "seconds_by_channels": {str(k): v for k, v in times.items()},
            "vertices_by_channels": {str(k): v for k, v in sizes.items()},
        },
    )


def bench_runtime_model_cache(benchmark, tmp_path, monkeypatch):
    """Second ``pretrained()`` call must be a cache hit ≥ 5× faster.

    The paper retrains nothing at annotation time; neither should we.
    A fresh cache dir isolates the measurement: the first call trains
    and stores, the second call is a millisecond ``np.load``.
    """
    from repro.core.pipeline import GanaPipeline

    monkeypatch.setenv("GANA_CACHE_DIR", str(tmp_path / "bench-cache"))
    spec = dict(task="ota", quick=True, train_size=48, seed=17)

    start = time.perf_counter()
    cold_pipe = GanaPipeline.pretrained(**spec)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    warm_pipe = GanaPipeline.pretrained(**spec)
    warm = time.perf_counter() - start

    benchmark.pedantic(
        lambda: GanaPipeline.pretrained(**spec), rounds=3, iterations=1
    )

    speedup = cold / max(warm, 1e-9)
    lines = [
        f"pretrained() cold (trains + stores): {cold:9.4f}s",
        f"pretrained() warm (cache hit):       {warm:9.4f}s",
        f"speedup:                             {speedup:9.1f}x",
    ]
    write_result("runtime_model_cache", "\n".join(lines))
    update_bench_json(
        "model_cache",
        {
            "cold_seconds": cold,
            "warm_seconds": warm,
            "speedup": speedup,
            # Native JSON types: a str()-formatted spec ("True", "17")
            # could not be fed back into pretrained() without hitting a
            # different cache key than the run it records.
            "spec": dict(spec),
        },
    )

    # Same vocabulary and config either way.
    assert warm_pipe.class_names == cold_pipe.class_names
    assert speedup >= 5.0


#: post1 wall-clock on the phased array before the signature-index /
#: CCC-scoping rework (commit 42ca62e's committed BENCH_runtime.json,
#: quick scale, 1-CPU host) — the fixed reference the ≥5x tentpole
#: speedup target is measured against.
PRE_INDEX_POST1_SECONDS = 0.26375


def bench_runtime_post1_matching(benchmark, pipelines):
    """Primitive matching (post1): indexed hot path vs. naive VF2.

    The indexed path (template profiles + signature candidate pruning +
    per-CCC scoping + symmetry breaking) must produce *identical*
    results to the naive reference path and beat the pre-index
    baseline by ≥5x; the per-template profile shows where the
    remaining time goes.
    """
    from repro.core.postprocess import postprocess_ccc
    from repro.graph.ccc import channel_connected_components
    from repro.runtime.profile import PipelineProfiler

    _ota_pipe, rf_pipe = pipelines
    system = phased_array()
    run = rf_pipe.run(
        system.circuit, port_labels=system.port_labels, name=system.name
    )
    annotation = run.gcn_annotation
    partition = channel_connected_components(annotation.graph)

    naive = postprocess_ccc(
        annotation, rf_pipe.library, partition=partition, indexed=False
    )
    profiler = PipelineProfiler()
    indexed = postprocess_ccc(
        annotation,
        rf_pipe.library,
        partition=partition,
        profiler=profiler,
        indexed=True,
    )
    # Bit-identical annotations, match lists included.
    assert (
        naive.annotation.vertex_classes == indexed.annotation.vertex_classes
    ).all()
    assert naive.ccc_classes == indexed.ccc_classes
    assert naive.ccc_matches == indexed.ccc_matches

    def best_of(indexed_flag, reps=5):
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            postprocess_ccc(
                annotation,
                rf_pipe.library,
                partition=partition,
                indexed=indexed_flag,
            )
            best = min(best, time.perf_counter() - start)
        return best

    naive_seconds = best_of(False)
    indexed_seconds = best_of(True)

    benchmark.pedantic(
        lambda: postprocess_ccc(
            annotation, rf_pipe.library, partition=partition, indexed=True
        ),
        rounds=3,
        iterations=1,
    )

    live_speedup = naive_seconds / max(indexed_seconds, 1e-9)
    baseline_speedup = PRE_INDEX_POST1_SECONDS / max(indexed_seconds, 1e-9)
    per_template = profiler.as_dict()["per_template"]
    lines = [
        f"naive full-setup VF2:     {naive_seconds:9.4f}s",
        f"indexed + CCC-scoped:     {indexed_seconds:9.4f}s",
        f"speedup (live naive):     {live_speedup:9.2f}x",
        f"speedup (vs pre-index):   {baseline_speedup:9.2f}x"
        f"  (baseline {PRE_INDEX_POST1_SECONDS}s)",
        "",
        "{:<12} {:>8} {:>8} {:>8} {:>10}".format(
            "template", "launches", "matches", "skips", "seconds"
        ),
    ]
    for name, stats in per_template.items():
        lines.append(
            "{:<12} {:>8} {:>8} {:>8} {:>9.4f}s".format(
                name,
                stats["launches"],
                stats["matches"],
                stats["skips"],
                stats["seconds"],
            )
        )
    write_result("runtime_post1_matching", "\n".join(lines))
    update_bench_json(
        "post1_matching",
        {
            "naive_seconds": naive_seconds,
            "indexed_seconds": indexed_seconds,
            "live_speedup": live_speedup,
            "pre_index_baseline_seconds": PRE_INDEX_POST1_SECONDS,
            "baseline_speedup": baseline_speedup,
            "per_template": per_template,
        },
    )

    assert live_speedup >= 2.0
    assert baseline_speedup >= 5.0


def bench_runtime_batch_annotation(benchmark, pipelines):
    """``run_many`` over 8 netlists vs. the serial loop.

    On a multi-core host the pool must win by ≥ 1.5×; on a single-core
    host (no parallelism available) we only require parity-with-overhead
    and still record the measured ratio.
    """
    from repro.datasets.ota import generate_ota, ota_variants
    from repro.spice.writer import write_circuit

    ota_pipe, _rf_pipe = pipelines
    decks = [
        write_circuit(generate_ota(spec, name=f"fleet{i}").circuit)
        for i, spec in enumerate(ota_variants(8, seed="bench-batch"))
    ]
    names = [f"fleet{i}" for i in range(len(decks))]

    start = time.perf_counter()
    serial = [ota_pipe.run(d, name=n) for d, n in zip(decks, names)]
    serial_seconds = time.perf_counter() - start

    workers = os.cpu_count() or 1
    start = time.perf_counter()
    batch = ota_pipe.run_many(decks, names=names, workers=workers)
    batch_seconds = time.perf_counter() - start

    benchmark.pedantic(
        lambda: ota_pipe.run_many(decks, names=names, workers=workers),
        rounds=2,
        iterations=1,
    )

    speedup = serial_seconds / max(batch_seconds, 1e-9)
    lines = [
        f"netlists:              {len(decks)}",
        f"workers:               {workers}",
        f"serial run() loop:     {serial_seconds:9.4f}s",
        f"run_many():            {batch_seconds:9.4f}s",
        f"speedup:               {speedup:9.2f}x",
    ]
    write_result("runtime_batch_annotation", "\n".join(lines))
    update_bench_json(
        "batch_annotation",
        {
            "n_netlists": len(decks),
            "workers": workers,
            "serial_seconds": serial_seconds,
            "run_many_seconds": batch_seconds,
            "speedup": speedup,
        },
    )

    # Identical results, parallel or not.
    for got, want in zip(batch, serial):
        assert got.annotation.element_classes == want.annotation.element_classes
        assert set(got.timings) == set(want.timings)
    if workers > 1:
        assert speedup >= 1.5
    else:
        # Single-core host: the serial fallback must stay overhead-free.
        assert speedup >= 0.8


def bench_runtime_gcn_batching(benchmark):
    """Block-diagonal packed minibatches vs the per-sample training loop.

    Trains the quick OTA spec from one seed at several batch sizes —
    once with ``TrainConfig(batched=True)`` (one Chebyshev recurrence
    and one tall GEMM per layer per minibatch) and once with the
    per-sample reference loop.  :func:`measure` asserts curve parity on
    every rep (same losses, same val-accuracy trajectory, same best
    epoch), so the ratio is a pure throughput comparison at matched
    accuracy.  The headline batch size must clear ≥2x epoch throughput;
    the quick spec (batch 8, what CI re-measures via
    ``check_batch_regression.py``) guards a 1.5x floor.
    """
    from benchmarks.check_batch_regression import EPOCHS, measure

    headline_batch = 32
    sweep = {bs: measure(reps=2, batch_size=bs) for bs in (8, 16, headline_batch)}
    quick = sweep[8]
    headline = sweep[headline_batch]

    benchmark.pedantic(
        lambda: measure(reps=1, batch_size=headline_batch),
        rounds=1,
        iterations=1,
    )

    lines = [
        "{:>11} {:>12} {:>12} {:>9} {:>10}".format(
            "batch size", "per-sample", "batched", "speedup", "epochs/s"
        ),
    ]
    for bs, stats in sorted(sweep.items()):
        lines.append(
            "{:>11} {:>11.4f}s {:>11.4f}s {:>8.2f}x {:>10.1f}".format(
                bs,
                stats["per_sample_seconds"],
                stats["batched_seconds"],
                stats["speedup"],
                stats["epochs_per_second_batched"],
            )
        )
    lines.append("")
    lines.append(
        f"{EPOCHS} epochs, quick OTA spec; identical loss/accuracy curves "
        f"(asserted); best val acc {headline['best_val_accuracy']:.4f}"
    )
    write_result("runtime_gcn_batching", "\n".join(lines))
    update_bench_json(
        "gcn_batching",
        {
            "quick_spec": quick,
            "by_batch_size": {str(bs): s for bs, s in sorted(sweep.items())},
            "headline_batch_size": headline_batch,
            "speedup": headline["speedup"],
            "epochs_per_second_batched": headline["epochs_per_second_batched"],
            "epochs_per_second_per_sample": headline[
                "epochs_per_second_per_sample"
            ],
        },
    )

    assert headline["speedup"] >= 2.0
    assert quick["speedup"] >= 1.5
