"""Robustness to layout-style netlist noise (Sec. II-B preprocessing).

The paper's preprocessing exists so that "parallel transistors for
sizing, series transistors for large transistor lengths, dummies,
decaps" never reach the recognizer.  This benchmark injects all four
into every held-out OTA circuit and verifies recognition is unchanged
— accuracy on the perturbed set equals accuracy on the clean set, and
preprocessing removes/merges every injected artifact.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import OTA_TEST, load_pipeline, write_result
from repro.datasets.perturb import perturb_all
from repro.datasets.synth import generate_ota_test_set
from repro.spice.preprocess import preprocess


@pytest.fixture(scope="module")
def material():
    pipeline = load_pipeline("ota")
    items = generate_ota_test_set(min(OTA_TEST, 60), seed="robust")
    return pipeline, items


def bench_preprocess_robustness(benchmark, material):
    pipeline, items = material

    clean_accs, pert_accs = [], []
    injected = 0
    removed = 0
    for index, item in enumerate(items):
        perturbed = perturb_all(item, seed=index)
        injected += perturbed.n_devices - item.n_devices
        reduced, _report = preprocess(perturbed.circuit)
        removed += perturbed.n_devices - len(reduced.devices)

        clean_result = pipeline.run(item.circuit, name=f"c{index}")
        pert_result = pipeline.run(perturbed.circuit, name=f"p{index}")
        truth = item.truth(clean_result.graph)
        clean_accs.append(clean_result.accuracies(truth)["post1"])
        pert_accs.append(pert_result.accuracies(truth)["post1"])

    benchmark.pedantic(
        lambda: preprocess(perturb_all(items[0], seed=99).circuit),
        rounds=5,
        iterations=1,
    )

    clean_mean = float(np.mean(clean_accs))
    pert_mean = float(np.mean(pert_accs))
    lines = [
        f"circuits: {len(items)}   artifacts injected: {injected} "
        f"(parallel splits, series stacks, dummies, decaps)",
        f"artifacts removed/merged by preprocessing: {removed}",
        "",
        "{:<28} {:>10}".format("input", "Post-I acc"),
        "{:<28} {:>9.2%}".format("clean netlists", clean_mean),
        "{:<28} {:>9.2%}".format("perturbed netlists", pert_mean),
    ]
    write_result("robustness", "\n".join(lines))

    assert removed == injected  # every artifact folded away
    assert pert_mean == pytest.approx(clean_mean, abs=1e-9)
