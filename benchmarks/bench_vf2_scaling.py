"""Sec. IV-A — VF2 is O(n) for O(1)-size, O(1)-degree patterns.

Paper: "for our problem where the library subgraph to be matched has
O(1) diameter and O(1) degree, the complexity is O(n)."

We match the CM-N(2) primitive (and the full 21-template library)
against phased arrays of growing channel counts and fit the time-vs-
vertices curve: the growth exponent must be close to 1 (< 1.5 with
measurement slack), i.e. decisively sub-quadratic.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks._common import write_result
from repro.datasets.systems import phased_array
from repro.graph.bipartite import CircuitGraph
from repro.primitives.library import default_library
from repro.primitives.matcher import annotate_primitives, find_primitive_matches

LIB = default_library()
CHANNELS = (2, 4, 8, 16)


@pytest.fixture(scope="module")
def graphs():
    out = []
    for n_channels in CHANNELS:
        system = phased_array(n_channels=n_channels)
        out.append(CircuitGraph.from_circuit(system.circuit))
    return out


def _fit_exponent(ns, ts):
    logs_n = np.log(np.asarray(ns, dtype=float))
    logs_t = np.log(np.asarray(ts, dtype=float))
    slope, _intercept = np.polyfit(logs_n, logs_t, 1)
    return float(slope)


def bench_vf2_single_template_scaling(benchmark, graphs):
    template = LIB.get("CM-N(2)")
    times, ns = [], []
    for graph in graphs:
        start = time.perf_counter()
        for _ in range(3):
            find_primitive_matches(template, graph)
        times.append((time.perf_counter() - start) / 3)
        ns.append(graph.n_vertices)

    benchmark(find_primitive_matches, template, graphs[-1])

    exponent = _fit_exponent(ns, times)
    lines = ["{:>9} {:>10}".format("vertices", "seconds")]
    for n, t in zip(ns, times):
        lines.append("{:>9} {:>9.5f}s".format(n, t))
    lines.append("")
    lines.append(f"fitted growth exponent: {exponent:.2f}  (paper claim: O(n))")
    write_result("vf2_single_template_scaling", "\n".join(lines))

    assert exponent < 1.6  # decisively sub-quadratic


def bench_vf2_full_library_scaling(benchmark, graphs):
    times, ns = [], []
    for graph in graphs:
        start = time.perf_counter()
        annotate_primitives(graph, LIB)
        times.append(time.perf_counter() - start)
        ns.append(graph.n_vertices)

    benchmark.pedantic(
        lambda: annotate_primitives(graphs[0], LIB), rounds=3, iterations=1
    )

    exponent = _fit_exponent(ns, times)
    lines = ["{:>9} {:>10}".format("vertices", "seconds")]
    for n, t in zip(ns, times):
        lines.append("{:>9} {:>9.5f}s".format(n, t))
    lines.append("")
    lines.append(f"fitted growth exponent: {exponent:.2f}")
    write_result("vf2_full_library_scaling", "\n".join(lines))

    assert exponent < 2.0
