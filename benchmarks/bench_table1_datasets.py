"""Table I — training dataset description.

Paper:

    Datasets   # Circuits  # Nodes  # Labels  # Features
    OTA bias   624         32152    2         18
    RF data    608         21886    3         18

We regenerate both datasets at the same circuit counts and report the
same columns; node totals depend on our synthetic variant mix, so the
check is on circuits/labels/features exactly and nodes by order of
magnitude.
"""

from __future__ import annotations

import pytest

from benchmarks._common import OTA_TRAIN, RF_TRAIN, write_result
from repro.datasets.synth import (
    generate_ota_bias_dataset,
    generate_rf_dataset,
    summarize,
)


@pytest.fixture(scope="module")
def datasets():
    ota = generate_ota_bias_dataset(OTA_TRAIN)
    rf = generate_rf_dataset(RF_TRAIN)
    return ota, rf


def bench_table1_generation(benchmark, datasets):
    """Benchmark dataset generation; emit the Table I reproduction."""
    ota, rf = datasets

    def regenerate_sample():
        # Time a 16-circuit slice of each generator (full generation
        # happens once in the fixture).
        generate_ota_bias_dataset(8, seed="bench-t1")
        generate_rf_dataset(8, seed="bench-t1")

    benchmark(regenerate_sample)

    rows = [
        ("Datasets", "# Circuits", "# Nodes", "# Labels", "# Features"),
    ]
    paper = {
        "OTA bias": (624, 32152, 2, 18),
        "RF data": (608, 21886, 3, 18),
    }
    lines = ["{:<10} {:>10} {:>8} {:>8} {:>10}".format(*rows[0])]
    for name, dataset in (("OTA bias", ota), ("RF data", rf)):
        summary = summarize(name, dataset)
        lines.append(
            "{:<10} {:>10} {:>8} {:>8} {:>10}".format(
                name,
                summary.n_circuits,
                summary.n_nodes,
                summary.n_labels,
                summary.n_features,
            )
        )
        p = paper[name]
        lines.append(
            "{:<10} {:>10} {:>8} {:>8} {:>10}   (paper)".format("", *p)
        )
        assert summary.n_labels == p[2]
        assert summary.n_features == p[3]
        if summary.n_circuits == p[0]:  # paper scale
            # Node totals should land in the paper's order of magnitude.
            assert 0.3 * p[1] <= summary.n_nodes <= 3.0 * p[1]
    write_result("table1_datasets", "\n".join(lines))
