"""Sec. III's opening claim, quantified: "A GCN can achieve good
separation between the feature representations of vertices."

Fisher separation (between-class / within-class scatter) of the
penultimate-layer embeddings on held-out circuits, compared against
the raw 18-dimensional input features.  Training must increase
separation substantially — that is the whole point of the GCN stage.
"""

from __future__ import annotations

import pytest

from benchmarks._common import load_annotator, write_result
from repro.datasets.synth import build_samples, generate_ota_test_set, task_classes
from repro.gcn.embed import dataset_embeddings, fisher_separation
from repro.gcn.model import GCNModel

import numpy as np


@pytest.fixture(scope="module")
def material():
    annotator = load_annotator("ota")
    items = generate_ota_test_set(40, seed="embed")
    samples = build_samples(items, task_classes("ota"), levels=2)
    return annotator, samples


def bench_embedding_separation(benchmark, material):
    annotator, samples = material
    trained = annotator.model

    untrained = GCNModel(trained.config)

    emb_trained, labels = dataset_embeddings(trained, samples)
    emb_untrained, _ = dataset_embeddings(untrained, samples)
    raw = np.concatenate([s.features[s.mask] for s in samples], axis=0)

    score_raw = fisher_separation(raw, labels)
    score_untrained = fisher_separation(emb_untrained, labels)
    score_trained = fisher_separation(emb_trained, labels)

    benchmark.pedantic(
        lambda: dataset_embeddings(trained, samples[:8]), rounds=3, iterations=1
    )

    lines = [
        "{:<34} {:>12}".format("representation", "Fisher sep."),
        "{:<34} {:>12.3f}".format("raw 18 input features", score_raw),
        "{:<34} {:>12.3f}".format("untrained GCN embeddings", score_untrained),
        "{:<34} {:>12.3f}".format("trained GCN embeddings", score_trained),
    ]
    write_result("embedding_separation", "\n".join(lines))

    # Training must separate the classes far better than the raw input.
    assert score_trained > 2.0 * score_raw
    assert score_trained > score_untrained
