"""CI smoke check: training checkpoints must stay cheap.

Trains the quick OTA recognition spec twice from one seed — once plain
and once with epoch checkpointing at the production cadence
(``FaultTolerance(checkpoint_every=5)``, the ``pretrain_annotator``
auto-checkpoint setting) — and fails when

* the wall-clock spent writing checkpoint envelopes exceeds
  ``--max-overhead`` (default 5%) of the checkpointed run's total
  training time, or
* the two runs' curves diverge (checkpointing only *reads* loop state;
  a divergence means the snapshot path is perturbing training math).

The measurement lands in the ``fault_tolerance`` section of
``BENCH_runtime.json`` (``--no-commit`` skips the rewrite, for CI).

Usage::

    PYTHONPATH=src python benchmarks/check_checkpoint_overhead.py
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

#: The quick OTA spec (same literals as ``check_batch_regression``),
#: with early stopping off so every run trains the same epoch count.
TRAIN_SIZE = 72
EPOCHS = 10
BATCH_SIZE = 8
SEED = 13
#: The ``pretrain_annotator`` auto-checkpoint cadence.
CHECKPOINT_EVERY = 5


def measure(reps: int = 3) -> dict:
    """Train the quick OTA spec with and without checkpointing.

    Returns the best-of-``reps`` overhead fraction: wall-clock spent in
    ``CheckpointStore.save`` over the checkpointed run's total
    training seconds.  Curve parity with the plain run is asserted on
    every rep.
    """
    from repro.datasets.synth import (
        build_samples,
        generate_ota_bias_dataset,
        task_classes,
    )
    from repro.gcn.checkpoint import CheckpointStore
    from repro.gcn.model import GCNConfig, GCNModel
    from repro.gcn.samples import train_validation_split
    from repro.gcn.train import FaultTolerance, TrainConfig, train

    classes = task_classes("ota")
    dataset = generate_ota_bias_dataset(
        TRAIN_SIZE, seed=(SEED, "gcn-batching"), workers=1
    )
    samples = build_samples(dataset, classes, levels=2, workers=1)
    train_samples, val_samples = train_validation_split(
        samples, validation_fraction=0.2, seed=SEED
    )
    model_config = GCNConfig(
        n_classes=len(classes),
        filter_size=8,
        channels=(16, 32),
        fc_size=64,
        seed=SEED,
    )
    train_config = TrainConfig(
        epochs=EPOCHS, batch_size=BATCH_SIZE, patience=0, seed=SEED
    )

    plain = train(
        GCNModel(model_config), train_samples, val_samples, train_config
    )

    overhead_fraction = float("inf")
    checkpoint_seconds = train_seconds = float("inf")
    envelopes = 0
    for _ in range(max(1, reps)):
        with tempfile.TemporaryDirectory() as directory:
            history = train(
                GCNModel(model_config),
                train_samples,
                val_samples,
                train_config,
                fault=FaultTolerance(
                    checkpoint_dir=directory,
                    checkpoint_every=CHECKPOINT_EVERY,
                ),
            )
            envelopes = len(CheckpointStore(directory).paths())
        # Checkpointing must be an observer: identical curves.
        assert history.train_loss == plain.train_loss
        assert history.val_accuracy == plain.val_accuracy
        assert history.best_epoch == plain.best_epoch
        fraction = history.checkpoint_seconds / max(history.seconds, 1e-9)
        if fraction < overhead_fraction:
            overhead_fraction = fraction
            checkpoint_seconds = history.checkpoint_seconds
            train_seconds = history.seconds

    return {
        "task": "ota",
        "train_size": TRAIN_SIZE,
        "epochs": EPOCHS,
        "batch_size": BATCH_SIZE,
        "seed": SEED,
        "checkpoint_every": CHECKPOINT_EVERY,
        "envelopes_written": envelopes,
        "train_seconds": train_seconds,
        "checkpoint_seconds": checkpoint_seconds,
        "overhead_fraction": overhead_fraction,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        help="fail when checkpoint writes exceed this fraction of "
        "training wall-clock (default 0.05)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="checkpointed training runs; the cheapest is compared "
        "(default 3)",
    )
    parser.add_argument(
        "--no-commit",
        action="store_true",
        help="skip rewriting the fault_tolerance BENCH_runtime.json section",
    )
    args = parser.parse_args(argv)

    stats = measure(args.reps)
    print(
        "checkpoint overhead: {checkpoint_seconds:.4f}s of "
        "{train_seconds:.4f}s training ({pct:.2f}%, limit {limit:.1f}%; "
        "{envelopes_written} envelope(s) at every={checkpoint_every})".format(
            pct=100 * stats["overhead_fraction"],
            limit=100 * args.max_overhead,
            **stats,
        )
    )
    if stats["overhead_fraction"] > args.max_overhead:
        print("FAIL: checkpointing exceeds its per-epoch overhead budget")
        return 1

    if not args.no_commit:
        from benchmarks._common import update_bench_json

        update_bench_json("fault_tolerance", stats)
        print("updated BENCH_runtime.json [fault_tolerance]")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
