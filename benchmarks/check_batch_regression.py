"""CI smoke check: batched GCN training must stay fast.

Trains the quick OTA recognition spec twice from one seed — once with
block-diagonal packed minibatches (``TrainConfig(batched=True)``, the
default) and once with the per-sample reference loop — and fails when

* the packed path is not ``--min-speedup`` (default 1.5x) faster than
  the per-sample loop, or
* the packed training wall-clock exceeds ``--factor`` (default 2x)
  times the committed ``gcn_batching.quick_spec`` baseline in
  ``BENCH_runtime.json``, or
* the two runs' curves diverge (the packed path is numerically
  equivalent to the reference by construction — a divergence means the
  speedup is coming from doing different math).

Read-only: the committed ``gcn_batching`` section is written by
``bench_runtime.py`` (``bench_runtime_gcn_batching``), which reuses
:func:`measure` below across a batch-size sweep.

Usage::

    PYTHONPATH=src python benchmarks/check_batch_regression.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

BENCH_JSON = REPO_ROOT / "BENCH_runtime.json"

#: The "OTA quick spec" both runs train: the dataset/model sizes of
#: ``pretrain_annotator(task="ota", quick=True)``, with early stopping
#: off (``patience=0``) so both paths run the same fixed epoch count
#: and the wall-clock ratio is a pure throughput comparison.
TRAIN_SIZE = 72
EPOCHS = 10
BATCH_SIZE = 8
SEED = 13


def committed_baseline() -> float | None:
    try:
        data = json.loads(BENCH_JSON.read_text())
        return float(data["gcn_batching"]["quick_spec"]["batched_seconds"])
    except (OSError, KeyError, ValueError):
        return None


def measure(reps: int = 2, batch_size: int = BATCH_SIZE) -> dict:
    """Train the quick OTA spec batched and per-sample; best-of reps.

    Alternates the two paths inside each rep, so after the first rep
    both see identical warm state (the per-sample first-layer Chebyshev
    basis memo is shared — the packed path seeds the per-sample entries
    and vice versa); best-of therefore excludes one-time setup from the
    ratio.  Curve parity is asserted on every rep.
    """
    import numpy as np

    from repro.datasets.synth import (
        build_samples,
        generate_ota_bias_dataset,
        task_classes,
        train_validation_split,
    )
    from repro.gcn.model import GCNConfig, GCNModel
    from repro.gcn.train import TrainConfig, train

    classes = task_classes("ota")
    dataset = generate_ota_bias_dataset(
        TRAIN_SIZE, seed=(SEED, "gcn-batching"), workers=1
    )
    samples = build_samples(dataset, classes, levels=2, workers=1)
    train_samples, val_samples = train_validation_split(
        samples, validation_fraction=0.2, seed=SEED
    )
    model_config = GCNConfig(
        n_classes=len(classes),
        filter_size=8,
        channels=(16, 32),
        fc_size=64,
        seed=SEED,
    )

    def run(batched: bool):
        model = GCNModel(model_config)
        config = TrainConfig(
            epochs=EPOCHS,
            batch_size=batch_size,
            patience=0,
            seed=SEED,
            batched=batched,
        )
        start = time.perf_counter()
        history = train(model, train_samples, val_samples, config)
        return time.perf_counter() - start, history

    batched_seconds = per_sample_seconds = float("inf")
    batched_history = per_sample_history = None
    for _ in range(max(1, reps)):
        seconds, batched_history = run(batched=True)
        batched_seconds = min(batched_seconds, seconds)
        seconds, per_sample_history = run(batched=False)
        per_sample_seconds = min(per_sample_seconds, seconds)
        # Numerical-equivalence gate: a speedup that changes the
        # training trajectory is a bug, not an optimization.
        np.testing.assert_allclose(
            batched_history.train_loss,
            per_sample_history.train_loss,
            rtol=1e-7,
        )
        np.testing.assert_allclose(
            batched_history.val_accuracy,
            per_sample_history.val_accuracy,
            atol=1e-9,
        )
        assert batched_history.best_epoch == per_sample_history.best_epoch

    best = batched_history.best_epoch
    return {
        "task": "ota",
        "train_size": TRAIN_SIZE,
        "epochs": EPOCHS,
        "batch_size": batch_size,
        "seed": SEED,
        "per_sample_seconds": per_sample_seconds,
        "batched_seconds": batched_seconds,
        "speedup": per_sample_seconds / max(batched_seconds, 1e-9),
        "epochs_per_second_batched": EPOCHS / max(batched_seconds, 1e-9),
        "epochs_per_second_per_sample": EPOCHS / max(per_sample_seconds, 1e-9),
        "best_epoch": best,
        "best_val_accuracy": batched_history.val_accuracy[best],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="fail when batched is not MIN_SPEEDUP times faster (default 1.5)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when batched training exceeds FACTOR times the "
        "committed gcn_batching quick-spec baseline (default 2)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="training runs per path; the fastest is compared (default 3)",
    )
    args = parser.parse_args(argv)

    baseline = committed_baseline()
    stats = measure(args.reps)
    print(
        "gcn batching: per-sample {per_sample_seconds:.4f}s vs batched "
        "{batched_seconds:.4f}s ({speedup:.2f}x, floor "
        "{floor:.1f}x; best val acc {best_val_accuracy:.4f})".format(
            floor=args.min_speedup, **stats
        )
    )

    if stats["speedup"] < args.min_speedup:
        print("FAIL: batched training lost its speedup floor")
        return 1
    if baseline is None:
        print("no committed gcn_batching baseline; skipping the ratio check")
    else:
        ratio = stats["batched_seconds"] / baseline
        print(
            f"vs committed baseline {baseline:.4f}s: {ratio:.2f}x "
            f"(limit {args.factor:.1f}x)"
        )
        if ratio > args.factor:
            print("FAIL: batched training regressed beyond the allowed factor")
            return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
