"""Fig. 7 / Table II row 4 — phased-array vertex classification.

Paper: the 902-vertex phased array (522 devices + 380 nets) classifies
at 79.8 % from the GCN alone; Post-I separates INV/BUF primitives and
identifies the BPF ("an oscillator with two input transistors"),
reaching 87.3 %; Post-II (antenna + oscillating port labels) fixes the
rest — all 522 devices (100 %) correct.

The reproduced artifact is the per-class device-classification matrix
after each stage.
"""

from __future__ import annotations

from collections import Counter

import pytest

from benchmarks._common import load_pipeline, write_result
from repro.datasets.systems import phased_array


@pytest.fixture(scope="module")
def pipeline():
    return load_pipeline("rf")


def bench_fig7_phased_array(benchmark, pipeline):
    system = phased_array()
    result = benchmark.pedantic(
        lambda: pipeline.run(
            system.circuit, port_labels=system.port_labels, name=system.name
        ),
        rounds=2,
        iterations=1,
    )
    truth = system.truth(result.graph)
    accs = result.accuracies(truth)

    # Per-class device accuracy after the final stage.
    final = result.annotation.element_classes
    per_class: dict[str, Counter] = {}
    for name, true_cls in system.device_labels.items():
        per_class.setdefault(true_cls, Counter())[final.get(name, "?")] += 1

    lines = [
        f"graph: {result.graph.n_elements} devices + "
        f"{result.graph.n_nets} nets = {result.graph.n_vertices} vertices "
        f"(paper: 522 + 380 = 902)",
        "",
        "stage accuracies (all labeled vertices):",
        f"  GCN     {accs['gcn']:.1%}   (paper 79.8%)",
        f"  Post-I  {accs['post1']:.1%}   (paper 87.3%)",
        f"  Post-II {accs['post2']:.1%}   (paper 100%)",
        "",
        "device classification by true class after Post-II:",
    ]
    device_correct = 0
    n_devices = 0
    for true_cls in sorted(per_class):
        counts = per_class[true_cls]
        total = sum(counts.values())
        correct = counts.get(true_cls, 0)
        device_correct += correct
        n_devices += total
        breakdown = ", ".join(f"{c}:{n}" for c, n in counts.most_common())
        lines.append(f"  {true_cls:<6} {correct}/{total}  ({breakdown})")
    lines.append("")
    lines.append(
        f"devices correct: {device_correct}/{n_devices} "
        f"({device_correct / n_devices:.1%}; paper: 522/522)"
    )
    write_result("fig7_phased_array", "\n".join(lines))

    # The Table II row-4 staircase.
    assert accs["gcn"] <= accs["post1"] + 0.02
    assert accs["post1"] <= accs["post2"] + 1e-9
    assert accs["post2"] >= 0.99
    assert device_correct == n_devices  # all devices correct, as in Fig. 7


def bench_fig7_hierarchy_structure(benchmark, pipeline):
    """The extracted hierarchy mirrors Fig. 7's block structure."""
    system = phased_array()
    result = benchmark.pedantic(
        lambda: pipeline.run(
            system.circuit, port_labels=system.port_labels, name=system.name
        ),
        rounds=1,
        iterations=1,
    )
    classes = Counter(b.block_class for b in result.hierarchy.subblocks())
    n_channels = 10
    # One LNA region and one mixer region per channel.
    assert classes["lna"] >= n_channels
    assert classes["mixer"] >= n_channels
    assert classes["bpf"] >= n_channels
    assert classes["osc"] >= 1
    standalone = [
        node
        for node in result.hierarchy.children
        if node.name.startswith("standalone/")
    ]
    assert len(standalone) >= 4 * n_channels  # 2 BUFs + 3 INVs per channel

    # One level above the paper: the block graph groups each channel
    # into its own receiver system.
    from repro.core.systems import annotate_systems

    systems = annotate_systems(result.hierarchy, result.graph)
    assert len(systems) == n_channels
