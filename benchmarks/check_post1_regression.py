"""CI smoke check: primitive matching (post1) must not regress.

Runs the quick-trained RF pipeline on the phased array and compares
the ``post1`` stage wall-clock against the committed baseline in
``BENCH_runtime.json`` (``pipeline_stages.phased_array.post1``).  Exits
non-zero when the live time exceeds ``--factor`` (default 2x) times
the baseline — loose enough to absorb runner noise, tight enough that
an accidental return to per-launch matcher setup (an order of
magnitude) cannot slip through.

Usage::

    PYTHONPATH=src python benchmarks/check_post1_regression.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_runtime.json"


def committed_baseline() -> float:
    data = json.loads(BENCH_JSON.read_text())
    return float(data["pipeline_stages"]["phased_array"]["post1"])


def measure_post1(reps: int) -> float:
    from repro.core.pipeline import GanaPipeline
    from repro.datasets.systems import phased_array

    pipeline = GanaPipeline.pretrained("rf", quick=True)
    system = phased_array()
    best = float("inf")
    for _ in range(reps):
        result = pipeline.run(
            system.circuit, port_labels=system.port_labels, name=system.name
        )
        best = min(best, result.timings["post1"])
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when live post1 exceeds baseline * FACTOR (default 2)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="pipeline runs; the fastest post1 is compared (default 3)",
    )
    args = parser.parse_args(argv)

    baseline = committed_baseline()
    started = time.perf_counter()
    live = measure_post1(args.reps)
    elapsed = time.perf_counter() - started
    ratio = live / baseline
    print(
        f"post1: live {live:.4f}s vs committed baseline {baseline:.4f}s "
        f"({ratio:.2f}x, limit {args.factor:.1f}x; "
        f"{args.reps} reps in {elapsed:.1f}s)"
    )
    if live > args.factor * baseline:
        print("FAIL: post1 regressed beyond the allowed factor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
