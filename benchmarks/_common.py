"""Shared benchmark infrastructure.

* **Scale** — ``REPRO_SCALE=paper`` (default) reproduces the paper's
  dataset sizes and training budget; ``REPRO_SCALE=quick`` shrinks
  everything for smoke runs.
* **Model cache** — trained recognition models go through the runtime
  model cache (:mod:`repro.runtime.cache`; ``~/.cache/gana`` or
  ``GANA_CACHE_DIR``), so the first benchmark run pays for training
  once and later runs (and other benchmarks, and the CLI) reuse it.
* **Results** — every benchmark writes its reproduced table/figure to
  ``benchmarks/results/<name>.txt`` and prints it, so the numbers
  survive pytest's output capture.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.annotator import GcnAnnotator
from repro.core.pipeline import GanaPipeline
from repro.datasets.synth import pretrain_annotator

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Committed perf trajectory — each section is updated in place by the
#: corresponding benchmark/check, so numbers from different runs coexist.
BENCH_JSON = REPO_ROOT / "BENCH_runtime.json"

SCALE = os.environ.get("REPRO_SCALE", "paper")
PAPER = SCALE != "quick"


def update_bench_json(section: str, payload: dict) -> None:
    """Rewrite one section of ``BENCH_runtime.json`` in place."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    data["host"] = {"cpu_count": os.cpu_count(), "scale": SCALE}
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

#: Dataset/training sizes per scale.
OTA_TRAIN = 624 if PAPER else 80
RF_TRAIN = 608 if PAPER else 80
OTA_TEST = 168 if PAPER else 24
RF_TEST = 105 if PAPER else 16
EPOCHS = 60 if PAPER else 12


def load_annotator(task: str) -> GcnAnnotator:
    """Train (or load from the runtime cache) the task's model."""
    return pretrain_annotator(task, quick=not PAPER)


def load_pipeline(task: str) -> GanaPipeline:
    return GanaPipeline(annotator=load_annotator(task))


def write_result(name: str, text: str) -> None:
    """Persist a reproduced table/figure and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    print(f"\n=== {name} ===\n{text}")
