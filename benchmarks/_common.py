"""Shared benchmark infrastructure.

* **Scale** — ``REPRO_SCALE=paper`` (default) reproduces the paper's
  dataset sizes and training budget; ``REPRO_SCALE=quick`` shrinks
  everything for smoke runs.
* **Model cache** — trained recognition models are cached under
  ``.cache/`` keyed by task + scale, so the first benchmark run pays
  for training once and later runs (and other benchmarks) reuse it.
* **Results** — every benchmark writes its reproduced table/figure to
  ``benchmarks/results/<name>.txt`` and prints it, so the numbers
  survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.annotator import GcnAnnotator
from repro.core.pipeline import GanaPipeline
from repro.datasets.synth import pretrain_annotator, task_classes
from repro.gcn.model import GCNConfig, GCNModel

REPO_ROOT = Path(__file__).resolve().parent.parent
CACHE_DIR = REPO_ROOT / ".cache"
RESULTS_DIR = Path(__file__).resolve().parent / "results"

SCALE = os.environ.get("REPRO_SCALE", "paper")
PAPER = SCALE != "quick"

#: Dataset/training sizes per scale.
OTA_TRAIN = 624 if PAPER else 80
RF_TRAIN = 608 if PAPER else 80
OTA_TEST = 168 if PAPER else 24
RF_TEST = 105 if PAPER else 16
EPOCHS = 60 if PAPER else 12


def _paths(task: str) -> Path:
    CACHE_DIR.mkdir(exist_ok=True)
    return CACHE_DIR / f"{task}_{'paper' if PAPER else 'quick'}.npz"


def load_annotator(task: str) -> GcnAnnotator:
    """Train (or load cached) the recognition model for a task."""
    classes = task_classes(task)
    path = _paths(task)
    if path.exists():
        try:
            model = GCNModel.load(str(path))
        except Exception:
            # Legacy cache without an embedded config.
            model = GCNModel.load(str(path), GCNConfig(n_classes=len(classes)))
        return GcnAnnotator(model=model, class_names=classes)
    annotator = pretrain_annotator(task, quick=not PAPER)
    annotator.model.save(str(path))
    return annotator


def load_pipeline(task: str) -> GanaPipeline:
    return GanaPipeline(annotator=load_annotator(task))


def write_result(name: str, text: str) -> None:
    """Persist a reproduced table/figure and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    print(f"\n=== {name} ===\n{text}")
