"""Fig. 6 — layout of the switched-capacitor filter from the extracted
hierarchy.

Paper: the recognized hierarchy drives a layout generator; the OTA
cluster is placed with a common symmetry axis, capacitor arrays and
switches beside it.  Our abstract placer reproduces the *checkable*
properties: every device placed, zero overlap, zero symmetry error
about each block's axis, and the OTA sub-block forming one cluster.
"""

from __future__ import annotations

import pytest

from benchmarks._common import load_pipeline, write_result
from repro.datasets.systems import switched_cap_filter
from repro.layout.geometry import symmetry_error
from repro.layout.placer import place_hierarchy


@pytest.fixture(scope="module")
def recognized():
    pipeline = load_pipeline("ota")
    system = switched_cap_filter()
    result = pipeline.run(
        system.circuit, port_labels=system.port_labels, name=system.name
    )
    return system, result


def bench_fig6_layout(benchmark, recognized):
    system, result = recognized
    layout = benchmark(place_hierarchy, result.hierarchy, system.circuit)
    layout.verify()

    lines = [layout.summary(), ""]
    lines.append("block outlines:")
    for name, outline in layout.block_outlines.items():
        lines.append(
            f"  {name:<24} {outline.width:>5.0f} × {outline.height:>4.0f} "
            f"at ({outline.x:.0f}, {outline.y:.0f})"
        )
    lines.append("")
    lines.append("symmetry axes:")
    for block, axis in layout.symmetry_axes.items():
        pairs = layout.symmetric_pairs[block]
        error = symmetry_error(
            [(layout.device_rects[a], layout.device_rects[b]) for a, b in pairs],
            axis,
        )
        lines.append(
            f"  {block:<24} x = {axis:.1f}  {len(pairs)} pairs  "
            f"symmetry error {error:.2e}"
        )
    # Wirelength refinement: anneal the constructive orderings.
    from repro.layout.anneal import AnnealConfig, anneal_placement
    from repro.layout.wirelength import total_wirelength

    annealed = anneal_placement(
        result.hierarchy, system.circuit, AnnealConfig(steps=300, seed=6)
    )
    annealed.layout.verify()
    lines.append("")
    lines.append(
        f"wirelength: constructive {total_wirelength(layout, system.circuit):.1f} "
        f"-> annealed {annealed.final_cost:.1f} "
        f"({annealed.improvement:.1%} shorter)"
    )
    write_result("fig6_layout", "\n".join(lines))

    assert len(layout.device_rects) == result.graph.n_elements
    assert layout.symmetry_axes  # at least one common axis (the OTA's)
    assert layout.total_area() > 0
    assert annealed.final_cost <= annealed.initial_cost + 1e-9
