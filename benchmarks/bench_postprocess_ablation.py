"""Ablation — what each Postprocessing-I ingredient buys.

Not a paper table, but the design-choice ablation DESIGN.md calls out:
Post-I composes (a) the CCC majority vote, (b) the current-mirror
joint vote (mirror trees split across CCCs are one functional unit —
the very structure the paper's flattening discussion highlights), and
(c) orphan absorption (auxiliary single-device components inherit
their host's class).  This bench measures OTA-test accuracy with each
ingredient removed.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import OTA_TEST, load_pipeline, write_result
from repro.core.postprocess import postprocess_ccc
from repro.datasets.synth import generate_ota_test_set


@pytest.fixture(scope="module")
def material():
    pipeline = load_pipeline("ota")
    items = generate_ota_test_set(min(OTA_TEST, 80), seed="post-ablate")
    prepared = []
    for item in items:
        result = pipeline.run(item.circuit, name=item.name)
        prepared.append(
            (result.gcn_annotation, item.truth(result.graph))
        )
    return pipeline, prepared


def _mean_accuracy(pipeline, prepared, **toggles) -> float:
    accs = []
    for annotation, truth in prepared:
        post = postprocess_ccc(annotation, pipeline.library, **toggles)
        accs.append(post.annotation.accuracy(truth))
    return float(np.mean(accs))


def bench_postprocess_ablation(benchmark, material):
    pipeline, prepared = material

    variants = {
        "full Post-I": dict(),
        "no mirror joint vote": dict(mirror_vote=False),
        "no orphan absorption": dict(absorb_orphans=False),
        "vote only": dict(mirror_vote=False, absorb_orphans=False),
    }
    gcn_only = float(
        np.mean([a.accuracy(t) for a, t in prepared])
    )
    scores = {
        name: _mean_accuracy(pipeline, prepared, **toggles)
        for name, toggles in variants.items()
    }

    benchmark.pedantic(
        lambda: _mean_accuracy(pipeline, prepared[:8]), rounds=2, iterations=1
    )

    lines = ["{:<24} {:>10}".format("variant", "accuracy")]
    lines.append("{:<24} {:>9.2%}".format("GCN only (no Post-I)", gcn_only))
    for name, score in scores.items():
        lines.append("{:<24} {:>9.2%}".format(name, score))
    write_result("postprocess_ablation", "\n".join(lines))

    # Every variant of Post-I should beat the raw GCN on average, and
    # the full recipe should be at least as good as any reduced one.
    assert scores["vote only"] >= gcn_only - 0.02
    best_reduced = max(
        scores["no mirror joint vote"],
        scores["no orphan absorption"],
        scores["vote only"],
    )
    assert scores["full Post-I"] >= best_reduced - 1e-9
