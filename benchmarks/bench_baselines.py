"""Baseline comparison — the paper's motivating claims, quantified.

1. **Template library vs GCN** (Sec. I): library-based recognition
   "requires an enumeration of possible topologies in an exhaustive
   database" and "cannot be easily adapted to new topology variants".
   We curate a template database from the training circuits and score
   it on held-out circuits *whose topology families were excluded from
   training* — the GCN generalizes, the library collapses.

2. **Chebyshev (K=32) vs first-order Kipf propagation**: the paper
   builds on Defferrard's localized filters; the K-ablation baseline
   shows the wide-filter advantage on the same data.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import EPOCHS, PAPER, load_pipeline, write_result
from repro.baselines.kipf import kipf_model
from repro.baselines.template import subblock_template_library
from repro.datasets.ota import OtaSpec, generate_ota, ota_variants
from repro.datasets.synth import build_samples, task_classes
from repro.gcn.train import TrainConfig, evaluate, train
from repro.graph.bipartite import CircuitGraph

N_TRAIN = 120 if PAPER else 30
N_TEST = 40 if PAPER else 10


def _split_by_topology(seed: object):
    """Training sees four topology families; testing sees the other two
    — the 'variants that have not even been designed to date' setting."""
    held_out = {"folded_cascode", "fully_differential"}
    train_items, test_items = [], []
    index = 0
    for spec in ota_variants(4 * (N_TRAIN + N_TEST), seed=seed):
        if spec.topology in held_out:
            if len(test_items) < N_TEST:
                test_items.append(generate_ota(spec, name=f"ho{index}"))
        else:
            if len(train_items) < N_TRAIN:
                train_items.append(generate_ota(spec, name=f"tr{index}"))
        index += 1
        if len(train_items) >= N_TRAIN and len(test_items) >= N_TEST:
            break
    return train_items, test_items


@pytest.fixture(scope="module")
def topology_split():
    return _split_by_topology("baseline-split")


def bench_baseline_template_vs_gcn(benchmark, topology_split):
    train_items, test_items = topology_split

    # Library-based recognizer: enumerate the training topologies.
    recognizer = subblock_template_library(train_items)

    # GCN: train on the same circuits.
    classes = task_classes("ota")
    train_samples = build_samples(train_items, classes, levels=2)
    from repro.gcn.model import GCNConfig, GCNModel

    model = GCNModel(
        GCNConfig(n_classes=2, filter_size=16, channels=(16, 32), fc_size=64)
    )
    train(
        model,
        train_samples,
        config=TrainConfig(epochs=max(12, EPOCHS // 3), patience=0),
    )

    template_scores, gcn_scores = [], []
    for item in test_items:
        graph = CircuitGraph.from_circuit(item.circuit)
        truth = item.truth(graph)
        template_scores.append(recognizer.accuracy(graph, truth))
        from repro.gcn.samples import GraphSample

        sample = GraphSample.from_graph(graph, {}, levels=2)
        predictions = model.predict(sample)
        device_truth = {
            n: c for n, c in truth.items() if n in graph.element_index
        }
        correct = sum(
            1
            for name, cls in device_truth.items()
            if classes[predictions[graph.element_vertex(name)]] == cls
        )
        gcn_scores.append(correct / len(device_truth))

    benchmark.pedantic(
        lambda: recognizer.accuracy(
            CircuitGraph.from_circuit(test_items[0].circuit),
            test_items[0].truth(),
        ),
        rounds=3,
        iterations=1,
    )

    template_mean = float(np.mean(template_scores))
    gcn_mean = float(np.mean(gcn_scores))
    lines = [
        f"held-out topology families: folded_cascode, fully_differential",
        f"training circuits: {len(train_items)}  held-out circuits: {len(test_items)}",
        f"template database size: {len(recognizer.templates)} entries",
        "",
        "{:<28} {:>10}".format("method", "device acc"),
        "{:<28} {:>9.1%}".format("template library [2,3]", template_mean),
        "{:<28} {:>9.1%}".format("GANA GCN", gcn_mean),
    ]
    write_result("baseline_template_vs_gcn", "\n".join(lines))

    # The paper's motivating gap: the GCN generalizes to unseen
    # variants; exact template matching does not.
    assert gcn_mean > template_mean + 0.2


def bench_baseline_kipf_vs_chebyshev(benchmark, topology_split):
    train_items, test_items = topology_split
    classes = task_classes("ota")
    train_samples = build_samples(train_items, classes, levels=2)
    test_samples = build_samples(test_items, classes, levels=2)

    from repro.gcn.model import GCNConfig, GCNModel

    cheb = GCNModel(
        GCNConfig(
            n_classes=2, filter_size=16, channels=(16, 32), fc_size=64,
            pooling=False,
        )
    )
    epochs = max(12, EPOCHS // 3)
    train(cheb, train_samples, config=TrainConfig(epochs=epochs, patience=0))
    cheb_acc = evaluate(cheb, test_samples)

    kipf = kipf_model(n_classes=2, hidden=(16, 32), fc_size=64, dropout=0.2)
    train(kipf, train_samples, config=TrainConfig(epochs=epochs, patience=0))
    kipf_acc = evaluate(kipf, test_samples)

    benchmark.pedantic(
        lambda: evaluate(cheb, test_samples[:4]), rounds=3, iterations=1
    )

    lines = [
        "{:<28} {:>10}".format("model", "vertex acc"),
        "{:<28} {:>9.1%}".format("Chebyshev GCN (K=16)", cheb_acc),
        "{:<28} {:>9.1%}".format("first-order Kipf GCN", kipf_acc),
    ]
    write_result("baseline_kipf_vs_chebyshev", "\n".join(lines))

    # Wide spectral filters should not lose to one-hop propagation.
    assert cheb_acc >= kipf_acc - 0.03
