"""CI smoke check: staged incremental recompute must stay warm.

Annotates the phased array cold (fresh artifact cache), then re-runs
with *only the primitive library changed*.  The warm run must

* reuse the cached parse/preprocess/graph/GCN artifacts (the library
  fingerprint only enters the key chain at Postprocessing I), and
* finish at least ``--factor`` times faster than the cold run (default
  3x) — the primitive-match cache makes even the recomputed post1
  stage mostly memo lookups.

The measured cold/warm wall-clock lands in ``BENCH_runtime.json``
under ``staged_incremental``.

Usage::

    PYTHONPATH=src python benchmarks/check_incremental_regression.py
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

#: Stages whose artifacts are independent of the primitive library.
LIBRARY_INDEPENDENT = ("parse", "preprocess", "graph", "gcn")


def measure(reps: int) -> dict:
    from benchmarks._common import load_annotator
    from repro.core.pipeline import GanaPipeline
    from repro.datasets.systems import phased_array
    from repro.primitives.library import default_library, extended_library
    from repro.runtime.cache import ArtifactCache

    annotator = load_annotator("rf")
    system = phased_array()
    cold_pipe = GanaPipeline(annotator=annotator, library=extended_library())
    warm_pipe = GanaPipeline(annotator=annotator, library=default_library())

    with tempfile.TemporaryDirectory(prefix="gana-incremental-") as tmp:
        # Cold best-of-reps, each against a virgin cache dir — a single
        # cold sample is noisy on small hosts and would swing the ratio.
        cold_seconds = float("inf")
        for rep in range(reps):
            cache = ArtifactCache(Path(tmp) / f"artifacts-{rep}")
            start = time.perf_counter()
            cold = cold_pipe.run_staged(
                system.circuit,
                port_labels=system.port_labels,
                name=system.name,
                artifact_cache=cache,
            )
            cold_seconds = min(cold_seconds, time.perf_counter() - start)
            assert cold.cache_hits == (), "cold run unexpectedly hit the cache"
        # Snapshot the cold run's entries so each warm rep measures a
        # genuine *first* re-run: anything a previous warm rep stored
        # (its post1/post2/hierarchy artifacts under the new library
        # key) is pruned, otherwise reps 2+ are trivial all-hit runs.
        baseline_entries = set(cache.entries())

        warm_seconds = float("inf")
        reused: tuple[str, ...] = ()
        for _ in range(reps):
            for entry in cache.entries():
                if entry not in baseline_entries:
                    entry.unlink()
            start = time.perf_counter()
            warm = warm_pipe.run_staged(
                system.circuit,
                port_labels=system.port_labels,
                name=system.name,
                artifact_cache=cache,
            )
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
            reused = tuple(s.value for s in warm.cache_hits)

    return {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / max(warm_seconds, 1e-9),
        "reused_stages": sorted(reused),
        "change": "primitive library extended->default, deck unchanged",
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--factor",
        type=float,
        default=3.0,
        help="fail when warm is not FACTOR times faster than cold (default 3)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="warm re-runs; the fastest is compared (default 3)",
    )
    parser.add_argument(
        "--no-commit",
        action="store_true",
        help="skip rewriting the staged_incremental BENCH_runtime.json section",
    )
    args = parser.parse_args(argv)

    stats = measure(args.reps)
    print(
        "staged incremental: cold {cold_seconds:.4f}s vs warm "
        "{warm_seconds:.4f}s ({speedup:.2f}x, limit {factor:.1f}x); "
        "reused: {reused}".format(
            factor=args.factor,
            reused=", ".join(stats["reused_stages"]) or "none",
            **{k: stats[k] for k in ("cold_seconds", "warm_seconds", "speedup")},
        )
    )

    missing = set(LIBRARY_INDEPENDENT) - set(stats["reused_stages"])
    if missing:
        print(f"FAIL: warm run recomputed cached stages: {sorted(missing)}")
        return 1
    stale = set(stats["reused_stages"]) - set(LIBRARY_INDEPENDENT)
    if stale:
        print(
            f"FAIL: warm run reused library-dependent stages {sorted(stale)} "
            f"— a changed library must invalidate them"
        )
        return 1
    if stats["speedup"] < args.factor:
        print("FAIL: incremental recompute regressed below the allowed factor")
        return 1

    if not args.no_commit:
        from benchmarks._common import update_bench_json

        update_bench_json("staged_incremental", stats)
        print("updated BENCH_runtime.json [staged_incremental]")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
