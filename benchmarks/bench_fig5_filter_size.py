"""Fig. 5 — two-layer GCN accuracy as a function of filter size K.

Paper: training and validation accuracy rise with K and flatten out
beyond K ≈ 30; K = 32 was chosen (five-fold cross-validation).

We sweep K over {2, 4, 8, 16, 32, 48} on the RF dataset (the curve
shape is clearest where blocks need wide context to separate — tuned
LNAs/mixers vs oscillators) and assert the paper's shape: accuracy at
the largest K beats the smallest K, and the curve has flattened by
K = 32 (the 32→48 change is small compared to the 2→32 rise).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import EPOCHS, PAPER, write_result
from repro.datasets.synth import (
    build_samples,
    generate_rf_dataset,
    task_classes,
)
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.samples import train_validation_split
from repro.gcn.train import TrainConfig, evaluate, train

FILTER_SIZES = (2, 4, 8, 16, 32, 48)
N_CIRCUITS = 200 if PAPER else 48
SWEEP_EPOCHS = max(10, EPOCHS // 3)


@pytest.fixture(scope="module")
def split_samples():
    dataset = generate_rf_dataset(N_CIRCUITS, seed="fig5")
    samples = build_samples(dataset, task_classes("rf"), levels=2)
    return train_validation_split(samples, 0.2, seed=5)


def _run_point(split, filter_size: int, seed: int = 0):
    train_samples, val_samples = split
    config = GCNConfig(
        n_classes=3,
        filter_size=filter_size,
        channels=(16, 32),
        fc_size=64,
        seed=seed,
    )
    model = GCNModel(config)
    # Early stopping (best-validation restore) keeps large-K points
    # from reporting an overfit final epoch.
    train(
        model,
        train_samples,
        val_samples,
        TrainConfig(epochs=SWEEP_EPOCHS, patience=5, seed=seed),
    )
    return (
        evaluate(model, train_samples),
        evaluate(model, val_samples),
    )


def bench_fig5_filter_size(benchmark, split_samples):
    results: dict[int, tuple[float, float]] = {}
    for k in FILTER_SIZES:
        results[k] = _run_point(split_samples, k)

    # Benchmark one representative training point (K = 32).
    benchmark.pedantic(
        lambda: _run_point(split_samples, 32, seed=1), rounds=1, iterations=1
    )

    lines = ["{:>6} {:>10} {:>12}".format("K", "train acc", "val acc")]
    for k in FILTER_SIZES:
        tr, va = results[k]
        lines.append("{:>6} {:>9.1%} {:>11.1%}".format(k, tr, va))
    lines.append("")
    lines.append("paper: accuracy flattens out beyond K ≈ 30; K = 32 chosen")
    write_result("fig5_filter_size", "\n".join(lines))

    val = {k: results[k][1] for k in FILTER_SIZES}
    # Shape: bigger filters help overall...
    assert val[32] > val[2] - 0.01
    # ...and the curve has flattened by K = 32: going to 48 changes far
    # less than the small-K region gained.
    rise = max(val[k] for k in (8, 16, 32)) - min(val[2], val[4])
    tail = abs(val[48] - val[32])
    assert tail <= max(0.08, 0.8 * abs(rise))
