"""CI smoke check: hierarchy-scoped annotation must beat the flat path.

Runs the quick-trained RF pipeline on the hierarchical phased array
(one ``channel`` subckt definition instantiated N times) in both
elaboration modes and compares the ``post1`` (primitive annotation)
stage wall-clock.  The ``--hier`` path matches each unique definition
once and replays the match sets onto every sibling instance, so on a
repeated-instance design it must beat flat-path annotation by at least
``--factor`` (default 2x) warm.  Both modes run without an artifact
cache: the speedup measured here is pure in-run definition-scoped
dedup, not disk-cache hits.

With ``--commit`` the measurement also lands in ``BENCH_runtime.json``
under ``hier_annotation`` (the committed baseline CI compares against).

Usage::

    PYTHONPATH=src python benchmarks/check_hier_regression.py
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

from _common import load_pipeline, update_bench_json

#: Repeated channel instances — well above the ISSUE's >= 8 floor so
#: the per-unique-definition costs (one representative walk, one packed
#: definition forward) amortize visibly.
N_CHANNELS = 16


def measure(reps: int) -> dict:
    from repro.core.stages import pipeline_result_fingerprint
    from repro.datasets.systems import phased_array_hier

    pipeline = load_pipeline("rf")
    netlist, port_labels = phased_array_hier(n_channels=N_CHANNELS)

    # Warm both paths (library match profiles, predicate memos) before
    # timing anything, and assert byte-identity while at it.
    flat = pipeline.run(netlist, port_labels=port_labels, name="pa_hier")
    hier = pipeline.run(
        netlist, port_labels=port_labels, name="pa_hier", hier=True
    )
    if pipeline_result_fingerprint(flat) != pipeline_result_fingerprint(hier):
        raise AssertionError(
            "--hier produced a different annotation than the flat path"
        )

    def timed_post1(hier_mode: bool) -> float:
        result = pipeline.run(
            netlist,
            port_labels=port_labels,
            name="pa_hier",
            hier=hier_mode,
        )
        return result.timings["post1"]

    # Interleave the modes so CPU-frequency / scheduler drift hits both
    # equally, and keep the collector out of the timed region — the
    # best-of then compares like with like.
    flat_s = hier_s = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(reps):
            flat_s = min(flat_s, timed_post1(False))
            hier_s = min(hier_s, timed_post1(True))
    finally:
        gc.enable()
    report = hier.hier
    return {
        "n_channels": N_CHANNELS,
        "flat_post1_s": round(flat_s, 6),
        "hier_post1_s": round(hier_s, 6),
        "speedup": round(flat_s / hier_s, 3),
        "interior_cccs": report.interior,
        "reused": report.reused,
        "replayed": report.replayed,
        "guard_failures": report.guard_failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when hier post1 is not FACTOR x faster than flat "
        "(default 2)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=5,
        help="runs per mode; the fastest post1 of each is compared "
        "(default 5)",
    )
    parser.add_argument(
        "--commit",
        action="store_true",
        help="also write the measurement to BENCH_runtime.json",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    stats = measure(args.reps)
    elapsed = time.perf_counter() - started
    print(
        f"hier annotation ({stats['n_channels']} channels): "
        f"flat post1 {stats['flat_post1_s']:.4f}s vs hier "
        f"{stats['hier_post1_s']:.4f}s -> {stats['speedup']:.2f}x "
        f"(gate {args.factor:.1f}x; reused {stats['reused']}/"
        f"{stats['interior_cccs']} interior CCCs, "
        f"{stats['guard_failures']} guard failures; "
        f"{args.reps} reps/mode in {elapsed:.1f}s)"
    )
    if args.commit:
        update_bench_json("hier_annotation", stats)
        print("committed to BENCH_runtime.json [hier_annotation]")
    if stats["speedup"] < args.factor:
        print("FAIL: --hier did not beat the flat path by the gate factor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
