# Convenience targets for the GANA reproduction.

PYTHON ?= python

.PHONY: install test bench bench-quick examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-quick:
	REPRO_SCALE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/fig1_sample_and_hold.py
	$(PYTHON) examples/switched_cap_filter.py
	$(PYTHON) examples/phased_array.py
	$(PYTHON) examples/custom_primitives_and_training.py
	$(PYTHON) examples/testbench_and_export.py

clean:
	rm -rf .cache benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
