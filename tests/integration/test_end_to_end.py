"""Integration: quick-trained pipelines over held-out circuits.

These are the small-scale analogues of Table II: the quick annotator is
weaker than the paper-scale model, so thresholds are conservative; the
full reproduction lives in benchmarks/.
"""

import numpy as np
import pytest

from repro.core.pipeline import GanaPipeline
from repro.datasets.synth import generate_ota_test_set, generate_rf_test_set
from repro.datasets.systems import phased_array, switched_cap_filter
from repro.layout.placer import place_hierarchy


@pytest.fixture(scope="module")
def ota_pipeline(quick_ota_annotator):
    return GanaPipeline(annotator=quick_ota_annotator)


@pytest.fixture(scope="module")
def rf_pipeline(quick_rf_annotator):
    return GanaPipeline(annotator=quick_rf_annotator)


class TestOtaTask:
    def test_postprocessing_improves_over_gcn(self, ota_pipeline):
        test = generate_ota_test_set(8, seed="it-ota")
        gcn, post = [], []
        for item in test:
            result = ota_pipeline.run(
                item.circuit, port_labels=item.port_labels, name=item.name
            )
            accs = result.accuracies(item.truth(result.graph))
            gcn.append(accs["gcn"])
            post.append(accs["post1"])
        assert np.mean(post) >= np.mean(gcn)
        assert np.mean(post) > 0.85

    def test_hierarchy_covers_every_device(self, ota_pipeline):
        item = generate_ota_test_set(1, seed="it-cov")[0]
        result = ota_pipeline.run(item.circuit, name=item.name)
        assert result.hierarchy.all_devices() == {
            d.name for d in result.graph.elements
        }


class TestScFilter:
    def test_pipeline_runs_and_produces_sane_accuracy(self, ota_pipeline):
        # A single composite circuit under a quick-trained model: the
        # CCC vote can lose to the raw GCN on one hard instance, so the
        # claim here is only sanity; the paper-scale run (benchmarks/)
        # reaches 100 % after Post-I.
        lc = switched_cap_filter()
        result = ota_pipeline.run(
            lc.circuit, port_labels=lc.port_labels, name=lc.name
        )
        accs = result.accuracies(lc.truth(result.graph))
        assert 0.0 <= accs["post1"] <= 1.0
        assert accs["post1"] >= 0.45

    def test_layout_use_case(self, ota_pipeline):
        """The Fig. 6 flow: recognize → place → verify constraints."""
        lc = switched_cap_filter()
        result = ota_pipeline.run(lc.circuit, name=lc.name)
        layout = place_hierarchy(result.hierarchy, lc.circuit)
        layout.verify()
        assert len(layout.device_rects) == result.graph.n_elements


class TestRfTask:
    def test_receivers_reach_high_accuracy_after_post(self, rf_pipeline):
        test = generate_rf_test_set(6, seed="it-rf")
        finals = []
        for item in test:
            result = rf_pipeline.run(
                item.circuit, port_labels=item.port_labels, name=item.name
            )
            finals.append(result.accuracies(item.truth(result.graph))["post2"])
        assert np.mean(finals) > 0.9

    def test_port_rules_never_hurt(self, rf_pipeline):
        test = generate_rf_test_set(6, seed="it-rf2")
        for item in test:
            result = rf_pipeline.run(
                item.circuit, port_labels=item.port_labels, name=item.name
            )
            accs = result.accuracies(item.truth(result.graph))
            assert accs["post2"] >= accs["post1"] - 1e-9


class TestPhasedArray:
    def test_small_phased_array_end_to_end(self, rf_pipeline):
        lc = phased_array(n_channels=2)
        result = rf_pipeline.run(
            lc.circuit, port_labels=lc.port_labels, name=lc.name
        )
        truth = lc.truth(result.graph)
        accs = result.accuracies(truth)
        # The staircase of Table II row 4: GCN < post1 <= post2.
        assert accs["post1"] >= accs["gcn"] - 1e-9
        assert accs["post2"] >= accs["post1"] - 1e-9

    def test_standalone_primitives_separated(self, rf_pipeline):
        lc = phased_array(n_channels=2)
        result = rf_pipeline.run(
            lc.circuit, port_labels=lc.port_labels, name=lc.name
        )
        standalone_classes = {
            node.block_class
            for node in result.hierarchy.children
            if node.name.startswith("standalone/")
        }
        assert "INV" in standalone_classes
        assert "BUF" in standalone_classes

    def test_bpf_detected(self, rf_pipeline):
        lc = phased_array(n_channels=2)
        result = rf_pipeline.run(
            lc.circuit, port_labels=lc.port_labels, name=lc.name
        )
        assert "bpf" in result.post2.annotation.extra_classes
