"""Failure injection: malformed and adversarial inputs must fail
loudly (typed exceptions) or degrade gracefully — never corrupt state.
"""

import numpy as np
import pytest

from repro.core.annotator import Annotation
from repro.core.postprocess import postprocess_ccc
from repro.exceptions import (
    ElaborationError,
    GraphConstructionError,
    SpiceSyntaxError,
)
from repro.graph.bipartite import CircuitGraph
from repro.primitives.library import extended_library
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist

LIB = extended_library()


class TestMalformedSpice:
    @pytest.mark.parametrize(
        "deck",
        [
            "m1 d g\n.end\n",  # too few MOS nets
            "r1 a\n.end\n",  # too few passive nets
            ".subckt s a\nr1 a gnd! 1k\n.end\n",  # unterminated subckt
            "q1 c b e npn\n.end\n",  # unsupported device
            ".wibble\n.end\n",  # unknown directive
        ],
    )
    def test_syntax_errors(self, deck):
        with pytest.raises(SpiceSyntaxError):
            parse_netlist(deck)

    def test_empty_deck_parses_to_empty_netlist(self):
        netlist = parse_netlist("")
        assert not netlist.top.devices

    def test_comment_only_deck(self):
        netlist = parse_netlist("* nothing here\n")
        assert not netlist.top.devices


class TestElaborationFailures:
    def test_undefined_subckt(self):
        with pytest.raises(ElaborationError):
            flatten(parse_netlist("x1 a b missing\n.end\n"))

    def test_mutual_recursion(self):
        deck = """
.subckt a n
x1 n b
.ends
.subckt b n
x1 n a
.ends
x0 top a
.end
"""
        with pytest.raises(ElaborationError):
            flatten(parse_netlist(deck))


class TestDegenerateCircuits:
    def test_single_device_circuit(self):
        graph = CircuitGraph.from_circuit(
            flatten(parse_netlist("r1 a b 1k\n.end\n"))
        )
        assert graph.n_elements == 1
        from repro.graph.ccc import channel_connected_components

        partition = channel_connected_components(graph)
        assert partition.n_components == 1

    def test_all_devices_on_power_rails(self):
        deck = "c1 vdd! gnd! 1p\nc2 vdd! gnd! 2p\n.end\n"
        graph = CircuitGraph.from_circuit(flatten(parse_netlist(deck)))
        from repro.graph.ccc import channel_connected_components

        partition = channel_connected_components(graph)
        # Both caps float (power nets don't bind); each is a singleton.
        assert partition.n_components == 2

    def test_disconnected_islands(self):
        deck = """
m1 a i1 gnd! gnd! nmos
m2 b i2 gnd! gnd! nmos
r1 x y 1k
.end
"""
        graph = CircuitGraph.from_circuit(flatten(parse_netlist(deck)))
        annotation = Annotation(
            graph=graph,
            class_names=("ota", "bias"),
            vertex_classes=np.zeros(graph.n_vertices, dtype=np.int64),
            probabilities=np.full((graph.n_vertices, 2), 0.5),
        )
        result = postprocess_ccc(annotation, LIB)
        assert set(result.annotation.element_classes.values()) <= {"ota", "bias"}

    def test_postprocess_without_probabilities(self):
        deck = "m1 out in gnd! gnd! nmos\n.end\n"
        graph = CircuitGraph.from_circuit(flatten(parse_netlist(deck)))
        annotation = Annotation(
            graph=graph,
            class_names=("ota", "bias"),
            vertex_classes=np.zeros(graph.n_vertices, dtype=np.int64),
            probabilities=None,  # count-vote fallback
        )
        result = postprocess_ccc(annotation, LIB)
        assert result.annotation.element_classes["m1"] == "ota"

    def test_unclassified_vertices_survive_postprocess(self):
        deck = "m1 out in gnd! gnd! nmos\nr1 q z 1k\n.end\n"
        graph = CircuitGraph.from_circuit(flatten(parse_netlist(deck)))
        classes = np.full(graph.n_vertices, -1, dtype=np.int64)
        annotation = Annotation(
            graph=graph,
            class_names=("ota", "bias"),
            vertex_classes=classes,
            probabilities=None,
        )
        result = postprocess_ccc(annotation, LIB)
        # No vote material at all: everything stays unclassified ("?").
        assert set(result.annotation.element_classes.values()) == {"?"}


class TestPipelineRobustness:
    def test_pipeline_on_trivial_circuit(self, quick_ota_annotator):
        from repro.core.pipeline import GanaPipeline

        pipeline = GanaPipeline(annotator=quick_ota_annotator)
        result = pipeline.run("m1 out in tail gnd! nmos\nm2 tail vb gnd! gnd! nmos\n.end\n")
        assert result.graph.n_elements == 2
        assert result.hierarchy.all_devices() == {"m1", "m2"}

    def test_pipeline_rejects_bad_spice(self, quick_ota_annotator):
        from repro.core.pipeline import GanaPipeline

        pipeline = GanaPipeline(annotator=quick_ota_annotator)
        with pytest.raises(SpiceSyntaxError):
            pipeline.run("m1 d g\n.end\n")

    def test_pipeline_idempotent(self, quick_ota_annotator):
        """Two runs on the same input give identical annotations."""
        from repro.core.pipeline import GanaPipeline
        from repro.datasets.ota import OtaSpec, generate_ota

        pipeline = GanaPipeline(annotator=quick_ota_annotator)
        lc = generate_ota(OtaSpec(topology="telescopic"), name="idem")
        a = pipeline.run(lc.circuit, name="idem")
        b = pipeline.run(lc.circuit, name="idem")
        assert a.annotation.element_classes == b.annotation.element_classes
        assert a.hierarchy.render() == b.hierarchy.render()
