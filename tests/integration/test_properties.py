"""Hypothesis property tests over the whole stack.

Random OTA/receiver specs flow through generation → graph → CCC →
primitive matching → postprocessing, checking structural invariants
that must hold for *every* generated circuit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotator import Annotation
from repro.core.postprocess import postprocess_ccc
from repro.datasets.ota import TOPOLOGIES, OtaSpec, generate_ota
from repro.datasets.rf import (
    LNA_TOPOLOGIES,
    MIXER_TOPOLOGIES,
    OSC_TOPOLOGIES,
    ReceiverSpec,
    generate_receiver,
)
from repro.graph.bipartite import CircuitGraph
from repro.graph.ccc import channel_connected_components
from repro.graph.features import feature_matrix
from repro.graph.laplacian import laplacian_spectrum
from repro.primitives.library import extended_library
from repro.primitives.matcher import annotate_primitives
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist
from repro.spice.preprocess import preprocess
from repro.spice.writer import write_circuit

pytestmark = pytest.mark.property

LIB = extended_library()

ota_specs = st.builds(
    OtaSpec,
    topology=st.sampled_from(TOPOLOGIES),
    polarity=st.sampled_from(["n", "p"]),
    bias_mirror_outputs=st.integers(min_value=0, max_value=3),
    bias_cascode=st.booleans(),
    with_load_caps=st.booleans(),
    with_input_buffer=st.booleans(),
    with_sc_input=st.booleans(),
    size_seed=st.integers(min_value=0, max_value=50),
)

receiver_specs = st.builds(
    ReceiverSpec,
    lna_topology=st.sampled_from(LNA_TOPOLOGIES),
    lna_stages=st.integers(min_value=1, max_value=3),
    mixer_topology=st.sampled_from(MIXER_TOPOLOGIES),
    osc_topology=st.sampled_from(OSC_TOPOLOGIES),
    ring_stages=st.sampled_from([3, 5]),
    size_seed=st.integers(min_value=0, max_value=50),
)


class TestOtaInvariants:
    @given(ota_specs)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_through_spice(self, spec):
        lc = generate_ota(spec)
        back = flatten(parse_netlist(write_circuit(lc.circuit)))
        assert len(back.devices) == lc.n_devices

    @given(ota_specs)
    @settings(max_examples=25, deadline=None)
    def test_graph_is_bipartite_with_valid_spectrum(self, spec):
        lc = generate_ota(spec)
        graph = CircuitGraph.from_circuit(lc.circuit)
        spectrum = laplacian_spectrum(graph.adjacency())
        assert spectrum.min() >= -1e-9
        assert spectrum.max() <= 2 + 1e-9

    @given(ota_specs)
    @settings(max_examples=25, deadline=None)
    def test_no_ccc_mixes_classes(self, spec):
        lc = generate_ota(spec)
        graph = CircuitGraph.from_circuit(lc.circuit)
        partition = channel_connected_components(graph)
        for members in partition.components:
            classes = {
                lc.device_labels[graph.elements[i].name] for i in members
            }
            assert len(classes) == 1

    @given(ota_specs)
    @settings(max_examples=25, deadline=None)
    def test_preprocess_only_shrinks(self, spec):
        lc = generate_ota(spec)
        reduced, report = preprocess(lc.circuit)
        assert len(reduced.devices) <= lc.n_devices
        survivors = {d.name for d in reduced.devices}
        originals = {
            orig for name in survivors for orig in report.originals_of(name)
        }
        removed = report.removed_names
        assert survivors <= originals | removed | survivors
        # Every original device is accounted for: absorbed or removed.
        all_names = {d.name for d in lc.circuit.devices}
        assert originals | removed == all_names

    @given(ota_specs)
    @settings(max_examples=25, deadline=None)
    def test_features_have_no_nans_and_one_hots(self, spec):
        lc = generate_ota(spec)
        graph = CircuitGraph.from_circuit(lc.circuit)
        X = feature_matrix(graph)
        assert np.isfinite(X).all()
        # Element rows: exactly one kind slot, exactly one value slot.
        for i in range(graph.n_elements):
            assert X[i, :8].sum() == 1.0
            assert X[i, 9:12].sum() == 1.0

    @given(ota_specs)
    @settings(max_examples=15, deadline=None)
    def test_diff_pair_always_found(self, spec):
        lc = generate_ota(spec)
        graph = CircuitGraph.from_circuit(lc.circuit)
        result = annotate_primitives(graph, LIB)
        primitives = {m.primitive for m in result.matches}
        assert primitives & {"DP-N", "DP-P"}

    @given(ota_specs)
    @settings(max_examples=10, deadline=None)
    def test_perfect_probabilities_stay_perfect_after_post1(self, spec):
        """Postprocessing must never break an already-correct GCN."""
        lc = generate_ota(spec)
        graph = CircuitGraph.from_circuit(lc.circuit)
        truth = lc.truth(graph)
        class_names = ("ota", "bias")
        ids = {name: i for i, name in enumerate(class_names)}
        n = graph.n_vertices
        probs = np.full((n, 2), 0.5)
        for v in range(n):
            name = graph.vertex_name(v)
            if name in truth:
                probs[v] = 0.02
                probs[v, ids[truth[name]]] = 0.98
        annotation = Annotation(
            graph=graph,
            class_names=class_names,
            vertex_classes=probs.argmax(axis=1).astype(np.int64),
            probabilities=probs,
        )
        result = postprocess_ccc(annotation, LIB)
        assert result.annotation.accuracy(truth) == 1.0


class TestReceiverInvariants:
    @given(receiver_specs)
    @settings(max_examples=20, deadline=None)
    def test_no_ccc_mixes_classes(self, spec):
        lc = generate_receiver(spec)
        graph = CircuitGraph.from_circuit(lc.circuit)
        partition = channel_connected_components(graph)
        for members in partition.components:
            classes = {
                lc.device_labels[graph.elements[i].name] for i in members
            }
            assert len(classes) == 1

    @given(receiver_specs)
    @settings(max_examples=20, deadline=None)
    def test_truth_never_contradicts_port_labels(self, spec):
        lc = generate_receiver(spec)
        graph = CircuitGraph.from_circuit(lc.circuit)
        truth = lc.truth(graph)
        antenna_nets = [
            n for n, l in lc.port_labels.items() if l == "antenna"
        ]
        for net in antenna_nets:
            if net in truth:
                assert truth[net] == "lna"

    @given(receiver_specs)
    @settings(max_examples=10, deadline=None)
    def test_perfect_probabilities_stay_perfect_after_post(self, spec):
        from repro.core.postprocess import apply_port_rules

        lc = generate_receiver(spec)
        graph = CircuitGraph.from_circuit(lc.circuit)
        truth = lc.truth(graph)
        class_names = ("lna", "mixer", "osc")
        ids = {name: i for i, name in enumerate(class_names)}
        n = graph.n_vertices
        probs = np.full((n, 3), 1 / 3)
        for v in range(n):
            name = graph.vertex_name(v)
            if name in truth and truth[name] in ids:
                probs[v] = 0.01
                probs[v, ids[truth[name]]] = 0.98
        annotation = Annotation(
            graph=graph,
            class_names=class_names,
            vertex_classes=probs.argmax(axis=1).astype(np.int64),
            probabilities=probs,
        )
        result = postprocess_ccc(annotation, LIB)
        result = apply_port_rules(result, lc.port_labels)
        assert result.annotation.accuracy(truth) == 1.0
