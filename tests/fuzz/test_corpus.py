"""Replay every committed corpus deck through the differential oracles.

Each fuzz find (and each seeded coverage deck) lives in
``tests/corpus/`` as ``<name>.sp`` plus a JSON sidecar naming the
oracle(s) it must satisfy and the parse mode it requires.  This module
turns the whole directory into ordinary pytest cases, so the corpus is
a permanent regression net: a bug the fuzzer once caught can never
silently return.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.testing.generator import GeneratedDeck, regenerate
from repro.testing.oracles import ORACLES, OracleContext, run_oracle

pytestmark = pytest.mark.fuzz

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
ENTRIES = tuple(sorted(CORPUS_DIR.glob("*.sp")))

MODEL_FREE = sorted(n for n, o in ORACLES.items() if not o.needs_pipeline)
PIPELINE = sorted(n for n, o in ORACLES.items() if o.needs_pipeline)


def _load(path: Path) -> tuple[GeneratedDeck, dict]:
    sidecar = json.loads(path.with_suffix(".json").read_text())
    deck = GeneratedDeck(
        text=path.read_text(),
        recipe=sidecar.get("recipe") or {"seed": 0},
        mode=sidecar.get("mode", "strict"),
    )
    return deck, sidecar


def _entry_oracles(sidecar: dict) -> list[str]:
    named = sidecar.get("oracle", "all")
    return sorted(ORACLES) if named == "all" else [named]


@pytest.fixture(params=ENTRIES, ids=lambda p: p.stem)
def corpus_entry(request):
    return _load(request.param)


def test_corpus_is_populated():
    assert len(ENTRIES) >= 10


def test_every_deck_has_a_sidecar_and_vice_versa():
    decks = {p.stem for p in ENTRIES}
    sidecars = {p.stem for p in CORPUS_DIR.glob("*.json")}
    assert decks == sidecars


def test_sidecars_are_complete(corpus_entry):
    _, sidecar = corpus_entry
    assert sidecar["mode"] in ("strict", "lenient")
    for name in _entry_oracles(sidecar):
        assert name in ORACLES


def test_recipes_regenerate_the_committed_deck(corpus_entry):
    # The seeded coverage decks are unshrunk generator output, so their
    # recipe must reproduce the committed bytes exactly.  (Shrunken
    # fuzz finds would differ — their sidecar documents provenance, not
    # identity — but every current entry is a full generated deck.)
    deck, sidecar = corpus_entry
    if not sidecar.get("recipe"):
        pytest.skip("entry has no generation recipe")
    assert regenerate(sidecar["recipe"]).text == deck.text


@pytest.mark.parametrize("oracle_name", MODEL_FREE)
def test_model_free_oracles(corpus_entry, oracle_name):
    deck, sidecar = corpus_entry
    if oracle_name not in _entry_oracles(sidecar):
        pytest.skip("sidecar does not claim this oracle")
    run_oracle(oracle_name, deck, OracleContext())


@pytest.mark.parametrize("oracle_name", PIPELINE)
def test_pipeline_oracles(corpus_entry, oracle_name, oracle_ctx):
    deck, sidecar = corpus_entry
    if oracle_name not in _entry_oracles(sidecar):
        pytest.skip("sidecar does not claim this oracle")
    run_oracle(oracle_name, deck, oracle_ctx)
