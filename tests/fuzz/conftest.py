"""Fixtures for the fuzz-harness tests.

The pipeline-backed oracle context reuses the session-scoped
quick-trained annotator from the root conftest, so the fuzz tests pay
for model training exactly once (and share that payment with every
other annotator-using test in the run).
"""

from __future__ import annotations

import pytest

from repro.testing.generator import GeneratedDeck


def as_deck(text: str, mode: str = "strict", seed: int = 0) -> GeneratedDeck:
    """Wrap a hand-written deck so the oracles accept it."""
    return GeneratedDeck(text=text, recipe={"seed": seed}, mode=mode)


@pytest.fixture(scope="session")
def oracle_ctx(quick_ota_annotator):
    """An OracleContext whose pipeline wraps the session annotator."""
    from repro.core.pipeline import GanaPipeline
    from repro.testing.oracles import OracleContext

    return OracleContext(
        seed=0, _pipeline=GanaPipeline(annotator=quick_ota_annotator)
    )
