"""Metamorphic transforms: each rewrite parses, its declared invariant
holds at the parse/flatten level, and the rename maps are faithful.

Annotation-level invariants (BYTE_IDENTICAL / UP_TO_RENAME through the
trained pipeline) are exercised by the ``metamorphic`` oracle in the
corpus replay; these tests stay model-free.
"""

from __future__ import annotations

import random

import pytest

from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist
from repro.testing.metamorphic import (
    TRANSFORMS,
    Invariant,
    InvariantViolation,
    TransformedDeck,
    apply_transform,
    check_invariant,
)
from tests.conftest import DIFF_OTA_DECK, HIERARCHICAL_DECK

pytestmark = pytest.mark.fuzz

#: A deck with a real m-factor, for the split transform.
MFACTOR_DECK = """
* m-factor deck
.global vdd! gnd!
.subckt inv in out
mn out in gnd! gnd! nmos w=1u l=100n
mp out in vdd! vdd! pmos w=2u l=100n
.ends
x0 a b inv m=3
rload b gnd! 10k
.end
"""


#: A deck whose first instance is a *leaf* cell without an m-factor —
#: the only shape ``inline_first_instance`` rewrites.
LEAF_DECK = """
* leaf instance deck
.global vdd! gnd!
.subckt inv in out
mn out in gnd! gnd! nmos w=1u l=100n
mp out in vdd! vdd! pmos w=2u l=100n
.ends
x0 a b inv
x1 b c inv
rload c gnd! 10k
.end
"""


def _flat_reprs(text: str) -> list[str]:
    return [repr(d) for d in flatten(parse_netlist(text)).devices]


def _first_non_noop(name: str, text: str):
    """Probabilistic transforms can roll a no-op; scan rng seeds."""
    for seed in range(20):
        t = apply_transform(name, text, random.Random(seed))
        if not t.noop:
            return t
    raise AssertionError(f"{name} was a no-op for 20 rng seeds")


class TestRegistry:
    def test_expected_transforms_registered(self):
        assert set(TRANSFORMS) == {
            "rename_devices",
            "rename_nets",
            "insert_unit_mfactor",
            "permute_cards",
            "split_mfactor",
            "inline_first_instance",
            "outline_tail_devices",
        }

    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    @pytest.mark.parametrize("deck", [DIFF_OTA_DECK, HIERARCHICAL_DECK, MFACTOR_DECK],
                             ids=["diff_ota", "hierarchical", "mfactor"])
    def test_output_parses_strict(self, name, deck):
        t = apply_transform(name, deck, random.Random(name))
        assert isinstance(t, TransformedDeck)
        assert t.transform == name
        if not t.noop:
            assert flatten(parse_netlist(t.text)).devices


class TestTransformSemantics:
    def test_insert_unit_mfactor_is_noop_through_flatten(self):
        t = _first_non_noop("insert_unit_mfactor", HIERARCHICAL_DECK)
        assert t.invariant is Invariant.BYTE_IDENTICAL
        assert " m=1" in t.text
        assert _flat_reprs(t.text) == _flat_reprs(HIERARCHICAL_DECK)

    def test_rename_devices_applies_uniform_suffix(self):
        t = apply_transform("rename_devices", DIFF_OTA_DECK, random.Random(1))
        assert t.invariant is Invariant.UP_TO_RENAME
        suffixes = {new[len(old):] for old, new in t.device_map.items()}
        assert len(suffixes) == 1
        flat_names = {d.name for d in flatten(parse_netlist(t.text)).devices}
        assert set(t.device_map.values()) <= flat_names

    def test_rename_nets_never_touches_role_nets(self):
        t = _first_non_noop("rename_nets", DIFF_OTA_DECK)
        for old in t.net_map:
            assert not old.endswith("!")
            assert not old.startswith(("vin", "vout", "vb"))
        renamed = flatten(parse_netlist(t.text)).nets
        assert set(t.net_map.values()) <= set(renamed)

    def test_permute_cards_preserves_structure(self):
        t = apply_transform("permute_cards", DIFF_OTA_DECK, random.Random(3))
        check_invariant(None, None, t, original_text=DIFF_OTA_DECK)
        assert sorted(_flat_reprs(t.text)) == sorted(_flat_reprs(DIFF_OTA_DECK))

    def test_split_mfactor_unrolls_copies(self):
        t = apply_transform("split_mfactor", MFACTOR_DECK, random.Random(4))
        assert not t.noop
        assert t.invariant is Invariant.SAME_NETS
        check_invariant(None, None, t, original_text=MFACTOR_DECK)
        # m=3 instance of a 2-device cell: 2 shared copies -> 6 split
        before = len(_flat_reprs(MFACTOR_DECK))
        after = len(_flat_reprs(t.text))
        assert after == before + 4

    def test_inline_first_instance_keeps_structure(self):
        t = apply_transform(
            "inline_first_instance", LEAF_DECK, random.Random(5)
        )
        assert not t.noop
        assert t.invariant is Invariant.SAME_STRUCTURE
        assert t.device_map
        check_invariant(None, None, t, original_text=LEAF_DECK)

    def test_outline_tail_devices_keeps_structure(self):
        t = apply_transform(
            "outline_tail_devices", DIFF_OTA_DECK, random.Random(6)
        )
        assert not t.noop
        assert t.invariant is Invariant.SAME_STRUCTURE
        assert ".subckt" in t.text
        check_invariant(None, None, t, original_text=DIFF_OTA_DECK)


class TestNoops:
    def test_split_mfactor_without_mfactors_is_noop(self):
        t = apply_transform("split_mfactor", DIFF_OTA_DECK, random.Random(0))
        assert t.noop
        assert t.text == DIFF_OTA_DECK

    def test_inline_on_flat_deck_is_noop(self):
        t = apply_transform(
            "inline_first_instance", DIFF_OTA_DECK, random.Random(0)
        )
        assert t.noop


class TestCheckInvariantRejects:
    def test_structure_change_is_caught(self):
        # Drop a transistor but claim SAME_STRUCTURE: must be flagged.
        lines = [
            ln
            for ln in DIFF_OTA_DECK.splitlines()
            if not ln.startswith("m5")
        ]
        forged = TransformedDeck(
            transform="forged",
            text="\n".join(lines) + "\n",
            invariant=Invariant.SAME_STRUCTURE,
        )
        with pytest.raises(InvariantViolation):
            check_invariant(None, None, forged, original_text=DIFF_OTA_DECK)

    def test_net_loss_is_caught(self):
        lines = [
            ln
            for ln in HIERARCHICAL_DECK.splitlines()
            if not ln.startswith("rload")
        ]
        forged = TransformedDeck(
            transform="forged",
            text="\n".join(lines) + "\n",
            invariant=Invariant.SAME_NETS,
        )
        with pytest.raises(InvariantViolation):
            check_invariant(
                None, None, forged, original_text=HIERARCHICAL_DECK
            )
