"""Acceptance: an injected matcher fault is caught, shrunk, and filed.

``repro.testing.oracles`` imports ``find_primitive_matches`` as a
module attribute precisely so a test can swap in a faulty version.
Here the fault drops the last match whenever the indexed path runs —
the kind of off-by-one an index-pruning bug would produce — and the
harness must (1) detect the divergence, (2) ddmin the deck to a
sub-20-line repro that still diverges, and (3) write the repro plus
sidecar into a corpus directory via the campaign loop.
"""

from __future__ import annotations

import json

import pytest

from repro.primitives.matcher import find_primitive_matches as real_matcher
from repro.testing.campaign import run_campaign
from repro.testing.generator import GenConfig, GeneratedDeck, generate_deck
from repro.testing.oracles import DivergenceError, OracleContext, run_oracle
from repro.testing.shrink import shrink_deck

pytestmark = pytest.mark.fuzz

#: Flat decks only: keeps the injected-fault campaign fast and the
#: shrunken repro a pure device list.
FLAT = GenConfig(max_subckts=0)


def _install_fault(monkeypatch) -> None:
    """Indexed matching silently loses its last match."""

    def faulty(template, graph, *args, **kwargs):
        matches = real_matcher(template, graph, *args, **kwargs)
        if kwargs.get("indexed") and matches:
            return matches[:-1]
        return matches

    monkeypatch.setattr(
        "repro.testing.oracles.find_primitive_matches", faulty
    )


def _matchable_deck() -> GeneratedDeck:
    """A generated deck that actually contains library matches."""
    from repro.graph.bipartite import CircuitGraph
    from repro.primitives.library import extended_library
    from repro.spice.flatten import flatten
    from repro.spice.parser import parse_netlist

    for seed in range(10):
        deck = generate_deck(seed, FLAT)
        graph = CircuitGraph.from_circuit(flatten(parse_netlist(deck.text)))
        if any(
            real_matcher(t, graph, indexed=False)
            for t in extended_library().templates
        ):
            return deck
    raise AssertionError("no generated deck with primitive matches")


def test_baseline_is_green_without_the_fault():
    run_oracle("indexed_matching", _matchable_deck(), OracleContext())


def test_fault_is_caught_and_shrunk_below_twenty_lines(monkeypatch):
    deck = _matchable_deck()
    _install_fault(monkeypatch)
    ctx = OracleContext()

    with pytest.raises(DivergenceError) as excinfo:
        run_oracle("indexed_matching", deck, ctx)
    assert excinfo.value.oracle == "indexed_matching"

    def predicate(text: str) -> None:
        candidate = GeneratedDeck(text=text, recipe=deck.recipe, mode="strict")
        run_oracle("indexed_matching", candidate, ctx)

    result = shrink_deck(deck.text, predicate)
    assert result.shrunk_lines < 20
    assert result.shrunk_lines <= result.original_lines
    # The minimized deck is a genuine repro, and 1-minimal.
    with pytest.raises(DivergenceError):
        predicate(result.text)


def test_campaign_files_the_shrunken_repro(monkeypatch, tmp_path):
    _install_fault(monkeypatch)
    corpus = tmp_path / "found"
    report = run_campaign(
        base_seed=0,
        iterations=10,
        oracle_names=["indexed_matching"],
        corpus_dir=str(corpus),
        stop_on_first=True,
    )
    assert not report.ok
    assert report.stopped_by == "divergence"
    divergence = report.divergences[0]
    assert divergence.oracle == "indexed_matching"
    assert divergence.shrunk_lines < 20
    assert divergence.corpus_path is not None

    written = sorted(corpus.glob("*.sp"))
    assert len(written) == 1
    sidecar = json.loads(written[0].with_suffix(".json").read_text())
    assert sidecar["oracle"] == "indexed_matching"
    assert sidecar["recipe"]["seed"] == divergence.seed
    assert "DIVERGENCES: 1" in report.summary()
