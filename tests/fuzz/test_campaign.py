"""The bounded fuzz loop and the ``python -m repro.fuzz`` CLI."""

from __future__ import annotations

import pytest

from repro import fuzz
from repro.testing.campaign import _CONFIG_CYCLE, run_campaign
from repro.testing.oracles import ORACLES

pytestmark = pytest.mark.fuzz

MODEL_FREE = sorted(n for n, o in ORACLES.items() if not o.needs_pipeline)


class TestRunCampaign:
    def test_green_model_free_sweep(self):
        # Six seeds walk the whole config cycle (flat, hier, include
        # split, dirt) at least once.
        assert len(_CONFIG_CYCLE) <= 6
        report = run_campaign(
            base_seed=0, iterations=6, oracle_names=MODEL_FREE
        )
        assert report.ok
        assert report.iterations == 6
        assert report.oracle_runs == 6 * len(MODEL_FREE)
        assert report.per_oracle == {n: 6 for n in MODEL_FREE}
        assert report.stopped_by == "iterations"
        assert "all oracles green" in report.summary()

    def test_time_budget_stops_the_loop(self):
        report = run_campaign(
            base_seed=0,
            iterations=10_000,
            time_budget=0.0,
            oracle_names=["parse_modes"],
        )
        assert report.stopped_by == "time-budget"
        assert report.iterations < 10_000

    def test_unknown_oracle_name_raises(self):
        with pytest.raises(ValueError, match="unknown oracles"):
            run_campaign(oracle_names=["nosuch"])

    def test_progress_log_is_called(self):
        messages = []
        run_campaign(
            base_seed=0,
            iterations=10,
            oracle_names=["parse_modes"],
            log=messages.append,
        )
        assert any("10/10 decks fuzzed" in m for m in messages)


class TestCli:
    def test_list_oracles(self, capsys):
        assert fuzz.main(["--list-oracles"]) == 0
        out = capsys.readouterr().out
        for name in ORACLES:
            assert name in out
        assert "[pipeline]" in out

    def test_unknown_oracle_exits_two_with_clean_error(self, capsys):
        assert fuzz.main(["--oracle", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "error: unknown oracle(s): nosuch" in err
        assert "parse_modes" in err

    def test_green_run_exits_zero(self, capsys):
        code = fuzz.main(
            [
                "--seed", "0",
                "--iterations", "4",
                "--oracle", "parse_modes",
                "--oracle", "elaboration",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all oracles green" in out
        assert "parse_modes: 4 runs" in out

    def test_divergence_exits_one_and_writes_corpus(
        self, monkeypatch, tmp_path, capsys
    ):
        from tests.fuzz.test_fault_injection import _install_fault

        _install_fault(monkeypatch)
        corpus = tmp_path / "ci-artifacts"
        code = fuzz.main(
            [
                "--seed", "0",
                "--iterations", "10",
                "--oracle", "indexed_matching",
                "--corpus-dir", str(corpus),
                "--stop-on-first",
                "--quiet",
            ]
        )
        assert code == 1
        assert "DIVERGENCES" in capsys.readouterr().out
        assert list(corpus.glob("*.sp"))
