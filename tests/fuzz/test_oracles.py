"""The oracle registry and the model-free oracles on known decks."""

from __future__ import annotations

import pytest

from repro.testing.generator import GenConfig, generate_deck
from repro.testing.oracles import (
    ORACLES,
    DivergenceError,
    OracleContext,
    run_oracle,
)
from tests.conftest import (
    CURRENT_MIRROR_DECK,
    DIFF_OTA_DECK,
    HIERARCHICAL_DECK,
)
from tests.fuzz.conftest import as_deck

pytestmark = pytest.mark.fuzz

MODEL_FREE = sorted(n for n, o in ORACLES.items() if not o.needs_pipeline)
PIPELINE = sorted(n for n, o in ORACLES.items() if o.needs_pipeline)


class TestRegistry:
    def test_every_dual_path_is_covered(self):
        assert set(ORACLES) == {
            "parse_modes",
            "elaboration",
            "include_roundtrip",
            "indexed_matching",
            "packed_gcn",
            "staged_vs_monolith",
            "hier_vs_flat",
            "warm_cache",
            "metamorphic",
        }

    def test_pipeline_flags(self):
        assert PIPELINE == sorted(
            [
                "packed_gcn",
                "staged_vs_monolith",
                "hier_vs_flat",
                "warm_cache",
                "metamorphic",
            ]
        )

    def test_descriptions_are_set(self):
        for oracle in ORACLES.values():
            assert oracle.description
            assert oracle.name in ORACLES

    def test_unknown_oracle_raises(self):
        with pytest.raises(KeyError):
            run_oracle("nosuch", as_deck(DIFF_OTA_DECK), OracleContext())


class TestDivergenceError:
    def test_carries_oracle_and_detail(self):
        exc = DivergenceError("parse_modes", "they differ")
        assert exc.oracle == "parse_modes"
        assert exc.detail == "they differ"
        assert "[parse_modes] they differ" in str(exc)
        assert isinstance(exc, AssertionError)


class TestModelFreeOracles:
    @pytest.mark.parametrize("name", MODEL_FREE)
    @pytest.mark.parametrize(
        "text",
        [DIFF_OTA_DECK, CURRENT_MIRROR_DECK, HIERARCHICAL_DECK],
        ids=["diff_ota", "current_mirror", "hierarchical"],
    )
    def test_green_on_canonical_decks(self, name, text):
        run_oracle(name, as_deck(text), OracleContext())

    @pytest.mark.parametrize("name", MODEL_FREE)
    def test_green_on_dirty_generated_deck(self, name):
        deck = generate_deck(0, GenConfig(n_dirt=2, max_blocks=2))
        assert deck.mode == "lenient"
        run_oracle(name, deck, OracleContext())

    def test_parse_modes_flags_clean_deck_mislabelled_lenient(self):
        # A clean deck claiming to be dirty: strict accepts it, which
        # the dirty-deck branch of the oracle must report.
        with pytest.raises(DivergenceError, match="strict mode accepted"):
            run_oracle(
                "parse_modes",
                as_deck(DIFF_OTA_DECK, mode="lenient"),
                OracleContext(),
            )

    def test_include_roundtrip_skips_unsplit_decks(self):
        run_oracle("include_roundtrip", as_deck(DIFF_OTA_DECK), OracleContext())


class TestOracleContext:
    def test_rng_is_deterministic_per_deck_and_salt(self):
        deck = as_deck(DIFF_OTA_DECK, seed=11)
        ctx = OracleContext(seed=5)
        a = ctx.rng(deck, "metamorphic").random()
        b = ctx.rng(deck, "metamorphic").random()
        assert a == b
        assert a != ctx.rng(deck, "other-salt").random()
        assert a != OracleContext(seed=6).rng(deck, "metamorphic").random()
