"""The ddmin shrinker on synthetic predicates: 1-minimality, the
DivergenceError-only repro rule, probe bounds, and corpus writing."""

from __future__ import annotations

import json

import pytest

from repro.testing.oracles import DivergenceError
from repro.testing.shrink import shrink_deck, write_corpus_entry

pytestmark = pytest.mark.fuzz


def _deck(n_filler: int, *special: str) -> str:
    """``n_filler`` inert lines with the special lines interleaved."""
    lines = [f"* filler {i}" for i in range(n_filler)]
    step = max(1, len(lines) // (len(special) + 1))
    for i, line in enumerate(special):
        lines.insert((i + 1) * step, line)
    return "\n".join(lines) + "\n"


def _needs_all(*required: str):
    def predicate(text: str) -> None:
        present = set(text.splitlines())
        if all(r in present for r in required):
            raise DivergenceError("synthetic", "all trigger lines present")

    return predicate


class TestDdmin:
    def test_minimizes_to_exactly_the_trigger_lines(self):
        text = _deck(20, "m1 a b c d nmos", "rload b gnd! 1k")
        result = shrink_deck(
            text, _needs_all("m1 a b c d nmos", "rload b gnd! 1k")
        )
        assert result.text.splitlines() == [
            "m1 a b c d nmos",
            "rload b gnd! 1k",
        ]
        assert result.original_lines == 22
        assert result.shrunk_lines == 2
        assert result.probes > 0
        assert result.trace
        assert result.reduction == pytest.approx(1 - 2 / 22)

    def test_single_trigger_line(self):
        text = _deck(15, "the bug")
        result = shrink_deck(text, _needs_all("the bug"))
        assert result.text == "the bug\n"

    def test_preserves_original_line_order(self):
        text = _deck(10, "alpha", "beta", "gamma")
        result = shrink_deck(text, _needs_all("gamma", "alpha", "beta"))
        assert result.text.splitlines() == ["alpha", "beta", "gamma"]

    def test_non_failing_input_raises(self):
        with pytest.raises(ValueError, match="does not fail"):
            shrink_deck(_deck(5), _needs_all("never present"))

    def test_other_exceptions_are_not_repros(self):
        # Candidates missing the guard line *crash*; crashes must not
        # count as still-failing, so the guard survives shrinking.
        def predicate(text: str) -> None:
            lines = set(text.splitlines())
            if "guard" not in lines:
                raise RuntimeError("malformed candidate")
            if "bug" in lines:
                raise DivergenceError("synthetic", "bug with guard")

        result = shrink_deck(_deck(12, "guard", "bug"), predicate)
        assert sorted(result.text.splitlines()) == ["bug", "guard"]

    def test_probe_budget_is_respected(self):
        text = _deck(40, "needle")
        result = shrink_deck(text, _needs_all("needle"), max_probes=5)
        assert result.probes <= 5
        # Whatever came back must still reproduce the divergence.
        with pytest.raises(DivergenceError):
            _needs_all("needle")(result.text)


class TestCorpusWriter:
    def test_writes_deck_and_sidecar(self, tmp_path):
        path = write_corpus_entry(
            tmp_path / "corpus",
            "repro1",
            "m0 a b c d nmos\n",
            oracle="indexed_matching",
            mode="strict",
            detail="template DP-N: 1 vs 2 matches",
            recipe={"seed": 42, "version": 1},
        )
        assert path.read_text() == "m0 a b c d nmos\n"
        sidecar = json.loads(path.with_suffix(".json").read_text())
        assert sidecar == {
            "oracle": "indexed_matching",
            "mode": "strict",
            "detail": "template DP-N: 1 vs 2 matches",
            "recipe": {"seed": 42, "version": 1},
        }

    def test_recipe_is_optional(self, tmp_path):
        path = write_corpus_entry(
            tmp_path, "norecipe", "x\n", oracle="parse_modes"
        )
        sidecar = json.loads(path.with_suffix(".json").read_text())
        assert sidecar["recipe"] is None
        assert sidecar["mode"] == "strict"
