"""The seeded deck generator: determinism, recipe round-trips, mode
flagging, and structural coverage (hierarchy, m-factors, includes)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import GanaError
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist
from repro.testing.generator import (
    RECIPE_VERSION,
    GenConfig,
    generate_deck,
    regenerate,
)

pytestmark = pytest.mark.fuzz


class TestDeterminism:
    def test_same_seed_same_deck(self):
        a = generate_deck(7)
        b = generate_deck(7)
        assert a.text == b.text
        assert a.recipe == b.recipe
        assert a.mode == b.mode
        assert a.files == b.files

    @pytest.mark.parametrize("seed", range(8))
    def test_regenerate_reproduces_byte_for_byte(self, seed):
        deck = generate_deck(seed, GenConfig(p_nested=0.6, p_mfactor=0.5))
        again = regenerate(deck.recipe)
        assert again.text == deck.text
        assert again.mode == deck.mode
        assert again.files == deck.files

    def test_recipe_survives_json_round_trip(self):
        deck = generate_deck(3, GenConfig(include_split=True))
        thawed = json.loads(json.dumps(deck.recipe))
        assert regenerate(thawed).text == deck.text

    def test_recipe_carries_version_and_config(self):
        config = GenConfig(max_blocks=2, n_dirt=1)
        deck = generate_deck(0, config)
        assert deck.recipe["version"] == RECIPE_VERSION
        assert deck.recipe["seed"] == 0
        assert deck.recipe["config"] == config.as_dict()
        assert deck.seed == 0

    def test_distinct_seeds_vary(self):
        texts = {generate_deck(s).text for s in range(8)}
        assert len(texts) >= 4


class TestCleanDecks:
    @pytest.mark.parametrize("seed", range(6))
    def test_parse_strict_and_flatten(self, seed):
        deck = generate_deck(seed)
        assert deck.mode == "strict"
        flat = flatten(parse_netlist(deck.text))
        assert flat.devices
        assert deck.n_lines == len(deck.text.splitlines())

    def test_hierarchy_appears(self):
        config = GenConfig(max_subckts=2, p_nested=0.9)
        assert any(
            ".subckt" in generate_deck(s, config).text for s in range(6)
        )

    def test_mfactor_appears(self):
        config = GenConfig(max_subckts=2, p_mfactor=1.0)
        hier = [
            generate_deck(s, config)
            for s in range(8)
            if ".subckt" in generate_deck(s, config).text
        ]
        assert any(" m=" in d.text for d in hier)


class TestDirtyDecks:
    def test_dirt_forces_lenient_mode(self):
        deck = generate_deck(0, GenConfig(n_dirt=2))
        assert deck.mode == "lenient"

    def test_dirt_is_strict_fatal_and_lenient_recovered(self):
        deck = generate_deck(1, GenConfig(n_dirt=2))
        with pytest.raises(GanaError):
            flatten(parse_netlist(deck.text, mode="strict"))
        diags = []
        netlist = parse_netlist(deck.text, mode="lenient")
        flatten(netlist, diagnostics=diags)
        assert diags or netlist.diagnostics


class TestIncludeSplit:
    def test_split_has_main_and_expands_identically(self, tmp_path):
        # The split carries the .subckt definitions, so only decks that
        # rolled some hierarchy are emitted as files — scan for one.
        config = GenConfig(include_split=True, max_subckts=2)
        deck = next(
            d
            for d in (generate_deck(s, config) for s in range(10))
            if d.files
        )
        assert "main.sp" in deck.files
        assert ".include" in deck.files["main.sp"]
        for name, content in deck.files.items():
            (tmp_path / name).write_text(content)
        split = flatten(
            parse_netlist(deck.files["main.sp"], include_dir=tmp_path)
        )
        joined = flatten(parse_netlist(deck.text))
        assert [repr(d) for d in split.devices] == [
            repr(d) for d in joined.devices
        ]

    def test_plain_config_emits_no_files(self):
        assert generate_deck(0).files == {}
