"""Fault-injection harness: poisoned decks, hung parses, crashing
workers, and truncated cache entries must all be survivable.

ISSUE 2 acceptance: a batch of N decks with K corrupted/hanging
members yields exactly N−K ``PipelineResult``s and K ``FailureReport``s
(with the failing stage and diagnostics), in deterministic input order.
"""

from __future__ import annotations

import logging
import os
import time

import pytest

from repro.core.pipeline import GanaPipeline, PipelineResult
from repro.datasets.ota import generate_ota, ota_variants
from repro.exceptions import SpiceSyntaxError
from repro.runtime.cache import ModelCache
from repro.runtime.parallel import parallel_map
from repro.runtime.resilience import FailureReport
from repro.spice.writer import write_circuit

#: Fails on line 2 in strict mode: MOS card with too few nets.
BAD_MOS_DECK = "* corrupted\nm1 n1 inp vss nmos\n.end\n"
#: Fails on line 3: unsupported device card.
BAD_CARD_DECK = "* corrupted\n* still fine\nq1 a b c npn\n.end\n"


@pytest.fixture(scope="module")
def pipeline(quick_ota_annotator):
    return GanaPipeline(annotator=quick_ota_annotator)


@pytest.fixture(scope="module")
def good_decks():
    specs = ota_variants(3, seed="fault-injection")
    return [
        write_circuit(generate_ota(spec, name=f"ok{i}").circuit)
        for i, spec in enumerate(specs)
    ]


class TestBatchFaultIsolation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_corrupted_decks_become_reports(
        self, pipeline, good_decks, workers
    ):
        decks = [
            good_decks[0],
            BAD_MOS_DECK,
            good_decks[1],
            BAD_CARD_DECK,
            good_decks[2],
        ]
        names = [f"deck{i}" for i in range(len(decks))]
        results = pipeline.run_many(
            decks, names=names, on_error="report", workers=workers
        )
        assert len(results) == len(decks)
        assert [r.ok for r in results] == [True, False, True, False, True]
        assert all(
            isinstance(r, PipelineResult) for r in results if r.ok
        )
        for index in (1, 3):
            report = results[index]
            assert isinstance(report, FailureReport)
            assert report.index == index
            assert report.name == f"deck{index}"
            assert report.stage == "parse"
            assert report.exception_chain
            assert "SpiceSyntaxError" in report.error
        # Diagnostics carry the offending line numbers.
        assert [d.line for d in results[1].diagnostics] == [2]
        assert [d.line for d in results[3].diagnostics] == [3]

    def test_survivors_match_a_clean_run(self, pipeline, good_decks):
        mixed = [good_decks[0], BAD_MOS_DECK, good_decks[1]]
        results = pipeline.run_many(mixed, on_error="report")
        clean = [pipeline.run(good_decks[0]), pipeline.run(good_decks[1])]
        for got, want in zip([results[0], results[2]], clean):
            assert (
                got.annotation.element_classes
                == want.annotation.element_classes
            )

    def test_on_error_raise_is_the_default(self, pipeline, good_decks):
        with pytest.raises(SpiceSyntaxError):
            pipeline.run_many([good_decks[0], BAD_MOS_DECK], workers=1)

    def test_invalid_on_error_rejected(self, pipeline, good_decks):
        with pytest.raises(ValueError, match="on_error"):
            pipeline.run_many(good_decks, on_error="ignore")

    def test_failure_summary_names_the_item(self, pipeline):
        [report] = pipeline.run_many(
            [BAD_MOS_DECK], names=["broken_amp"], on_error="report"
        )
        assert "broken_amp" in report.summary()
        assert "parse" in report.summary()


class TestTimeouts:
    def test_hanging_deck_times_out_alone(
        self, pipeline, good_decks, monkeypatch
    ):
        import repro.core.pipeline as pipeline_module

        real_parse = pipeline_module.parse_netlist

        def slow_parse(text, **kwargs):
            if "hangme" in text:
                time.sleep(30)
            return real_parse(text, **kwargs)

        monkeypatch.setattr(pipeline_module, "parse_netlist", slow_parse)
        started = time.monotonic()
        results = pipeline.run_many(
            [good_decks[0], "* hangme\n.end\n"],
            on_error="report",
            workers=1,
            timeout=0.5,
        )
        assert time.monotonic() - started < 20
        assert results[0].ok
        assert not results[1].ok
        assert "BudgetExceeded" in results[1].error
        assert "wall-clock" in results[1].error


def _crash_once(path_and_item):
    """Kill the worker process hard on the first attempt only."""
    marker, item = path_and_item
    if os.path.exists(marker):
        try:
            os.unlink(marker)
        except OSError:
            pass
        os._exit(1)
    return item * 2


def _always_raise(item):
    raise ValueError(f"poisoned item {item}")


class TestPoolRecovery:
    def test_transient_crash_is_retried(self, tmp_path):
        marker = tmp_path / "crash-once"
        marker.write_text("armed")
        items = [(str(marker), i) for i in range(8)]
        out = parallel_map(
            _crash_once, items, workers=2, pool_retries=2, backoff=0.01
        )
        assert out == [i * 2 for i in range(8)]

    def test_serial_fallback_chains_pool_failure(self, caplog):
        # A ValueError out of the pool is fatal (never retried); the
        # serial rerun fails too, and must chain the pool failure so
        # batch failures stay debuggable (the ISSUE 2 satellite bugfix).
        with caplog.at_level(logging.WARNING, logger="repro.runtime.parallel"):
            with pytest.raises(ValueError, match="poisoned") as info:
                parallel_map(_always_raise, [1, 2, 3, 4], workers=2)
        assert info.value.__cause__ is not None
        assert "poisoned" in str(info.value.__cause__)
        assert any(
            "falling back to the serial path" in record.getMessage()
            for record in caplog.records
        )

    def test_unpicklable_payload_falls_back_serially(self, caplog):
        # A lambda cannot cross the process boundary; the map must
        # still produce correct results via the logged serial path.
        with caplog.at_level(logging.WARNING, logger="repro.runtime.parallel"):
            out = parallel_map(lambda x: x + 1, [1, 2, 3, 4], workers=2)
        assert out == [2, 3, 4, 5]
        assert any("serial" in str(record.msg) for record in caplog.records)


class TestCacheCorruption:
    def test_truncated_entry_is_a_miss(self, quick_ota_annotator, tmp_path):
        cache = ModelCache(tmp_path)
        path = cache.store("victim", quick_ota_annotator)
        assert path is not None and path.exists()
        assert cache.load("victim") is not None
        # Simulate a torn write / disk corruption.
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        assert cache.load("victim") is None
        assert not path.exists()  # bad entry evicted

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = ModelCache(tmp_path)
        cache.path_for("junk").parent.mkdir(parents=True, exist_ok=True)
        cache.path_for("junk").write_bytes(b"not an npz at all")
        assert cache.load("junk") is None
