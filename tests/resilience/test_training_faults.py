"""Training-fault injection: SIGKILL mid-epoch, NaN minibatches, and
poison decks that kill their worker process.

ISSUE 7 acceptance:

* a training run SIGKILLed mid-epoch resumes from its newest checkpoint
  and finishes bitwise-identical to the uninterrupted run;
* an injected NaN loss triggers rollback + LR backoff and still yields
  a usable model (with ``degraded`` metadata); exhausting the retry
  budget raises the typed :class:`TrainingDiverged`;
* a poison deck in ``run_many`` yields exactly one ``FailureReport``
  while its chunk siblings succeed, and the next ``run_many`` reuses a
  healthy warm pool.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import GanaPipeline
from repro.datasets.ota import generate_ota, ota_variants
from repro.datasets.synth import (
    build_samples,
    generate_ota_bias_dataset,
    task_classes,
)
from repro.exceptions import GanaError, TrainingDiverged
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.train import FaultTolerance, TrainConfig, evaluate, train
from repro.runtime import parallel
from repro.runtime.parallel import shutdown_pools
from repro.runtime.resilience import FailureReport
from repro.spice.writer import write_circuit

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Dataset/config literals shared (verbatim) with the SIGKILL
#: subprocess script below — drift here breaks the bitwise comparison.
_DATASET_SEED = "train-fault"
_MODEL_KWARGS = dict(
    n_layers=2, filter_size=4, channels=(8, 8), fc_size=16,
    dropout=0.2, seed=1,
)
_TRAIN_KWARGS = dict(epochs=60, batch_size=3, seed=5, patience=0)


@pytest.fixture(scope="module")
def split():
    dataset = generate_ota_bias_dataset(10, seed=_DATASET_SEED, workers=1)
    samples = build_samples(dataset, task_classes("ota"), levels=2, workers=1)
    return samples[:7], samples[7:]


def _model_config(samples) -> GCNConfig:
    return GCNConfig(
        n_features=samples[0].features.shape[1],
        n_classes=len(task_classes("ota")),
        **_MODEL_KWARGS,
    )


class TestDivergenceRollback:
    def _poison_nth_batched_loss(self, monkeypatch, n: int):
        """Make the ``n``-th batched-loss call return NaN, once."""
        # ``repro.gcn.train`` the *module*: the package re-exports the
        # ``train`` function under the same name, shadowing the
        # attribute path ``import ... as`` would resolve.
        train_module = sys.modules["repro.gcn.train"]

        real = train_module.batched_cross_entropy
        calls = {"count": 0}

        def poisoned(*args, **kwargs):
            losses, counts, grad = real(*args, **kwargs)
            calls["count"] += 1
            if calls["count"] == n:
                losses = losses + np.nan
            return losses, counts, grad

        monkeypatch.setattr(train_module, "batched_cross_entropy", poisoned)
        return calls

    def test_nan_minibatch_rolls_back_and_recovers(self, split, monkeypatch):
        tr, val = split
        # 7 samples / batch_size 3 → two packed minibatches per epoch;
        # call 3 is the first minibatch of epoch 1.
        self._poison_nth_batched_loss(monkeypatch, 3)
        model = GCNModel(_model_config(tr))
        history = train(
            model, tr, val, TrainConfig(epochs=4, batch_size=3, seed=5),
        )
        assert history.rollbacks == 1
        assert history.degraded
        assert len(history.train_loss) == 4  # the epoch was retried, not lost
        [diagnostic] = history.diagnostics
        assert "diverged" in diagnostic.message
        assert "non-finite loss" in diagnostic.message
        assert "learning rate reduced" in diagnostic.hint
        # The recovered model is usable: finite weights, sane accuracy.
        for value in model.state_dict().values():
            assert np.isfinite(value).all()
        assert 0.0 <= evaluate(model, val) <= 1.0

    def test_retry_budget_exhaustion_raises_typed_error(
        self, split, monkeypatch
    ):
        train_module = sys.modules["repro.gcn.train"]
        tr, val = split

        def always_nan(logits, labels, mask, offset, weights):
            real = np.asarray(logits)
            losses = np.full(1, np.nan)
            counts = np.ones(1)
            return losses, counts, np.zeros_like(real)

        monkeypatch.setattr(
            train_module, "batched_cross_entropy", always_nan
        )
        with pytest.raises(TrainingDiverged) as info:
            train(
                GCNModel(_model_config(tr)), tr, val,
                TrainConfig(epochs=4, batch_size=3, seed=5),
                fault=FaultTolerance(max_divergence_retries=1),
            )
        assert isinstance(info.value, GanaError)  # CLI-surfaceable
        assert info.value.epoch == 0
        assert info.value.rollbacks == 2  # the budgeted retry + the raise
        assert "after 1 rollback retry" in str(info.value)

    def test_gradient_norm_guard_trips(self, split):
        tr, val = split
        with pytest.raises(TrainingDiverged, match="gradient norm"):
            train(
                GCNModel(_model_config(tr)), tr, val,
                TrainConfig(epochs=2, batch_size=3, seed=5),
                fault=FaultTolerance(
                    grad_limit=1e-12, max_divergence_retries=0
                ),
            )


@pytest.mark.slow
class TestSigkillResume:
    def test_sigkill_mid_epoch_then_resume_is_bitwise(self, split, tmp_path):
        tr, val = split
        config = _model_config(tr)
        train_config = TrainConfig(**_TRAIN_KWARGS)
        ckpt_dir = tmp_path / "ckpt"

        # The victim process: same dataset/config literals, with saves
        # slowed down so the kill window is wide and deterministic.
        script = f"""
import sys, time
from repro.gcn import checkpoint as checkpoint_module
_real_save = checkpoint_module.CheckpointStore.save
def _slow_save(self, ckpt, cfg):
    time.sleep(0.05)
    return _real_save(self, ckpt, cfg)
checkpoint_module.CheckpointStore.save = _slow_save
from repro.datasets.synth import build_samples, generate_ota_bias_dataset, task_classes
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.train import FaultTolerance, TrainConfig, train
dataset = generate_ota_bias_dataset(10, seed={_DATASET_SEED!r}, workers=1)
samples = build_samples(dataset, task_classes("ota"), levels=2, workers=1)
tr, val = samples[:7], samples[7:]
config = GCNConfig(
    n_features=tr[0].features.shape[1],
    n_classes=len(task_classes("ota")),
    **{_MODEL_KWARGS!r},
)
train(
    GCNModel(config), tr, val, TrainConfig(**{_TRAIN_KWARGS!r}),
    fault=FaultTolerance(checkpoint_dir=sys.argv[1], keep=5),
)
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(ckpt_dir)],
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if len(list(ckpt_dir.glob("epoch-*.ckpt.npz"))) >= 2:
                    break
                if proc.poll() is not None:
                    pytest.fail(
                        "training subprocess exited "
                        f"({proc.returncode}) before it could be killed"
                    )
                time.sleep(0.01)
            else:
                pytest.fail("no checkpoints appeared within the deadline")
            os.kill(proc.pid, signal.SIGKILL)
            assert proc.wait(timeout=30) == -signal.SIGKILL
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        resumed = GCNModel(config)
        history = train(
            resumed, tr, val, train_config,
            fault=FaultTolerance(checkpoint_dir=ckpt_dir, keep=5),
        )
        assert history.resumed_from is not None
        assert 1 <= history.resumed_from < train_config.epochs

        reference = GCNModel(config)
        ref_history = train(reference, tr, val, train_config)
        ref_state = reference.state_dict()
        for key, value in resumed.state_dict().items():
            assert np.array_equal(value, ref_state[key]), key
        assert history.train_loss == ref_history.train_loss
        assert history.val_accuracy == ref_history.val_accuracy
        assert history.best_epoch == ref_history.best_epoch


POISON_DECK = "* poisonpill\n.end\n"


@pytest.fixture(scope="module")
def pipeline(quick_ota_annotator):
    return GanaPipeline(annotator=quick_ota_annotator)


@pytest.fixture(scope="module")
def good_decks():
    specs = ota_variants(3, seed="train-fault-decks")
    return [
        write_circuit(generate_ota(spec, name=f"ok{i}").circuit)
        for i, spec in enumerate(specs)
    ]


def _arm_poison_parse(monkeypatch):
    """Patch ``parse_netlist`` to hard-kill the worker on the poison
    deck.  Fork-based workers inherit the patched module state, so the
    crash happens inside the pool, not in the test process (the parent
    never parses the poison deck itself)."""
    import repro.core.pipeline as pipeline_module

    real_parse = pipeline_module.parse_netlist

    def kill_on_poison(text, **kwargs):
        if "poisonpill" in text:
            os._exit(1)  # simulated segfault
        return real_parse(text, **kwargs)

    monkeypatch.setattr(pipeline_module, "parse_netlist", kill_on_poison)


class TestPoisonDeckQuarantine:
    def test_poison_deck_yields_exactly_one_report(
        self, pipeline, good_decks, monkeypatch
    ):
        _arm_poison_parse(monkeypatch)
        shutdown_pools()  # fresh forks that inherit the armed parser
        decks = [good_decks[0], POISON_DECK, good_decks[1], good_decks[2]]
        names = ["a", "bomb", "c", "d"]
        results = pipeline.run_many(
            decks, names=names, on_error="report", workers=2
        )
        assert [r.ok for r in results] == [True, False, True, True]
        report = results[1]
        assert isinstance(report, FailureReport)
        assert report.stage == "worker"
        assert report.index == 1
        assert report.name == "bomb"
        assert report.diagnostics
        assert "worker process died" in report.diagnostics[0].message
        # The health counters saw the quarantine.
        assert any(
            h.quarantined >= 1 for h in parallel.pool_health().values()
        )

    def test_survivors_match_a_clean_run(
        self, pipeline, good_decks, monkeypatch
    ):
        _arm_poison_parse(monkeypatch)
        shutdown_pools()
        results = pipeline.run_many(
            [good_decks[0], POISON_DECK, good_decks[1]],
            on_error="report",
            workers=2,
        )
        clean = [pipeline.run(good_decks[0]), pipeline.run(good_decks[1])]
        for got, want in zip([results[0], results[2]], clean):
            assert (
                got.annotation.element_classes
                == want.annotation.element_classes
            )

    def test_next_run_many_reuses_a_healthy_warm_pool(
        self, pipeline, good_decks, monkeypatch
    ):
        _arm_poison_parse(monkeypatch)
        shutdown_pools()
        poisoned = pipeline.run_many(
            [good_decks[0], POISON_DECK, good_decks[1]],
            on_error="report",
            workers=2,
        )
        assert [r.ok for r in poisoned] == [True, False, True]

        first = pipeline.run_many(
            good_decks, on_error="report", workers=2
        )
        assert all(r.ok for r in first)
        warm = {key: id(pool) for key, pool in parallel._POOLS.items()}
        assert warm  # the clean run left a healthy pool behind

        second = pipeline.run_many(
            good_decks, on_error="report", workers=2
        )
        assert all(r.ok for r in second)
        assert {
            key: id(pool) for key, pool in parallel._POOLS.items()
        } == warm  # same executor objects served the second clean run
