"""Graceful degradation: when GCN inference dies (or is too unsure),
``GanaPipeline.run`` falls back to the template-library classifier.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import GanaPipeline
from repro.datasets.ota import generate_ota, ota_variants
from repro.spice.writer import write_circuit

OTA_CLASSES = ("ota", "bias")


class _BrokenAnnotator:
    """Annotator whose inference always dies (e.g. corrupted weights)."""

    class_names = OTA_CLASSES

    def annotate(self, graph, net_roles=None):
        raise RuntimeError("weights corrupted")


@pytest.fixture(scope="module")
def deck():
    spec = ota_variants(1, seed="degradation")[0]
    return write_circuit(generate_ota(spec, name="victim").circuit)


@pytest.fixture(scope="module")
def pipeline(quick_ota_annotator):
    return GanaPipeline(annotator=quick_ota_annotator)


class TestDegradation:
    def test_gcn_failure_falls_back(self, deck):
        pipeline = GanaPipeline(annotator=_BrokenAnnotator())
        result = pipeline.run(deck)
        assert result.degraded
        assert "GCN inference failed" in result.degraded_reason
        assert "RuntimeError" in result.degraded_reason
        # The fallback still produces a usable annotation over the
        # task's vocabulary.
        classes = set(result.annotation.element_classes.values())
        assert classes <= set(OTA_CLASSES) | {"?"}
        assert result.hierarchy is not None

    def test_degrade_false_propagates(self, deck):
        pipeline = GanaPipeline(annotator=_BrokenAnnotator(), degrade=False)
        with pytest.raises(RuntimeError, match="weights corrupted"):
            pipeline.run(deck)

    def test_healthy_run_is_not_degraded(self, pipeline, deck):
        result = pipeline.run(deck)
        assert not result.degraded
        assert result.degraded_reason is None

    def test_confidence_floor_triggers_fallback(self, quick_ota_annotator, deck):
        # An unattainable floor (softmax tops out at 1.0) forces the
        # "all vertices below the floor" path.
        pipeline = GanaPipeline(
            annotator=quick_ota_annotator, confidence_floor=1.5
        )
        result = pipeline.run(deck)
        assert result.degraded
        assert "confidence below" in result.degraded_reason

    def test_confidence_floor_zero_disables_check(
        self, quick_ota_annotator, deck
    ):
        pipeline = GanaPipeline(
            annotator=quick_ota_annotator, confidence_floor=0.0
        )
        assert not pipeline.run(deck).degraded

    def test_fallback_recognizer_is_cached(self, deck):
        pipeline = GanaPipeline(annotator=_BrokenAnnotator())
        assert pipeline.fallback_recognizer is None
        pipeline.run(deck)
        first = pipeline.fallback_recognizer
        assert first is not None
        pipeline.run(deck)
        assert pipeline.fallback_recognizer is first

    def test_degraded_probabilities_are_one_hot(self, deck):
        pipeline = GanaPipeline(annotator=_BrokenAnnotator())
        result = pipeline.run(deck)
        probs = result.gcn_annotation.probabilities
        assert probs is not None
        assert probs.shape[1] == len(OTA_CLASSES)
        assert ((probs == 0.0) | (probs == 1.0)).all()
        assert (probs.sum(axis=1) == 1.0).all()
