"""Search budgets: VF2, primitive matching, and the annealing placer
stop when told to, raising ``BudgetExceeded`` with partial results.
"""

from __future__ import annotations

import time

import pytest

from repro.exceptions import BudgetExceeded
from repro.layout.anneal import AnnealConfig, AnnealResult, anneal_placement
from repro.primitives.isomorphism import find_subgraph_isomorphisms
from repro.primitives.library import extended_library
from repro.primitives.matcher import (
    AnnotationResult,
    annotate_primitives,
    find_primitive_matches,
)
from repro.runtime.resilience import Budget, time_limit
from tests.layout.test_anneal import _fixture as anneal_fixture


def _mirror_template():
    library = extended_library()
    for template in library:
        if template.name.startswith("CM-N"):
            return template
    raise AssertionError("no NMOS current mirror in the library")


class TestBudget:
    def test_tick_raises_past_max_steps(self):
        budget = Budget(max_steps=3)
        for _ in range(3):
            budget.tick()
        with pytest.raises(BudgetExceeded) as info:
            budget.tick()
        assert info.value.steps == 4

    def test_wall_clock_limit(self):
        budget = Budget(max_seconds=0.01)
        time.sleep(0.02)
        with pytest.raises(BudgetExceeded, match="time budget"):
            budget.tick()

    def test_exceeded_is_non_raising(self):
        budget = Budget(max_steps=1)
        assert not budget.exceeded()
        budget.steps = 5
        assert budget.exceeded()

    def test_unlimited_budget_never_raises(self):
        budget = Budget()
        for _ in range(10_000):
            budget.tick()


class TestVf2Budget:
    def test_search_honors_step_budget(self, diff_ota_graph):
        template = _mirror_template()
        with pytest.raises(BudgetExceeded) as info:
            find_subgraph_isomorphisms(
                template.pattern, diff_ota_graph, budget=Budget(max_steps=2)
            )
        # Partial results are always attached (possibly an empty list).
        assert isinstance(info.value.partial, list)

    def test_generous_budget_changes_nothing(self, diff_ota_graph):
        template = _mirror_template()
        unbounded = find_subgraph_isomorphisms(template.pattern, diff_ota_graph)
        bounded = find_subgraph_isomorphisms(
            template.pattern, diff_ota_graph, budget=Budget(max_steps=100_000)
        )
        assert bounded == unbounded
        assert len(unbounded) > 0

    def test_partial_results_are_a_prefix(self, diff_ota_graph):
        template = _mirror_template()
        full = find_subgraph_isomorphisms(template.pattern, diff_ota_graph)
        # Walk the budget up until the search first survives; every
        # earlier failure must carry a prefix of the full result set.
        for steps in range(1, 100_000):
            try:
                got = find_subgraph_isomorphisms(
                    template.pattern,
                    diff_ota_graph,
                    budget=Budget(max_steps=steps),
                )
            except BudgetExceeded as exc:
                assert exc.partial == full[: len(exc.partial)]
            else:
                assert got == full
                break


class TestMatcherBudget:
    def test_find_matches_budget(self, diff_ota_graph):
        template = _mirror_template()
        with pytest.raises(BudgetExceeded) as info:
            find_primitive_matches(
                template, diff_ota_graph, budget=Budget(max_steps=2)
            )
        assert isinstance(info.value.partial, list)

    def test_annotate_primitives_shared_budget(self, diff_ota_graph):
        library = extended_library()
        with pytest.raises(BudgetExceeded) as info:
            annotate_primitives(
                diff_ota_graph, library, budget=Budget(max_steps=5)
            )
        partial = info.value.partial
        assert isinstance(partial, AnnotationResult)
        # Every device is accounted for: matched or reported unclaimed.
        names = {d.name for d in diff_ota_graph.elements}
        assert partial.claimed | set(partial.unclaimed) == names

    def test_annotate_primitives_generous_budget(self, diff_ota_graph):
        library = extended_library()
        unbounded = annotate_primitives(diff_ota_graph, library)
        bounded = annotate_primitives(
            diff_ota_graph, library, budget=Budget(max_steps=1_000_000)
        )
        assert bounded.matches == unbounded.matches


class TestAnnealBudget:
    def test_budget_interrupts_with_partial_layout(self):
        root, circuit = anneal_fixture()
        with pytest.raises(BudgetExceeded) as info:
            anneal_placement(
                root,
                circuit,
                AnnealConfig(steps=200),
                budget=Budget(max_steps=10),
            )
        partial = info.value.partial
        assert isinstance(partial, AnnealResult)
        partial.layout.verify()  # every intermediate state is legal
        assert partial.final_cost <= partial.initial_cost + 1e-9

    def test_generous_budget_matches_unbudgeted(self):
        root, circuit = anneal_fixture()
        config = AnnealConfig(steps=40)
        plain = anneal_placement(root, circuit, config)
        budgeted = anneal_placement(
            root, circuit, config, budget=Budget(max_steps=10_000)
        )
        assert budgeted.final_cost == plain.final_cost
        assert budgeted.history == plain.history


class TestTimeLimit:
    def test_interrupts_a_hang(self):
        with pytest.raises(BudgetExceeded, match="wall-clock"):
            with time_limit(0.05, what="test hang"):
                time.sleep(5)

    def test_no_op_without_limit(self):
        with time_limit(None):
            pass
        with time_limit(0):
            pass

    def test_timer_is_cleared_after_block(self):
        with time_limit(0.5):
            pass
        time.sleep(0.6)  # would SIGALRM-kill the test if still armed
