"""Trained-model cache: correctness, corruption fallback, knobs.

The load-bearing guarantee (ISSUE 1 acceptance): an annotator loaded
from cache produces bit-identical predictions to a freshly trained
one, and any unreadable cache entry silently falls back to retraining.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ota import OtaSpec, generate_ota
from repro.datasets.synth import pretrain_annotator, training_fingerprint
from repro.gcn.model import GCNConfig
from repro.gcn.samples import GraphSample
from repro.gcn.train import TrainConfig
from repro.graph.bipartite import CircuitGraph
from repro.runtime.cache import (
    CACHE_FORMAT_VERSION,
    ModelCache,
    cache_enabled,
    default_cache_dir,
    fingerprint,
)

#: Tiny-but-real training spec shared by the tests below.
TRAIN_KW = dict(task="ota", quick=True, train_size=12, seed=3)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    path = tmp_path / "model-cache"
    monkeypatch.setenv("GANA_CACHE_DIR", str(path))
    return path


def _probe_probabilities(annotator) -> np.ndarray:
    lc = generate_ota(OtaSpec(topology="five_transistor"), name="cache_probe")
    graph = CircuitGraph.from_circuit(lc.circuit)
    sample = GraphSample.from_graph(
        graph, {}, levels=annotator.model.config.levels_needed
    )
    return annotator.model.predict_proba(sample)


class TestFingerprint:
    def test_key_order_does_not_matter(self):
        a = fingerprint({"x": 1, "y": (2, 3)})
        b = fingerprint({"y": (2, 3), "x": 1})
        assert a == b

    def test_dataclasses_fingerprint_stably(self):
        a = fingerprint({"m": GCNConfig(), "t": TrainConfig()})
        b = fingerprint({"m": GCNConfig(), "t": TrainConfig()})
        assert a == b

    def test_spec_changes_change_the_key(self):
        base = training_fingerprint("ota", 72, 0, GCNConfig(), TrainConfig())
        assert base != training_fingerprint(
            "ota", 72, 1, GCNConfig(), TrainConfig()
        )
        assert base != training_fingerprint(
            "ota", 73, 0, GCNConfig(), TrainConfig()
        )
        assert base != training_fingerprint(
            "ota", 72, 0, GCNConfig(filter_size=16), TrainConfig()
        )

    def test_unfingerprintable_object_raises(self):
        with pytest.raises(TypeError):
            fingerprint({"fn": object()})


class TestEnvironmentKnobs:
    def test_cache_dir_override(self, cache_dir):
        assert default_cache_dir() == cache_dir

    def test_no_cache_env(self, monkeypatch):
        monkeypatch.setenv("GANA_NO_CACHE", "1")
        assert not cache_enabled()
        monkeypatch.setenv("GANA_NO_CACHE", "")
        assert cache_enabled()


class TestCacheCorrectness:
    def test_cached_predictions_bit_identical(self, cache_dir):
        fresh = pretrain_annotator(**TRAIN_KW)  # trains, stores
        assert len(ModelCache().entries()) == 1
        cached = pretrain_annotator(**TRAIN_KW)  # loads
        retrained = pretrain_annotator(**TRAIN_KW, cache=False)
        p_cached = _probe_probabilities(cached)
        assert np.array_equal(p_cached, _probe_probabilities(fresh))
        assert np.array_equal(p_cached, _probe_probabilities(retrained))
        assert cached.class_names == fresh.class_names

    def test_cache_off_stores_nothing(self, cache_dir):
        pretrain_annotator(**TRAIN_KW, cache=False)
        assert ModelCache().entries() == []

    def test_no_cache_env_bypasses(self, cache_dir, monkeypatch):
        monkeypatch.setenv("GANA_NO_CACHE", "1")
        pretrain_annotator(**TRAIN_KW)
        assert ModelCache().entries() == []

    def test_corrupted_entry_falls_back_to_retraining(self, cache_dir):
        baseline = pretrain_annotator(**TRAIN_KW)
        [entry] = ModelCache().entries()
        entry.write_bytes(b"this is not an npz archive")
        recovered = pretrain_annotator(**TRAIN_KW)
        assert np.array_equal(
            _probe_probabilities(recovered), _probe_probabilities(baseline)
        )
        # The poisoned file was replaced by a healthy rewrite.
        assert len(ModelCache().entries()) == 1
        reloaded = ModelCache().load(
            ModelCache().entries()[0].name.removesuffix(".npz")
        )
        assert reloaded is not None

    def test_truncated_entry_is_a_miss(self, cache_dir):
        pretrain_annotator(**TRAIN_KW)
        [entry] = ModelCache().entries()
        entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 3])
        key = entry.name.removesuffix(".npz")
        assert ModelCache().load(key) is None
        assert not entry.exists()  # bad entries are evicted

    def test_stale_format_version_is_a_miss(self, cache_dir, monkeypatch):
        pretrain_annotator(**TRAIN_KW)
        [entry] = ModelCache().entries()
        key = entry.name.removesuffix(".npz")
        import repro.runtime.cache as cache_module

        monkeypatch.setattr(
            cache_module, "CACHE_FORMAT_VERSION", CACHE_FORMAT_VERSION + 1
        )
        assert ModelCache().load(key) is None

    def test_clear_removes_entries(self, cache_dir):
        pretrain_annotator(**TRAIN_KW)
        cache = ModelCache()
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_store_survives_unwritable_directory(self, tmp_path, monkeypatch):
        annotator = pretrain_annotator(**TRAIN_KW, cache=False)
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        cache = ModelCache(blocked)
        assert cache.store("somekey", annotator) is None  # no raise
